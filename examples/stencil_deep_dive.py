"""Stencil deep dive: reproduce the paper's Figures 2, 3 and 4 worked example.

The Parboil stencil is the paper's running example: its innermost loop
strides a whole xy-plane per iteration, so each iteration's working set
is a vector of far-apart cache lines related to its predecessor by one
constant differential.  This script prints:

* the CBWS matrix (Figure 3) — rows are loop iterations, columns static
  instructions;
* the differential matrix (Figure 4) — one constant stride vector;
* the live CBWS predictor consuming the same stream and the point at
  which its history table starts predicting entire future working sets.

Run:  python examples/stencil_deep_dive.py
"""

from repro import CbwsConfig, CbwsPredictor, GridRunner
from repro.analysis.differentials import extract_cbws_sequences
from repro.core.cbws import differential


def main() -> None:
    runner = GridRunner(budget_fraction=0.1)
    trace = runner.trace("stencil-default")

    sequences = extract_cbws_sequences(trace)
    block_id = min(sequences)
    vectors = sequences[block_id][1:9]

    print("Figure 3 — CBWS matrix (cache line numbers, one row per "
          "iteration):")
    for index, cbws in enumerate(vectors):
        cells = "  ".join(f"{line:6d}" for line in cbws)
        print(f"  CBWS{index} = ( {cells} )")

    print("\nFigure 4 — CBWS differentials (element-wise subtraction):")
    deltas = [differential(a, b) for a, b in zip(vectors, vectors[1:])]
    for index, delta in enumerate(deltas):
        cells = "  ".join(f"{stride:6d}" for stride in delta)
        print(f"  CBWS{index + 1}-CBWS{index} = ( {cells} )")
    if len(set(deltas)) == 1:
        print("  -> one constant differential vector, exactly as in the "
              "paper")

    print("\nLive predictor (Algorithm 1):")
    predictor = CbwsPredictor(CbwsConfig())
    for n, cbws in enumerate(sequences[block_id][:16]):
        predictor.block_begin(block_id)
        for line in cbws:
            predictor.memory_access(line)
        predicted = predictor.block_end()
        status = f"predicted {len(predicted):2d} lines" if predicted else (
            "no prediction (history warming up)"
        )
        print(f"  after iteration {n:2d}: {status}")

    stats = predictor.stats
    print(f"\nhistory-table hit rate: {stats.hit_rate:.0%} "
          f"({stats.table_hits}/{stats.table_lookups} lookups), "
          f"{stats.lines_predicted} lines predicted in total")


if __name__ == "__main__":
    main()
