"""Custom workload: bring your own loop and see what CBWS does with it.

Defines a kernel the paper never evaluated — a banded sparse
matrix-vector product with a *diagonal* traversal — and studies it with
the library's analysis tools before racing the prefetchers:

1. working-set size distribution (does it fit the 16-line buffer?);
2. differential skew (is there anything for the history table to learn?);
3. the simulated scoreboard.

Use this file as the template for experimenting with your own kernels.

Run:  python examples/custom_workload.py
"""

import numpy as np

from repro import REDUCED_CONFIG, PAPER_PREFETCHER_ORDER, make_prefetcher, simulate
from repro.analysis import differential_distribution, working_set_distribution
from repro.ir import (
    ArrayDecl,
    Compute,
    ExecutionLimits,
    For,
    Kernel,
    Load,
    Store,
    c,
    run_kernel,
    v,
)
from repro.passes import annotate_tight_loops


def build_kernel() -> Kernel:
    """A 5-band matrix walked diagonal-by-diagonal.

    Each innermost iteration gathers the five band values of one row —
    five lines spaced a row apart, advancing by one row per iteration:
    a CBWS-shaped pattern that no fixed-region prefetcher can span.
    """
    n = 384
    bands = 5
    i, b = v("i"), v("b")
    body = [
        For("i", 2, n - 2, [
            Load("band0", i * c(bands)),
            Load("band1", i * c(bands) + 1),
            Load("band2", i * c(bands) + 2),
            Load("band3", i * c(bands) + 3),
            Load("band4", i * c(bands) + 4),
            Load("x", i),
            Compute(12),
            Store("y", i),
        ]),
    ]
    length = n * bands

    def values(rng: np.random.Generator) -> np.ndarray:
        return rng.integers(-100, 100, size=length)

    return Kernel(
        "banded-spmv",
        [
            ArrayDecl("band0", length, 8, values),
            ArrayDecl("band1", length, 8, values),
            ArrayDecl("band2", length, 8, values),
            ArrayDecl("band3", length, 8, values),
            ArrayDecl("band4", length, 8, values),
            ArrayDecl("x", n, 8),
            ArrayDecl("y", n, 8),
        ],
        body,
    )


def main() -> None:
    kernel = build_kernel()
    report = annotate_tight_loops(kernel)
    print(f"annotated {report.block_count} tight loop(s)")

    trace = run_kernel(kernel, limits=ExecutionLimits(max_memory_accesses=20_000))
    trace.validate()

    sizes = working_set_distribution(trace)
    print(f"\nworking sets: mean {sizes.mean_size:.1f} lines, "
          f"max {sizes.max_size}, "
          f"{sizes.fraction_within(16):.0%} of blocks fit the 16-line buffer")

    skew = differential_distribution(trace)
    print(f"differentials: {skew.distinct_vectors} distinct vectors over "
          f"{skew.iterations} transitions; the top 10% cover "
          f"{skew.coverage_at(0.10):.0%}")

    print(f"\n{'prefetcher':<12} {'IPC':>6} {'MPKI':>8}")
    print("-" * 28)
    for name in PAPER_PREFETCHER_ORDER:
        result = simulate(REDUCED_CONFIG, make_prefetcher(name), trace)
        print(f"{name:<12} {result.ipc:6.3f} {result.mpki:8.2f}")


if __name__ == "__main__":
    main()
