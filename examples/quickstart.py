"""Quickstart: write a kernel, annotate it, trace it, race the prefetchers.

This walks the whole pipeline on a single page:

1. define a loop kernel in the IR (a blocked column walk, the access
   shape CBWS was built for);
2. run the tight-loop annotation pass (the paper's LLVM pass);
3. execute the kernel to get a commit-order trace;
4. simulate the trace against every prefetcher of the paper's
   evaluation and print the scoreboard.

Run:  python examples/quickstart.py
"""

from repro import (
    PAPER_PREFETCHER_ORDER,
    REDUCED_CONFIG,
    make_prefetcher,
    simulate,
)
from repro.ir import ArrayDecl, Compute, For, Kernel, Load, Store, c, v, run_kernel
from repro.passes import annotate_tight_loops, loop_runtime_stats
from repro.sim.results import DemandClass


def build_kernel() -> Kernel:
    """C equivalent::

        for (i = 0; i < ROWS; i++)
            for (j = 0; j < COLS; j++)           // annotated tight loop
                out[j] += a[j*ROWS + i] + b[j*ROWS + i] + w[j*ROWS + i];

    Three simultaneous column walks: every iteration's working set is
    three far-apart cache lines advancing by one constant differential —
    the pattern the CBWS prefetcher was built for.
    """
    rows, cols = 72, 320  # 72 avoids power-of-two set aliasing
    i, j = v("i"), v("j")
    index = j * c(rows) + i
    body = [
        For("i", 0, rows, [
            For("j", 0, cols, [
                Load("a", index),
                Load("b", index),
                Load("w", index),
                Load("out", j),
                Compute(8),
                Store("out", j),
            ]),
        ]),
    ]
    return Kernel(
        "quickstart-column-walk",
        [
            ArrayDecl("a", rows * cols, 8),
            ArrayDecl("b", rows * cols, 8),
            ArrayDecl("w", rows * cols, 8),
            ArrayDecl("out", cols, 8),
        ],
        body,
    )


def main() -> None:
    kernel = build_kernel()

    report = annotate_tight_loops(kernel)
    print(f"annotation pass: {report.block_count} tight loop(s) tagged")
    for loop in report.annotated:
        print(f"  block {loop.block_id}: {loop.loop_kind} loop with "
              f"{loop.static_memory_ops} static memory ops")

    trace = run_kernel(kernel)
    trace.validate()
    stats = loop_runtime_stats(trace)
    print(f"\ntrace: {len(trace.events)} events, "
          f"{trace.instructions} instructions, "
          f"{stats.loop_fraction:.0%} of runtime in tight loops\n")

    header = (f"{'prefetcher':<12} {'IPC':>6} {'MPKI':>8} {'timely':>8} "
              f"{'wrong':>7} {'storage':>9}")
    print(header)
    print("-" * len(header))
    for name in PAPER_PREFETCHER_ORDER:
        result = simulate(REDUCED_CONFIG, make_prefetcher(name), trace)
        print(
            f"{name:<12} {result.ipc:6.3f} {result.mpki:8.2f} "
            f"{result.class_fraction(DemandClass.TIMELY):8.1%} "
            f"{result.wrong_fraction:7.1%} "
            f"{result.storage_bits / 8192:7.2f}KB"
        )

    print("\nThe CBWS prefetcher streams each iteration's whole working "
          "set, so the\ncolumn walk's far-apart lines arrive before the "
          "loop needs them — at a\nfraction of the storage of the other "
          "schemes (Table III).")


if __name__ == "__main__":
    main()
