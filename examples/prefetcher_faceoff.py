"""Prefetcher face-off: a miniature Figure 12 + Figure 14 on four workloads.

Races all seven prefetcher configurations over four benchmarks chosen to
showcase the paper's main findings:

* ``sgemm-medium``   — CBWS eliminates the column-walk misses;
* ``fft-simlarge``   — too many distinct differentials: CBWS falls back;
* ``401.bzip2-source`` — blocks overflow the 16-line buffer;
* ``histo-large``    — data-dependent accesses defeat everyone.

Run:  python examples/prefetcher_faceoff.py
"""

from repro import GridRunner, PAPER_PREFETCHER_ORDER
from repro.harness.report import format_table
from repro.metrics.speedup import speedup_table

WORKLOADS = [
    "sgemm-medium",
    "fft-simlarge",
    "401.bzip2-source",
    "histo-large",
]


def main() -> None:
    runner = GridRunner(budget_fraction=0.3)
    print("simulating", len(WORKLOADS), "workloads x",
          len(PAPER_PREFETCHER_ORDER), "prefetchers ...\n")
    grid = runner.run_grid(WORKLOADS, PAPER_PREFETCHER_ORDER)

    mpki_rows = [
        [workload] + [grid.get(workload, p).mpki
                      for p in PAPER_PREFETCHER_ORDER]
        for workload in WORKLOADS
    ]
    print(format_table(
        ["benchmark", *PAPER_PREFETCHER_ORDER], mpki_rows,
        title="L2 MPKI (lower is better)", float_format="{:.2f}",
    ))

    table = speedup_table(grid, workloads=WORKLOADS)
    speedup_rows = [
        [workload] + [table[workload][p] for p in PAPER_PREFETCHER_ORDER]
        for workload in WORKLOADS
    ]
    speedup_rows.append(
        ["geomean"] + [table["average"][p] for p in PAPER_PREFETCHER_ORDER]
    )
    print()
    print(format_table(
        ["benchmark", *PAPER_PREFETCHER_ORDER], speedup_rows,
        title="IPC normalized to SMS (higher is better)",
        float_format="{:.2f}",
    ))

    print("\nReading the rows: sgemm shows the CBWS win, fft the fall-back "
          "at work,\nbzip2 the 16-line overflow, and histo that nobody "
          "predicts data-dependent bins.")


if __name__ == "__main__":
    main()
