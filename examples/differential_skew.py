"""Differential skew: reproduce Figure 5's coverage curves as ASCII plots.

Section II-B's key enabling observation: "the vast majority of loop
iterations are served by a tiny fraction of the differential vectors",
so a 16-entry history table suffices.  This script measures the
distribution for the paper's Figure 5 benchmark subset and draws each
coverage curve.

Run:  python examples/differential_skew.py
"""

from repro import GridRunner
from repro.harness.experiments import FIGURE5_WORKLOADS, figure5


def ascii_curve(distribution, width: int = 50, height: int = 10) -> str:
    """Render a coverage curve as a small ASCII plot."""
    rows = [[" "] * width for _ in range(height)]
    for x in range(width):
        fraction = (x + 1) / width
        coverage = distribution.coverage_at(fraction)
        y = min(height - 1, int(coverage * height))
        rows[height - 1 - y][x] = "*"
    lines = ["  100% |" + "".join(rows[0])]
    lines += ["       |" + "".join(row) for row in rows[1:-1]]
    lines += ["    0% |" + "".join(rows[-1])]
    lines += ["       +" + "-" * width, "        0%" + " " * (width - 12) + "100%"]
    return "\n".join(lines)


def main() -> None:
    runner = GridRunner(budget_fraction=0.3)
    result = figure5(runner)

    print("Figure 5 — iterations covered (y) by the top x% of distinct "
          "differential vectors:\n")
    for name in FIGURE5_WORKLOADS:
        distribution = result.distributions[name]
        print(f"{name}  ({distribution.distinct_vectors} distinct vectors, "
              f"{distribution.iterations} iterations)")
        print(ascii_curve(distribution))
        print(f"  top  5% of vectors cover {distribution.coverage_at(0.05):6.1%}")
        print(f"  top 25% of vectors cover {distribution.coverage_at(0.25):6.1%}\n")

    print("Block-structured kernels (stencil, sgemm, milc) collapse to a "
          "handful of\nvectors; fft-like code spreads across many — exactly "
          "why the paper's 16-entry\nhistory table works for the former and "
          "thrashes on the latter.")


if __name__ == "__main__":
    main()
