"""Tests for the spatial memory streaming prefetcher."""

import pytest

from repro.common.errors import ConfigError
from repro.prefetchers.base import DemandInfo
from repro.prefetchers.sms import SmsConfig, SmsPrefetcher


def access(pc, line):
    return DemandInfo(
        pc=pc, line=line, address=line * 64,
        is_write=False, l1_hit=False, l2_hit=False,
    )


def train_region(prefetcher, pc, base_line, offsets):
    """Run one full generation: touch the lines, then end it by evicting
    the trigger line from L1."""
    for offset in offsets:
        prefetcher.on_access(access(pc, base_line + offset))
    prefetcher.on_l1_eviction(base_line + offsets[0])


class TestConfig:
    def test_defaults_match_table2(self):
        config = SmsConfig()
        assert config.region_size == 2048
        assert config.lines_per_region == 32
        assert config.pht_entries == 512

    def test_invalid_rejected(self):
        with pytest.raises(ConfigError):
            SmsConfig(region_size=1000)
        with pytest.raises(ConfigError):
            SmsConfig(region_size=32)
        with pytest.raises(ConfigError):
            SmsConfig(pht_entries=0)


class TestGenerationLifecycle:
    def test_pattern_learned_after_generation_ends(self):
        prefetcher = SmsPrefetcher()
        train_region(prefetcher, pc=7, base_line=64, offsets=[0, 3, 9])
        pattern = prefetcher.learned_pattern(7, 0)
        assert pattern == (1 << 0) | (1 << 3) | (1 << 9)

    def test_single_access_region_still_trains_via_filter(self):
        prefetcher = SmsPrefetcher()
        prefetcher.on_access(access(7, 64))
        prefetcher.on_l1_eviction(64)
        assert prefetcher.learned_pattern(7, 0) == 1

    def test_stream_on_trigger_hit(self):
        prefetcher = SmsPrefetcher()
        train_region(prefetcher, pc=7, base_line=64, offsets=[0, 3, 9])
        # Same trigger (pc, offset 0) on a new region streams the pattern.
        candidates = prefetcher.on_access(access(7, 128))
        assert sorted(candidates) == [131, 137]  # trigger line excluded

    def test_different_trigger_offset_is_different_pattern(self):
        prefetcher = SmsPrefetcher()
        train_region(prefetcher, pc=7, base_line=64, offsets=[0, 3])
        assert prefetcher.on_access(access(7, 128 + 5)) == []

    def test_different_pc_is_different_pattern(self):
        prefetcher = SmsPrefetcher()
        train_region(prefetcher, pc=7, base_line=64, offsets=[0, 3])
        assert prefetcher.on_access(access(8, 128)) == []

    def test_agt_capacity_eviction_still_trains(self):
        prefetcher = SmsPrefetcher(SmsConfig(agt_entries=1, filter_entries=1))
        # Region A promoted to the 1-entry AGT, then region B's promotion
        # evicts it; A's partial pattern must still reach the PHT.
        prefetcher.on_access(access(1, 0))
        prefetcher.on_access(access(1, 2))       # promote A
        prefetcher.on_access(access(2, 320))
        prefetcher.on_access(access(2, 322))     # promote B, evict A
        assert prefetcher.learned_pattern(1, 0) == 0b101

    def test_eviction_of_untracked_region_is_noop(self):
        prefetcher = SmsPrefetcher()
        prefetcher.on_l1_eviction(12345)  # nothing tracked: no crash


class TestRegionGeometry:
    def test_region_boundary_splits_patterns(self):
        """Accesses one line apart but across a region boundary belong to
        different generations — the structural weakness the paper's
        stencil exploits."""
        prefetcher = SmsPrefetcher()
        last_line_of_region = 31
        prefetcher.on_access(access(1, last_line_of_region))
        prefetcher.on_access(access(1, last_line_of_region + 1))
        prefetcher.on_l1_eviction(last_line_of_region)
        prefetcher.on_l1_eviction(last_line_of_region + 1)
        assert prefetcher.learned_pattern(1, 31) == 1 << 31
        assert prefetcher.learned_pattern(1, 0) == 1


class TestCapacityAndReset:
    def test_pht_lru_eviction(self):
        prefetcher = SmsPrefetcher(SmsConfig(pht_entries=2))
        train_region(prefetcher, pc=1, base_line=0, offsets=[0, 1])
        train_region(prefetcher, pc=2, base_line=64, offsets=[0, 1])
        train_region(prefetcher, pc=3, base_line=128, offsets=[0, 1])
        assert prefetcher.learned_pattern(1, 0) is None
        assert prefetcher.learned_pattern(3, 0) is not None

    def test_reset(self):
        prefetcher = SmsPrefetcher()
        train_region(prefetcher, pc=1, base_line=0, offsets=[0, 1])
        prefetcher.reset()
        assert prefetcher.learned_pattern(1, 0) is None

    def test_storage_is_reported(self):
        assert SmsPrefetcher().storage_bits() > 0
