"""Documentation health checks: docstring presence and markdown links.

These mirror the CI docs job locally: the module-docstring test is the
AST equivalent of ``ruff check --select D100,D104`` (ruff itself is a
CI-only dependency), and the link tests drive
``tools/check_markdown_links.py`` over both fixtures and the real docs.
"""

from __future__ import annotations

import ast
import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = ["README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md",
             "CHANGES.md"]


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_markdown_links", REPO_ROOT / "tools" / "check_markdown_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestModuleDocstrings:
    """Every module and package in src/repro documents itself (D100/D104)."""

    def test_all_modules_have_docstrings(self):
        missing = []
        for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
            tree = ast.parse(path.read_text(encoding="utf-8"))
            if ast.get_docstring(tree) is None:
                missing.append(str(path.relative_to(REPO_ROOT)))
        assert missing == [], f"modules missing docstrings: {missing}"


class TestLinkChecker:
    def test_github_anchor_slugs(self):
        checker = _load_checker()
        assert checker.github_anchor("The `obs` package") == "the-obs-package"
        assert checker.github_anchor("Step 1: Build & Run!") == "step-1-build--run"

    def test_detects_broken_file_link(self, tmp_path):
        checker = _load_checker()
        doc = tmp_path / "doc.md"
        doc.write_text("see [gone](missing.md) here\n")
        problems = checker.check_file(doc)
        assert len(problems) == 1 and "missing.md" in problems[0]

    def test_detects_missing_anchor(self, tmp_path):
        checker = _load_checker()
        doc = tmp_path / "doc.md"
        doc.write_text("# Real Heading\n\n[jump](#not-a-heading)\n")
        problems = checker.check_file(doc)
        assert len(problems) == 1 and "not-a-heading" in problems[0]

    def test_valid_relative_and_anchor_links_pass(self, tmp_path):
        checker = _load_checker()
        other = tmp_path / "other.md"
        other.write_text("# Target Section\n")
        doc = tmp_path / "doc.md"
        doc.write_text(
            "# Top\n\n[ok](other.md) [deep](other.md#target-section) "
            "[self](#top) [web](https://example.com)\n"
        )
        assert checker.check_file(doc) == []

    def test_code_fences_are_ignored(self, tmp_path):
        checker = _load_checker()
        doc = tmp_path / "doc.md"
        doc.write_text("```\n[fake](nowhere.md)\n```\n")
        assert checker.check_file(doc) == []

    def test_repo_docs_have_no_broken_links(self):
        checker = _load_checker()
        problems = []
        for name in DOC_FILES:
            problems.extend(checker.check_file(REPO_ROOT / name))
        assert problems == [], f"broken doc links: {problems}"
