"""Tests for IR expression/statement construction."""

import pytest

from repro.common.errors import ValidationError
from repro.ir.builder import c, maximum, minimum, v
from repro.ir.nodes import (
    ArrayDecl,
    BINOP_EVALUATORS,
    BinOp,
    Compute,
    Const,
    For,
    Kernel,
    Load,
    Store,
    Var,
    While,
)


class TestExpressions:
    def test_operator_overloading_builds_binop(self):
        expr = v("i") + c(3) * v("j")
        assert isinstance(expr, BinOp)
        assert expr.op == "+"
        assert isinstance(expr.rhs, BinOp)
        assert expr.rhs.op == "*"

    def test_int_operands_are_wrapped(self):
        expr = v("i") + 5
        assert isinstance(expr.rhs, Const)
        assert expr.rhs.value == 5

    def test_reflected_operators(self):
        expr = 5 - v("i")
        assert isinstance(expr.lhs, Const)
        assert expr.lhs.value == 5

    def test_comparison_helpers(self):
        assert v("i").lt(3).op == "<"
        assert v("i").ge(3).op == ">="
        assert v("i").eq(3).op == "=="
        assert v("i").ne(3).op == "!="

    def test_min_max_builders(self):
        assert minimum(v("a"), 2).op == "min"
        assert maximum(3, v("b")).op == "max"

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValidationError):
            BinOp("**", c(1), c(2))

    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("+", 2, 3, 5),
            ("-", 2, 3, -1),
            ("*", 4, 3, 12),
            ("//", 7, 2, 3),
            ("%", 7, 3, 1),
            ("//", 7, 0, 0),   # C-unsafe division guarded to 0
            ("%", 7, 0, 0),
            ("&", 0b1100, 0b1010, 0b1000),
            ("|", 0b1100, 0b1010, 0b1110),
            ("^", 0b1100, 0b1010, 0b0110),
            ("<<", 1, 4, 16),
            (">>", 16, 2, 4),
            ("<", 1, 2, 1),
            (">=", 2, 2, 1),
            ("==", 3, 4, 0),
            ("min", 3, 7, 3),
            ("max", 3, 7, 7),
        ],
    )
    def test_evaluators(self, op, a, b, expected):
        assert BINOP_EVALUATORS[op](a, b) == expected


class TestStatements:
    def test_for_step_zero_rejected(self):
        with pytest.raises(ValidationError):
            For("i", 0, 10, [], step=0)

    def test_compute_negative_rejected(self):
        with pytest.raises(ValidationError):
            Compute(-1)

    def test_loops_start_unannotated(self):
        assert For("i", 0, 1, []).block_id is None
        assert While(c(0), []).block_id is None

    def test_load_store_start_unnumbered(self):
        assert Load("a", 0).pc == -1
        assert Store("a", 0).pc == -1


class TestKernel:
    def test_duplicate_arrays_rejected(self):
        with pytest.raises(ValidationError, match="duplicate"):
            Kernel("k", [ArrayDecl("a", 1), ArrayDecl("a", 2)], [])

    def test_array_decl_geometry_validated(self):
        with pytest.raises(ValidationError):
            ArrayDecl("a", 0)
        with pytest.raises(ValidationError):
            ArrayDecl("a", 4, element_size=0)

    def test_repr(self):
        kernel = Kernel("k", [ArrayDecl("a", 1)], [Compute(1)])
        assert "k" in repr(kernel)
