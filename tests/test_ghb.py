"""Tests for the global history buffer prefetcher."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.prefetchers.base import DemandInfo
from repro.prefetchers.ghb import GhbConfig, GhbPrefetcher, GlobalHistoryBuffer


def miss(pc, line):
    return DemandInfo(
        pc=pc, line=line, address=line * 64,
        is_write=False, l1_hit=False, l2_hit=False,
    )


def l1_hit(pc, line):
    return DemandInfo(
        pc=pc, line=line, address=line * 64,
        is_write=False, l1_hit=True, l2_hit=True,
    )


class TestBuffer:
    def test_chain_recovers_per_key_history(self):
        buffer = GlobalHistoryBuffer(8)
        buffer.push(1, 10)
        buffer.push(2, 99)
        buffer.push(1, 20)
        buffer.push(1, 30)
        assert buffer.chain(1, 10) == [30, 20, 10]
        assert buffer.chain(2, 10) == [99]

    def test_chain_respects_max_length(self):
        buffer = GlobalHistoryBuffer(8)
        for value in range(5):
            buffer.push(1, value)
        assert buffer.chain(1, 3) == [4, 3, 2]

    def test_stale_links_terminate_chain(self):
        buffer = GlobalHistoryBuffer(4)
        buffer.push(1, 10)          # will be overwritten
        for value in (20, 30, 40, 50):
            buffer.push(1, value)   # 5 pushes into 4 slots
        chain = buffer.chain(1, 10)
        assert chain == [50, 40, 30, 20]  # entry 10 was overwritten

    def test_overwritten_head_yields_empty_chain(self):
        buffer = GlobalHistoryBuffer(2)
        buffer.push(1, 10)
        buffer.push(2, 20)
        buffer.push(2, 30)  # overwrites key 1's only entry
        assert buffer.chain(1, 10) == []

    def test_len_saturates_at_capacity(self):
        buffer = GlobalHistoryBuffer(3)
        for value in range(10):
            buffer.push(1, value)
        assert len(buffer) == 3

    def test_clear(self):
        buffer = GlobalHistoryBuffer(4)
        buffer.push(1, 10)
        buffer.clear()
        assert buffer.chain(1, 10) == []
        assert len(buffer) == 0

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigError):
            GlobalHistoryBuffer(0)

    @settings(max_examples=40)
    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 1000)),
            max_size=100,
        )
    )
    def test_chain_matches_reference(self, pushes):
        """The chain equals the per-key suffix that still fits the FIFO."""
        capacity = 8
        buffer = GlobalHistoryBuffer(capacity)
        history: list[tuple[int, int]] = []
        for key, line in pushes:
            buffer.push(key, line)
            history.append((key, line))
        live = history[-capacity:]
        for key in range(4):
            expected = [line for k, line in reversed(live) if k == key]
            got = buffer.chain(key, capacity)
            # The chain may stop early at a stale link but must be a
            # prefix of the reference and exact when unbroken.
            assert got == expected[: len(got)]


class TestDeltaCorrelation:
    def test_constant_stride_stream_predicted(self):
        prefetcher = GhbPrefetcher(GhbConfig(mode="pc", degree=3))
        candidates = []
        for k in range(6):
            candidates = prefetcher.on_access(miss(1, 100 + 16 * k))
        # Most-recent-match replay: only the delta between the match and
        # the head remains, so the constant stream predicts one line.
        assert candidates == [196]

    def test_repeating_delta_pattern_predicted(self):
        prefetcher = GhbPrefetcher(GhbConfig(mode="pc", degree=3))
        # Deltas cycle 1, 1, 10.
        lines = [0, 1, 2, 12, 13, 14, 24, 25]
        for line in lines:
            candidates = prefetcher.on_access(miss(1, line))
        # History (1, 1) last seen followed by 10, 1, 1.
        assert candidates == [26, 36, 37]

    def test_hits_do_not_train(self):
        prefetcher = GhbPrefetcher(GhbConfig(mode="pc"))
        for k in range(6):
            assert prefetcher.on_access(l1_hit(1, 100 + k * 16)) == []
        assert len(prefetcher.buffer) == 0

    def test_too_short_history_is_silent(self):
        prefetcher = GhbPrefetcher(GhbConfig(mode="pc"))
        assert prefetcher.on_access(miss(1, 0)) == []
        assert prefetcher.on_access(miss(1, 16)) == []

    def test_global_mode_mixes_pcs(self):
        prefetcher = GhbPrefetcher(GhbConfig(mode="global", degree=2))
        # Two PCs interleave into one global +8 stream.
        candidates = []
        for k in range(8):
            candidates = prefetcher.on_access(miss(k % 2, k * 8))
        assert candidates == [64]

    def test_pc_mode_separates_pcs(self):
        prefetcher = GhbPrefetcher(GhbConfig(mode="pc", degree=1))
        for k in range(4):
            prefetcher.on_access(miss(1, k * 16))
            candidates = prefetcher.on_access(miss(2, 1000 + k * 4))
        assert candidates == [1000 + 4 * 4]

    def test_reset(self):
        prefetcher = GhbPrefetcher()
        for k in range(6):
            prefetcher.on_access(miss(1, k * 16))
        prefetcher.reset()
        assert prefetcher.on_access(miss(1, 0)) == []


class TestConfigAndStorage:
    def test_mode_names(self):
        assert GhbPrefetcher(GhbConfig(mode="global")).name == "ghb-g/dc"
        assert GhbPrefetcher(GhbConfig(mode="pc")).name == "ghb-pc/dc"

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            GhbConfig(mode="bogus")  # type: ignore[arg-type]
        with pytest.raises(ConfigError):
            GhbConfig(history_length=1)
        with pytest.raises(ConfigError):
            GhbConfig(degree=0)

    def test_storage_matches_table3(self):
        assert GhbPrefetcher(GhbConfig(mode="global")).storage_bits() == 18432
        assert GhbPrefetcher(GhbConfig(mode="pc")).storage_bits() == 30720
