"""Integration: every experiment function runs and renders at tiny budget."""

import pytest

from repro.harness import experiments
from repro.harness.runner import GridRunner


@pytest.fixture(scope="module")
def runner():
    return GridRunner(budget_fraction=0.05)


class TestAnalysisExperiments:
    def test_figure1(self, runner):
        result = experiments.figure1(runner)
        assert len(result.stats) == 15
        assert 0.4 < result.average <= 1.0
        assert "Figure 1" in result.render()

    def test_table1_reproduces_constant_differential(self, runner):
        result = experiments.table1(runner)
        assert len(result.cbws_vectors) == 8
        assert result.constant_differential, (
            "the stencil CBWS differentials must be one constant vector "
            "(Figure 4)"
        )
        assert "CBWS0" in result.render()

    def test_figure5(self, runner):
        result = experiments.figure5(runner)
        assert set(result.distributions) == set(experiments.FIGURE5_WORKLOADS)
        for dist in result.distributions.values():
            assert dist.iterations > 0
        assert "Figure 5" in result.render()

    def test_figure5_skew_ordering(self, runner):
        """Block-structured kernels are far more skewed than fft-like
        ones: stencil needs only a vector or two, streamcluster many."""
        result = experiments.figure5(runner)
        stencil = result.distributions["stencil-default"]
        streamcluster = result.distributions["streamcluster-simlarge"]
        assert stencil.distinct_vectors < streamcluster.distinct_vectors

    def test_table3_storage(self):
        result = experiments.table3()
        assert result.estimates["cbws"].kilobytes < 1.3
        assert result.estimates["sms"].kilobytes > 4
        assert "Table III" in result.render()

    def test_working_set_claim(self, runner):
        result = experiments.working_set_claim(
            runner, workloads=["stencil-default", "401.bzip2-source", "nw"]
        )
        assert result.distributions["401.bzip2-source"].fraction_within(16) < 0.1
        assert result.distributions["stencil-default"].fraction_within(16) == 1.0
        assert "16" in result.render()


class TestGridExperiments:
    """Smaller grids than the real figures, same code paths."""

    def test_figure12_structure(self, runner):
        result = experiments.figure12(runner)
        assert len(result.grid.workloads) == 15
        assert result.mpki("stencil-default", "no-prefetch") > 0
        assert "Figure 12" in result.render()

    def test_figure13_structure(self, runner):
        result = experiments.figure13(runner)
        breakdown = result.breakdown("stencil-default", "cbws")
        assert 0 <= breakdown.timely <= 1
        assert "Figure 13" in result.render()

    def test_figure15_structure(self, runner):
        result = experiments.figure15(runner)
        assert result.perf_cost("stencil-default", "no-prefetch") == (
            pytest.approx(1.0)
        )
        assert "Figure 15" in result.render()

    @pytest.mark.learned
    def test_extension_learned_structure(self, runner):
        result = experiments.extension_learned(runner)
        assert len(result.grid.workloads) == 30
        rendered = result.render()
        assert "pangloss" in rendered and "pythia" in rendered
        assert "geomean-speedup" in rendered and "mean-accuracy" in rendered


class TestAblations:
    def test_history_depth_sweep(self, runner):
        result = experiments.ablation_history_depth(runner, values=[1, 4])
        for workload in experiments.ABLATION_WORKLOADS:
            assert set(result.ipc[workload]) == {1, 4}
            for ipc in result.ipc[workload].values():
                assert ipc > 0
        assert "max_step" in result.render()

    def test_table_size_sweep(self, runner):
        result = experiments.ablation_table_size(runner, values=[4, 16])
        assert all(len(v) == 2 for v in result.ipc.values())

    def test_vector_members_sweep(self, runner):
        result = experiments.ablation_vector_members(runner, values=[8, 32])
        assert "401.bzip2-source" in result.ipc
