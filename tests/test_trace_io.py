"""Round-trip and error-path tests for the binary trace format."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import TraceError
from repro.trace.events import BlockBegin, BlockEnd, MemoryAccess
from repro.trace.io import (
    read_trace,
    trace_from_bytes,
    trace_to_bytes,
    write_trace,
)
from repro.trace.stream import Trace


def simple_trace():
    return Trace(
        "example",
        [
            BlockBegin(0, 3),
            MemoryAccess(1, 0x400010, 4096, False),
            MemoryAccess(2, 0x400020, 8192, True),
            BlockEnd(3, 3),
        ],
        instructions=42,
    )


class TestRoundTrip:
    def test_in_memory_round_trip(self):
        original = simple_trace()
        restored = trace_from_bytes(trace_to_bytes(original))
        assert restored.name == original.name
        assert restored.instructions == original.instructions
        assert restored.events == original.events

    def test_file_round_trip(self, tmp_path):
        original = simple_trace()
        path = tmp_path / "trace.bin"
        write_trace(original, path)
        restored = read_trace(path)
        assert restored.events == original.events

    def test_empty_trace_round_trip(self):
        restored = trace_from_bytes(trace_to_bytes(Trace("empty", [], 0)))
        assert restored.events == []
        assert restored.name == "empty"

    def test_unicode_name_round_trip(self):
        trace = Trace("bench-αβ", [], 5)
        assert trace_from_bytes(trace_to_bytes(trace)).name == trace.name


# Strategy for arbitrary well-formed event streams.
@st.composite
def traces(draw):
    count = draw(st.integers(min_value=0, max_value=40))
    events = []
    icount = 0
    open_block = None
    for _ in range(count):
        icount += draw(st.integers(min_value=0, max_value=1000))
        kind = draw(st.integers(min_value=0, max_value=2))
        if kind == 0:
            events.append(
                MemoryAccess(
                    icount,
                    draw(st.integers(min_value=0, max_value=2**48 - 1)),
                    draw(st.integers(min_value=0, max_value=2**40)),
                    draw(st.booleans()),
                )
            )
        elif kind == 1 and open_block is None:
            open_block = draw(st.integers(min_value=0, max_value=2**20))
            events.append(BlockBegin(icount, open_block))
        elif kind == 2 and open_block is not None:
            events.append(BlockEnd(icount, open_block))
            open_block = None
    if open_block is not None:
        events.append(BlockEnd(icount, open_block))
    return Trace("prop", events, icount + draw(st.integers(0, 100)))


class TestRoundTripProperty:
    @settings(max_examples=50)
    @given(traces())
    def test_arbitrary_traces_survive(self, trace):
        restored = trace_from_bytes(trace_to_bytes(trace))
        assert restored.events == trace.events
        assert restored.instructions == trace.instructions


class TestErrorPaths:
    def test_bad_magic_rejected(self):
        data = trace_to_bytes(simple_trace())
        with pytest.raises(TraceError, match="magic"):
            trace_from_bytes(b"XXXX" + data[4:])

    def test_bad_version_rejected(self):
        data = bytearray(trace_to_bytes(simple_trace()))
        data[4] = 0xEE
        with pytest.raises(TraceError, match="version"):
            trace_from_bytes(bytes(data))

    def test_truncated_stream_rejected(self):
        data = trace_to_bytes(simple_trace())
        with pytest.raises(TraceError):
            trace_from_bytes(data[:-4])

    def test_truncated_header_rejected(self):
        with pytest.raises(TraceError):
            trace_from_bytes(b"CB")

    def test_unknown_tag_rejected(self):
        import struct
        import zlib

        data = bytearray(trace_to_bytes(simple_trace()))
        # First record tag sits right after header + name + counts + CRC.
        crc_offset = 8 + len("example") + 16
        offset = crc_offset + 4
        data[offset] = 99
        # Re-stamp the checksum so the tag check (not the CRC) fires.
        data[crc_offset:offset] = struct.pack(
            "<I", zlib.crc32(bytes(data[offset:])) & 0xFFFFFFFF
        )
        with pytest.raises(TraceError, match="tag"):
            trace_from_bytes(bytes(data))

    def test_payload_corruption_caught_by_checksum(self):
        data = bytearray(trace_to_bytes(simple_trace()))
        data[-3] ^= 0x40  # flip one bit inside the record section
        with pytest.raises(TraceError, match="checksum"):
            trace_from_bytes(bytes(data))


class TestErrorContext:
    """Corrupt files must produce diagnosable, path-carrying errors."""

    def test_read_trace_error_names_the_file(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_bytes(b"CB")
        with pytest.raises(TraceError, match="truncated trace header") as info:
            read_trace(path)
        assert str(path) in str(info.value)

    def test_garbage_bytes_become_typed_error_with_path(self, tmp_path):
        path = tmp_path / "garbage.trace"
        path.write_bytes(b"\x00" * 64)
        with pytest.raises(TraceError) as info:
            read_trace(path)
        assert str(path) in str(info.value)

    def test_short_name_field_is_diagnosed_not_opaque(self):
        # A header that declares an 8-byte name but truncates after 3
        # used to surface as a bare struct.error from the counts read.
        data = trace_to_bytes(simple_trace())
        truncated = data[: 8 + 3]
        with pytest.raises(TraceError, match="name field declares"):
            trace_from_bytes(truncated)

    def test_non_utf8_name_field_is_typed(self):
        data = bytearray(trace_to_bytes(simple_trace()))
        data[8] = 0xFF  # clobber first byte of the name "example"
        with pytest.raises(TraceError, match="not UTF-8"):
            trace_from_bytes(bytes(data))

    def test_non_monotonic_icount_rejected_at_write_by_index(self):
        trace = Trace(
            "t",
            [MemoryAccess(5, 0x10, 4096, False),
             MemoryAccess(2, 0x10, 8192, False)],
            instructions=6,
        )
        with pytest.raises(TraceError, match="event 1"):
            trace_to_bytes(trace)
