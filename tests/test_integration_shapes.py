"""Integration: the paper's headline shapes at reduced budget.

These are the acceptance criteria of DESIGN.md section 5 — who wins,
roughly by what factor — asserted with generous margins so the suite
stays robust at small trace budgets.
"""

import pytest

from repro.harness.runner import GridRunner
from repro.metrics.speedup import speedup_table
from repro.sim.results import DemandClass


SHAPE_WORKLOADS = [
    "stencil-default",
    "sgemm-medium",
    "nw",
    "462.libquantum-ref",
    "401.bzip2-source",
    "histo-large",
]

PREFETCHERS = ["no-prefetch", "stride", "sms", "cbws", "cbws+sms"]


@pytest.fixture(scope="module")
def grid():
    runner = GridRunner(budget_fraction=0.15)
    return runner.run_grid(SHAPE_WORKLOADS, PREFETCHERS)


class TestHeadlineShapes:
    def test_cbws_sms_at_least_matches_sms_everywhere(self, grid):
        """The integrated prefetcher must never fall meaningfully below
        its SMS fall-back."""
        for workload in SHAPE_WORKLOADS:
            hybrid = grid.get(workload, "cbws+sms").ipc
            sms = grid.get(workload, "sms").ipc
            assert hybrid >= sms * 0.93, workload

    def test_cbws_sms_wins_clearly_on_block_structured_loops(self, grid):
        """Stencil / sgemm / nw are the CBWS showcases (Section VII-C)."""
        for workload in ("stencil-default", "sgemm-medium", "nw"):
            hybrid = grid.get(workload, "cbws+sms").ipc
            sms = grid.get(workload, "sms").ipc
            assert hybrid > sms * 1.02, workload

    def test_average_speedup_over_sms(self, grid):
        """The headline: CBWS+SMS beats SMS on average (paper: 1.16x
        over all benchmarks, 1.31x on the MI group)."""
        table = speedup_table(grid, workloads=SHAPE_WORKLOADS)
        assert table["average"]["cbws+sms"] > 1.05

    def test_sms_is_best_non_cbws_prefetcher(self, grid):
        table = speedup_table(grid, workloads=SHAPE_WORKLOADS)
        average = table["average"]
        assert average["sms"] >= average["stride"]
        assert average["sms"] >= average["no-prefetch"]

    def test_standalone_cbws_loses_on_overflowing_blocks(self, grid):
        """bzip2's 24-line blocks overflow the 16-line buffer: standalone
        CBWS must trail SMS there (Section VII-C)."""
        cbws = grid.get("401.bzip2-source", "cbws").ipc
        sms = grid.get("401.bzip2-source", "sms").ipc
        assert cbws < sms

    def test_nobody_fixes_data_dependent_histogram(self, grid):
        """histo's bin accesses are data-dependent (Figure 16): no
        prefetcher gets close to eliminating its misses."""
        baseline = grid.get("histo-large", "no-prefetch").mpki
        for name in ("stride", "sms", "cbws", "cbws+sms"):
            assert grid.get("histo-large", name).mpki > baseline * 0.3


class TestAccuracyShapes:
    def test_cbws_accuracy_on_regular_loops(self, grid):
        """Standalone CBWS only prefetches on history hits, so its wrong
        fraction stays small on its showcase workloads (Fig. 13: ~5%)."""
        for workload in ("stencil-default", "sgemm-medium"):
            result = grid.get(workload, "cbws")
            assert result.wrong_fraction < 0.15, workload

    def test_cbws_coverage_on_showcases(self, grid):
        """CBWS turns nearly all stencil/sgemm misses into covered
        accesses (timely or in-flight)."""
        for workload in ("stencil-default", "sgemm-medium"):
            result = grid.get(workload, "cbws")
            covered = (
                result.classes[DemandClass.TIMELY]
                + result.classes[DemandClass.SHORTER_WAITING]
            )
            assert covered > 0.7 * result.l1_misses, workload
