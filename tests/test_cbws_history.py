"""Tests for the history shift registers and differential history table."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng
from repro.core.history import (
    DifferentialHistoryTable,
    HistoryShiftRegister,
    hash_differential,
)


class TestHashDifferential:
    def test_deterministic(self):
        delta = (16, 16, -8, 0)
        assert hash_differential(delta) == hash_differential(delta)

    def test_fits_12_bits(self):
        for delta in [(1,), (5000, -5000), tuple(range(16))]:
            assert 0 <= hash_differential(delta) <= 0xFFF

    def test_empty_reserved_value(self):
        assert hash_differential(()) == 0xFFF

    def test_order_sensitive(self):
        assert hash_differential((1, 2)) != hash_differential((2, 1))

    def test_length_sensitive(self):
        assert hash_differential((7,)) != hash_differential((7, 7))

    @given(st.lists(st.integers(-32768, 32767), max_size=16),
           st.integers(min_value=4, max_value=20))
    def test_width_respected(self, delta, bits):
        assert 0 <= hash_differential(tuple(delta), bits) < (1 << bits)


class TestShiftRegister:
    def test_fill_tracking(self):
        register = HistoryShiftRegister(depth=3)
        assert not register.filled
        for value in (1, 2, 3):
            register.shift(value)
        assert register.filled

    def test_depth_bounded(self):
        register = HistoryShiftRegister(depth=2)
        for value in (1, 2, 3):
            register.shift(value)
        assert len(register) == 2

    def test_tag_changes_with_history(self):
        a = HistoryShiftRegister(depth=3)
        b = HistoryShiftRegister(depth=3)
        for value in (1, 2, 3):
            a.shift(value)
        for value in (3, 2, 1):
            b.shift(value)
        assert a.tag() != b.tag()

    def test_tag_deterministic(self):
        a = HistoryShiftRegister(depth=3)
        b = HistoryShiftRegister(depth=3)
        for value in (5, 9, 12):
            a.shift(value)
            b.shift(value)
        assert a.tag() == b.tag()

    def test_tag_fits_16_bits(self):
        register = HistoryShiftRegister(depth=3)
        for value in (0xFFF, 0xFFF, 0xFFF):
            register.shift(value)
        assert 0 <= register.tag(16) <= 0xFFFF

    def test_clear(self):
        register = HistoryShiftRegister(depth=3)
        register.shift(1)
        register.clear()
        assert len(register) == 0

    def test_zero_depth_rejected(self):
        with pytest.raises(ConfigError):
            HistoryShiftRegister(depth=0)


class TestHistoryTable:
    def test_insert_lookup(self):
        table = DifferentialHistoryTable(entries=4)
        table.insert(0x12, (1, 2, 3))
        assert table.lookup(0x12) == (1, 2, 3)
        assert table.lookup(0x13) is None

    def test_update_in_place(self):
        table = DifferentialHistoryTable(entries=4)
        table.insert(0x12, (1,))
        table.insert(0x12, (2,))
        assert table.lookup(0x12) == (2,)
        assert len(table) == 1

    def test_capacity_with_random_eviction(self):
        table = DifferentialHistoryTable(
            entries=4, rng=DeterministicRng(1)
        )
        for tag in range(10):
            table.insert(tag, (tag,))
        assert len(table) == 4

    def test_random_eviction_is_seeded(self):
        def fill(seed):
            table = DifferentialHistoryTable(entries=4,
                                             rng=DeterministicRng(seed))
            for tag in range(32):
                table.insert(tag, (tag,))
            return sorted(tag for tag in range(32) if tag in table)

        assert fill(7) == fill(7)

    def test_hit_rate_tracking(self):
        table = DifferentialHistoryTable(entries=4)
        table.insert(1, (1,))
        table.lookup(1)
        table.lookup(2)
        assert table.hit_rate == pytest.approx(0.5)

    def test_tags_masked_to_width(self):
        table = DifferentialHistoryTable(entries=4, tag_bits=8)
        table.insert(0x1FF, (9,))
        assert table.lookup(0xFF) == (9,)

    def test_clear(self):
        table = DifferentialHistoryTable(entries=4)
        table.insert(1, (1,))
        table.lookup(1)
        table.clear()
        assert len(table) == 0
        assert table.lookups == 0

    def test_zero_entries_rejected(self):
        with pytest.raises(ConfigError):
            DifferentialHistoryTable(entries=0)

    @settings(max_examples=30)
    @given(st.lists(st.tuples(st.integers(0, 0xFFFF),
                              st.lists(st.integers(-100, 100), max_size=4)),
                    max_size=100))
    def test_occupancy_never_exceeds_capacity(self, inserts):
        table = DifferentialHistoryTable(entries=8)
        for tag, delta in inserts:
            table.insert(tag, tuple(delta))
            assert len(table) <= 8
