"""Tests for the coverage-driven fuzzer, shrinker, and fault injection."""

from __future__ import annotations

import pytest

from repro.check.diff import diff_prefetcher
from repro.check.fuzz import (
    INJECTIONS,
    collect_features,
    mutate,
    run_fuzz,
    run_injection,
    seed_traces,
    shrink,
)
from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng
from repro.trace.events import BLOCK_BEGIN, BLOCK_END, MEMORY_ACCESS


class TestSeedCorpus:
    def test_seeds_are_valid_and_distinct(self):
        seeds = seed_traces()
        assert len(seeds) >= 4
        names = {trace.name for trace in seeds}
        assert len(names) == len(seeds)
        for trace in seeds:
            trace.validate()

    def test_seeds_cover_core_features(self):
        features = set()
        for trace in seed_traces():
            features |= collect_features(
                trace, ["stride", "cbws", "sms", "markov"]
            )
        assert "stride:steady" in features
        assert "cbws:train" in features
        assert "cbws:overflow" in features
        assert "markov:train" in features


class TestMutation:
    def test_mutants_stay_valid(self):
        rng = DeterministicRng(11)
        seeds = seed_traces()
        for generation in range(200):
            parent = rng.choice(seeds)
            child = mutate(parent, rng, generation)
            child.validate()  # would raise on broken markers/icounts
            kinds = [event.kind for event in child.events]
            assert kinds.count(BLOCK_BEGIN) == kinds.count(BLOCK_END)
            for event in child.events:
                if event.kind == MEMORY_ACCESS:
                    assert event.address >= 0

    def test_mutation_changes_something_eventually(self):
        rng = DeterministicRng(3)
        parent = seed_traces()[0]
        changed = any(
            [e.kind for e in mutate(parent, rng, g).events]
            != [e.kind for e in parent.events]
            or [getattr(e, "address", None) for e in mutate(parent, rng, g).events]
            != [getattr(e, "address", None) for e in parent.events]
            for g in range(20)
        )
        assert changed


class TestHonestFuzz:
    def test_short_run_finds_no_divergence(self):
        report = run_fuzz(1.5, seed=7, names=["stride", "cbws"])
        assert report.divergences == []
        assert report.iterations > 0
        assert report.corpus_size >= len(seed_traces())
        assert report.features


class TestShrink:
    def test_shrink_preserves_failure_and_reduces(self):
        trace = seed_traces()[0]

        def too_many_accesses(candidate):
            return sum(
                1 for event in candidate.events
                if event.kind == MEMORY_ACCESS
            ) >= 3

        assert too_many_accesses(trace)
        small = shrink(trace, too_many_accesses)
        assert too_many_accesses(small)
        assert len(small.events) < len(trace.events)
        small.validate()


class TestFaultInjection:
    def test_unknown_injection_rejected(self):
        with pytest.raises(ConfigError, match="unknown injection"):
            run_injection("no-such-fault", budget_seconds=1.0)

    def test_cbws_fifo_off_by_one_is_caught_and_shrunk(self):
        # The headline acceptance criterion: a one-line capacity bug in
        # the CBWS current-working-set FIFO must be caught and the
        # counterexample shrunk to at most 50 events.
        result = run_injection("cbws-fifo-off-by-one",
                               budget_seconds=30.0, seed=7)
        assert result.caught
        assert result.divergence is not None
        assert result.counterexample is not None
        assert result.counterexample_events <= 50
        # The shrunken trace must still reproduce through the harness.
        name, impl_factory, oracle_factory = INJECTIONS["cbws-fifo-off-by-one"]
        replay = diff_prefetcher(
            name, result.counterexample,
            impl_factory=impl_factory, oracle_factory=oracle_factory,
        )
        assert replay is not None

    @pytest.mark.learned
    def test_pangloss_lfu_off_by_one_is_caught_and_shrunk(self):
        # Same acceptance criterion for the learned family: a fencepost
        # in Pangloss's LFU decay threshold must be caught and shrunk.
        result = run_injection("pangloss-lfu-off-by-one",
                               budget_seconds=30.0, seed=7)
        assert result.caught
        assert result.divergence is not None
        assert result.counterexample is not None
        assert result.counterexample_events <= 50
        name, impl_factory, oracle_factory = (
            INJECTIONS["pangloss-lfu-off-by-one"]
        )
        replay = diff_prefetcher(
            name, result.counterexample,
            impl_factory=impl_factory, oracle_factory=oracle_factory,
        )
        assert replay is not None
