"""Smoke tests on the full Table II machine (PAPER_CONFIG).

The reduced configuration drives the experiments; these tests confirm
the exact paper machine is simulatable too, and that the structural
relations between the two scales hold.
"""

import pytest

from repro.harness.registry import make_prefetcher
from repro.sim.config import PAPER_CONFIG, REDUCED_CONFIG
from repro.sim.engine import simulate
from repro.workloads import build_trace, get_workload

from conftest import annotated_trace, make_strided_kernel


class TestPaperMachine:
    def test_strided_kernel_runs_on_paper_machine(self):
        trace = annotated_trace(
            make_strided_kernel(iterations=1200, stride_elements=512)
        )
        baseline = simulate(PAPER_CONFIG, make_prefetcher("no-prefetch"), trace)
        cbws = simulate(PAPER_CONFIG, make_prefetcher("cbws"), trace)
        assert baseline.cycles > 0
        assert cbws.ipc > baseline.ipc

    def test_bigger_l2_never_hurts(self):
        """The paper machine's 2 MB L2 can only reduce misses relative
        to the reduced 128 KB L2 on the same trace."""
        trace = build_trace(get_workload("nw"), max_accesses=6000)
        reduced = simulate(
            REDUCED_CONFIG, make_prefetcher("no-prefetch"), trace
        )
        paper = simulate(PAPER_CONFIG, make_prefetcher("no-prefetch"), trace)
        assert paper.llc_misses <= reduced.llc_misses
        assert paper.ipc >= reduced.ipc

    def test_reduced_footprints_fit_paper_l2(self):
        """At scale 1.0 the workloads are sized for the reduced L2, so
        the paper machine mostly absorbs them — the reason experiments
        pair PAPER_CONFIG with larger workload scales."""
        trace = build_trace(get_workload("stencil-default"),
                            max_accesses=6000)
        paper = simulate(PAPER_CONFIG, make_prefetcher("no-prefetch"), trace)
        reduced = simulate(
            REDUCED_CONFIG, make_prefetcher("no-prefetch"), trace
        )
        assert paper.mpki < reduced.mpki

    @pytest.mark.parametrize("prefetcher", ["sms", "cbws+sms"])
    def test_prefetchers_run_at_paper_scale(self, prefetcher):
        trace = build_trace(get_workload("sgemm-medium"), scale=2.0,
                            max_accesses=8000)
        result = simulate(PAPER_CONFIG, make_prefetcher(prefetcher), trace)
        assert result.cycles > 0
        assert result.demand_accesses == 8000
