"""Shape checks for the low-MPKI group.

The paper includes the second group of 15 benchmarks to show the CBWS
schemes do not regress on cache-friendly code (Figure 14, bottom).
"""

import pytest

from repro.harness.runner import GridRunner
from repro.workloads import LOW_WORKLOADS

SAMPLE = ["458.sjeng-ref", "mxm-linpack", "backprop", "water-spatial-native"]


@pytest.fixture(scope="module")
def runner():
    return GridRunner(budget_fraction=0.15)


class TestLowGroup:
    @pytest.mark.parametrize("workload", SAMPLE)
    def test_hybrid_never_regresses(self, runner, workload):
        sms = runner.run_one(workload, "sms")
        hybrid = runner.run_one(workload, "cbws+sms")
        assert hybrid.ipc >= sms.ipc * 0.95

    @pytest.mark.parametrize("workload", SAMPLE)
    def test_cbws_never_slows_the_machine(self, runner, workload):
        baseline = runner.run_one(workload, "no-prefetch")
        cbws = runner.run_one(workload, "cbws")
        assert cbws.ipc >= baseline.ipc * 0.95

    def test_group_membership_is_complete(self):
        assert len(LOW_WORKLOADS) == 15
        for name in SAMPLE:
            assert name in LOW_WORKLOADS

    def test_low_group_wastes_little_bandwidth(self, runner):
        """On cache-resident code, the standalone CBWS prefetcher is
        nearly silent after warmup — cached predictions are never
        issued, so prefetch traffic stays a small fraction of accesses."""
        result = runner.run_one("mxm-linpack", "cbws")
        assert result.prefetches_issued <= 0.1 * result.demand_accesses
