"""Tests for the tight-loop annotation pass (the LLVM-pass substitute)."""

from repro.ir.builder import c, v
from repro.ir.nodes import ArrayDecl, Compute, For, Kernel, Load, Store, While
from repro.passes.annotate import annotate_tight_loops, clear_annotations


def kernel_with(body):
    return Kernel("k", [ArrayDecl("a", 64)], body)


class TestSelection:
    def test_innermost_loop_annotated(self):
        inner = For("j", 0, 4, [Load("a", v("j"))])
        outer = For("i", 0, 4, [inner])
        report = annotate_tight_loops(kernel_with([outer]))
        assert inner.block_id == 0
        assert outer.block_id is None
        assert report.block_count == 1

    def test_loop_without_memory_ops_skipped(self):
        loop = For("i", 0, 4, [Compute(5)])
        report = annotate_tight_loops(kernel_with([loop]))
        assert loop.block_id is None
        assert report.skipped[0].reason == "no memory operations"

    def test_huge_body_skipped(self):
        loop = For("i", 0, 4, [Load("a", c(k)) for k in range(40)])
        report = annotate_tight_loops(kernel_with([loop]),
                                      max_static_memory_ops=32)
        assert loop.block_id is None
        assert "exceed" in report.skipped[0].reason

    def test_no_block_pragma_respected(self):
        loop = For("i", 0, 4, [Load("a", v("i"))], no_block=True)
        report = annotate_tight_loops(kernel_with([loop]))
        assert loop.block_id is None
        assert report.skipped[0].reason == "no_block pragma"

    def test_while_loops_are_candidates(self):
        loop = While(v("x").gt(0), [Load("a", 0)])
        kernel = kernel_with([loop])
        report = annotate_tight_loops(kernel)
        assert loop.block_id == 0
        assert report.annotated[0].loop_kind == "while"


class TestIdAssignment:
    def test_sibling_loops_get_sequential_ids(self):
        loop_a = For("i", 0, 4, [Load("a", v("i"))])
        loop_b = For("j", 0, 4, [Store("a", v("j"))])
        annotate_tight_loops(kernel_with([loop_a, loop_b]))
        assert loop_a.block_id == 0
        assert loop_b.block_id == 1

    def test_first_block_id_offset(self):
        loop = For("i", 0, 4, [Load("a", v("i"))])
        annotate_tight_loops(kernel_with([loop]), first_block_id=100)
        assert loop.block_id == 100

    def test_idempotent(self):
        loop_a = For("i", 0, 4, [Load("a", v("i"))])
        loop_b = For("j", 0, 4, [Store("a", v("j"))])
        kernel = kernel_with([loop_a, loop_b])
        annotate_tight_loops(kernel)
        annotate_tight_loops(kernel)
        assert (loop_a.block_id, loop_b.block_id) == (0, 1)

    def test_clear_annotations(self):
        loop = For("i", 0, 4, [Load("a", v("i"))])
        kernel = kernel_with([loop])
        annotate_tight_loops(kernel)
        clear_annotations(kernel)
        assert loop.block_id is None

    def test_report_counts_static_ops(self):
        loop = For("i", 0, 4, [Load("a", v("i")), Store("a", v("i"))])
        report = annotate_tight_loops(kernel_with([loop]))
        assert report.annotated[0].static_memory_ops == 2
