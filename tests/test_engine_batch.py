"""Equivalence and wiring tests for the batch simulation engine.

``BatchSimulationEngine`` advances many prefetcher/config lanes over one
shared columnar trace.  Its contract is bit-identity: every lane must
produce the same ``SimResult`` *and* the same hierarchy stats as a
standalone fast-path run, because batch results flow into the same
content-addressed result cache as per-cell results.  Everything here
pins that contract, plus the engine-tier selection that decides when a
grid run batches at all.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.check.diff import config_with_line_size, diff_batch
from repro.common.errors import ConfigError
from repro.exec import ExecOptions
from repro.exec.scheduler import ENGINE_TIERS, execute_grid, _should_batch
from repro.harness.registry import (
    EXTENDED_PREFETCHER_ORDER,
    PREFETCHER_FACTORIES,
    make_prefetcher,
)
from repro.sim.batch import (
    BatchLane,
    BatchSimulationEngine,
    iter_batches,
    lanes_for,
    simulate_batch,
)
from repro.sim.config import REDUCED_CONFIG
from repro.sim.engine import SimulationEngine
from repro.workloads.base import build_trace, get_workload

from test_exec import tiny_plan


def _trace(name: str = "462.libquantum-ref", budget: int = 6000):
    return build_trace(get_workload(name), max_accesses=budget, seed=0)


def _fast(name: str, trace, config=REDUCED_CONFIG):
    return SimulationEngine(config, make_prefetcher(name)).run(trace)


class TestBatchEquivalence:
    """Batch lanes must be bit-identical to standalone fast-path runs."""

    @pytest.mark.parametrize("line_size", [64, 128])
    @pytest.mark.parametrize("name", sorted(PREFETCHER_FACTORIES))
    def test_bit_identical_per_prefetcher(self, name, line_size):
        # Every registered prefetcher, both line geometries, checked
        # through the differential harness (results + hierarchy stats).
        divergence = diff_batch(
            [name], _trace(), config=config_with_line_size(line_size)
        )
        assert divergence is None, str(divergence)

    def test_full_lane_set_in_one_batch(self):
        # All twelve prefetchers advanced together over one shared trace.
        divergence = diff_batch(list(EXTENDED_PREFETCHER_ORDER), _trace())
        assert divergence is None, str(divergence)

    def test_single_cell_batch(self):
        # A one-lane batch is legal and identical to the fast path.
        trace = _trace("stencil-default")
        lanes = [BatchLane("cbws", REDUCED_CONFIG)]
        (result,) = simulate_batch(lanes, trace)
        assert result.to_dict() == _fast("cbws", trace).to_dict()

    def test_mixed_config_lanes(self):
        # Lanes with different cache geometries in the same batch: each
        # lane must honour its own config, not a shared one.
        names = ["cbws", "stride", "no-prefetch", "cbws", "stride",
                 "no-prefetch"]
        configs = [config_with_line_size(64)] * 3 + \
                  [config_with_line_size(128)] * 3
        divergence = diff_batch(names, _trace(), configs=configs)
        assert divergence is None, str(divergence)

    def test_mshr_exhaustion_in_one_lane_only(self):
        # One lane gets a single L1 MSHR so it saturates constantly;
        # its neighbours keep the stock config.  Exhaustion stalls must
        # stay confined to the starved lane.
        base = config_with_line_size(64)
        starved = dataclasses.replace(
            base,
            hierarchy=dataclasses.replace(
                base.hierarchy,
                l1=dataclasses.replace(base.hierarchy.l1, mshrs=1),
            ),
        )
        names = ["cbws+sms", "cbws+sms", "stride"]
        configs = [starved, base, base]
        trace = _trace("429.mcf-ref")
        divergence = diff_batch(names, trace, configs=configs)
        assert divergence is None, str(divergence)
        # Sanity: the starved config actually changes behaviour, so the
        # test above exercised genuinely different lane dynamics.
        slow = _fast("cbws+sms", trace, config=starved)
        stock = _fast("cbws+sms", trace, config=base)
        assert slow.to_dict() != stock.to_dict()

    def test_empty_trace(self):
        trace = _trace(budget=1)
        lanes = lanes_for(["no-prefetch", "cbws"], REDUCED_CONFIG)
        results = simulate_batch(lanes, trace)
        for result, lane in zip(results, lanes):
            fast = _fast(lane.prefetcher, trace)
            assert result.to_dict() == fast.to_dict()


class TestBatchEngineApi:
    def test_empty_lanes_rejected(self):
        with pytest.raises(ConfigError):
            BatchSimulationEngine([])

    def test_bad_chunk_rejected(self):
        lanes = lanes_for(["stride"], REDUCED_CONFIG)
        with pytest.raises(ConfigError):
            BatchSimulationEngine(lanes, chunk_events=0)

    def test_iter_batches(self):
        assert list(iter_batches([1, 2, 3, 4, 5], 2)) == [[1, 2], [3, 4],
                                                          [5]]
        assert list(iter_batches([], 4)) == []

    def test_hierarchies_exposed_per_lane(self):
        trace = _trace("stencil-default", budget=2000)
        engine = BatchSimulationEngine(
            lanes_for(["no-prefetch", "cbws"], REDUCED_CONFIG))
        engine.run(trace)
        assert len(engine.hierarchies) == 2
        solo = SimulationEngine(REDUCED_CONFIG,
                                make_prefetcher("cbws"))
        solo.run(trace)
        assert vars(engine.hierarchies[1].stats) == vars(
            solo.hierarchy.stats)


class TestTierSelection:
    """`execute_grid` picks the batch tier only when asked (or when
    enough inject-free cells share a trace under ``auto``)."""

    def test_engine_tiers_constant(self):
        assert ENGINE_TIERS == ("auto", "fast", "reference", "batch")

    def test_should_batch_thresholds(self):
        assert not _should_batch(ExecOptions(engine="auto"), eligible=7)
        assert _should_batch(ExecOptions(engine="auto"), eligible=8)
        assert _should_batch(
            ExecOptions(engine="auto", batch_threshold=2), eligible=2)
        assert _should_batch(ExecOptions(engine="batch"), eligible=1)
        assert not _should_batch(ExecOptions(engine="fast"), eligible=50)
        assert not _should_batch(ExecOptions(engine="reference"),
                                 eligible=50)

    def test_forced_batch_matches_fast(self, fresh_trace_cache, tmp_path):
        plan = tiny_plan()
        fast, _ = execute_grid(
            plan, options=ExecOptions(jobs=1, engine="fast"),
            trace_dir=tmp_path / "f")
        batch, telemetry = execute_grid(
            plan, options=ExecOptions(jobs=1, engine="batch"),
            trace_dir=tmp_path / "b")
        assert telemetry.batched_cells == len(batch)
        assert fast.keys() == batch.keys()
        for cell, result in fast.items():
            assert batch[cell].to_dict() == result.to_dict()

    def test_auto_below_threshold_stays_per_cell(self, fresh_trace_cache,
                                                 tmp_path):
        _, telemetry = execute_grid(
            tiny_plan(), options=ExecOptions(jobs=1, engine="auto"),
            trace_dir=tmp_path)
        assert telemetry.batched_cells == 0

    def test_auto_batches_at_threshold(self, fresh_trace_cache, tmp_path):
        _, telemetry = execute_grid(
            tiny_plan(),
            options=ExecOptions(jobs=1, engine="auto", batch_threshold=2),
            trace_dir=tmp_path)
        assert telemetry.batched_cells == 2

    def test_pool_batch_matches_serial_batch(self, fresh_trace_cache,
                                             tmp_path):
        plan = tiny_plan(workloads=("nw", "stencil-default"))
        serial, _ = execute_grid(
            plan, options=ExecOptions(jobs=1, engine="batch"),
            trace_dir=tmp_path / "s")
        pooled, telemetry = execute_grid(
            plan, options=ExecOptions(jobs=2, engine="batch"),
            trace_dir=tmp_path / "p")
        assert telemetry.batched_cells == len(pooled)
        assert serial.keys() == pooled.keys()
        for cell, result in serial.items():
            assert pooled[cell].to_dict() == result.to_dict()
