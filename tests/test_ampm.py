"""Tests for the AMPM extension prefetcher."""

import pytest

from repro.common.errors import ConfigError
from repro.prefetchers.ampm import AmpmConfig, AmpmPrefetcher
from repro.prefetchers.base import DemandInfo


def access(line):
    return DemandInfo(
        pc=0x400000, line=line, address=line * 64,
        is_write=False, l1_hit=False, l2_hit=False,
    )


class TestConfig:
    def test_defaults(self):
        config = AmpmConfig()
        assert config.zone_lines == 64
        assert config.storage_bits_total == 52 * (36 + 128)

    def test_invalid_rejected(self):
        with pytest.raises(ConfigError):
            AmpmConfig(zone_lines=60)
        with pytest.raises(ConfigError):
            AmpmConfig(map_entries=0)
        with pytest.raises(ConfigError):
            AmpmConfig(degree=0)


class TestPatternMatching:
    def test_unit_stride_detected_on_third_access(self):
        prefetcher = AmpmPrefetcher()
        assert prefetcher.on_access(access(100)) == []
        assert prefetcher.on_access(access(101)) == []
        assert prefetcher.on_access(access(102)) == [103, 104, 105, 106]

    def test_larger_strides_detected(self):
        prefetcher = AmpmPrefetcher(AmpmConfig(degree=1))
        for line in (0, 5, 10):
            candidates = prefetcher.on_access(access(line))
        assert candidates == [15]

    def test_negative_stride_detected(self):
        prefetcher = AmpmPrefetcher(AmpmConfig(degree=1))
        for line in (200, 197, 194):
            candidates = prefetcher.on_access(access(line))
        assert candidates == [191]

    def test_strides_beyond_max_ignored(self):
        prefetcher = AmpmPrefetcher(AmpmConfig(max_stride=4))
        for line in (0, 10, 20):
            candidates = prefetcher.on_access(access(line))
        assert candidates == []

    def test_random_pattern_is_silent(self):
        prefetcher = AmpmPrefetcher()
        for line in (3, 47, 12, 59, 31):
            assert prefetcher.on_access(access(line)) == []

    def test_matching_crosses_zone_boundaries(self):
        """A stream crossing from zone 0 into zone 1 keeps matching: the
        map lookups walk into the neighbouring zone."""
        prefetcher = AmpmPrefetcher(AmpmConfig(degree=1))
        candidates = []
        for line in (62, 63, 64, 65):
            candidates = prefetcher.on_access(access(line))
        assert candidates == [66]

    def test_covered_lines_not_reissued(self):
        prefetcher = AmpmPrefetcher()
        prefetcher.on_access(access(100))
        prefetcher.on_access(access(101))
        first = prefetcher.on_access(access(102))
        second = prefetcher.on_access(access(103))
        assert 104 in first
        assert 104 not in second  # already marked prefetched


class TestMapTable:
    def test_lru_eviction_of_zones(self):
        prefetcher = AmpmPrefetcher(AmpmConfig(map_entries=2))
        prefetcher.on_access(access(0))        # zone 0
        prefetcher.on_access(access(64))       # zone 1
        prefetcher.on_access(access(128))      # zone 2 evicts zone 0
        assert prefetcher.accessed_bitmap(0) == 0
        assert prefetcher.accessed_bitmap(1) != 0

    def test_bitmap_records_offsets(self):
        prefetcher = AmpmPrefetcher()
        prefetcher.on_access(access(7))
        prefetcher.on_access(access(9))
        assert prefetcher.accessed_bitmap(0) == (1 << 7) | (1 << 9)

    def test_reset(self):
        prefetcher = AmpmPrefetcher()
        prefetcher.on_access(access(5))
        prefetcher.reset()
        assert prefetcher.accessed_bitmap(0) == 0


class TestIntegration:
    def test_registered_in_registry(self):
        from repro.harness.registry import (
            EXTENDED_PREFETCHER_ORDER,
            make_prefetcher,
        )

        assert "ampm" in EXTENDED_PREFETCHER_ORDER
        assert make_prefetcher("ampm").name == "ampm"

    def test_helps_streaming_workload(self, tiny_runner):
        baseline = tiny_runner.run_one("462.libquantum-ref", "no-prefetch")
        ampm = tiny_runner.run_one("462.libquantum-ref", "ampm")
        assert ampm.mpki < baseline.mpki * 0.5
