"""Tests for the simulation configuration (Table II)."""

import pytest

from repro.common.errors import ConfigError
from repro.sim.config import (
    PAPER_CONFIG,
    REDUCED_CONFIG,
    CoreConfig,
    PrefetchPathConfig,
)


class TestPaperConfig:
    def test_core_matches_table2(self):
        core = PAPER_CONFIG.core
        assert core.width == 4
        assert core.rob_entries == 128
        assert core.l1_latency == 2
        assert core.l2_latency == 30
        assert core.memory_latency == 300

    def test_caches_match_table2(self):
        hierarchy = PAPER_CONFIG.hierarchy
        assert hierarchy.l1.size_bytes == 32 * 1024
        assert hierarchy.l1.associativity == 4
        assert hierarchy.l1.mshrs == 4
        assert hierarchy.l2.size_bytes == 2 * 1024 * 1024
        assert hierarchy.l2.associativity == 8
        assert hierarchy.l2.mshrs == 32
        assert hierarchy.line_size == 64

    def test_reduced_preserves_structure(self):
        assert REDUCED_CONFIG.core == PAPER_CONFIG.core
        assert (
            REDUCED_CONFIG.hierarchy.l1.associativity
            == PAPER_CONFIG.hierarchy.l1.associativity
        )
        assert REDUCED_CONFIG.hierarchy.l1.size_bytes < (
            PAPER_CONFIG.hierarchy.l1.size_bytes
        )


class TestValidation:
    def test_non_monotone_latencies_rejected(self):
        with pytest.raises(ConfigError):
            CoreConfig(l1_latency=10, l2_latency=5)

    def test_zero_width_rejected(self):
        with pytest.raises(ConfigError):
            CoreConfig(width=0)

    def test_prefetch_path_validation(self):
        with pytest.raises(ConfigError):
            PrefetchPathConfig(queue_capacity=0)
        with pytest.raises(ConfigError):
            PrefetchPathConfig(issue_interval=0)
        with pytest.raises(ConfigError):
            PrefetchPathConfig(max_in_flight=0)

    def test_negative_latencies_rejected(self):
        # Negative-but-monotone latencies must not slip through.
        with pytest.raises(ConfigError, match="at least one cycle"):
            CoreConfig(l1_latency=-5, l2_latency=30, memory_latency=300)
        with pytest.raises(ConfigError, match="at least one cycle"):
            CoreConfig(l1_latency=0)

    def test_cache_geometry_validation(self):
        from repro.memory.cache import CacheConfig

        with pytest.raises(ConfigError, match="positive"):
            CacheConfig(name="L1", size_bytes=0, associativity=4)
        with pytest.raises(ConfigError, match="power of two"):
            CacheConfig(name="L1", size_bytes=4096, associativity=4,
                        line_size=48)
        with pytest.raises(ConfigError, match="at least one cycle"):
            CacheConfig(name="L1", size_bytes=4096, associativity=4,
                        latency=0)
        with pytest.raises(ConfigError, match="MSHR"):
            CacheConfig(name="L1", size_bytes=4096, associativity=4,
                        mshrs=0)
