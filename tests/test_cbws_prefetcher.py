"""Tests for the standalone CBWS prefetcher and the CBWS+SMS hybrid."""

from repro.core.hybrid import CbwsSmsPrefetcher
from repro.core.prefetcher import CbwsPrefetcher
from repro.prefetchers.base import DemandInfo


def access(line, pc=0x400000, l1_hit=False):
    return DemandInfo(
        pc=pc, line=line, address=line * 64,
        is_write=False, l1_hit=l1_hit, l2_hit=l1_hit,
    )


def drive_blocks(prefetcher, blocks, block_id=0):
    """Feed block-bracketed accesses; return the last BLOCK_END output."""
    predictions = []
    for block in blocks:
        prefetcher.on_block_begin(block_id)
        for line in block:
            prefetcher.on_access(access(line))
        predictions = prefetcher.on_block_end(block_id)
    return predictions


def strided_blocks(count, stride=64, width=4):
    return [
        [1000 + stride * n + k * 200 for k in range(width)]
        for n in range(count)
    ]


class TestStandalone:
    def test_accesses_outside_blocks_are_invisible(self):
        prefetcher = CbwsPrefetcher()
        for line in range(100, 140):
            assert prefetcher.on_access(access(line)) == []
        assert prefetcher.predictor.stats.blocks_completed == 0

    def test_accesses_return_no_candidates_inline(self):
        """CBWS only issues at BLOCK_END, never mid-block."""
        prefetcher = CbwsPrefetcher()
        prefetcher.on_block_begin(0)
        assert prefetcher.on_access(access(1)) == []

    def test_predicts_on_steady_blocks(self):
        prefetcher = CbwsPrefetcher()
        predictions = drive_blocks(prefetcher, strided_blocks(10))
        assert predictions
        assert prefetcher.confident

    def test_silent_without_table_hit(self):
        import random

        rng = random.Random(0)
        prefetcher = CbwsPrefetcher()
        blocks = [[rng.randrange(1 << 28) for _ in range(4)]
                  for _ in range(6)]
        predictions = drive_blocks(prefetcher, blocks)
        assert predictions == []
        assert not prefetcher.confident

    def test_tracks_l1_hits_too(self):
        """The compiler hints let CBWS trace *all* L1 accesses inside
        blocks, not just misses (Section II-A)."""
        prefetcher = CbwsPrefetcher()
        prefetcher.on_block_begin(0)
        prefetcher.on_access(access(7, l1_hit=True))
        prefetcher.on_block_end(0)
        assert prefetcher.predictor.last_blocks.get(1) == (7,)

    def test_overflow_reported(self):
        prefetcher = CbwsPrefetcher()
        prefetcher.on_block_begin(0)
        for line in range(100, 130):  # 30 distinct lines > 16
            prefetcher.on_access(access(line))
        prefetcher.on_block_end(0)
        assert not prefetcher.covers_full_working_set

    def test_reset(self):
        prefetcher = CbwsPrefetcher()
        drive_blocks(prefetcher, strided_blocks(8))
        prefetcher.reset()
        assert prefetcher.predictor.stats.blocks_completed == 0

    def test_storage_under_paper_budget(self):
        assert CbwsPrefetcher().storage_bits() < 12_000  # ~1.1 KB


class TestHybrid:
    def test_sms_trains_outside_blocks(self):
        hybrid = CbwsSmsPrefetcher()
        # Train SMS with a full generation outside any block.
        hybrid.on_access(access(64, pc=9))
        hybrid.on_access(access(67, pc=9))
        hybrid.on_l1_eviction(64)
        # The trigger on a new region streams the learned pattern.
        assert hybrid.on_access(access(128, pc=9)) == [131]

    def test_cbws_predictions_take_priority(self):
        hybrid = CbwsSmsPrefetcher()
        predictions = drive_blocks(hybrid, strided_blocks(10))
        assert predictions  # CBWS path fires at BLOCK_END

    def test_owned_lines_filtered_from_sms(self):
        hybrid = CbwsSmsPrefetcher()
        predictions = drive_blocks(hybrid, strided_blocks(10))
        assert predictions
        owned = predictions[0]
        # Teach SMS a pattern whose streamed line collides with `owned`.
        region_base = (owned >> 5) << 5
        trigger = region_base + ((owned + 1) & 31)
        hybrid.on_access(access(trigger, pc=77))
        hybrid.on_access(access(owned, pc=77))
        hybrid.on_l1_eviction(trigger)
        streamed = hybrid.on_access(access(trigger, pc=77))
        assert owned not in streamed

    def test_sms_flows_when_cbws_has_no_claim(self):
        hybrid = CbwsSmsPrefetcher()
        hybrid.on_access(access(64, pc=9))
        hybrid.on_access(access(70, pc=9))
        hybrid.on_l1_eviction(64)
        assert hybrid.on_access(access(256, pc=9)) == [262]

    def test_storage_is_sum_of_parts(self):
        hybrid = CbwsSmsPrefetcher()
        assert hybrid.storage_bits() == (
            hybrid.cbws.storage_bits() + hybrid.sms.storage_bits()
        )

    def test_reset(self):
        hybrid = CbwsSmsPrefetcher()
        drive_blocks(hybrid, strided_blocks(8))
        hybrid.reset()
        assert hybrid.cbws.predictor.stats.blocks_completed == 0
        assert not hybrid._owned  # noqa: SLF001 - internal check
