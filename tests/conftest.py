"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.harness.runner import GridRunner, clear_trace_cache
from repro.ir.nodes import ArrayDecl, Compute, For, Kernel, Load, Store
from repro.ir.builder import c, v
from repro.passes.annotate import annotate_tight_loops
from repro.ir.interp import run_kernel
from repro.trace.stream import Trace


def make_stream_kernel(
    name: str = "stream",
    length: int = 2048,
    element_size: int = 8,
    compute: int = 4,
) -> Kernel:
    """A unit-stride streaming kernel: one load + one store per iteration."""
    i = v("i")
    body = [
        For("i", 0, length, [
            Load("src", i),
            Compute(compute),
            Store("dst", i),
        ]),
    ]
    return Kernel(
        name,
        [ArrayDecl("src", length, element_size),
         ArrayDecl("dst", length, element_size)],
        body,
    )


def make_strided_kernel(
    name: str = "strided",
    iterations: int = 512,
    stride_elements: int = 128,
    element_size: int = 8,
    streams: int = 3,
) -> Kernel:
    """A kernel whose iteration working set is ``streams`` far-apart lines
    advancing by a constant multi-line stride — the CBWS sweet spot."""
    i = v("i")
    loads = [
        Load("data", i * c(stride_elements) + c(k * stride_elements // 8))
        for k in range(streams)
    ]
    body = [For("i", 0, iterations, [*loads, Compute(6)])]
    length = iterations * stride_elements + stride_elements
    return Kernel(name, [ArrayDecl("data", length, element_size)], body)


def annotated_trace(kernel: Kernel, seed: int = 0) -> Trace:
    """Annotate and execute a kernel, returning a validated trace."""
    annotate_tight_loops(kernel)
    trace = run_kernel(kernel, seed=seed)
    trace.validate()
    return trace


@pytest.fixture
def stream_trace() -> Trace:
    """Trace of the unit-stride streaming kernel."""
    return annotated_trace(make_stream_kernel())


@pytest.fixture
def strided_trace() -> Trace:
    """Trace of the constant-multi-line-stride kernel."""
    return annotated_trace(make_strided_kernel())


@pytest.fixture
def tiny_runner() -> GridRunner:
    """A grid runner with very small workload budgets for fast tests."""
    return GridRunner(budget_fraction=0.05)


@pytest.fixture(autouse=False)
def fresh_trace_cache():
    """Isolate tests that depend on trace-cache state."""
    clear_trace_cache()
    yield
    clear_trace_cache()


@pytest.fixture(autouse=True)
def _isolated_cli_cache(tmp_path, monkeypatch):
    """Point the CLI's default cache directory away from the repo.

    Without this, any test invoking ``repro.cli.main`` would create
    ``.repro-cache/`` in the current working directory.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cli-cache"))
