"""Tests over the 30-benchmark workload suite."""

import pytest

from repro.common.errors import WorkloadError
from repro.ir.validate import number_kernel
from repro.passes.annotate import annotate_tight_loops
from repro.passes.loopstats import loop_runtime_stats
from repro.workloads import (
    ALL_WORKLOADS,
    LOW_WORKLOADS,
    MI_WORKLOADS,
    REGISTRY,
    build_trace,
    get_workload,
)


class TestRegistry:
    def test_thirty_benchmarks(self):
        assert len(MI_WORKLOADS) == 15
        assert len(LOW_WORKLOADS) == 15
        assert len(REGISTRY) == 30
        assert set(ALL_WORKLOADS) == set(REGISTRY)

    def test_groups_are_disjoint(self):
        assert not set(MI_WORKLOADS) & set(LOW_WORKLOADS)

    def test_group_labels_consistent(self):
        for name in MI_WORKLOADS:
            assert REGISTRY[name].group == "mi"
        for name in LOW_WORKLOADS:
            assert REGISTRY[name].group == "low"

    def test_table4_members_present(self):
        for name in (
            "429.mcf-ref", "450.soplex-ref", "462.libquantum-ref",
            "433.milc-su3imp", "401.bzip2-source", "mri-q-large",
            "histo-large", "stencil-default", "sgemm-medium", "nw",
            "lbm-long", "lu-ncb-simlarge", "fft-simlarge",
            "radix-simlarge", "streamcluster-simlarge",
        ):
            assert name in MI_WORKLOADS

    def test_unknown_name_raises(self):
        with pytest.raises(WorkloadError, match="unknown workload"):
            get_workload("nonexistent")

    def test_invalid_scale_rejected(self):
        with pytest.raises(WorkloadError):
            get_workload("nw").kernel(scale=0)


@pytest.mark.parametrize("name", ALL_WORKLOADS)
class TestEveryWorkload:
    def test_kernel_builds_and_validates(self, name):
        kernel = get_workload(name).kernel()
        summary = number_kernel(kernel)
        assert summary.static_memory_ops > 0
        assert summary.innermost_loops, f"{name} has no innermost loop"

    def test_annotation_finds_blocks(self, name):
        kernel = get_workload(name).kernel()
        report = annotate_tight_loops(kernel)
        assert report.block_count > 0, f"{name}: nothing annotated"

    def test_trace_is_wellformed_and_loop_dominated(self, name):
        trace = build_trace(get_workload(name), max_accesses=1500)
        trace.validate()
        stats = loop_runtime_stats(trace)
        assert stats.block_instances > 0
        assert stats.loop_fraction > 0.4, (
            f"{name}: loop fraction {stats.loop_fraction:.2f} too low for "
            "a tight-loop benchmark"
        )

    def test_trace_is_deterministic(self, name):
        spec = get_workload(name)
        trace_a = build_trace(spec, max_accesses=500, seed=3)
        trace_b = build_trace(spec, max_accesses=500, seed=3)
        assert [e.icount for e in trace_a.events] == [
            e.icount for e in trace_b.events
        ]
        assert [getattr(e, "address", None) for e in trace_a.events] == [
            getattr(e, "address", None) for e in trace_b.events
        ]


class TestGroupCharacter:
    """The two groups must differ in memory intensity, as in the paper."""

    def test_mi_group_misses_more(self, tiny_runner):
        from repro.harness.runner import GridRunner
        from repro.sim.engine import simulate
        from repro.sim.config import REDUCED_CONFIG
        from repro.prefetchers.none import NoPrefetcher

        def mpki_of(name):
            trace = tiny_runner.trace(name)
            return simulate(REDUCED_CONFIG, NoPrefetcher(), trace).mpki

        mi_sample = ["stencil-default", "462.libquantum-ref", "sgemm-medium"]
        low_sample = ["mxm-linpack", "458.sjeng-ref", "backprop"]
        mi_average = sum(mpki_of(name) for name in mi_sample) / 3
        low_average = sum(mpki_of(name) for name in low_sample) / 3
        assert mi_average > 3 * low_average
