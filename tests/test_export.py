"""Tests for the JSON/CSV result export."""

import csv
import json

import pytest

from repro.harness.export import (
    CSV_COLUMNS,
    grid_to_records,
    load_json,
    result_to_dict,
    write_csv,
    write_json,
)
from repro.metrics.aggregate import ResultGrid
from repro.sim.results import DemandClass, SimResult


def make_result(workload="w", prefetcher="p"):
    result = SimResult(workload=workload, prefetcher=prefetcher)
    result.instructions = 10_000
    result.cycles = 2_500.0
    result.demand_accesses = 3_000
    result.l1_misses = 500
    result.llc_misses = 200
    result.classes[DemandClass.TIMELY] = 150
    result.classes[DemandClass.MISSING] = 200
    result.classes[DemandClass.PLAIN_HIT] = 150
    result.prefetches_issued = 300
    result.useful_prefetches = 200
    result.wrong_prefetches = 40
    result.prefetch_bytes_read = 300 * 64
    return result


class TestResultToDict:
    def test_scalar_fields(self):
        record = result_to_dict(make_result())
        assert record["workload"] == "w"
        assert record["ipc"] == pytest.approx(4.0)
        assert record["mpki"] == pytest.approx(20.0)
        assert record["accuracy"] == pytest.approx(200 / 300)

    def test_fractions_match_breakdown(self):
        record = result_to_dict(make_result())
        assert record["timely_fraction"] == pytest.approx(150 / 500)
        assert record["wrong_fraction"] == pytest.approx(40 / 500)

    def test_json_serializable(self):
        json.dumps(result_to_dict(make_result()))


class TestGridExport:
    @pytest.fixture
    def grid(self):
        return ResultGrid([
            make_result("w1", "sms"),
            make_result("w1", "cbws"),
            make_result("w2", "sms"),
            make_result("w2", "cbws"),
        ])

    def test_records_cover_grid(self, grid):
        records = grid_to_records(grid)
        assert len(records) == 4
        keys = {(r["workload"], r["prefetcher"]) for r in records}
        assert keys == {("w1", "sms"), ("w1", "cbws"),
                        ("w2", "sms"), ("w2", "cbws")}

    def test_json_round_trip(self, grid, tmp_path):
        path = tmp_path / "grid.json"
        write_json(grid, path, budget_fraction=0.5, note="unit test")
        document = load_json(path)
        assert document["metadata"]["budget_fraction"] == 0.5
        assert document["workloads"] == ["w1", "w2"]
        assert len(document["results"]) == 4

    def test_csv_round_trip(self, grid, tmp_path):
        path = tmp_path / "grid.csv"
        write_csv(grid, path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 4
        assert set(rows[0]) == set(CSV_COLUMNS)
        assert float(rows[0]["ipc"]) == pytest.approx(4.0)


class TestRealGridExport:
    def test_export_from_simulation(self, tiny_runner, tmp_path):
        grid = tiny_runner.run_grid(["nw"], ["no-prefetch", "cbws+sms"])
        write_json(grid, tmp_path / "real.json")
        document = load_json(tmp_path / "real.json")
        cells = {r["prefetcher"]: r for r in document["results"]}
        assert cells["cbws+sms"]["ipc"] >= cells["no-prefetch"]["ipc"]
