"""Tests for the trace-driven simulation engine and timing model."""

import pytest

from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import HierarchyConfig
from repro.prefetchers.base import DemandInfo, Prefetcher
from repro.prefetchers.none import NoPrefetcher
from repro.sim.config import CoreConfig, PrefetchPathConfig, SimConfig
from repro.sim.engine import simulate
from repro.sim.results import DemandClass
from repro.trace.events import BlockBegin, BlockEnd, MemoryAccess
from repro.trace.stream import Trace


def tiny_config(**prefetch_kwargs):
    return SimConfig(
        hierarchy=HierarchyConfig(
            l1=CacheConfig(name="L1", size_bytes=512, associativity=2),
            l2=CacheConfig(name="L2", size_bytes=4096, associativity=4),
        ),
        core=CoreConfig(),
        prefetch=PrefetchPathConfig(**prefetch_kwargs)
        if prefetch_kwargs
        else PrefetchPathConfig(),
    )


def mem_trace(lines, gap=10):
    """One access per line, `gap` instructions apart."""
    events = [
        MemoryAccess(gap * (index + 1), 0x400000, line * 64, False)
        for index, line in enumerate(lines)
    ]
    return Trace("crafted", events, gap * (len(lines) + 1))


class _ScriptedPrefetcher(Prefetcher):
    """Issues a fixed list of candidate lines on the first access."""

    name = "scripted"

    def __init__(self, candidates):
        self.candidates = list(candidates)
        self.fired = False

    def on_access(self, info: DemandInfo):
        if not self.fired:
            self.fired = True
            return list(self.candidates)
        return []


class TestBaselineTiming:
    def test_all_hits_runs_at_full_width(self):
        trace = mem_trace([0, 0, 0, 0])
        result = simulate(tiny_config(), NoPrefetcher(), trace)
        # One cold miss; the rest hit L1.  IPC near the 4-wide limit is
        # impossible (300-cycle miss), but cycles must be dominated by
        # the single miss, not by the hits.
        assert result.cycles == pytest.approx(
            trace.instructions / 4 + 300, rel=0.05
        )

    def test_independent_misses_overlap_in_rob_window(self):
        # Four misses 10 instructions apart: all fit one ROB window and
        # 4 L1 MSHRs, so total stall is ~one memory latency.
        trace = mem_trace([0, 10, 20, 30], gap=10)
        result = simulate(tiny_config(), NoPrefetcher(), trace)
        assert result.cycles < 300 + 100

    def test_mshr_limit_serializes_excess_misses(self):
        # Eight misses in one window exceed the 4 L1 MSHRs: at least two
        # memory round-trips.
        trace = mem_trace([line * 10 for line in range(8)], gap=10)
        result = simulate(tiny_config(), NoPrefetcher(), trace)
        assert result.cycles > 2 * 300

    def test_distant_misses_serialize(self):
        # Two misses 1000 instructions apart cannot overlap (ROB = 128);
        # each hides at most ROB/width = 32 cycles of progress.
        trace = mem_trace([0, 100], gap=1000)
        result = simulate(tiny_config(), NoPrefetcher(), trace)
        hidden = 128 / 4
        assert result.cycles == pytest.approx(
            trace.instructions / 4 + 2 * (300 - hidden), rel=0.05
        )

    def test_ipc_and_mpki_consistency(self):
        trace = mem_trace(range(0, 64, 2))
        result = simulate(tiny_config(), NoPrefetcher(), trace)
        assert result.ipc == pytest.approx(
            result.instructions / result.cycles
        )
        assert result.mpki == pytest.approx(
            1000 * result.llc_misses / result.instructions
        )


class TestClassification:
    def test_no_prefetch_is_all_missing(self):
        trace = mem_trace(range(0, 40, 2))
        result = simulate(tiny_config(), NoPrefetcher(), trace)
        assert result.classes[DemandClass.MISSING] == result.l1_misses
        assert result.classes[DemandClass.TIMELY] == 0

    def test_timely_prefetch(self):
        # Prefetch for line 99 issued on the first access; the demand
        # arrives thousands of cycles later (big icount gap) -> timely.
        events = [
            MemoryAccess(10, 0x400000, 0, False),
            MemoryAccess(10_000, 0x400000, 99 * 64, False),
        ]
        trace = Trace("t", events, 10_100)
        result = simulate(tiny_config(), _ScriptedPrefetcher([99]), trace)
        assert result.classes[DemandClass.TIMELY] == 1
        assert result.prefetches_issued == 1
        assert result.useful_prefetches == 1
        assert result.wrong_prefetches == 0

    def test_shorter_waiting_time(self):
        # The demand follows the prefetch too closely to complete.
        events = [
            MemoryAccess(10, 0x400000, 0, False),
            MemoryAccess(20, 0x400000, 99 * 64, False),
        ]
        trace = Trace("t", events, 100)
        result = simulate(tiny_config(), _ScriptedPrefetcher([99]), trace)
        assert result.classes[DemandClass.SHORTER_WAITING] == 1
        assert result.useful_prefetches == 1

    def test_non_timely_when_queue_starved(self):
        # Issue bandwidth of one per 10_000 cycles: the second candidate
        # is still queued when its demand arrives.
        events = [
            MemoryAccess(10, 0x400000, 0, False),
            MemoryAccess(5000, 0x400000, 98 * 64, False),
            MemoryAccess(5010, 0x400000, 99 * 64, False),
        ]
        trace = Trace("t", events, 5100)
        config = tiny_config(issue_interval=10_000, queue_capacity=8,
                             max_in_flight=4)
        result = simulate(config, _ScriptedPrefetcher([98, 99]), trace)
        assert result.classes[DemandClass.NON_TIMELY] >= 1

    def test_wrong_prefetch_counted_at_end(self):
        events = [MemoryAccess(10, 0x400000, 0, False),
                  MemoryAccess(10_000, 0x400000, 64, False)]
        trace = Trace("t", events, 10_100)
        result = simulate(tiny_config(), _ScriptedPrefetcher([500]), trace)
        assert result.wrong_prefetches == 1
        assert result.useful_prefetches == 0

    def test_classes_partition_l1_misses(self):
        trace = mem_trace(range(0, 120, 3))
        result = simulate(tiny_config(), _ScriptedPrefetcher(range(0, 60)),
                          trace)
        partitioned = sum(
            result.classes[cls]
            for cls in (
                DemandClass.TIMELY,
                DemandClass.SHORTER_WAITING,
                DemandClass.NON_TIMELY,
                DemandClass.MISSING,
                DemandClass.PLAIN_HIT,
            )
        )
        assert partitioned == result.l1_misses


class TestPrefetchPath:
    def test_redundant_candidates_not_issued(self):
        events = [
            MemoryAccess(10, 0x400000, 0, False),     # line 0 now in L2
            MemoryAccess(2000, 0x400000, 64, False),
        ]
        trace = Trace("t", events, 2100)
        result = simulate(tiny_config(), _ScriptedPrefetcher([0, 0, 7]), trace)
        assert result.prefetches_issued == 1  # only line 7

    def test_queue_capacity_drops_excess(self):
        events = [MemoryAccess(10, 0x400000, 0, False)]
        trace = Trace("t", events, 100)
        config = tiny_config(queue_capacity=4, issue_interval=10_000,
                             max_in_flight=4)
        result = simulate(config, _ScriptedPrefetcher(range(100, 200)), trace)
        # At most `queue_capacity` candidates could ever be issued.
        assert result.prefetches_issued <= 4

    def test_prefetch_bytes_accounted(self):
        events = [MemoryAccess(10, 0x400000, 0, False),
                  MemoryAccess(5000, 0x400000, 64, False)]
        trace = Trace("t", events, 5100)
        result = simulate(tiny_config(), _ScriptedPrefetcher([9, 10]), trace)
        assert result.prefetch_bytes_read == 2 * 64

    def test_block_markers_drive_prefetcher_callbacks(self):
        calls = []

        class Recorder(Prefetcher):
            name = "recorder"

            def on_block_begin(self, block_id):
                calls.append(("begin", block_id))

            def on_block_end(self, block_id):
                calls.append(("end", block_id))
                return []

        events = [BlockBegin(5, 3), MemoryAccess(6, 0, 0, False),
                  BlockEnd(7, 3)]
        simulate(tiny_config(), Recorder(), Trace("t", events, 10))
        assert calls == [("begin", 3), ("end", 3)]

    def test_l1_evictions_reported_to_prefetcher(self):
        evictions = []

        class Recorder(Prefetcher):
            name = "recorder"

            def on_l1_eviction(self, line):
                evictions.append(line)

        # L1 has 8 lines (512 B, 2-way, 4 sets); touch 24 lines.
        trace = mem_trace(range(24))
        simulate(tiny_config(), Recorder(), trace)
        assert evictions, "L1 capacity evictions must be reported"


class TestResultMetadata:
    def test_result_identifies_run(self):
        trace = mem_trace([0, 1])
        result = simulate(tiny_config(), NoPrefetcher(), trace)
        assert result.workload == "crafted"
        assert result.prefetcher == "no-prefetch"
        assert result.demand_accesses == 2
        assert result.storage_bits == 0
