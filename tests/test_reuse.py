"""Tests for the reuse-distance (LRU stack distance) analysis."""

import pytest

from repro.analysis.reuse import COLD, reuse_profile
from repro.harness.runner import GridRunner
from repro.trace.events import MemoryAccess
from repro.trace.stream import Trace


def trace_of(lines):
    events = [
        MemoryAccess(i + 1, 0, line * 64, False)
        for i, line in enumerate(lines)
    ]
    return Trace("t", events, len(lines) + 1)


class TestStackDistance:
    def test_first_touches_are_cold(self):
        profile = reuse_profile(trace_of([1, 2, 3]))
        assert profile.histogram == {COLD: 3}
        assert profile.cold_fraction == 1.0

    def test_immediate_reuse_is_distance_zero(self):
        profile = reuse_profile(trace_of([7, 7, 7]))
        assert profile.histogram == {COLD: 1, 0: 2}

    def test_classic_example(self):
        # a b c a : the second 'a' has seen 2 distinct lines since.
        profile = reuse_profile(trace_of([1, 2, 3, 1]))
        assert profile.histogram[2] == 1

    def test_reorder_after_reuse(self):
        # a b a b : both reuses at distance 1.
        profile = reuse_profile(trace_of([1, 2, 1, 2]))
        assert profile.histogram == {COLD: 2, 1: 2}

    def test_lru_cache_hit_prediction(self):
        """hit_ratio_at(C) equals a simulated fully-associative LRU."""
        import random

        rng = random.Random(9)
        lines = [rng.randrange(12) for _ in range(400)]
        profile = reuse_profile(trace_of(lines))
        for capacity in (1, 2, 4, 8, 16):
            # Reference fully-associative LRU.
            cache: list[int] = []
            hits = 0
            for line in lines:
                if line in cache:
                    hits += 1
                    cache.remove(line)
                elif len(cache) >= capacity:
                    cache.pop(0)
                cache.append(line)
            assert profile.hit_ratio_at(capacity) == pytest.approx(
                hits / len(lines)
            ), f"capacity {capacity}"

    def test_working_set_lines(self):
        # A loop over 8 lines: every reuse at distance 7.
        lines = list(range(8)) * 10
        profile = reuse_profile(trace_of(lines))
        assert profile.working_set_lines() == 8

    def test_empty_trace(self):
        profile = reuse_profile(Trace("t", [], 0))
        assert profile.accesses == 0
        assert profile.hit_ratio_at(100) == 0.0
        assert profile.working_set_lines() == 0


class TestWorkloadFootprints:
    """The reduced-scale premise: MI workloads overflow the reduced L2,
    low-MPKI workloads largely fit it."""

    @pytest.fixture(scope="class")
    def runner(self):
        return GridRunner(budget_fraction=0.08)

    L1_LINES = 4 * 1024 // 64
    L2_LINES = 128 * 1024 // 64

    def test_streaming_workload_gains_nothing_from_l2(self, runner):
        """libquantum's only reuse is spatial (within a line, distance
        ~0); the L2's extra capacity buys essentially nothing."""
        profile = reuse_profile(runner.trace("462.libquantum-ref"))
        gain = profile.hit_ratio_at(self.L2_LINES) - profile.hit_ratio_at(
            self.L1_LINES
        )
        assert gain < 0.05

    def test_resident_workload_exploits_l2(self):
        """mxm's matrices exceed the L1 but fit the L2: the capacity
        between them captures real reuse.  Needs a couple of full outer
        iterations, hence its own larger budget."""
        profile = reuse_profile(
            GridRunner(budget_fraction=0.4).trace("mxm-linpack")
        )
        gain = profile.hit_ratio_at(self.L2_LINES) - profile.hit_ratio_at(
            self.L1_LINES
        )
        assert gain > 0.03  # B-matrix re-walks land between L1 and L2
        assert profile.hit_ratio_at(self.L2_LINES) > 0.95
