"""Tests for the synthetic address space allocator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.constants import DEFAULT_LINE_SIZE
from repro.common.errors import WorkloadError
from repro.trace.synth import AddressSpace


class TestAllocation:
    def test_line_alignment(self):
        space = AddressSpace()
        alloc = space.allocate("a", 100, 8)
        assert alloc.base % DEFAULT_LINE_SIZE == 0

    def test_null_page_never_allocated(self):
        space = AddressSpace()
        assert space.allocate("a", 1, 1).base >= 4096

    def test_duplicate_name_rejected(self):
        space = AddressSpace()
        space.allocate("a", 10)
        with pytest.raises(WorkloadError, match="twice"):
            space.allocate("a", 10)

    @pytest.mark.parametrize("length,size", [(0, 8), (-1, 8), (10, 0)])
    def test_invalid_geometry_rejected(self, length, size):
        with pytest.raises(WorkloadError):
            AddressSpace().allocate("a", length, size)

    def test_lookup(self):
        space = AddressSpace()
        alloc = space.allocate("a", 10)
        assert space.lookup("a") is alloc
        with pytest.raises(WorkloadError, match="unknown"):
            space.lookup("nope")

    def test_address_of_bounds(self):
        alloc = AddressSpace().allocate("a", 4, 8)
        assert alloc.address_of(0) == alloc.base
        assert alloc.address_of(3) == alloc.base + 24
        with pytest.raises(WorkloadError):
            alloc.address_of(4)
        with pytest.raises(WorkloadError):
            alloc.address_of(-1)


class TestSeparationProperty:
    @settings(max_examples=30)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=500),
                st.sampled_from([1, 2, 4, 8, 16]),
            ),
            min_size=1,
            max_size=10,
        )
    )
    def test_allocations_never_share_lines(self, shapes):
        space = AddressSpace()
        allocations = [
            space.allocate(f"arr{i}", length, size)
            for i, (length, size) in enumerate(shapes)
        ]
        line_owner: dict[int, str] = {}
        for alloc in allocations:
            first = alloc.base // DEFAULT_LINE_SIZE
            last = (alloc.base + alloc.size_bytes - 1) // DEFAULT_LINE_SIZE
            for line in range(first, last + 1):
                assert line not in line_owner, (
                    f"line {line} shared by {line_owner[line]} and {alloc.name}"
                )
                line_owner[line] = alloc.name
