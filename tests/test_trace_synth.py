"""Tests for the synthetic address space allocator and loop synthesis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.constants import DEFAULT_LINE_SIZE
from repro.common.errors import ConfigError, WorkloadError
from repro.trace.events import BLOCK_BEGIN, BLOCK_END, MEMORY_ACCESS
from repro.trace.synth import AddressSpace, LoopSpec, synthesize_loop_trace


class TestAllocation:
    def test_line_alignment(self):
        space = AddressSpace()
        alloc = space.allocate("a", 100, 8)
        assert alloc.base % DEFAULT_LINE_SIZE == 0

    def test_null_page_never_allocated(self):
        space = AddressSpace()
        assert space.allocate("a", 1, 1).base >= 4096

    def test_duplicate_name_rejected(self):
        space = AddressSpace()
        space.allocate("a", 10)
        with pytest.raises(WorkloadError, match="twice"):
            space.allocate("a", 10)

    @pytest.mark.parametrize("length,size", [(0, 8), (-1, 8), (10, 0)])
    def test_invalid_geometry_rejected(self, length, size):
        with pytest.raises(WorkloadError):
            AddressSpace().allocate("a", length, size)

    def test_lookup(self):
        space = AddressSpace()
        alloc = space.allocate("a", 10)
        assert space.lookup("a") is alloc
        with pytest.raises(WorkloadError, match="unknown"):
            space.lookup("nope")

    def test_address_of_bounds(self):
        alloc = AddressSpace().allocate("a", 4, 8)
        assert alloc.address_of(0) == alloc.base
        assert alloc.address_of(3) == alloc.base + 24
        with pytest.raises(WorkloadError):
            alloc.address_of(4)
        with pytest.raises(WorkloadError):
            alloc.address_of(-1)


class TestSeparationProperty:
    @settings(max_examples=30)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=500),
                st.sampled_from([1, 2, 4, 8, 16]),
            ),
            min_size=1,
            max_size=10,
        )
    )
    def test_allocations_never_share_lines(self, shapes):
        space = AddressSpace()
        allocations = [
            space.allocate(f"arr{i}", length, size)
            for i, (length, size) in enumerate(shapes)
        ]
        line_owner: dict[int, str] = {}
        for alloc in allocations:
            first = alloc.base // DEFAULT_LINE_SIZE
            last = (alloc.base + alloc.size_bytes - 1) // DEFAULT_LINE_SIZE
            for line in range(first, last + 1):
                assert line not in line_owner, (
                    f"line {line} shared by {line_owner[line]} and {alloc.name}"
                )
                line_owner[line] = alloc.name


class TestLoopSpec:
    def test_zero_iterations_rejected(self):
        with pytest.raises(ConfigError, match="zero-length loop"):
            LoopSpec(block_id=1, base=0x1000, stride=64,
                     accesses=4, iterations=0)

    def test_negative_iterations_rejected(self):
        with pytest.raises(ConfigError, match="zero-length loop"):
            LoopSpec(block_id=1, base=0x1000, stride=64,
                     accesses=4, iterations=-3)

    def test_zero_accesses_rejected(self):
        with pytest.raises(ConfigError, match="zero-length loop body"):
            LoopSpec(block_id=1, base=0x1000, stride=64,
                     accesses=0, iterations=4)

    def test_backwards_walk_may_not_underflow(self):
        with pytest.raises(ConfigError):
            LoopSpec(block_id=1, base=64, stride=-64,
                     accesses=4, iterations=4)

    def test_valid_spec_accepted(self):
        spec = LoopSpec(block_id=1, base=0x1000, stride=64,
                        accesses=4, iterations=4)
        assert spec.iterations == 4


class TestSynthesizeLoopTrace:
    def test_empty_specs_rejected(self):
        with pytest.raises(ConfigError):
            synthesize_loop_trace([])

    def test_shape_and_validity(self):
        trace = synthesize_loop_trace(
            [LoopSpec(block_id=3, base=0x2000, stride=64,
                      accesses=5, iterations=7)],
            name="shape",
        )
        trace.validate()  # markers balanced, icounts strictly monotone
        kinds = [event.kind for event in trace.events]
        assert kinds.count(BLOCK_BEGIN) == 7
        assert kinds.count(BLOCK_END) == 7
        assert kinds.count(MEMORY_ACCESS) == 35

    def test_walk_continues_across_iterations(self):
        trace = synthesize_loop_trace(
            [LoopSpec(block_id=1, base=0, stride=64,
                      accesses=2, iterations=3)],
        )
        addresses = [
            event.address for event in trace.events
            if event.kind == MEMORY_ACCESS
        ]
        assert addresses == [0, 64, 128, 192, 256, 320]

    def test_write_every_marks_stores(self):
        trace = synthesize_loop_trace(
            [LoopSpec(block_id=1, base=0x1000, stride=64,
                      accesses=3, iterations=2, write_every=3)],
        )
        writes = [
            event.is_write for event in trace.events
            if event.kind == MEMORY_ACCESS
        ]
        assert writes == [False, False, True, False, False, True]
