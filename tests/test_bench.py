"""Tests for the ``repro bench`` schema and regression checking."""

from __future__ import annotations

import copy

from repro.harness.bench import (
    BENCH_SCHEMA,
    BENCH_SCHEMA_VERSION,
    QUICK_WORKLOADS,
    bench_grid as _bench_grid,
    check_bench,
    embed_baseline,
    load_bench,
    render_bench,
    result_digest,
    write_bench,
)
from repro.harness.registry import PAPER_PREFETCHER_ORDER
from repro.sim.results import SimResult
from repro.workloads import ALL_WORKLOADS


def _document(events_per_second: float = 100_000.0) -> dict:
    grid = _bench_grid(quick=True)
    return {
        "schema": BENCH_SCHEMA,
        "schema_version": BENCH_SCHEMA_VERSION,
        "grid": grid.to_dict(),
        "config": "reduced",
        "totals": {
            "cells": 2,
            "events": 1000,
            "sim_seconds": 1000 / events_per_second,
            "events_per_second": events_per_second,
            "wall_seconds": 1.0,
        },
        "trace_build": {"seconds": 0.1, "events": 500},
        "cells": [
            {
                "workload": "stencil-default",
                "prefetcher": "cbws",
                "events": 500,
                "wall_seconds": 0.005,
                "events_per_second": events_per_second,
                "result_digest": "aaaa000011112222",
            },
            {
                "workload": "429.mcf-ref",
                "prefetcher": "sms",
                "events": 500,
                "wall_seconds": 0.005,
                "events_per_second": events_per_second,
                "result_digest": "bbbb000011112222",
            },
        ],
    }


class TestBenchGrid:
    def test_full_grid_is_fig14(self):
        grid = _bench_grid(quick=False)
        assert grid.mode == "full"
        assert grid.workloads == tuple(ALL_WORKLOADS)
        assert grid.prefetchers == tuple(PAPER_PREFETCHER_ORDER)

    def test_quick_grid_is_pinned_subset(self):
        grid = _bench_grid(quick=True)
        assert grid.mode == "quick"
        assert grid.workloads == QUICK_WORKLOADS
        assert set(grid.workloads) <= set(ALL_WORKLOADS)


class TestResultDigest:
    def test_digest_is_deterministic_and_content_sensitive(self):
        first = SimResult(workload="w", prefetcher="p", instructions=100)
        same = SimResult(workload="w", prefetcher="p", instructions=100)
        other = SimResult(workload="w", prefetcher="p", instructions=101)
        assert result_digest(first) == result_digest(same)
        assert result_digest(first) != result_digest(other)
        assert len(result_digest(first)) == 16


class TestCheckBench:
    def test_identical_run_passes(self):
        document = _document()
        assert check_bench(document, copy.deepcopy(document)) == []

    def test_throughput_regression_fails(self):
        baseline = _document(events_per_second=100_000.0)
        slow = _document(events_per_second=60_000.0)
        problems = check_bench(slow, baseline, tolerance=0.30)
        assert any("throughput regression" in p for p in problems)

    def test_within_tolerance_passes(self):
        baseline = _document(events_per_second=100_000.0)
        slightly_slow = _document(events_per_second=80_000.0)
        assert check_bench(slightly_slow, baseline, tolerance=0.30) == []

    def test_digest_drift_is_a_failure(self):
        baseline = _document()
        drifted = _document()
        drifted["cells"][0]["result_digest"] = "ffff000011112222"
        problems = check_bench(drifted, baseline)
        assert any("result drift" in p for p in problems)

    def test_mismatched_grid_skips_digests_with_note(self):
        baseline = _document()
        baseline["grid"]["budget_fraction"] = 0.5
        problems = check_bench(_document(), baseline)
        assert problems == ["note: grids differ; result digests not compared"]

    def test_schema_version_mismatch_fails(self):
        baseline = _document()
        baseline["schema_version"] = BENCH_SCHEMA_VERSION + 1
        problems = check_bench(_document(), baseline)
        assert any("schema_version" in p for p in problems)


class TestBaselineAndIo:
    def test_embed_baseline_records_speedup(self):
        baseline = _document(events_per_second=100_000.0)
        document = _document(events_per_second=250_000.0)
        embed_baseline(document, baseline, "some/path.json")
        assert document["baseline"]["path"] == "some/path.json"
        assert abs(document["baseline"]["speedup"] - 2.5) < 1e-9

    def test_write_load_round_trip(self, tmp_path):
        document = _document()
        path = tmp_path / "bench.json"
        write_bench(document, path)
        assert load_bench(path) == document

    def test_render_mentions_totals_and_speedup(self):
        document = _document(events_per_second=250_000.0)
        embed_baseline(document, _document(events_per_second=100_000.0))
        rendered = render_bench(document)
        assert "events/sec" in rendered
        assert "2.50x" in rendered


class TestCommittedArtifacts:
    """The repo ships the PR's before/after numbers and the CI baseline."""

    def test_committed_bench_document_is_valid(self):
        document = load_bench("BENCH_sim_hotpath.json")
        assert document["schema"] == BENCH_SCHEMA
        assert document["schema_version"] == BENCH_SCHEMA_VERSION
        baseline = document["baseline"]
        # The PR's acceptance bar: >= 2x events/sec on the fig14 grid.
        assert baseline["speedup"] >= 2.0
        assert document["grid"]["mode"] == "full"

    def test_committed_quick_baseline_matches_quick_grid(self):
        document = load_bench("benchmarks/baselines/BENCH_quick_baseline.json")
        assert document["schema"] == BENCH_SCHEMA
        assert document["grid"] == _bench_grid(quick=True).to_dict()
