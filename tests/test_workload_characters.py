"""Per-benchmark character tests.

Each memory-intensive kernel was designed to reproduce the structural
property that drives its benchmark's result in the paper.  These tests
pin those properties directly on the traces, so a kernel edit that
silently loses its mechanism fails here rather than shifting a figure.
"""

import pytest

from repro.analysis.differentials import (
    differential_distribution,
    extract_cbws_sequences,
)
from repro.analysis.workingsets import working_set_distribution
from repro.core.predictor import CbwsPredictor
from repro.harness.runner import GridRunner
from repro.trace.events import BLOCK_BEGIN, BLOCK_END, MEMORY_ACCESS


@pytest.fixture(scope="module")
def runner():
    return GridRunner(budget_fraction=0.12)


def table_hit_rate(trace) -> float:
    """Drive the CBWS predictor over a trace; return its hit rate."""
    predictor = CbwsPredictor()
    for event in trace.events:
        if event.kind == MEMORY_ACCESS:
            predictor.memory_access(event.address >> 6)
        elif event.kind == BLOCK_BEGIN:
            predictor.block_begin(event.block_id)
        elif event.kind == BLOCK_END:
            predictor.block_end()
    return predictor.stats.hit_rate


class TestStencil:
    """Figure 2-4: plane-strided innermost loop, constant differentials."""

    def test_constant_differential(self, runner):
        sequences = extract_cbws_sequences(runner.trace("stencil-default"))
        vectors = sequences[min(sequences)][1:20]
        deltas = {
            tuple(b[i] - a[i] for i in range(min(len(a), len(b))))
            for a, b in zip(vectors, vectors[1:])
        }
        assert len(deltas) == 1

    def test_strides_exceed_sms_region(self, runner):
        """The plane stride (16 lines at reduced scale) hops half an SMS
        region per iteration — the paper's structural critique of SMS."""
        sequences = extract_cbws_sequences(runner.trace("stencil-default"))
        vectors = sequences[min(sequences)]
        stride = vectors[2][0] - vectors[1][0]
        assert stride >= 16

    def test_high_predictability(self, runner):
        assert table_hit_rate(runner.trace("stencil-default")) > 0.9


class TestSgemm:
    """Column walk: one full row stride per inner iteration."""

    def test_b_column_stride(self, runner):
        sequences = extract_cbws_sequences(runner.trace("sgemm-medium"))
        vectors = sequences[min(sequences)][1:10]
        b_lines = [cbws[-1] for cbws in vectors if len(cbws) >= 2]
        strides = {b - a for a, b in zip(b_lines, b_lines[1:])}
        assert strides == {16}  # 256 floats per row = 16 lines


class TestBzip2:
    """Suffix windows overflow the 16-line CBWS buffer."""

    def test_blocks_exceed_buffer(self, runner):
        dist = working_set_distribution(runner.trace("401.bzip2-source"))
        assert dist.fraction_within(16) < 0.05
        assert dist.max_size >= 24

    def test_windows_fit_one_sms_region_span(self, runner):
        dist = working_set_distribution(runner.trace("401.bzip2-source"))
        assert dist.max_size <= 32


class TestHisto:
    """Figure 16: data-dependent bin indices."""

    def test_bin_stream_is_unpredictable(self, runner):
        assert table_hit_rate(runner.trace("histo-large")) < 0.35

    def test_image_stream_is_sequential(self, runner):
        trace = runner.trace("histo-large")
        loads = [e for e in trace.memory_events() if not e.is_write]
        img_pc = loads[0].pc
        img_lines = [e.line for e in loads if e.pc == img_pc][:200]
        deltas = {b - a for a, b in zip(img_lines, img_lines[1:])}
        assert deltas <= {0, 1}


class TestMcf:
    """Pointer chase over a permutation cycle."""

    def test_chase_has_no_repeating_differential(self, runner):
        dist = differential_distribution(runner.trace("429.mcf-ref"))
        # The chase contributes thousands of distinct one-off vectors.
        assert dist.distinct_vectors > 0.3 * dist.iterations


class TestFftAndStreamcluster:
    """Section VII-A: too many distinct differentials for 16 entries."""

    def test_streamcluster_table_thrash(self, runner):
        assert table_hit_rate(runner.trace("streamcluster-simlarge")) < 0.1

    def test_fft_less_predictable_than_stencil(self, runner):
        fft = table_hit_rate(runner.trace("fft-simlarge"))
        stencil = table_hit_rate(runner.trace("stencil-default"))
        assert fft < stencil - 0.2

    def test_streamcluster_distribution_is_diffuse(self, runner):
        diffuse = differential_distribution(
            runner.trace("streamcluster-simlarge")
        )
        assert diffuse.coverage_at(0.05) < 0.5


class TestSoplex:
    """Branch divergence changes the CBWS length between iterations."""

    def test_divergent_block_sizes(self, runner):
        dist = working_set_distribution(runner.trace("450.soplex-ref"))
        assert len(dist.size_histogram) >= 2


class TestLibquantum:
    """Pure unit-stride streaming."""

    def test_single_line_blocks(self, runner):
        dist = working_set_distribution(runner.trace("462.libquantum-ref"))
        assert dist.mean_size < 1.5


class TestNw:
    """Wavefront diagonal: constant multi-line stride."""

    def test_diagonal_stride_spans_regions(self, runner):
        sequences = extract_cbws_sequences(runner.trace("nw"))
        # Find a long diagonal (late block instances) and check strides.
        longest = max(sequences.values(), key=len)
        tail = longest[len(longest) // 2 : len(longest) // 2 + 8]
        strides = [b[0] - a[0] for a, b in zip(tail, tail[1:])]
        # cols-1 elements = 1020 bytes: 15 or 16 lines per step.
        assert strides
        assert min(strides) >= 8
        assert max(strides) - min(strides) <= 1


class TestLbm:
    """Flag-divergent cell paths."""

    def test_multiple_working_set_shapes(self, runner):
        dist = working_set_distribution(runner.trace("lbm-long"))
        assert len(dist.size_histogram) >= 3


class TestMilc:
    """Two-site gathers at constant strides: few differentials."""

    def test_few_distinct_differentials(self, runner):
        dist = differential_distribution(runner.trace("433.milc-su3imp"))
        assert dist.distinct_vectors <= 8


class TestLowGroupCharacters:
    """Spot-checks that the low-MPKI kernels keep their designed
    cache-friendliness mechanisms."""

    def test_mxm_fits_the_l2(self, runner):
        from repro.analysis.reuse import reuse_profile

        profile = reuse_profile(runner.trace("mxm-linpack"))
        assert profile.hit_ratio_at(2048) > 0.85

    def test_sjeng_probes_are_sparse(self, runner):
        """One transposition-table probe per position: the miss source
        is a small fraction of all accesses."""
        trace = runner.trace("458.sjeng-ref")
        result = GridRunner(budget_fraction=0.12).run_one(
            "458.sjeng-ref", "no-prefetch"
        )
        assert result.llc_misses < 0.1 * result.demand_accesses

    def test_sad_window_reuse(self, runner):
        """The reference window is revisited per candidate, so most
        accesses hit without any prefetching."""
        result = GridRunner(budget_fraction=0.12).run_one(
            "sad-base-large", "no-prefetch"
        )
        # Short-budget traces are cold-start dominated; 20% bounds it.
        assert result.llc_misses < 0.2 * result.demand_accesses

    def test_freqmine_walks_stay_short(self, runner):
        """Heap-layout parent walks have log depth: block instances are
        bounded and working sets tiny."""
        from repro.analysis.workingsets import working_set_distribution

        dist = working_set_distribution(runner.trace("freqmine-simlarge"))
        assert dist.max_size <= 4
