"""Property-based tests over the simulation engine.

Random (but well-formed) traces driven through random prefetchers must
always satisfy the engine's accounting invariants — the same checks the
integration suite applies to real workloads, here over a much wilder
input space.
"""

from hypothesis import given, settings, strategies as st

from repro.harness.registry import PAPER_PREFETCHER_ORDER, make_prefetcher
from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import HierarchyConfig
from repro.sim.config import CoreConfig, PrefetchPathConfig, SimConfig
from repro.sim.engine import simulate
from repro.sim.results import DemandClass
from repro.trace.events import BlockBegin, BlockEnd, MemoryAccess
from repro.trace.stream import Trace

_CONFIG = SimConfig(
    hierarchy=HierarchyConfig(
        l1=CacheConfig(name="L1", size_bytes=512, associativity=2),
        l2=CacheConfig(name="L2", size_bytes=4096, associativity=4),
    ),
    core=CoreConfig(),
    prefetch=PrefetchPathConfig(queue_capacity=16, issue_interval=4,
                                max_in_flight=8),
)


@st.composite
def random_traces(draw):
    """Well-formed traces mixing strided runs, random jumps and blocks."""
    events = []
    icount = 0
    block_open = False
    base = draw(st.integers(min_value=0, max_value=1 << 20)) * 64
    for _ in range(draw(st.integers(min_value=1, max_value=120))):
        icount += draw(st.integers(min_value=1, max_value=30))
        roll = draw(st.integers(min_value=0, max_value=9))
        if roll == 0 and not block_open:
            events.append(BlockBegin(icount, draw(st.integers(0, 3))))
            block_open = True
        elif roll == 1 and block_open:
            events.append(BlockEnd(icount, events[-1].block_id
                                   if isinstance(events[-1], BlockBegin)
                                   else _open_id(events)))
            block_open = False
        else:
            if draw(st.booleans()):
                base += draw(st.integers(min_value=-4, max_value=4)) * 64
                base = max(0, base)
            else:
                base = draw(st.integers(min_value=0, max_value=1 << 20)) * 64
            events.append(
                MemoryAccess(icount, draw(st.integers(0, 7)) * 16 + 0x400000,
                             base, draw(st.booleans()))
            )
    if block_open:
        icount += 1
        events.append(BlockEnd(icount, _open_id(events)))
    return Trace("prop", events, icount + 10)


def _open_id(events):
    for event in reversed(events):
        if isinstance(event, BlockBegin):
            return event.block_id
    raise AssertionError("no open block")


class TestEngineInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        random_traces(),
        st.sampled_from(PAPER_PREFETCHER_ORDER),
    )
    def test_accounting_invariants(self, trace, prefetcher_name):
        trace.validate()
        result = simulate(_CONFIG, make_prefetcher(prefetcher_name), trace)

        # Cycles are bounded below by retire bandwidth and above by
        # fully-serialized memory accesses.
        assert result.cycles >= trace.instructions / _CONFIG.core.width
        upper = (
            trace.instructions / _CONFIG.core.width
            + result.demand_accesses * (_CONFIG.core.memory_latency + 2)
        )
        assert result.cycles <= upper + 1

        # The demand classes partition the L1 misses exactly.
        partitioned = sum(
            result.classes[cls]
            for cls in (
                DemandClass.TIMELY,
                DemandClass.SHORTER_WAITING,
                DemandClass.NON_TIMELY,
                DemandClass.MISSING,
                DemandClass.PLAIN_HIT,
            )
        )
        assert partitioned == result.l1_misses
        assert result.llc_misses <= result.l1_misses <= result.demand_accesses

        # Prefetch accounting closes.
        assert result.prefetch_fills <= result.prefetches_issued
        assert (
            result.useful_prefetches + result.wrong_prefetches
            <= result.prefetches_issued
        )
        assert result.prefetch_bytes_read == 64 * result.prefetches_issued

    @settings(max_examples=10, deadline=None)
    @given(random_traces())
    def test_no_prefetch_is_pure_demand(self, trace):
        result = simulate(_CONFIG, make_prefetcher("no-prefetch"), trace)
        assert result.prefetches_issued == 0
        assert result.classes[DemandClass.TIMELY] == 0
        assert result.classes[DemandClass.SHORTER_WAITING] == 0
        assert result.wrong_prefetches == 0

    @settings(max_examples=10, deadline=None)
    @given(random_traces(), st.sampled_from(["cbws", "cbws+sms", "sms"]))
    def test_determinism(self, trace, prefetcher_name):
        first = simulate(_CONFIG, make_prefetcher(prefetcher_name), trace)
        second = simulate(_CONFIG, make_prefetcher(prefetcher_name), trace)
        assert first.cycles == second.cycles
        assert first.classes == second.classes
