"""Tests for the Table III storage accounting."""

import pytest

from repro.core.predictor import CbwsConfig
from repro.prefetchers.ghb import GhbConfig
from repro.prefetchers.sms import SmsConfig
from repro.prefetchers.storage import (
    cbws_storage,
    ghb_gdc_storage,
    ghb_pcdc_storage,
    sms_storage,
    stride_storage,
)
from repro.prefetchers.stride import StrideConfig


class TestPaperNumbers:
    def test_stride_is_2_25_kb(self):
        estimate = stride_storage(StrideConfig())
        assert estimate.bits == (48 + 2 * 12) * 256
        assert estimate.kilobytes == pytest.approx(2.25)

    def test_ghb_gdc_is_2_25_kb(self):
        estimate = ghb_gdc_storage(GhbConfig())
        assert estimate.bits == (6 * 12) * 256
        assert estimate.kilobytes == pytest.approx(2.25)

    def test_ghb_pcdc_is_3_75_kb(self):
        estimate = ghb_pcdc_storage(GhbConfig())
        assert estimate.bits == (6 * 12 + 48) * 256
        assert estimate.kilobytes == pytest.approx(3.75)

    def test_sms_component_arithmetic(self):
        estimate = sms_storage(SmsConfig())
        assert estimate.breakdown["agt"] == (5 + 48 + 36) * 32
        assert estimate.breakdown["pht"] == (32 + 48 + 5) * 512
        assert estimate.bits == sum(estimate.breakdown.values())

    def test_cbws_is_about_1_kb(self):
        estimate = cbws_storage(CbwsConfig())
        # Figure 8 says "less than 1KB"; the exact bill of materials for
        # the default geometry is ~1.1 KB (see EXPERIMENTS.md).
        assert 0.8 <= estimate.kilobytes <= 1.3

    def test_ordering_matches_table3(self):
        """CBWS is the smallest scheme; SMS the largest."""
        sizes = {
            "cbws": cbws_storage(CbwsConfig()).bits,
            "stride": stride_storage(StrideConfig()).bits,
            "gdc": ghb_gdc_storage(GhbConfig()).bits,
            "pcdc": ghb_pcdc_storage(GhbConfig()).bits,
            "sms": sms_storage(SmsConfig()).bits,
        }
        assert sizes["cbws"] < sizes["stride"]
        assert sizes["cbws"] < sizes["gdc"]
        assert sizes["gdc"] <= sizes["pcdc"] < sizes["sms"]


class TestScaling:
    def test_cbws_scales_with_table_entries(self):
        small = cbws_storage(CbwsConfig(table_entries=8)).bits
        large = cbws_storage(CbwsConfig(table_entries=64)).bits
        assert large > small

    def test_cbws_scales_with_vector_capacity(self):
        small = cbws_storage(CbwsConfig(max_vector_members=8)).bits
        large = cbws_storage(CbwsConfig(max_vector_members=32)).bits
        assert large > small

    def test_breakdown_sums_to_total(self):
        for estimate in (
            stride_storage(StrideConfig()),
            ghb_pcdc_storage(GhbConfig()),
            sms_storage(SmsConfig()),
            cbws_storage(CbwsConfig()),
        ):
            assert sum(estimate.breakdown.values()) == estimate.bits
