"""Tests for the IR interpreter: trace emission, accounting, budgets."""

import pytest

from repro.common.errors import WorkloadError
from repro.ir.builder import c, v
from repro.ir.interp import ExecutionLimits, Interpreter, run_kernel
from repro.ir.nodes import (
    ArrayDecl,
    Assign,
    Compute,
    For,
    If,
    Kernel,
    Load,
    Store,
    While,
)
from repro.passes.annotate import annotate_tight_loops
from repro.trace.events import BLOCK_BEGIN, BLOCK_END, MEMORY_ACCESS


class TestBasicExecution:
    def test_load_store_emit_events(self):
        kernel = Kernel("k", [ArrayDecl("a", 4)], [Load("a", 0), Store("a", 1)])
        trace = run_kernel(kernel)
        events = list(trace.memory_events())
        assert len(events) == 2
        assert not events[0].is_write
        assert events[1].is_write

    def test_addresses_respect_element_size(self):
        kernel = Kernel("k", [ArrayDecl("a", 8, element_size=4)],
                        [Load("a", 0), Load("a", 1), Load("a", 3)])
        events = list(run_kernel(kernel).memory_events())
        base = events[0].address
        assert events[1].address == base + 4
        assert events[2].address == base + 12

    def test_distinct_arrays_get_distinct_lines(self):
        kernel = Kernel(
            "k",
            [ArrayDecl("a", 4), ArrayDecl("b", 4)],
            [Load("a", 0), Load("b", 0)],
        )
        events = list(run_kernel(kernel).memory_events())
        assert events[0].line != events[1].line

    def test_out_of_bounds_raises(self):
        kernel = Kernel("k", [ArrayDecl("a", 4)], [Load("a", 9)])
        with pytest.raises(WorkloadError, match="out of range"):
            run_kernel(kernel)

    def test_unbound_variable_raises(self):
        kernel = Kernel("k", [ArrayDecl("a", 4)], [Load("a", v("missing"))])
        with pytest.raises(WorkloadError, match="before assignment"):
            run_kernel(kernel)


class TestDataSemantics:
    def test_load_binds_value(self):
        # a[0] = 7 (via init), then b[a[0]] touches index 7.
        kernel = Kernel(
            "k",
            [
                ArrayDecl("a", 1, init=lambda rng: __import__("numpy").array([7])),
                ArrayDecl("b", 16),
            ],
            [Load("a", 0, dst="x"), Load("b", v("x"))],
        )
        events = list(run_kernel(kernel).memory_events())
        b_base = Interpreter(kernel).address_space.lookup("b").base
        assert events[1].address == b_base + 7 * 8

    def test_store_updates_data(self):
        kernel = Kernel(
            "k",
            [ArrayDecl("a", 4)],
            [
                Store("a", 2, c(41)),
                Load("a", 2, dst="x"),
                Store("a", 3, v("x") + 1),
            ],
        )
        interp = Interpreter(kernel)
        interp.run()
        assert interp.array_values("a")[2] == 41
        assert interp.array_values("a")[3] == 42

    def test_histogram_increment_pattern(self):
        import numpy as np

        kernel = Kernel(
            "histo",
            [
                ArrayDecl("img", 8, init=lambda rng: np.array([1, 1, 2, 1, 0, 2, 1, 1])),
                ArrayDecl("bins", 4),
            ],
            [
                For("i", 0, 8, [
                    Load("img", v("i"), dst="px"),
                    Load("bins", v("px"), dst="n"),
                    Store("bins", v("px"), v("n") + 1),
                ]),
            ],
        )
        interp = Interpreter(kernel)
        interp.run()
        assert list(interp.array_values("bins")) == [1, 5, 2, 0]


class TestControlFlow:
    def test_if_takes_correct_branch(self):
        kernel = Kernel(
            "k",
            [ArrayDecl("a", 4)],
            [
                Assign("x", 1),
                If(v("x").eq(1), [Store("a", 0)], [Store("a", 1)]),
                If(v("x").eq(0), [Store("a", 2)], [Store("a", 3)]),
            ],
        )
        interp = Interpreter(kernel)
        interp.run()
        values = interp.array_values("a")
        # Store default value is 0, so check via emitted addresses instead.
        events = list(interp._events)  # noqa: SLF001 - test introspection
        indices = sorted(
            (e.address - interp.address_space.lookup("a").base) // 8
            for e in events
        )
        assert indices == [0, 3]
        assert values is not None

    def test_for_step(self):
        kernel = Kernel(
            "k", [ArrayDecl("a", 10)],
            [For("i", 0, 10, [Load("a", v("i"))], step=3)],
        )
        events = list(run_kernel(kernel).memory_events())
        assert len(events) == 4  # i = 0, 3, 6, 9

    def test_while_guard_raises_on_runaway(self):
        kernel = Kernel(
            "k", [ArrayDecl("a", 4)],
            [While(c(1), [Load("a", 0)], max_iterations=10)],
        )
        with pytest.raises(WorkloadError, match="exceeded"):
            run_kernel(kernel)

    def test_while_terminates_on_condition(self):
        kernel = Kernel(
            "k", [ArrayDecl("a", 8)],
            [
                Assign("n", 0),
                While(v("n").lt(5), [Load("a", v("n")), Assign("n", v("n") + 1)]),
            ],
        )
        assert len(list(run_kernel(kernel).memory_events())) == 5


class TestInstructionAccounting:
    def test_icount_monotone_and_positive(self):
        kernel = Kernel(
            "k", [ArrayDecl("a", 16)],
            [For("i", 0, 16, [Load("a", v("i")), Compute(3)])],
        )
        trace = run_kernel(kernel)
        icounts = [event.icount for event in trace.events]
        assert icounts == sorted(icounts)
        assert trace.instructions >= icounts[-1]

    def test_compute_adds_exactly_count(self):
        base = run_kernel(Kernel("k", [ArrayDecl("a", 1)], [Load("a", 0)]))
        extra = run_kernel(
            Kernel("k", [ArrayDecl("a", 1)], [Load("a", 0), Compute(25)])
        )
        assert extra.instructions - base.instructions == 25


class TestBlockMarkers:
    def test_annotated_loop_emits_balanced_markers(self):
        kernel = Kernel(
            "k", [ArrayDecl("a", 8)],
            [For("i", 0, 8, [Load("a", v("i"))])],
        )
        annotate_tight_loops(kernel)
        trace = run_kernel(kernel)
        trace.validate()
        kinds = [event.kind for event in trace.events]
        assert kinds.count(BLOCK_BEGIN) == 8
        assert kinds.count(BLOCK_END) == 8

    def test_unannotated_loop_emits_no_markers(self):
        kernel = Kernel(
            "k", [ArrayDecl("a", 8)],
            [For("i", 0, 8, [Load("a", v("i"))])],
        )
        trace = run_kernel(kernel)
        assert all(event.kind == MEMORY_ACCESS for event in trace.events)


class TestBudgets:
    def test_access_budget_truncates_cleanly(self):
        kernel = Kernel(
            "k", [ArrayDecl("a", 1000)],
            [For("i", 0, 1000, [Load("a", v("i"))])],
        )
        annotate_tight_loops(kernel)
        trace = run_kernel(
            kernel, limits=ExecutionLimits(max_memory_accesses=100)
        )
        trace.validate()  # markers stay balanced after truncation
        assert sum(1 for _ in trace.memory_events()) == 100

    def test_instruction_budget(self):
        kernel = Kernel(
            "k", [ArrayDecl("a", 1000)],
            [For("i", 0, 1000, [Load("a", v("i")), Compute(10)])],
        )
        trace = run_kernel(
            kernel, limits=ExecutionLimits(max_instructions=500)
        )
        assert trace.instructions <= 520  # one iteration of slack

    def test_seed_changes_data_not_structure(self):
        import numpy as np

        def init(rng):
            return rng.integers(0, 8, size=8)

        def build():
            return Kernel(
                "k",
                [ArrayDecl("idx", 8, init=init), ArrayDecl("a", 8)],
                [For("i", 0, 8, [
                    Load("idx", v("i"), dst="j"),
                    Load("a", v("j")),
                ])],
            )

        trace_a = run_kernel(build(), seed=1)
        trace_b = run_kernel(build(), seed=2)
        trace_a2 = run_kernel(build(), seed=1)
        assert [e.address for e in trace_a.events] == [
            e.address for e in trace_a2.events
        ]
        assert [e.address for e in trace_a.events] != [
            e.address for e in trace_b.events
        ]
