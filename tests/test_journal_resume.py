"""Write-ahead run journal: format, torn tails, resume, CLI surface."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.cli import main
from repro.common.errors import InjectedCrash, JournalError
from repro.exec import faults
from repro.exec import telemetry as telemetry_module
from repro.exec.faults import FaultSpec
from repro.exec.journal import (
    JOURNAL_SCHEMA_VERSION,
    RUNS_DIRNAME,
    RunJournal,
    list_runs,
    load_run,
    replay,
    run_fingerprint,
)
from repro.harness.export import write_json
from repro.harness.runner import GridRunner, clear_trace_cache
from repro.sim.config import REDUCED_CONFIG

WORKLOADS = ["nw"]
PREFETCHERS = ["no-prefetch", "stride"]


@pytest.fixture(autouse=True)
def _no_lingering_faults():
    faults.deactivate()
    yield
    faults.deactivate()


def grid_cells(grid):
    return {
        (w, p): grid.get(w, p).to_dict()
        for w in WORKLOADS for p in PREFETCHERS
    }


class TestJournalFormat:
    def test_round_trip(self, tmp_path):
        journal = RunJournal(tmp_path / "journal.jsonl")
        journal.run_started("r1", "fp", [("nw", "stride")], scale=1.0)
        journal.task_done("trace:nw", "trace")
        journal.task_done("sim:nw:stride", "sim", cell=("nw", "stride"),
                          key="k1")
        journal.run_finished("complete", cells_done=1)
        journal.close()

        state = replay(journal.path)
        assert state.run_id == "r1"
        assert state.fingerprint == "fp"
        assert state.cells == [("nw", "stride")]
        assert state.completed == {("nw", "stride"): "k1"}
        assert state.traces_done == {"nw"}
        assert state.status == "complete"
        assert state.torn_lines == 0
        assert state.params["scale"] == 1.0

    def test_quarantine_and_degradation_replay(self, tmp_path):
        journal = RunJournal(tmp_path / "journal.jsonl")
        journal.run_started("r1", "fp", [("nw", "stride")])
        journal.task_quarantined("sim:nw:stride", "sim", "boom", 2,
                                 "permanent", cell=("nw", "stride"))
        journal.workload_degraded("nw", "3 sims quarantined", 3)
        journal.close()

        state = replay(journal.path)
        assert state.quarantined_cells == {("nw", "stride")}
        assert state.degraded == {"nw": "3 sims quarantined"}
        assert state.describe_status() == "interrupted"

    def test_torn_tail_is_tolerated(self, tmp_path):
        journal = RunJournal(tmp_path / "journal.jsonl")
        journal.run_started("r1", "fp", [])
        journal.task_done("trace:nw", "trace")
        journal.close()
        with open(journal.path, "ab") as handle:
            handle.write(b'deadbeef {"kind": "task-done", "tr')  # mid-write

        state = replay(journal.path)
        assert state.records == 2
        assert state.torn_lines == 1
        assert state.traces_done == {"nw"}

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(JournalError, match="no run journal"):
            replay(tmp_path / "nope.jsonl")
        with pytest.raises(JournalError, match="known runs"):
            load_run(tmp_path, "ghost")

    def test_newer_schema_rejected(self, tmp_path):
        journal = RunJournal(tmp_path / "journal.jsonl")
        journal.append("run-started", schema=JOURNAL_SCHEMA_VERSION + 1,
                       run_id="r1", fingerprint="fp", cells=[])
        journal.close()
        with pytest.raises(JournalError, match="newer"):
            replay(journal.path)

    def test_injected_torn_write_never_journals_the_record(self, tmp_path):
        journal = RunJournal(tmp_path / "journal.jsonl")
        journal.run_started("r1", "fp", [])
        faults.install(FaultSpec(site="journal.append", kind="torn"))
        with pytest.raises(InjectedCrash):
            journal.task_done("sim:nw:stride", "sim", cell=("nw", "stride"),
                              key="k1")
        faults.deactivate()

        state = replay(journal.path)
        # The torn record must not be trusted: only run-started survives.
        assert state.records == 1
        assert state.torn_lines == 1
        assert not state.completed

    def test_fingerprint_covers_every_input(self):
        base = run_fingerprint([("nw", "stride")], 1.0, 0.02, 0,
                               REDUCED_CONFIG)
        assert base == run_fingerprint([("nw", "stride")], 1.0, 0.02, 0,
                                       REDUCED_CONFIG)
        assert base != run_fingerprint([("nw", "stride")], 1.0, 0.03, 0,
                                       REDUCED_CONFIG)
        assert base != run_fingerprint([("nw", "sms")], 1.0, 0.02, 0,
                                       REDUCED_CONFIG)


class TestResume:
    def _reference(self, tmp_path):
        ref = GridRunner(budget_fraction=0.02, jobs=1,
                         cache_dir=tmp_path / "ref", run_id="ref")
        grid = ref.run_grid(WORKLOADS, PREFETCHERS)
        clear_trace_cache()
        return grid

    def _crash_first_run(self, cache_dir):
        """Run the grid, dying right after the first completed sim."""
        faults.install(FaultSpec(site="task-done", kind="crash", at=1))
        runner = GridRunner(budget_fraction=0.02, jobs=1,
                            cache_dir=cache_dir, run_id="r1")
        with pytest.raises(InjectedCrash):
            runner.run_grid(WORKLOADS, PREFETCHERS)
        faults.deactivate()
        clear_trace_cache()

    def test_killed_run_resumes_byte_identical(self, fresh_trace_cache,
                                               tmp_path):
        reference = self._reference(tmp_path)
        cache_dir = tmp_path / "crash"
        self._crash_first_run(cache_dir)

        state = load_run(cache_dir / RUNS_DIRNAME, "r1")
        assert state.describe_status() == "interrupted"
        assert len(state.completed) == 1

        resumed = GridRunner(budget_fraction=0.02, jobs=1,
                             cache_dir=cache_dir, resume="r1")
        grid = resumed.run_grid(WORKLOADS, PREFETCHERS)
        telemetry = telemetry_module.LAST_RUN
        assert telemetry.resumed_cells == 1
        assert telemetry.sims_run == 1  # only the remainder re-executed
        assert grid_cells(grid) == grid_cells(reference)

        # The exported report is byte-identical to the uninterrupted run.
        ref_json = tmp_path / "ref.json"
        res_json = tmp_path / "res.json"
        write_json(reference, ref_json, budget_fraction=0.02)
        write_json(grid, res_json, budget_fraction=0.02)
        assert ref_json.read_bytes() == res_json.read_bytes()

        state = load_run(cache_dir / RUNS_DIRNAME, "r1")
        assert state.status == "complete"
        assert state.resumes == 1

    def test_resume_with_evicted_cache_entry_reexecutes(
            self, fresh_trace_cache, tmp_path):
        reference = self._reference(tmp_path)
        cache_dir = tmp_path / "crash"
        self._crash_first_run(cache_dir)

        # Lose the cached artifact behind the journaled-complete cell:
        # resume must demote it to a rebuild, not trust a phantom.
        for entry in (cache_dir / "results").glob("*/*.json"):
            entry.unlink()
        resumed = GridRunner(budget_fraction=0.02, jobs=1,
                             cache_dir=cache_dir, resume="r1")
        grid = resumed.run_grid(WORKLOADS, PREFETCHERS)
        telemetry = telemetry_module.LAST_RUN
        assert telemetry.resumed_cells == 0
        assert telemetry.sims_run == 2
        assert grid_cells(grid) == grid_cells(reference)

    def test_fingerprint_mismatch_refused(self, fresh_trace_cache, tmp_path):
        cache_dir = tmp_path / "crash"
        self._crash_first_run(cache_dir)
        other = GridRunner(budget_fraction=0.03, jobs=1,
                           cache_dir=cache_dir, resume="r1")
        with pytest.raises(JournalError, match="different grid"):
            other.run_grid(WORKLOADS, PREFETCHERS)

    def test_resume_needs_a_cache_dir(self, fresh_trace_cache, tmp_path):
        from repro.common.errors import ExecError

        runner = GridRunner(budget_fraction=0.02, jobs=2, resume="r1",
                            result_cache=False)
        with pytest.raises(ExecError, match="cache directory"):
            runner.run_grid(WORKLOADS, PREFETCHERS)

    def test_list_runs_summarizes(self, fresh_trace_cache, tmp_path):
        runner = GridRunner(budget_fraction=0.02, jobs=1,
                            cache_dir=tmp_path, run_id="listed")
        runner.run_grid(WORKLOADS, PREFETCHERS)
        summaries = list_runs(tmp_path / RUNS_DIRNAME)
        assert [s.run_id for s in summaries] == ["listed"]
        assert summaries[0].status == "complete"
        assert summaries[0].cells_done == 2
        assert summaries[0].cells_total == 2

    def test_list_runs_skips_corrupt_and_empty_dirs(self, fresh_trace_cache,
                                                    tmp_path):
        runner = GridRunner(budget_fraction=0.02, jobs=1,
                            cache_dir=tmp_path, run_id="good")
        runner.run_grid(WORKLOADS, PREFETCHERS)
        runs_root = tmp_path / RUNS_DIRNAME
        # A directory with no journal at all.
        (runs_root / "empty-dir").mkdir()
        # A directory whose journal is wholly corrupt.
        corrupt = runs_root / "corrupt"
        corrupt.mkdir()
        (corrupt / "journal.jsonl").write_text("not a journal line\n")
        # A zero-byte journal.
        hollow = runs_root / "hollow"
        hollow.mkdir()
        (hollow / "journal.jsonl").write_text("")
        # A stray file (not a run directory) next to them.
        (runs_root / "stray.txt").write_text("noise")

        skipped = []
        summaries = list_runs(
            runs_root, on_skip=lambda run, why: skipped.append((run, why)))
        assert [s.run_id for s in summaries] == ["good"]
        assert sorted(run for run, _ in skipped) == [
            "corrupt", "empty-dir", "hollow"]
        reasons = dict(skipped)
        assert "no journal" in reasons["empty-dir"]
        assert "empty or wholly corrupt" in reasons["corrupt"]
        assert "empty or wholly corrupt" in reasons["hollow"]

    def test_list_runs_sorts_newest_first(self, fresh_trace_cache,
                                          tmp_path):
        for run_id in ("first", "second"):
            GridRunner(budget_fraction=0.02, jobs=1, cache_dir=tmp_path,
                       run_id=run_id).run_grid(WORKLOADS, PREFETCHERS)
        summaries = list_runs(tmp_path / RUNS_DIRNAME)
        starts = [s.started_at for s in summaries]
        assert starts == sorted(starts, reverse=True)


class TestCli:
    def _run(self, tmp_path, *extra):
        return main([
            "run", "--workload", "nw", "--prefetcher", "stride",
            "--budget-fraction", "0.02", "--jobs", "1",
            "--cache-dir", str(tmp_path), *extra,
        ])

    def test_runs_list(self, fresh_trace_cache, tmp_path, capsys):
        assert self._run(tmp_path, "--run-id", "cli-run") == 0
        capsys.readouterr()
        assert main(["runs", "list", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "cli-run" in out
        assert "complete" in out

    def test_runs_list_empty(self, tmp_path, capsys):
        assert main(["runs", "list", "--cache-dir", str(tmp_path)]) == 0
        assert "no journaled runs" in capsys.readouterr().out

    def test_resume_flag_round_trips(self, fresh_trace_cache, tmp_path,
                                     capsys):
        assert self._run(tmp_path, "--run-id", "cli-run") == 0
        clear_trace_cache()
        assert self._run(tmp_path, "--resume", "cli-run") == 0
        out = capsys.readouterr().out
        assert "stride" in out
        assert telemetry_module.LAST_RUN.resumed_cells == 1

    def test_verify_artifacts_clean(self, fresh_trace_cache, tmp_path,
                                    capsys):
        assert self._run(tmp_path) == 0
        capsys.readouterr()
        assert main(["verify-artifacts", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "0 corrupt" in out

    def test_verify_artifacts_flags_and_purges(self, fresh_trace_cache,
                                               tmp_path, capsys):
        assert self._run(tmp_path) == 0
        capsys.readouterr()
        trace_files = sorted(tmp_path.glob("*.trace"))
        assert trace_files
        faults.bitflip_file(trace_files[0], -3)
        result_files = sorted((tmp_path / "results").glob("*/*.json"))
        assert result_files
        document = json.loads(result_files[0].read_text())
        document["result"]["instructions"] += 1  # silent data corruption
        result_files[0].write_text(json.dumps(document))

        assert main(["verify-artifacts", "--cache-dir", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "checksum" in err

        assert main(["verify-artifacts", "--cache-dir", str(tmp_path),
                     "--purge"]) == 0
        capsys.readouterr()
        assert not trace_files[0].exists()
        assert not result_files[0].exists()
        # After the purge everything left verifies.
        assert main(["verify-artifacts", "--cache-dir", str(tmp_path)]) == 0


class TestCliCrashResume:
    """End-to-end: a subprocess killed mid-grid resumes bit-identically."""

    def _invoke(self, tmp_path, cache_dir, json_out, run_args, env_faults):
        src = str(Path(repro.__file__).resolve().parents[1])
        env = {**os.environ, "PYTHONPATH": src,
               "REPRO_CACHE_DIR": str(cache_dir)}
        env.pop("REPRO_FAULTS", None)
        if env_faults:
            env["REPRO_FAULTS"] = env_faults
        return subprocess.run(
            [sys.executable, "-m", "repro", "run",
             "--workload", "nw", "--prefetcher", "all",
             "--budget-fraction", "0.02", "--jobs", "1",
             "--json", str(json_out), *run_args],
            env=env, capture_output=True, text=True,
        )

    def test_exit_injection_then_resume(self, tmp_path):
        reference = self._invoke(tmp_path, tmp_path / "ref",
                                 tmp_path / "ref.json", ["--run-id", "ref"],
                                 None)
        assert reference.returncode == 0, reference.stderr

        # Kill the process for real after the third completed task.
        killed = self._invoke(tmp_path, tmp_path / "smoke",
                              tmp_path / "killed.json",
                              ["--run-id", "smoke"], "task-done:exit@3")
        assert killed.returncode == faults.EXIT_CODE

        resumed = self._invoke(tmp_path, tmp_path / "smoke",
                               tmp_path / "smoke.json",
                               ["--resume", "smoke"], None)
        assert resumed.returncode == 0, resumed.stderr
        assert (tmp_path / "ref.json").read_bytes() == \
            (tmp_path / "smoke.json").read_bytes()
