"""Campaign spec language: parsing, constraints, planning edge cases."""

import json

import pytest

from repro.campaign.cells import (
    KNOWN_PARAMS,
    build_cell,
    resolve_cell_config,
    serve_inexpressible,
)
from repro.campaign.planner import expand_points, plan_campaign
from repro.campaign.spec import (
    SPEC_VERSION,
    Constraint,
    load_spec,
    parse_spec,
    spec_fingerprint,
)
from repro.common.errors import CampaignError, SpecError
from repro.sim.config import REDUCED_CONFIG


def minimal_document(**overrides):
    document = {
        "version": SPEC_VERSION,
        "name": "test",
        "base": {
            "workloads": ["nw"],
            "prefetchers": ["stride", "cbws"],
            "budget_fraction": 0.02,
        },
        "axes": [
            {"name": "cbws.table_entries", "log2_range": [1, 8]},
            {"name": "l2_kb", "values": [64, 128]},
        ],
    }
    document.update(overrides)
    return document


class TestAxisForms:
    def test_values_form(self):
        spec = parse_spec(minimal_document(
            axes=[{"name": "l2_kb", "values": [64, 128, 256]}]))
        assert spec.axis("l2_kb").values == (64, 128, 256)
        assert spec.axis("l2_kb").spacing == "linear"

    def test_range_form_is_inclusive(self):
        spec = parse_spec(minimal_document(
            axes=[{"name": "prefetch.max_in_flight", "range": [1, 4, 1]}]))
        assert spec.axis("prefetch.max_in_flight").values == (1, 2, 3, 4)

    def test_log2_range_expands_powers_of_two(self):
        spec = parse_spec(minimal_document(
            axes=[{"name": "cbws.table_entries", "log2_range": [1, 64]}]))
        axis = spec.axis("cbws.table_entries")
        assert axis.values == (1, 2, 4, 8, 16, 32, 64)
        assert axis.spacing == "log2"

    def test_log2_range_rejects_non_powers(self):
        with pytest.raises(SpecError, match="powers of two"):
            parse_spec(minimal_document(
                axes=[{"name": "cbws.table_entries", "log2_range": [1, 48]}]))

    def test_exactly_one_value_form(self):
        with pytest.raises(SpecError, match="exactly one"):
            parse_spec(minimal_document(
                axes=[{"name": "l2_kb", "values": [64],
                       "range": [1, 2, 1]}]))
        with pytest.raises(SpecError, match="exactly one"):
            parse_spec(minimal_document(axes=[{"name": "l2_kb"}]))

    def test_duplicate_values_rejected(self):
        with pytest.raises(SpecError, match="duplicate"):
            parse_spec(minimal_document(
                axes=[{"name": "l2_kb", "values": [64, 64]}]))

    def test_unknown_axis_path_rejected(self):
        with pytest.raises(SpecError, match="not a sweepable parameter"):
            parse_spec(minimal_document(
                axes=[{"name": "no.such.knob", "values": [1]}]))

    def test_duplicate_axis_names_rejected(self):
        with pytest.raises(SpecError, match="duplicate axis"):
            parse_spec(minimal_document(
                axes=[{"name": "l2_kb", "values": [64]},
                      {"name": "l2_kb", "values": [128]}]))

    def test_single_point_axis(self):
        spec = parse_spec(minimal_document(
            axes=[{"name": "l2_kb", "values": [64]}]))
        plan = plan_campaign(spec)
        # 1 workload x 2 prefetchers x 1 point.
        assert plan.candidates == 2
        assert len(plan.cells) == 2

    def test_empty_axes_is_the_base_grid(self):
        spec = parse_spec(minimal_document(axes=[]))
        assert list(expand_points(spec.axes)) == [{}]
        plan = plan_campaign(spec)
        assert plan.candidates == 2  # workloads x prefetchers, one point


class TestCombinators:
    def test_zip_axes_advance_in_lockstep(self):
        spec = parse_spec(minimal_document(axes=[
            {"name": "l1_kb", "values": [4, 8], "combine": "zip"},
            {"name": "l2_kb", "values": [64, 128], "combine": "zip"},
            {"name": "prefetch.max_in_flight", "values": [1, 2]},
        ]))
        points = list(expand_points(spec.axes))
        pairs = {(p["l1_kb"], p["l2_kb"]) for p in points}
        assert pairs == {(4, 64), (8, 128)}  # no (4, 128) cross terms
        assert len(points) == 4  # 2 zipped pairs x 2 cross values

    def test_zip_length_mismatch_rejected(self):
        with pytest.raises(SpecError, match="equal lengths"):
            parse_spec(minimal_document(axes=[
                {"name": "l1_kb", "values": [4, 8], "combine": "zip"},
                {"name": "l2_kb", "values": [64], "combine": "zip"},
            ]))

    def test_cross_product_size(self):
        spec = parse_spec(minimal_document())
        assert len(list(expand_points(spec.axes))) == 4 * 2  # log2 1..8 x 2


class TestConstraints:
    def evaluate(self, expr, params):
        return Constraint.parse(expr).evaluate(params)

    def test_comparison_and_builtin(self):
        assert self.evaluate("is_pow2(l2_kb) and l2_kb >= 64",
                             {"l2_kb": 128})
        assert not self.evaluate("l2_kb < 64", {"l2_kb": 128})

    def test_arithmetic(self):
        assert self.evaluate("l2_kb // l1_kb == 32",
                             {"l2_kb": 128, "l1_kb": 4})

    def test_membership(self):
        assert self.evaluate("l2_kb in (64, 128)", {"l2_kb": 64})

    def test_unknown_parameter_lists_known(self):
        with pytest.raises(SpecError, match="unknown parameter 'bogus'"):
            self.evaluate("bogus > 1", {"l2_kb": 64})

    def test_disallowed_constructs_rejected(self):
        for expr in ("__import__('os')", "lambda: 1", "[x for x in y]",
                     "f'{x}'"):
            with pytest.raises(SpecError, match="disallowed|not a valid"):
                Constraint.parse(expr)

    def test_prune_all_is_an_error(self):
        spec = parse_spec(minimal_document(
            constraints=["l2_kb > 100000"]))
        with pytest.raises(SpecError, match="prune"):
            plan_campaign(spec)

    def test_partial_prune(self):
        spec = parse_spec(minimal_document(constraints=["l2_kb == 64"]))
        plan = plan_campaign(spec)
        assert plan.pruned > 0
        assert all(cell.coord("l2_kb") == 64 for cell in plan.cells)


class TestSpecDocument:
    def test_version_is_mandatory_and_checked(self):
        with pytest.raises(SpecError, match="version"):
            parse_spec(minimal_document(version=SPEC_VERSION + 1))
        document = minimal_document()
        del document["version"]
        with pytest.raises(SpecError, match="version"):
            parse_spec(document)

    def test_unknown_fields_rejected_at_every_level(self):
        with pytest.raises(SpecError, match="unknown spec field"):
            parse_spec(minimal_document(bogus=1))
        document = minimal_document()
        document["base"]["bogus"] = 1
        with pytest.raises(SpecError, match="unknown base field"):
            parse_spec(document)
        with pytest.raises(SpecError, match="unknown axis field"):
            parse_spec(minimal_document(
                axes=[{"name": "l2_kb", "values": [64], "bogus": 1}]))
        with pytest.raises(SpecError, match="unknown refine field"):
            parse_spec(minimal_document(refine={"bogus": 1}))

    def test_refine_axis_must_be_a_numeric_cross_axis(self):
        with pytest.raises(SpecError, match="unknown axis"):
            parse_spec(minimal_document(
                refine={"axes": ["prefetch.max_in_flight"]}))
        with pytest.raises(SpecError, match="cross axis"):
            parse_spec(minimal_document(
                axes=[{"name": "l1_kb", "values": [4, 8], "combine": "zip"},
                      {"name": "l2_kb", "values": [64, 128],
                       "combine": "zip"}],
                refine={"axes": ["l1_kb"]}))

    def test_refine_present_means_enabled(self):
        spec = parse_spec(minimal_document(
            refine={"axes": ["cbws.table_entries"]}))
        assert spec.refine.enabled
        assert not parse_spec(minimal_document()).refine.enabled

    def test_to_dict_round_trips_with_stable_fingerprint(self):
        spec = parse_spec(minimal_document(
            constraints=["l2_kb >= 64"],
            refine={"axes": ["cbws.table_entries"]}))
        echoed = parse_spec(spec.to_dict())
        assert spec_fingerprint(echoed) == spec_fingerprint(spec)
        assert echoed.axis("cbws.table_entries").spacing == "log2"

    def test_load_toml_and_json_agree(self, tmp_path):
        toml_path = tmp_path / "spec.toml"
        toml_path.write_text(
            'version = 1\nname = "t"\n'
            '[base]\nworkloads = ["nw"]\nprefetchers = ["stride", "cbws"]\n'
            'budget_fraction = 0.02\n'
            '[[axes]]\nname = "l2_kb"\nvalues = [64, 128]\n'
        )
        json_path = tmp_path / "spec.json"
        json_path.write_text(json.dumps(minimal_document(
            name="t",
            axes=[{"name": "l2_kb", "values": [64, 128]}])))
        assert (spec_fingerprint(load_spec(toml_path))
                == spec_fingerprint(load_spec(json_path)))

    def test_load_rejects_unknown_extension(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("version: 1")
        with pytest.raises(SpecError, match="unsupported extension"):
            load_spec(path)


class TestPlanning:
    def test_baseline_cells_deduplicate_across_cbws_axis(self):
        spec = parse_spec(minimal_document())
        plan = plan_campaign(spec)
        # stride ignores cbws.table_entries, so its 4 x 2 candidates
        # collapse to 2 unique cells (one per l2_kb); cbws keeps all 8.
        assert plan.candidates == 16
        assert plan.deduplicated == 6
        assert len(plan.cells) == 10
        assert len(plan.samples) == 16  # every candidate stays a sample

    def test_duplicate_cells_across_zip_and_cross(self):
        spec = parse_spec(minimal_document(axes=[
            {"name": "cbws.table_entries", "values": [4, 8],
             "combine": "zip"},
            {"name": "cbws.max_step", "values": [1, 2], "combine": "zip"},
            {"name": "l2_kb", "values": [64, 128]},
        ]))
        plan = plan_campaign(spec)
        # stride collapses along both zipped cbws axes.
        assert plan.candidates == 8
        assert plan.deduplicated == 2
        assert len(plan.cells) == 6

    def test_keys_are_stable_across_plans(self):
        spec = parse_spec(minimal_document())
        first = [cell.key(REDUCED_CONFIG) for cell in
                 plan_campaign(spec).cells]
        second = [cell.key(REDUCED_CONFIG) for cell in
                  plan_campaign(spec).cells]
        assert first == second

    def test_invalid_corner_names_coords(self):
        spec = parse_spec(minimal_document(
            axes=[{"name": "line_size", "values": [48]}]))
        with pytest.raises(CampaignError, match="line_size"):
            plan_campaign(spec)


class TestCells:
    def test_overrides_resolve_into_config(self):
        cell = build_cell(
            "nw", "cbws", {"l2_kb": 256, "cbws.table_entries": 4},
            scale=1.0, budget_fraction=0.02, seed=0, base=REDUCED_CONFIG,
        )
        config = resolve_cell_config(cell.overrides, REDUCED_CONFIG)
        assert config.hierarchy.l2.size_bytes == 256 * 1024
        assert cell.prefetcher == "cbws[table_entries=4]"

    def test_cbws_axis_wins_over_base_name_params(self):
        cell = build_cell(
            "nw", "cbws[table_entries=2]", {"cbws.table_entries": 8},
            scale=1.0, budget_fraction=0.02, seed=0, base=REDUCED_CONFIG,
        )
        assert cell.prefetcher == "cbws[table_entries=8]"

    def test_serve_inexpressible_params_detected(self):
        cell = build_cell(
            "nw", "stride", {"l1.associativity": 8},
            scale=1.0, budget_fraction=0.02, seed=0, base=REDUCED_CONFIG,
        )
        assert serve_inexpressible(cell) is not None
        plain = build_cell(
            "nw", "stride", {"l2_kb": 64},
            scale=1.0, budget_fraction=0.02, seed=0, base=REDUCED_CONFIG,
        )
        assert serve_inexpressible(plain) is None

    def test_known_params_cover_all_axis_families(self):
        assert "l1_kb" in KNOWN_PARAMS
        assert "cbws.table_entries" in KNOWN_PARAMS
        assert "core.memory_latency" in KNOWN_PARAMS or any(
            p.startswith("core.") for p in KNOWN_PARAMS)
        assert "pangloss.degree" in KNOWN_PARAMS
        assert "pythia.alpha" in KNOWN_PARAMS

    def test_learned_axes_fold_into_name_with_types(self):
        cell = build_cell(
            "nw", "pythia", {"pythia.alpha": 0.065, "pythia.gamma": 0.556},
            scale=1.0, budget_fraction=0.02, seed=0, base=REDUCED_CONFIG,
        )
        # gamma=0.556 is the family default and drops out of the name.
        assert cell.prefetcher == "pythia[alpha=0.065]"

    def test_learned_axes_are_noops_off_family(self):
        cell = build_cell(
            "nw", "pangloss", {"pythia.alpha": 0.065},
            scale=1.0, budget_fraction=0.02, seed=0, base=REDUCED_CONFIG,
        )
        assert cell.prefetcher == "pangloss"
