"""Tests for the deterministic RNG wrapper."""

import pytest

from repro.common.rng import DeterministicRng, named_stream


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.randint(0, 100) for _ in range(20)] == [
            b.randint(0, 100) for _ in range(20)
        ]

    def test_different_seeds_diverge(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.randint(0, 10**9) for _ in range(8)] != [
            b.randint(0, 10**9) for _ in range(8)
        ]

    def test_seed_is_recorded(self):
        assert DeterministicRng(7).seed == 7


class TestOperations:
    def test_index_range(self):
        rng = DeterministicRng(0)
        for _ in range(100):
            assert 0 <= rng.index(5) < 5

    def test_index_rejects_empty(self):
        with pytest.raises(ValueError):
            DeterministicRng(0).index(0)

    def test_choice_from_singleton(self):
        assert DeterministicRng(0).choice(["only"]) == "only"

    def test_shuffled_is_permutation(self):
        rng = DeterministicRng(3)
        items = list(range(50))
        shuffled = rng.shuffled(items)
        assert sorted(shuffled) == items
        assert items == list(range(50))  # input untouched

    def test_fork_is_stable_and_independent(self):
        base = DeterministicRng(5)
        fork_a1 = base.fork(1)
        fork_a2 = DeterministicRng(5).fork(1)
        fork_b = base.fork(2)
        seq = [fork_a1.randint(0, 1000) for _ in range(5)]
        assert seq == [fork_a2.randint(0, 1000) for _ in range(5)]
        assert seq != [fork_b.randint(0, 1000) for _ in range(5)]


class TestNamedStreams:
    """Seeded streams for every stochastic site in the system."""

    def test_pure_and_stable(self):
        a = named_stream("cbws.history-table", 0xCB35)
        b = named_stream("cbws.history-table", 0xCB35)
        assert [a.randint(0, 10**6) for _ in range(10)] == [
            b.randint(0, 10**6) for _ in range(10)
        ]

    def test_name_and_seed_both_key_the_stream(self):
        base = [named_stream("site-a", 1).randint(0, 10**9) for _ in range(6)]
        other_name = [
            named_stream("site-b", 1).randint(0, 10**9) for _ in range(6)
        ]
        other_seed = [
            named_stream("site-a", 2).randint(0, 10**9) for _ in range(6)
        ]
        assert base != other_name
        assert base != other_seed

    def test_stream_matches_fork_of_crc(self):
        import zlib

        direct = DeterministicRng(9).stream("x")
        forked = DeterministicRng(9).fork(zlib.crc32(b"x"))
        assert [direct.randint(0, 10**6) for _ in range(5)] == [
            forked.randint(0, 10**6) for _ in range(5)
        ]

    def test_history_table_default_evictions_are_reproducible(self):
        # Regression: the CBWS history table's random-eviction path draws
        # from the named stream, so two default-constructed tables evict
        # the same victims in the same order.
        from repro.core.history import DifferentialHistoryTable

        def evictions(table):
            victims = []
            for key in range(table.entries * 3):
                before = set(table._table)
                table.insert(1000 + key, (key,))
                gone = before - set(table._table)
                victims.extend(sorted(gone))
            return victims

        first = evictions(DifferentialHistoryTable())
        second = evictions(DifferentialHistoryTable())
        assert first == second
        assert first  # the table filled and actually evicted
