"""Equivalence tests for the hot-path engine rewrite.

The columnar fast path (:meth:`SimulationEngine.run`), the incremental
GHB delta matcher, and the CBWS/SMS micro-optimizations must all be
behaviour-preserving: every test here pins an optimized implementation
against its readable reference.
"""

from __future__ import annotations

import random

import pytest

from repro import obs
from repro.harness.registry import PREFETCHER_FACTORIES
from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import HierarchyConfig
from repro.prefetchers.ghb import _GLOBAL_KEY, GhbConfig, GhbPrefetcher
from repro.sim.config import REDUCED_CONFIG, CoreConfig, SimConfig
from repro.sim.engine import SimulationEngine, simulate
from repro.trace.columnar import EventColumns
from repro.workloads.base import build_trace, get_workload

EQUIV_WORKLOADS = [
    "stencil-default",
    "429.mcf-ref",
    "462.libquantum-ref",
    "canneal-simlarge",
]


def _trace(name: str, budget: int = 12000):
    return build_trace(get_workload(name), max_accesses=budget, seed=0)


def _config_with_line_size(line_size: int) -> SimConfig:
    core = CoreConfig()
    return SimConfig(
        hierarchy=HierarchyConfig(
            l1=CacheConfig(
                name="L1D", size_bytes=4096, associativity=4,
                line_size=line_size, latency=core.l1_latency, mshrs=4,
            ),
            l2=CacheConfig(
                name="L2", size_bytes=131072, associativity=8,
                line_size=line_size, latency=core.l2_latency, mshrs=32,
            ),
            line_size=line_size,
        ),
        core=core,
    )


class TestFastPathEquivalence:
    """`run` must be bit-identical to `run_reference`."""

    @pytest.mark.parametrize("workload", EQUIV_WORKLOADS)
    @pytest.mark.parametrize("prefetcher_name", sorted(PREFETCHER_FACTORIES))
    def test_bit_identical_results(self, workload, prefetcher_name):
        trace = _trace(workload)
        factory = PREFETCHER_FACTORIES[prefetcher_name]
        fast = SimulationEngine(REDUCED_CONFIG, factory()).run(trace)
        reference = SimulationEngine(
            REDUCED_CONFIG, factory()
        ).run_reference(trace)
        assert fast.to_dict() == reference.to_dict()

    def test_hierarchy_stats_match(self):
        trace = _trace("stencil-default")
        factory = PREFETCHER_FACTORIES["cbws+sms"]
        fast = SimulationEngine(REDUCED_CONFIG, factory())
        reference = SimulationEngine(REDUCED_CONFIG, factory())
        fast.run(trace)
        reference.run_reference(trace)
        assert vars(fast.hierarchy.stats) == vars(reference.hierarchy.stats)

    def test_profiling_does_not_change_results(self):
        trace = _trace("429.mcf-ref")
        factory = PREFETCHER_FACTORIES["cbws"]
        plain = simulate(REDUCED_CONFIG, factory(), trace)
        obs.reset()
        obs.enable()
        try:
            profiled = simulate(REDUCED_CONFIG, factory(), trace)
            snapshot = obs.snapshot()
        finally:
            obs.disable()
            obs.reset()
        assert plain.to_dict() == profiled.to_dict()
        assert snapshot["counters"]["sim.events"] == len(trace.events)


class TestLineSizeDerivation:
    """The engine must derive its line shift from the configured line
    size (it was hardcoded to 6 == 64-byte lines)."""

    def test_line_size_128_halves_distinct_lines(self):
        trace = _trace("stencil-default", budget=4000)
        r64 = simulate(
            _config_with_line_size(64),
            PREFETCHER_FACTORIES["no-prefetch"](),
            trace,
        )
        r128 = simulate(
            _config_with_line_size(128),
            PREFETCHER_FACTORIES["no-prefetch"](),
            trace,
        )
        # Same accesses, but 128-byte lines halve the footprint in lines,
        # so the bigger line must not behave identically to 64-byte lines
        # and must not miss more.
        assert r128.demand_accesses == r64.demand_accesses
        assert r128.l1_misses != r64.l1_misses
        assert r128.llc_misses <= r64.llc_misses

    @pytest.mark.parametrize("line_size", [64, 128])
    @pytest.mark.parametrize("prefetcher_name", sorted(PREFETCHER_FACTORIES))
    def test_fast_path_respects_line_size(self, prefetcher_name, line_size):
        # Every prefetcher config, both line geometries, checked through
        # the differential harness: the fast path must stay bit-identical
        # to the reference engine (results and hierarchy stats).
        from repro.check.diff import config_with_line_size, diff_engine

        trace = _trace("462.libquantum-ref", budget=6000)
        divergence = diff_engine(
            prefetcher_name, trace, config=config_with_line_size(line_size)
        )
        assert divergence is None, str(divergence)


class TestColumnarTrace:
    def test_round_trip_equals_events(self):
        trace = _trace("stencil-default", budget=3000)
        columns = trace.columns()
        assert len(columns) == len(trace.events)
        assert list(columns.iter_events()) == trace.events

    def test_columns_cached(self):
        trace = _trace("stencil-default", budget=1000)
        assert trace.columns() is trace.columns()

    def test_views_are_zero_copy(self):
        columns = EventColumns(_trace("stencil-default", budget=1000).events)
        views = columns.views()
        assert views["icounts"].obj is columns.icounts
        assert len(views["kinds"]) == len(columns)


class TestGhbIncrementalMatcher:
    """The O(1) dict-based matcher must reproduce the naive chain walk."""

    @pytest.mark.parametrize("mode", ["global", "pc"])
    @pytest.mark.parametrize("capacity", [4, 16, 64])
    def test_matches_naive_on_random_streams(self, mode, capacity):
        rng = random.Random(capacity * 1000 + len(mode))
        config = GhbConfig(
            mode=mode, buffer_entries=capacity, history_length=3, degree=3
        )
        prefetcher = GhbPrefetcher(config)
        lines = [rng.randrange(0, 40) for _ in range(10)]
        lines += [i * rng.choice([1, 2, 3]) for i in range(30)]
        pcs = [rng.randrange(0, 5) for _ in range(4)]
        for _ in range(2000):
            line = rng.choice(lines)
            key = _GLOBAL_KEY if mode == "global" else rng.choice(pcs)
            prefetcher.buffer.push(key, line)
            fast = prefetcher._predict_incremental(key, line)
            naive = prefetcher._predict(key)
            assert fast == naive

    def test_pruning_preserves_predictions(self):
        config = GhbConfig(mode="global", buffer_entries=8)
        prefetcher = GhbPrefetcher(config)
        rng = random.Random(7)
        # Far more pushes than 2x capacity so pruning triggers repeatedly.
        for _ in range(500):
            line = rng.choice([0, 4, 8, 12, 16, 20])
            prefetcher.buffer.push(_GLOBAL_KEY, line)
            assert prefetcher._predict_incremental(
                _GLOBAL_KEY, line
            ) == prefetcher._predict(_GLOBAL_KEY)
        history = prefetcher._histories[_GLOBAL_KEY]
        assert len(history.addresses) <= 2 * config.buffer_entries

    def test_reset_clears_matcher_state(self):
        prefetcher = GhbPrefetcher(GhbConfig(mode="global"))
        prefetcher.buffer.push(_GLOBAL_KEY, 1)
        prefetcher._predict_incremental(_GLOBAL_KEY, 1)
        prefetcher.reset()
        assert prefetcher._histories == {}
        assert len(prefetcher.buffer) == 0
