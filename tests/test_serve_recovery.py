"""Crash recovery of the serve broker: journal, replay, disk-full.

The expensive proof — SIGKILL a live ``python -m repro serve`` mid-
batch, restart it on the same cache dir, and show the journaled jobs
are re-admitted with bit-identical results — runs in real subprocesses;
everything else (replay set difference, torn tails, ENOSPC
classification) is unit-level and fast.
"""

from __future__ import annotations

import errno
import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.common.errors import DiskFullError
from repro.exec.cache import ResultCache
from repro.exec.journal import RunJournal
from repro.exec.keys import stable_hash
from repro.serve.client import RetryPolicy, ServeClient
from repro.serve.http import ThreadedServer
from repro.serve.protocol import JobStatus, SimulateRequest
from repro.serve.recovery import (
    ServeJournal,
    journal_path,
    replay_unfinished,
)

BUDGET = 0.02


def request(prefetcher: str = "stride",
            workload: str = "nw") -> SimulateRequest:
    return SimulateRequest(workload=workload, prefetcher=prefetcher,
                           budget_fraction=BUDGET, seed=0)


class TestServeJournalReplay:
    def test_replay_is_accepted_minus_finished(self, tmp_path):
        journal = ServeJournal(journal_path(tmp_path, "broker"))
        journal.job_accepted("j1", "k1", request("stride"))
        journal.job_accepted("j2", "k2", request("cbws"))
        journal.job_finished("j1", "k1", "done")
        journal.close()
        pending = replay_unfinished(journal.path)
        assert [p.prefetcher for p in pending] == ["cbws"]

    def test_missing_journal_means_clean_shutdown(self, tmp_path):
        assert replay_unfinished(tmp_path / "nope.journal.jsonl") == []

    def test_torn_tail_trusts_intact_prefix(self, tmp_path):
        journal = ServeJournal(journal_path(tmp_path, "broker"))
        journal.job_accepted("j1", "k1", request("stride"))
        journal.close()
        with open(journal.path, "ab") as handle:
            handle.write(b"deadbeef {\"kind\": \"job-accepted\", torn")
        pending = replay_unfinished(journal.path)
        assert [p.prefetcher for p in pending] == ["stride"]

    def test_unparseable_request_is_skipped_not_fatal(self, tmp_path):
        path = journal_path(tmp_path, "broker")
        raw = RunJournal(path)
        raw.append("job-accepted", job_id="j1", key="k1",
                   request={"workload": "nw"})  # missing required fields
        raw.close()
        assert replay_unfinished(path) == []

    def test_journals_are_disjoint_per_shard(self, tmp_path):
        assert (journal_path(tmp_path, "s0")
                != journal_path(tmp_path, "s1"))


class TestDiskFullClassification:
    """ENOSPC/EDQUOT on durable writes must fail fast with remediation."""

    def _result(self):
        from repro.sim.results import SimResult

        return SimResult(workload="nw", prefetcher="stride")

    @pytest.mark.parametrize("code", [errno.ENOSPC, errno.EDQUOT])
    def test_cache_put_raises_disk_full(self, tmp_path, monkeypatch, code):
        cache = ResultCache(tmp_path / "results")

        def full(_fd):
            raise OSError(code, os.strerror(code))

        monkeypatch.setattr(os, "fsync", full)
        with pytest.raises(DiskFullError) as caught:
            cache.put("ab" + "0" * 62, self._result())
        assert "repro cache gc" in str(caught.value)

    def test_journal_append_raises_disk_full(self, tmp_path, monkeypatch):
        journal = RunJournal(tmp_path / "run.journal.jsonl")

        def full(_fd):
            raise OSError(errno.ENOSPC, os.strerror(errno.ENOSPC))

        monkeypatch.setattr(os, "fsync", full)
        with pytest.raises(DiskFullError) as caught:
            journal.append("task-done", task_id="t1")
        assert "repro cache gc" in str(caught.value)

    def test_other_oserror_passes_through_unclassified(self, tmp_path,
                                                       monkeypatch):
        cache = ResultCache(tmp_path / "results")

        def io_error(_fd):
            raise OSError(errno.EIO, os.strerror(errno.EIO))

        monkeypatch.setattr(os, "fsync", io_error)
        with pytest.raises(OSError) as caught:
            cache.put("ab" + "0" * 62, self._result())
        assert not isinstance(caught.value, DiskFullError)


class TestInProcessRecovery:
    def test_broker_readmits_journaled_jobs_on_start(self, tmp_path):
        # Forge a crash: a journal with one accepted-but-unfinished job.
        req = request("no-prefetch")
        key = req.sim_key()
        journal = ServeJournal(journal_path(tmp_path, "broker"))
        journal.job_accepted("j-lost", key, req)
        journal.close()

        with ThreadedServer(workers=1, cache_dir=tmp_path,
                            batch_window=0.01) as server:
            client = ServeClient(port=server.port)
            client.wait_until_ready()
            metrics = client.metrics_text()
            assert "repro_serve_jobs_recovered_total 1" in metrics
            # The recovered job runs to completion: its result reaches
            # the shared cache without any client resubmitting it.
            cache = ResultCache(Path(tmp_path) / "results")
            deadline = time.monotonic() + 120
            while cache.get(key) is None:
                assert time.monotonic() < deadline, \
                    "recovered job never produced a cached result"
                time.sleep(0.05)

    def test_clean_drain_discards_journal(self, tmp_path):
        with ThreadedServer(workers=1, cache_dir=tmp_path,
                            batch_window=0.01) as server:
            client = ServeClient(port=server.port)
            client.wait_until_ready()
            view = client.run(request("stride"))
            assert view.status is JobStatus.DONE
            assert journal_path(tmp_path, "broker").exists()
        assert not journal_path(tmp_path, "broker").exists()


def _spawn_serve(cache_dir: Path, extra_env: dict | None = None):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULTS", None)
    env.update(extra_env or {})
    process = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve",
         "--port", "0", "--jobs", "1", "--batch-window", "0.01",
         "--cache-dir", str(cache_dir)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env,
    )
    line = process.stdout.readline()
    assert "listening on http://" in line, line
    port = int(line.rsplit(":", 1)[1].split()[0].rstrip("/)"))
    return process, port


class TestSigkillRecoverySubprocess:
    """The satellite drill: accept N jobs, SIGKILL, restart, compare."""

    REQUESTS = [request("no-prefetch"), request("stride"),
                request("cbws")]

    def test_sigkill_midbatch_then_restart_readmits_bit_identical(
            self, tmp_path):
        cache_dir = tmp_path / "cache"

        process, port = _spawn_serve(cache_dir)
        try:
            client = ServeClient("127.0.0.1", port)
            client.wait_until_ready()
            for req in self.REQUESTS:
                view = client.submit(req)
                assert view.status in (JobStatus.QUEUED, JobStatus.RUNNING,
                                       JobStatus.DONE)
        finally:
            # SIGKILL mid-batch: no drain, no journal cleanup.
            process.kill()
            process.wait(timeout=30)

        journal = journal_path(cache_dir, "broker")
        assert journal.exists(), "SIGKILL must leave the journal behind"
        pending = replay_unfinished(journal)
        assert len(pending) >= 1, "kill landed after every job finished"

        # Restart on the same cache dir: journaled jobs are re-admitted.
        process, port = _spawn_serve(cache_dir)
        try:
            client = ServeClient(
                "127.0.0.1", port,
                retry=RetryPolicy(max_attempts=6, base_delay=0.05,
                                  max_delay=0.5, max_deadline=120.0))
            client.wait_until_ready()
            recovered = {
                name: value for name, value in (
                    line.split() for line in
                    client.metrics_text().splitlines()
                    if line.startswith("repro_serve_jobs_recovered_total"))
            }
            assert float(recovered[
                "repro_serve_jobs_recovered_total"]) >= 1
            digests = {}
            for req in self.REQUESTS:
                view = client.run(req, timeout=120.0)
                assert view.status is JobStatus.DONE
                digests[view.key] = stable_hash(dict(view.result))
            process.send_signal(15)
            process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)

        # Bit-identity: a clean run from an empty cache agrees cell
        # for cell with the crash-recovered results.
        with ThreadedServer(workers=1, cache_dir=tmp_path / "clean",
                            batch_window=0.01) as server:
            clean_client = ServeClient(port=server.port)
            clean_client.wait_until_ready()
            for req in self.REQUESTS:
                view = clean_client.run(req, timeout=120.0)
                assert view.status is JobStatus.DONE
                assert digests[view.key] == stable_hash(dict(view.result))
