"""End-to-end tests for the simulation service.

A module-scoped :class:`~repro.serve.http.ThreadedServer` keeps the
cost of real simulations down: every HTTP test shares one server (and
its result cache), using tiny ``nw`` cells at a 2% access budget.
Broker-level semantics (admission bounds, drain refusal) are tested
synchronously without HTTP, and the SIGTERM drain path runs the real
``python -m repro serve`` in a subprocess.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.serve.broker import AdmissionFull, Broker, Draining
from repro.serve.client import (
    JobNotFound,
    ServeClient,
    ServeClientError,
    ServerBusy,
)
from repro.serve.http import ThreadedServer
from repro.serve.loadgen import (
    SERVE_BENCH_SCHEMA,
    LoadgenConfig,
    build_plan,
    run_loadgen,
)
from repro.serve.protocol import JobStatus, ProtocolError, SimulateRequest
from repro.sim.results import SimResult

#: Cheap enough that a whole module of tests stays in seconds.
BUDGET = 0.02


def request(prefetcher: str = "stride", seed: int = 0,
            workload: str = "nw") -> SimulateRequest:
    return SimulateRequest(workload=workload, prefetcher=prefetcher,
                           budget_fraction=BUDGET, seed=seed)


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("serve-cache")
    with ThreadedServer(host="127.0.0.1", port=0, workers=1,
                        cache_dir=cache_dir, batch_window=0.01) as srv:
        yield srv


@pytest.fixture(scope="module")
def client(server):
    client = ServeClient("127.0.0.1", server.port)
    client.wait_until_ready()
    return client


class TestEndpoints:
    def test_healthz_reports_version(self, client):
        import repro

        health = client.health()
        assert health["status"] == "ok"
        assert health["version"] == repro.__version__
        assert health["draining"] is False

    def test_readyz_while_serving(self, client):
        assert client.ready() is True

    def test_metrics_exposition(self, client):
        from repro.obs.prometheus import parse_prometheus

        client.run(request("no-prefetch"))
        metrics = parse_prometheus(client.metrics_text())
        assert metrics["repro_serve_requests_total"] >= 1
        assert "repro_serve_pending_jobs" in metrics
        assert "repro_serve_workers" in metrics

    def test_unknown_job_404(self, client):
        with pytest.raises(JobNotFound):
            client.job("nope00000000")

    def test_unknown_path_404(self, client):
        status, _, _ = client._request("GET", "/v2/everything")
        assert status == 404

    def test_wrong_method_405(self, client):
        status, _, _ = client._request("GET", "/v1/simulate")
        assert status == 405

    def test_malformed_body_400(self, client):
        status, _, raw = client._request("POST", "/v1/simulate",
                                         body={"workload": "nw"})
        assert status == 400
        assert "version" in json.loads(raw)["error"]["message"]

    def test_unknown_version_400(self, client):
        body = request().to_dict()
        body["version"] = 99
        status, _, raw = client._request("POST", "/v1/simulate", body=body)
        assert status == 400
        assert "unsupported" in json.loads(raw)["error"]["message"]

    def test_unknown_workload_400(self, client):
        with pytest.raises(ProtocolError):
            # Passes wire validation, fails registry resolution: still 400.
            client.submit(request(workload="not-a-workload"))


class TestSimulation:
    def test_submit_and_wait_produces_result(self, client):
        view = client.run(request("stride"))
        assert view.status is JobStatus.DONE
        assert view.error is None
        assert view.wall_seconds is not None and view.wall_seconds >= 0
        result = SimResult.from_dict(view.result)
        assert result.workload == "nw" and result.prefetcher == "stride"
        assert result.instructions > 0

    def test_results_bit_identical_to_cli_run(self, client, tmp_path):
        from repro.harness.runner import GridRunner

        served = SimResult.from_dict(client.run(request("cbws")).result)
        runner = GridRunner(
            budget_fraction=BUDGET,
            seed=0,
            cache_dir=tmp_path,
            jobs=1,
            result_cache=False,
        )
        local = runner.run_grid(["nw"], ["cbws"]).get("nw", "cbws")
        assert served == local

    def test_repeat_request_is_a_cache_hit(self, client):
        first = client.run(request("no-prefetch", seed=11))
        again = client.run(request("no-prefetch", seed=11))
        assert first.status is JobStatus.DONE
        assert again.status is JobStatus.DONE
        assert again.cache_hit is True
        assert again.result == first.result

    def test_concurrent_identical_submits_single_flight(self, client):
        from repro.obs.prometheus import parse_prometheus

        before = parse_prometheus(client.metrics_text())
        fresh = request("stride", seed=23)
        views = []
        errors = []

        def go():
            try:
                views.append(client.run(fresh))
            except Exception as error:  # surfaced in the assertion below
                errors.append(error)

        threads = [threading.Thread(target=go) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(views) == 4
        assert all(view.status is JobStatus.DONE for view in views)
        assert len({view.job_id for view in views}) == 1
        assert len({json.dumps(view.result, sort_keys=True)
                    for view in views}) == 1
        after = parse_prometheus(client.metrics_text())
        dedup = (after["repro_serve_deduplicated_total"]
                 - before.get("repro_serve_deduplicated_total", 0.0))
        executed = (after["repro_serve_cells_executed_total"]
                    - before.get("repro_serve_cells_executed_total", 0.0))
        assert dedup >= 3
        assert executed <= 1

    def test_sse_stream_replays_to_terminal(self, client):
        view = client.submit(request("stride", seed=31))
        events = list(client.stream_events(view.job_id, timeout=60))
        names = [event["_event"] for event in events]
        assert names[0] == "queued"
        assert names[-1] == "terminal"
        terminal = events[-1]
        assert terminal["job"]["status"] in ("done", "failed")
        assert terminal["job"]["job_id"] == view.job_id


class TestBackpressureHttp:
    def test_admission_overflow_is_429_with_retry_after(self, tmp_path):
        # max_pending=0 refuses every submission deterministically.
        with ThreadedServer(host="127.0.0.1", port=0, workers=1,
                            cache_dir=tmp_path, max_pending=0) as srv:
            client = ServeClient("127.0.0.1", srv.port)
            client.wait_until_ready()
            with pytest.raises(ServerBusy) as exc:
                client.submit(request())
            assert exc.value.retry_after >= 1.0


class TestBrokerSemantics:
    """Admission logic, synchronously, without HTTP or a batcher."""

    def test_single_flight_join_does_not_consume_admission(self, tmp_path):
        broker = Broker(workers=1, cache_dir=tmp_path, max_pending=2)
        job1, dedup1 = broker.submit(request("stride"))
        job2, dedup2 = broker.submit(request("stride"))
        assert dedup1 is False and dedup2 is True
        assert job2 is job1
        assert broker.counters["serve.deduplicated"] == 1
        # The join did not consume the second admission slot.
        job3, dedup3 = broker.submit(request("cbws"))
        assert dedup3 is False and job3 is not job1

    def test_overflow_raises_admission_full(self, tmp_path):
        broker = Broker(workers=1, cache_dir=tmp_path, max_pending=2)
        broker.submit(request("stride"))
        broker.submit(request("cbws"))
        with pytest.raises(AdmissionFull) as exc:
            broker.submit(request("no-prefetch"))
        assert exc.value.retry_after >= 1.0
        assert broker.counters["serve.rejected"] == 1

    def test_draining_refuses_admission(self, tmp_path):
        broker = Broker(workers=1, cache_dir=tmp_path)
        broker.begin_drain()
        with pytest.raises(Draining):
            broker.submit(request())

    def test_bad_workload_fails_at_admission(self, tmp_path):
        from repro.common.errors import ReproError

        broker = Broker(workers=1, cache_dir=tmp_path)
        with pytest.raises(ReproError):
            broker.submit(request(workload="not-a-workload"))
        # Nothing was admitted: the queue stays empty.
        assert broker._queue.qsize() == 0


class TestLoadgen:
    def test_plan_is_seeded_and_stable(self):
        config = LoadgenConfig.quick(seed=3)
        assert build_plan(config) == build_plan(config)
        other = build_plan(LoadgenConfig.quick(seed=4))
        assert build_plan(config) != other

    def test_quick_loadgen_exercises_single_flight(self, server, tmp_path):
        config = LoadgenConfig(
            port=server.port,
            requests=6,
            concurrency=2,
            duplicate_ratio=1.0,
            seed=5,
            workloads=("nw",),
            prefetchers=("no-prefetch", "stride"),
            budget_fraction=BUDGET,
        )
        document = run_loadgen(config)
        assert document["schema"] == SERVE_BENCH_SCHEMA
        totals = document["totals"]
        assert totals["failed"] == 0
        assert totals["dedup_hits"] > 0
        assert totals["dedup_hit_rate"] > 0
        assert totals["submissions"] == 12  # 6 items, every one paired
        latency = document["latency_seconds"]
        assert latency["p50"] <= latency["p95"] <= latency["p99"]

        from repro.harness.bench import load_bench, write_bench

        out = tmp_path / "BENCH_serve.json"
        write_bench(document, out)
        assert load_bench(out)["schema"] == SERVE_BENCH_SCHEMA


class TestSigtermDrain:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro", "serve",
             "--port", "0", "--jobs", "1",
             "--cache-dir", str(tmp_path / "cache")],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            line = process.stdout.readline()
            assert "listening on http://" in line, line
            port = int(line.rsplit(":", 1)[1].split()[0].rstrip("/)"))
            client = ServeClient("127.0.0.1", port)
            client.wait_until_ready()
            # Leave a job in flight so the drain actually has work to do.
            view = client.submit(request("no-prefetch", seed=47))
            assert view.status in (JobStatus.QUEUED, JobStatus.RUNNING,
                                   JobStatus.DONE)
            process.send_signal(signal.SIGTERM)
            output = process.stdout.read()
            code = process.wait(timeout=120)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)
        assert code == 0, output
        assert "draining" in output
        assert "drained cleanly" in output
        # The drain flushed broker telemetry next to the cache.
        stats = json.loads(
            (tmp_path / "cache" / "serve-stats.json").read_text())
        assert stats["counters"]["serve.requests"] >= 1


class TestCliSubcommands:
    def test_submit_roundtrip_through_cli(self, server, capsys):
        from repro.cli import main

        code = main([
            "submit", "--workload", "nw", "--prefetcher", "stride",
            "--budget-fraction", str(BUDGET),
            "--port", str(server.port),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "nw" in out and "stride" in out and "IPC" in out

    def test_loadgen_quick_through_cli(self, server, tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "BENCH_serve.json"
        code = main([
            "loadgen", "--quick", "--port", str(server.port),
            "--out", str(out_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "dedup hit rate" in out
        document = json.loads(out_path.read_text())
        assert document["schema"] == SERVE_BENCH_SCHEMA
        assert document["totals"]["dedup_hits"] > 0


class TestRetryAfterEstimate:
    """The 429 Retry-After hint: sane on cold start, clamped both ways."""

    def make_broker(self, tmp_path, workers=1):
        return Broker(workers=workers, cache_dir=tmp_path, max_pending=0)

    def test_cold_start_scales_backlog_not_flat_guess(self, tmp_path):
        from repro.serve.broker import COLD_START_CELL_SECONDS

        broker = self.make_broker(tmp_path)
        # No job has ever finished; four waves of backlog on one worker.
        broker._pending = 4
        estimate = broker._retry_after_estimate()
        assert estimate == pytest.approx(COLD_START_CELL_SECONDS * 4)

    def test_cold_start_empty_queue_still_meets_floor(self, tmp_path):
        from repro.serve.broker import RETRY_AFTER_FLOOR

        broker = self.make_broker(tmp_path)
        assert broker._retry_after_estimate() >= RETRY_AFTER_FLOOR

    def test_fast_jobs_clamp_to_floor(self, tmp_path):
        from repro.serve.broker import RETRY_AFTER_FLOOR

        broker = self.make_broker(tmp_path)
        broker._recent_seconds.extend([0.01, 0.02, 0.01])
        broker._pending = 1
        assert broker._retry_after_estimate() == RETRY_AFTER_FLOOR

    def test_slow_backlog_clamps_to_cap(self, tmp_path):
        from repro.serve.broker import RETRY_AFTER_CAP

        broker = self.make_broker(tmp_path)
        broker._recent_seconds.extend([30.0, 45.0])
        broker._pending = 64
        assert broker._retry_after_estimate() == RETRY_AFTER_CAP

    def test_warm_estimate_is_mean_times_waves(self, tmp_path):
        broker = self.make_broker(tmp_path, workers=2)
        broker._recent_seconds.extend([2.0, 4.0])
        broker._pending = 4  # two waves on two workers
        assert broker._retry_after_estimate() == pytest.approx(6.0)
