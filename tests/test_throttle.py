"""Tests for the feedback-directed throttling wrapper."""

import pytest

from repro.common.errors import ConfigError
from repro.prefetchers.base import DemandInfo, Prefetcher
from repro.prefetchers.throttle import ThrottleConfig, ThrottledPrefetcher


def access(line):
    return DemandInfo(
        pc=0x400000, line=line, address=line * 64,
        is_write=False, l1_hit=False, l2_hit=False,
    )


class _FixedPrefetcher(Prefetcher):
    """Predicts `fan` lines ahead of every access."""

    name = "fixed"

    def __init__(self, fan=4, offset=1000):
        self.fan = fan
        self.offset = offset

    def on_access(self, info):
        return [info.line + self.offset + k for k in range(self.fan)]


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            ThrottleConfig(interval_accesses=0)
        with pytest.raises(ConfigError):
            ThrottleConfig(quota_levels=())
        with pytest.raises(ConfigError):
            ThrottleConfig(start_level=9)
        with pytest.raises(ConfigError):
            ThrottleConfig(low_accuracy=0.9, high_accuracy=0.5)
        with pytest.raises(ConfigError):
            ThrottleConfig(quota_levels=(0.0, 1.0))


class TestQuota:
    def test_quota_limits_batch(self):
        throttled = ThrottledPrefetcher(
            _FixedPrefetcher(fan=8),
            ThrottleConfig(quota_levels=(0.25, 1.0), start_level=0),
        )
        assert len(throttled.on_access(access(0))) == 2

    def test_full_quota_passes_everything(self):
        throttled = ThrottledPrefetcher(
            _FixedPrefetcher(fan=8),
            ThrottleConfig(quota_levels=(1.0,), start_level=0),
        )
        assert len(throttled.on_access(access(0))) == 8

    def test_at_least_one_candidate_survives(self):
        throttled = ThrottledPrefetcher(
            _FixedPrefetcher(fan=2),
            ThrottleConfig(quota_levels=(0.25,), start_level=0),
        )
        assert len(throttled.on_access(access(0))) == 1


class TestFeedback:
    def test_wasteful_prefetcher_gets_throttled_down(self):
        config = ThrottleConfig(interval_accesses=64)
        throttled = ThrottledPrefetcher(
            _FixedPrefetcher(fan=4, offset=10**6), config
        )
        start = throttled.level
        # The predicted lines are never demanded: accuracy 0 each
        # interval, so the level falls to the floor.
        for k in range(64 * 4):
            throttled.on_access(access(k))
        assert throttled.level < start
        assert throttled.level == 0
        assert throttled.feedback_log
        assert throttled.feedback_log[-1][1] == 0.0

    def test_accurate_prefetcher_gets_promoted(self):
        config = ThrottleConfig(interval_accesses=64, start_level=0)
        throttled = ThrottledPrefetcher(
            _FixedPrefetcher(fan=1, offset=1), config
        )
        # Unit-stride consumer: every predicted line (line+1) is demanded
        # on the next access, so accuracy is ~1.0 per interval.
        for k in range(64 * 4):
            throttled.on_access(access(k))
        assert throttled.level == len(config.quota_levels) - 1

    def test_block_callbacks_forwarded(self):
        calls = []

        class Recorder(Prefetcher):
            name = "rec"

            def on_block_begin(self, block_id):
                calls.append(block_id)

            def on_block_end(self, block_id):
                return [42]

        throttled = ThrottledPrefetcher(Recorder())
        throttled.on_block_begin(5)
        assert calls == [5]
        assert throttled.on_block_end(5) == [42]

    def test_reset(self):
        throttled = ThrottledPrefetcher(
            _FixedPrefetcher(), ThrottleConfig(interval_accesses=8)
        )
        for k in range(40):
            throttled.on_access(access(k))
        throttled.reset()
        assert throttled.feedback_log == []
        assert throttled.level == ThrottleConfig().start_level

    def test_name_and_storage(self):
        throttled = ThrottledPrefetcher(_FixedPrefetcher())
        assert throttled.name == "fdp(fixed)"
        assert throttled.storage_bits() > _FixedPrefetcher().storage_bits()
