"""Tests for trace event types."""

from repro.trace.events import (
    BLOCK_BEGIN,
    BLOCK_END,
    MEMORY_ACCESS,
    BlockBegin,
    BlockEnd,
    MemoryAccess,
)


class TestMemoryAccess:
    def test_kind(self):
        assert MemoryAccess(0, 0x400000, 128, False).kind == MEMORY_ACCESS

    def test_line_conversion(self):
        assert MemoryAccess(0, 0, 0, False).line == 0
        assert MemoryAccess(0, 0, 63, False).line == 0
        assert MemoryAccess(0, 0, 64, False).line == 1
        assert MemoryAccess(0, 0, 8192, False).line == 128

    def test_equality_and_hash(self):
        a = MemoryAccess(5, 0x10, 256, True)
        b = MemoryAccess(5, 0x10, 256, True)
        c = MemoryAccess(5, 0x10, 256, False)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_repr_distinguishes_loads_and_stores(self):
        assert "LD" in repr(MemoryAccess(0, 0, 0, False))
        assert "ST" in repr(MemoryAccess(0, 0, 0, True))


class TestBlockMarkers:
    def test_kinds(self):
        assert BlockBegin(0, 1).kind == BLOCK_BEGIN
        assert BlockEnd(0, 1).kind == BLOCK_END

    def test_begin_and_end_are_not_equal(self):
        assert BlockBegin(3, 7) != BlockEnd(3, 7)

    def test_equality_within_type(self):
        assert BlockBegin(3, 7) == BlockBegin(3, 7)
        assert BlockBegin(3, 7) != BlockBegin(3, 8)
        assert BlockBegin(3, 7) != BlockBegin(4, 7)

    def test_hashable(self):
        markers = {BlockBegin(0, 1), BlockEnd(0, 1), BlockBegin(0, 1)}
        assert len(markers) == 2
