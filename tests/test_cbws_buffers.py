"""Tests for the CBWS hardware buffers (Figure 8)."""

import pytest

from repro.common.errors import ConfigError
from repro.core.buffers import CurrentCbwsBuffer, LastBlocksBuffer


class TestCurrentCbwsBuffer:
    def test_push_returns_append_position(self):
        buffer = CurrentCbwsBuffer(capacity=4)
        assert buffer.push(100) == 0
        assert buffer.push(200) == 1
        assert buffer.push(100) is None  # repeat
        assert buffer.push(300) == 2

    def test_capacity_enforced(self):
        buffer = CurrentCbwsBuffer(capacity=2)
        buffer.push(1)
        buffer.push(2)
        assert buffer.push(3) is None
        assert buffer.overflowed
        assert buffer.snapshot() == (1, 2)

    def test_address_truncation_to_32_bits(self):
        buffer = CurrentCbwsBuffer(capacity=4, line_addr_bits=32)
        buffer.push((1 << 40) | 123)
        assert buffer.snapshot() == (123,)

    def test_truncation_can_alias(self):
        """Two far-apart lines with equal low bits alias in hardware —
        the second push is treated as a repeat."""
        buffer = CurrentCbwsBuffer(capacity=4, line_addr_bits=8)
        assert buffer.push(0x101) == 0
        assert buffer.push(0x201) is None  # same low 8 bits

    def test_clear(self):
        buffer = CurrentCbwsBuffer(capacity=2)
        buffer.push(1)
        buffer.push(2)
        buffer.push(3)
        buffer.clear()
        assert len(buffer) == 0
        assert not buffer.overflowed
        assert buffer.push(9) == 0

    def test_indexing(self):
        buffer = CurrentCbwsBuffer(capacity=4)
        buffer.push(7)
        assert buffer[0] == 7

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigError):
            CurrentCbwsBuffer(capacity=0)


class TestLastBlocksBuffer:
    def test_step_ordering(self):
        buffer = LastBlocksBuffer(max_step=3)
        buffer.push((1,))
        buffer.push((2,))
        buffer.push((3,))
        assert buffer.get(1) == (3,)
        assert buffer.get(2) == (2,)
        assert buffer.get(3) == (1,)

    def test_depth_bounded(self):
        buffer = LastBlocksBuffer(max_step=2)
        for value in range(5):
            buffer.push((value,))
        assert len(buffer) == 2
        assert buffer.get(1) == (4,)
        assert buffer.get(2) == (3,)

    def test_missing_steps_return_none(self):
        buffer = LastBlocksBuffer(max_step=4)
        buffer.push((1,))
        assert buffer.get(1) == (1,)
        assert buffer.get(2) is None

    def test_step_bounds_enforced(self):
        buffer = LastBlocksBuffer(max_step=2)
        with pytest.raises(ConfigError):
            buffer.get(0)
        with pytest.raises(ConfigError):
            buffer.get(3)

    def test_clear(self):
        buffer = LastBlocksBuffer(max_step=2)
        buffer.push((1,))
        buffer.clear()
        assert buffer.get(1) is None
        assert len(buffer) == 0

    def test_zero_depth_rejected(self):
        with pytest.raises(ConfigError):
            LastBlocksBuffer(max_step=0)
