"""Wire-schema tests for :mod:`repro.serve.protocol`.

The golden fixtures under ``tests/fixtures/serve/`` pin the exact JSON
shape of version-1 requests and job views: a parse → serialize round
trip must reproduce each fixture byte-for-byte (modulo key order),
so any accidental wire change fails here before it breaks a client.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, strategies as st

from repro.serve.protocol import (
    PROTOCOL_VERSION,
    JobStatus,
    JobView,
    ProtocolError,
    SimulateRequest,
    dumps,
    error_body,
    loads,
)
from repro.sim.config import REDUCED_CONFIG

FIXTURES = Path(__file__).parent / "fixtures" / "serve"


def load_fixture(name: str) -> dict:
    return json.loads((FIXTURES / name).read_text())


class TestGoldenFixtures:
    @pytest.mark.parametrize(
        "name", ["request_minimal.json", "request_full.json"])
    def test_request_round_trips_exactly(self, name):
        document = load_fixture(name)
        request = SimulateRequest.from_dict(document)
        assert request.to_dict() == document

    @pytest.mark.parametrize(
        "name", ["job_view_done.json", "job_view_failed.json"])
    def test_job_view_round_trips_exactly(self, name):
        document = load_fixture(name)
        view = JobView.from_dict(document)
        assert view.to_dict() == document

    def test_full_request_resolves_overrides(self):
        request = SimulateRequest.from_dict(load_fixture("request_full.json"))
        config = request.resolve_config()
        assert config.hierarchy.l1.size_bytes == 4 * 1024
        assert config.hierarchy.l2.size_bytes == 128 * 1024
        assert config.core.rob_entries == 64
        assert config.prefetch.issue_interval == 4
        assert config.prefetch.queue_capacity == 16

    def test_minimal_request_resolves_to_base(self):
        request = SimulateRequest.from_dict(
            load_fixture("request_minimal.json"))
        assert request.resolve_config() == REDUCED_CONFIG


class TestRequestValidation:
    def _minimal(self, **overrides) -> dict:
        document = load_fixture("request_minimal.json")
        document.update(overrides)
        return document

    def test_missing_version_rejected(self):
        document = self._minimal()
        del document["version"]
        with pytest.raises(ProtocolError, match="version"):
            SimulateRequest.from_dict(document)

    @pytest.mark.parametrize("version", [0, 2, 99, -1])
    def test_unknown_version_rejected(self, version):
        with pytest.raises(ProtocolError, match="unsupported"):
            SimulateRequest.from_dict(self._minimal(version=version))

    @pytest.mark.parametrize("version", ["1", 1.0, True, None])
    def test_non_integer_version_rejected(self, version):
        with pytest.raises(ProtocolError):
            SimulateRequest.from_dict(self._minimal(version=version))

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ProtocolError, match="unknown request field"):
            SimulateRequest.from_dict(self._minimal(bogus=1))

    def test_unknown_config_key_rejected(self):
        with pytest.raises(ProtocolError, match="unknown config field"):
            SimulateRequest.from_dict(
                self._minimal(config={"l3_kb": 1024}))

    def test_unknown_core_override_rejected(self):
        with pytest.raises(ProtocolError, match="no overridable field"):
            SimulateRequest.from_dict(
                self._minimal(config={"core": {"warp_drive": 9}}))

    @pytest.mark.parametrize("payload", [
        None, [], "x", 42,
    ])
    def test_non_object_body_rejected(self, payload):
        with pytest.raises(ProtocolError, match="JSON object"):
            SimulateRequest.from_dict(payload)

    @pytest.mark.parametrize("field,value", [
        ("workload", ""),
        ("workload", 3),
        ("prefetcher", None),
        ("scale", 0),
        ("scale", -1.0),
        ("scale", float("inf")),
        ("scale", "big"),
        ("budget_fraction", 0.0),
        ("budget_fraction", 1.5),
        ("seed", 1.5),
        ("seed", True),
    ])
    def test_bad_field_values_rejected(self, field, value):
        with pytest.raises(ProtocolError):
            SimulateRequest.from_dict(self._minimal(**{field: value}))

    @pytest.mark.parametrize("config", [
        {"l1_kb": 0}, {"l1_kb": -4}, {"l2_kb": "128"},
        {"core": {"rob_entries": 1.5}}, {"core": []},
        "not-an-object",
    ])
    def test_bad_config_values_rejected(self, config):
        with pytest.raises(ProtocolError):
            SimulateRequest.from_dict(self._minimal(config=config))

    def test_override_order_does_not_matter(self):
        ab = SimulateRequest.from_dict(self._minimal(
            config={"prefetch": {"issue_interval": 4,
                                 "queue_capacity": 16}}))
        ba = SimulateRequest.from_dict(self._minimal(
            config={"prefetch": {"queue_capacity": 16,
                                 "issue_interval": 4}}))
        assert ab == ba
        assert ab.sim_key() == ba.sim_key()

    def test_equivalent_spellings_share_a_key(self):
        base = load_fixture("request_minimal.json")
        implicit = SimulateRequest.from_dict(base)
        spelled = SimulateRequest.from_dict(
            {**base, "config": {"l1_kb": 4, "l2_kb": 128}})
        # The reduced machine already has a 4 KB L1 / 128 KB L2, so the
        # explicit override resolves to the same SimConfig and key.
        assert implicit.sim_key() == spelled.sim_key()


class TestJobViewValidation:
    def _done(self, **overrides) -> dict:
        document = load_fixture("job_view_done.json")
        document.update(overrides)
        return document

    def test_unknown_status_rejected(self):
        with pytest.raises(ProtocolError, match="unknown job status"):
            JobView.from_dict(self._done(status="exploded"))

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError, match="unknown job field"):
            JobView.from_dict(self._done(surprise=True))

    @pytest.mark.parametrize("field,value", [
        ("deduplicated", "yes"),
        ("cache_hit", 1),
        ("wall_seconds", -1.0),
        ("wall_seconds", "fast"),
        ("result", [1, 2]),
        ("error", 500),
        ("job_id", ""),
    ])
    def test_bad_field_values_rejected(self, field, value):
        with pytest.raises(ProtocolError):
            JobView.from_dict(self._done(**{field: value}))

    def test_terminal_property(self):
        assert JobStatus.DONE.terminal and JobStatus.FAILED.terminal
        assert not JobStatus.QUEUED.terminal
        assert not JobStatus.RUNNING.terminal


class TestEncoding:
    def test_dumps_loads_round_trip(self):
        document = error_body("busy", "queue full", retry_after=2.5)
        again = loads(dumps(document))
        assert again == document
        assert again["error"]["retry_after_seconds"] == 2.5

    def test_loads_rejects_non_json(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            loads(b"{nope")

    def test_loads_rejects_non_utf8(self):
        with pytest.raises(ProtocolError):
            loads(b"\xff\xfe{}")


_WORKLOADS = st.sampled_from(["nw", "stencil-default", "429.mcf-ref"])
_PREFETCHERS = st.sampled_from(["no-prefetch", "stride", "cbws", "cbws+sms"])
_OVERRIDE_INTS = st.integers(min_value=1, max_value=1 << 16)


def _requests() -> st.SearchStrategy[SimulateRequest]:
    return st.builds(
        SimulateRequest,
        workload=_WORKLOADS,
        prefetcher=_PREFETCHERS,
        scale=st.floats(min_value=0.01, max_value=8.0,
                        allow_nan=False, allow_infinity=False),
        budget_fraction=st.floats(min_value=0.001, max_value=1.0,
                                  allow_nan=False, allow_infinity=False),
        seed=st.integers(min_value=0, max_value=2**31),
        l1_kb=st.one_of(st.none(), st.integers(min_value=1, max_value=1024)),
        l2_kb=st.one_of(st.none(), st.integers(min_value=1, max_value=4096)),
        core=st.dictionaries(
            st.sampled_from(["rob_entries", "width"]),
            _OVERRIDE_INTS, max_size=2,
        ).map(lambda d: tuple(sorted(d.items()))),
        prefetch=st.dictionaries(
            st.sampled_from(["queue_capacity", "issue_interval",
                             "max_in_flight"]),
            _OVERRIDE_INTS, max_size=3,
        ).map(lambda d: tuple(sorted(d.items()))),
    )


class TestPropertyRoundTrip:
    @given(request=_requests())
    def test_request_round_trip(self, request):
        wire = loads(dumps(request.to_dict()))
        assert SimulateRequest.from_dict(wire) == request

    @given(
        status=st.sampled_from(JobStatus),
        deduplicated=st.booleans(),
        cache_hit=st.one_of(st.none(), st.booleans()),
        wall_seconds=st.one_of(
            st.none(),
            st.floats(min_value=0.0, max_value=1e6,
                      allow_nan=False, allow_infinity=False)),
        error=st.one_of(st.none(), st.text(max_size=40)),
    )
    def test_job_view_round_trip(self, status, deduplicated, cache_hit,
                                 wall_seconds, error):
        view = JobView(
            job_id="abc123",
            status=status,
            workload="nw",
            prefetcher="stride",
            key="f" * 32,
            deduplicated=deduplicated,
            cache_hit=cache_hit,
            wall_seconds=wall_seconds,
            error=error,
        )
        wire = loads(dumps(view.to_dict()))
        assert JobView.from_dict(wire) == view

    @given(request=_requests())
    def test_version_is_always_current(self, request):
        assert request.to_dict()["version"] == PROTOCOL_VERSION
