"""Tests for the RPT stride prefetcher."""

import pytest

from repro.common.errors import ConfigError
from repro.prefetchers.base import DemandInfo
from repro.prefetchers.stride import (
    StrideConfig,
    StridePrefetcher,
    _INITIAL,
    _NO_PRED,
    _STEADY,
    _TRANSIENT,
)


def access(pc, address, l1_hit=False):
    return DemandInfo(
        pc=pc, line=address >> 6, address=address,
        is_write=False, l1_hit=l1_hit, l2_hit=False,
    )


class TestConfig:
    def test_defaults_match_table2(self):
        config = StrideConfig()
        assert config.table_entries == 256
        assert config.pc_bits == 48

    def test_invalid_rejected(self):
        with pytest.raises(ConfigError):
            StrideConfig(table_entries=0)
        with pytest.raises(ConfigError):
            StrideConfig(degree=0)


class TestStateMachine:
    def test_warmup_takes_three_accesses(self):
        prefetcher = StridePrefetcher()
        assert prefetcher.on_access(access(1, 0)) == []
        assert prefetcher.on_access(access(1, 1024)) == []
        # Third access confirms the stride: prediction fires.
        assert prefetcher.on_access(access(1, 2048)) != []
        assert prefetcher.entry_state(1) == (1024, _STEADY)

    def test_stride_change_silences(self):
        prefetcher = StridePrefetcher()
        for address in (0, 1024, 2048):
            prefetcher.on_access(access(1, address))
        assert prefetcher.on_access(access(1, 2048 + 640)) == []
        assert prefetcher.entry_state(1)[1] == _INITIAL

    def test_two_changes_reach_no_pred(self):
        prefetcher = StridePrefetcher()
        prefetcher.on_access(access(1, 0))
        prefetcher.on_access(access(1, 100))   # stride 100, TRANSIENT
        prefetcher.on_access(access(1, 350))   # stride 250, NO_PRED
        assert prefetcher.entry_state(1) == (250, _NO_PRED)

    def test_recovery_from_no_pred(self):
        prefetcher = StridePrefetcher()
        prefetcher.on_access(access(1, 0))
        prefetcher.on_access(access(1, 100))
        prefetcher.on_access(access(1, 350))    # NO_PRED, stride 250
        prefetcher.on_access(access(1, 600))    # matched -> TRANSIENT
        assert prefetcher.entry_state(1)[1] == _TRANSIENT
        assert prefetcher.on_access(access(1, 850)) != []  # STEADY again


class TestPredictions:
    def test_predicts_degree_strides_ahead(self):
        prefetcher = StridePrefetcher(StrideConfig(degree=2))
        for address in (0, 1024):
            prefetcher.on_access(access(1, address))
        candidates = prefetcher.on_access(access(1, 2048))
        assert candidates == [(2048 + 1024) >> 6, (2048 + 2048) >> 6]

    def test_unit_word_stride_mostly_stays_in_line(self):
        """The word-granularity property: an 8-byte stride with degree 2
        reaches only 16 bytes ahead, so no new line is prefetched except
        at the line boundary — the classic RPT is weak on dense
        streaming code."""
        prefetcher = StridePrefetcher(StrideConfig(degree=2))
        per_access = [
            prefetcher.on_access(access(1, k * 8)) for k in range(8)
        ]
        # Steady from k=2; only the last two accesses (bytes 48 and 56,
        # within 16 bytes of the boundary) reach into the next line.
        assert all(candidates == [] for candidates in per_access[:6])
        assert per_access[6] == [1]
        assert per_access[7] == [1]

    def test_zero_stride_never_predicts(self):
        prefetcher = StridePrefetcher()
        for _ in range(5):
            candidates = prefetcher.on_access(access(1, 4096))
        assert candidates == []

    def test_negative_stride_supported(self):
        prefetcher = StridePrefetcher(StrideConfig(degree=1))
        for address in (8192, 7168, 6144):
            candidates = prefetcher.on_access(access(1, address))
        assert candidates == [5120 >> 6]

    def test_streams_tracked_independently_per_pc(self):
        prefetcher = StridePrefetcher()
        for k in range(3):
            prefetcher.on_access(access(1, k * 1024))
            prefetcher.on_access(access(2, 65536 + k * 2048))
        assert prefetcher.entry_state(1)[0] == 1024
        assert prefetcher.entry_state(2)[0] == 2048


class TestCapacity:
    def test_lru_replacement_of_streams(self):
        prefetcher = StridePrefetcher(StrideConfig(table_entries=2))
        prefetcher.on_access(access(1, 0))
        prefetcher.on_access(access(2, 0))
        prefetcher.on_access(access(3, 0))  # evicts pc=1
        assert prefetcher.entry_state(1) is None
        assert prefetcher.entry_state(2) is not None

    def test_reset(self):
        prefetcher = StridePrefetcher()
        prefetcher.on_access(access(1, 0))
        prefetcher.reset()
        assert prefetcher.entry_state(1) is None

    def test_storage_matches_table3(self):
        assert StridePrefetcher().storage_bits() == 18432  # 2.25 KB
