"""Campaign execution: journaling, crash/resume, bit-identical reports."""

import json

import pytest

from repro.campaign.report import build_report, write_report
from repro.campaign.runner import (
    list_campaigns,
    replay_campaign,
    run_campaign,
)
from repro.campaign.spec import SPEC_VERSION, parse_spec
from repro.common.errors import CampaignError, InjectedCrash
from repro.exec import faults
from repro.exec.cache import ResultCache
from repro.exec.faults import parse_fault_plan


@pytest.fixture(autouse=True)
def _no_lingering_faults():
    faults.deactivate()
    yield
    faults.deactivate()


def tiny_spec(**overrides):
    """2 workloads-free tiny campaign: 1 workload x 2 prefetchers x 4x2."""
    document = {
        "version": SPEC_VERSION,
        "name": "tiny",
        "base": {
            "workloads": ["nw"],
            "prefetchers": ["stride", "cbws"],
            "budget_fraction": 0.02,
        },
        "axes": [
            {"name": "cbws.table_entries", "log2_range": [1, 8]},
            {"name": "l2_kb", "values": [64, 128]},
        ],
    }
    document.update(overrides)
    return parse_spec(document)


def flip_spec():
    """A spec whose CBWS-vs-SMS winner genuinely flips along the
    history-size axis (md-linpack: SMS wins through 32 entries)."""
    return parse_spec({
        "version": SPEC_VERSION,
        "name": "flip",
        "base": {
            "workloads": ["md-linpack"],
            "prefetchers": ["sms", "cbws"],
            "budget_fraction": 0.05,
        },
        "axes": [{"name": "cbws.table_entries", "log2_range": [1, 64]}],
        "refine": {
            "metric": "ipc",
            "axes": ["cbws.table_entries"],
            "competitors": ["cbws", "sms"],
            "max_cells": 16,
            "max_waves": 2,
        },
    })


class TestRun:
    def test_complete_run_journal_and_report(self, tmp_path):
        outcome = run_campaign(tiny_spec(), tmp_path)
        assert outcome.status == "complete"
        # stride collapses along the 4-value cbws axis: 2 unique stride
        # cells + 8 cbws cells.
        assert outcome.cells_total == 10
        assert len(outcome.results) == 10
        assert not outcome.quarantined_keys

        state = replay_campaign(outcome.directory / "journal.jsonl")
        assert state.status == "complete"
        assert state.wave_keys[0] == [
            cell.key() for cell in outcome.waves[0].cells]
        assert state.completed_keys == set(outcome.results)

        artifacts = write_report(outcome)
        report = json.loads(artifacts["json"].read_text())
        assert report["schema"] == "repro.campaign"
        assert report["planning"]["totals"]["unique"] == 10
        html = artifacts["html"].read_text()
        assert "<svg" in html and "campaign" in html.lower()

    def test_report_excludes_run_dependent_fields(self, tmp_path):
        outcome = run_campaign(tiny_spec(), tmp_path)
        report = build_report(outcome)
        text = json.dumps(report)
        assert outcome.campaign_id not in text
        assert "wall_seconds" not in text
        assert "cache_hits" not in text

    def test_unknown_executor_rejected(self, tmp_path):
        with pytest.raises(CampaignError, match="unknown executor"):
            run_campaign(tiny_spec(), tmp_path, executor="carrier-pigeon")

    def test_fresh_run_refuses_existing_id(self, tmp_path):
        run_campaign(tiny_spec(), tmp_path, campaign_id="dup")
        with pytest.raises(CampaignError, match="already exists"):
            run_campaign(tiny_spec(), tmp_path, campaign_id="dup")

    def test_list_campaigns_reports_status(self, tmp_path):
        run_campaign(tiny_spec(), tmp_path, campaign_id="one")
        rows = list_campaigns(tmp_path)
        assert [row["campaign_id"] for row in rows] == ["one"]
        assert rows[0]["status"] == "complete"
        assert rows[0]["cells_done"] == rows[0]["cells_planned"] == 10


class TestResume:
    def test_resume_needs_id_and_known_campaign(self, tmp_path):
        with pytest.raises(CampaignError, match="needs the campaign id"):
            run_campaign(tiny_spec(), tmp_path, resume=True)
        with pytest.raises(CampaignError, match="no campaign"):
            run_campaign(tiny_spec(), tmp_path, resume=True,
                         campaign_id="ghost")

    def test_resume_rejects_different_spec(self, tmp_path):
        run_campaign(tiny_spec(), tmp_path, campaign_id="c")
        other = tiny_spec(name="other")
        with pytest.raises(CampaignError, match="different.*spec"):
            run_campaign(other, tmp_path, resume=True, campaign_id="c")

    def test_resume_of_complete_run_recomputes_zero(self, tmp_path):
        first = run_campaign(tiny_spec(), tmp_path, campaign_id="c")
        again = run_campaign(tiny_spec(), tmp_path, resume=True,
                             campaign_id="c")
        assert again.execution["sims_run"] == 0
        assert again.execution["cache_hits"] == first.cells_total
        assert build_report(again) == build_report(first)

    def test_crash_mid_wave_then_resume_is_bit_identical(self, tmp_path):
        # Uninterrupted control run in its own cache dir.
        control_dir = tmp_path / "control"
        control = run_campaign(tiny_spec(), control_dir, campaign_id="c")
        control_report = json.dumps(build_report(control), sort_keys=True)

        # Crash after the 4th cell of wave 0.
        crash_dir = tmp_path / "crashed"
        faults.install(parse_fault_plan("task-done:crash@4"))
        with pytest.raises(InjectedCrash):
            run_campaign(tiny_spec(), crash_dir, campaign_id="c")
        faults.deactivate()

        state = replay_campaign(
            crash_dir / "campaigns" / "c" / "journal.jsonl")
        journaled = len(state.completed_keys)
        assert 0 < journaled < control.cells_total
        assert state.status is None  # no run-finished record

        resumed = run_campaign(tiny_spec(), crash_dir, resume=True,
                               campaign_id="c")
        assert resumed.status == "complete"
        # Zero journaled cells recomputed: only the remainder simulated.
        assert resumed.execution["sims_run"] == (
            control.cells_total - journaled)
        assert resumed.execution["cache_hits"] == journaled
        assert (json.dumps(build_report(resumed), sort_keys=True)
                == control_report)

    def test_resumed_report_file_is_byte_identical(self, tmp_path):
        control_dir = tmp_path / "control"
        control = run_campaign(tiny_spec(), control_dir, campaign_id="c")
        control_bytes = write_report(control)["json"].read_bytes()

        crash_dir = tmp_path / "crashed"
        faults.install(parse_fault_plan("task-done:crash@6"))
        with pytest.raises(InjectedCrash):
            run_campaign(tiny_spec(), crash_dir, campaign_id="c")
        faults.deactivate()
        resumed = run_campaign(tiny_spec(), crash_dir, resume=True,
                               campaign_id="c")
        assert (write_report(resumed)["json"].read_bytes()
                == control_bytes)


class TestRefinement:
    def test_history_axis_winner_flip_is_subdivided(self, tmp_path):
        outcome = run_campaign(flip_spec(), tmp_path, jobs=1)
        flips = [interval for interval in outcome.intervals
                 if interval.reason == "winner-flip"]
        assert flips, "expected a CBWS-vs-SMS flip on the history axis"
        first = flips[0]
        assert first.axis == "cbws.table_entries"
        assert (first.lo, first.hi) == (32, 64)
        assert first.midpoint == 45  # geometric midpoint, snapped to int
        # The refinement wave actually planned and ran the midpoint cell.
        assert len(outcome.waves) > 1
        wave1_values = {cell.coord("cbws.table_entries")
                        for cell in outcome.waves[1].cells}
        assert 45 in wave1_values
        report = build_report(outcome)
        assert report["refinement"]["waves"] >= 1
        assert any(entry["reason"] == "winner-flip"
                   for entry in report["refinement"]["intervals"])

    def test_crash_during_refine_wave_resumes_identically(self, tmp_path):
        control_dir = tmp_path / "control"
        control = run_campaign(flip_spec(), control_dir, campaign_id="c")
        assert len(control.waves) > 1
        wave0 = control.waves[0].unique

        crash_dir = tmp_path / "crashed"
        # Crash inside the first refinement wave (after wave 0 finished).
        faults.install(parse_fault_plan(f"task-done:crash@{wave0 + 1}"))
        with pytest.raises(InjectedCrash):
            run_campaign(flip_spec(), crash_dir, campaign_id="c")
        faults.deactivate()

        state = replay_campaign(
            crash_dir / "campaigns" / "c" / "journal.jsonl")
        assert len(state.wave_keys) >= 2  # wave 1 intent was journaled

        resumed = run_campaign(flip_spec(), crash_dir, resume=True,
                               campaign_id="c")
        assert (json.dumps(build_report(resumed), sort_keys=True)
                == json.dumps(build_report(control), sort_keys=True))


class TestCacheGc:
    def make_cache(self, tmp_path, entries):
        import os

        cache = ResultCache(tmp_path / "results")
        for index, age in enumerate(entries):
            path = cache.root / "ab" / f"entry{index}.json"
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text("x" * 100)
            os.utime(path, (1000.0 - age, 1000.0 - age))
        return cache

    def test_census_with_no_bounds(self, tmp_path):
        cache = self.make_cache(tmp_path, [0, 10, 20])
        stats = cache.gc(now=1000.0)
        assert stats.scanned == 3 and stats.evicted == 0
        assert stats.bytes_total == 300

    def test_age_eviction(self, tmp_path):
        cache = self.make_cache(tmp_path, [0, 10, 20])
        stats = cache.gc(max_age_seconds=15.0, now=1000.0)
        assert stats.evicted == 1 and stats.evicted_by_age == 1
        assert stats.kept == 2
        assert len(list(cache.root.glob("*/*.json"))) == 2

    def test_size_eviction_is_oldest_first(self, tmp_path):
        cache = self.make_cache(tmp_path, [0, 10, 20])
        stats = cache.gc(max_bytes=150, now=1000.0)
        assert stats.evicted == 2 and stats.evicted_by_size == 2
        survivors = list(cache.root.glob("*/*.json"))
        assert [p.name for p in survivors] == ["entry0.json"]  # newest

    def test_dry_run_deletes_nothing(self, tmp_path):
        cache = self.make_cache(tmp_path, [0, 10, 20])
        stats = cache.gc(max_bytes=0, now=1000.0, dry_run=True)
        assert stats.evicted == 3 and stats.dry_run
        assert len(list(cache.root.glob("*/*.json"))) == 3

    def test_age_then_size_compose(self, tmp_path):
        cache = self.make_cache(tmp_path, [0, 10, 20, 30])
        stats = cache.gc(max_bytes=100, max_age_seconds=25.0, now=1000.0)
        assert stats.evicted_by_age == 1  # the 30s-old entry
        assert stats.evicted_by_size == 2  # then down to one entry
        assert stats.kept == 1
