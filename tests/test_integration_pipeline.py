"""Integration: kernel -> annotation -> trace -> simulation, end to end."""

import pytest

from repro.harness.registry import PAPER_PREFETCHER_ORDER, make_prefetcher
from repro.sim.config import REDUCED_CONFIG
from repro.sim.engine import simulate
from repro.sim.results import DemandClass
from repro.workloads import build_trace, get_workload

from conftest import annotated_trace, make_strided_kernel


@pytest.fixture(scope="module")
def stencil_trace():
    return build_trace(get_workload("stencil-default"), max_accesses=6000)


@pytest.mark.parametrize("prefetcher_name", PAPER_PREFETCHER_ORDER)
class TestEveryPrefetcherRuns:
    def test_simulation_invariants(self, stencil_trace, prefetcher_name):
        result = simulate(
            REDUCED_CONFIG, make_prefetcher(prefetcher_name), stencil_trace
        )
        assert result.cycles > 0
        assert 0 < result.ipc <= REDUCED_CONFIG.core.width
        assert result.demand_accesses == sum(
            1 for _ in stencil_trace.memory_events()
        )
        # The five demand classes partition the L1 misses.
        partitioned = sum(
            result.classes[cls]
            for cls in (
                DemandClass.TIMELY,
                DemandClass.SHORTER_WAITING,
                DemandClass.NON_TIMELY,
                DemandClass.MISSING,
                DemandClass.PLAIN_HIT,
            )
        )
        assert partitioned == result.l1_misses
        assert result.llc_misses <= result.l1_misses
        # Byte accounting: every issued prefetch paid one line.
        assert result.prefetch_bytes_read == 64 * result.prefetches_issued
        assert result.prefetch_fills <= result.prefetches_issued
        assert (
            result.useful_prefetches + result.wrong_prefetches
            <= result.prefetches_issued
        )


class TestPrefetchingHelps:
    def test_any_prefetcher_beats_nothing_on_streams(self):
        trace = annotated_trace(make_strided_kernel(iterations=1500))
        baseline = simulate(REDUCED_CONFIG, make_prefetcher("no-prefetch"), trace)
        for name in ("stride", "ghb-pc/dc", "cbws", "cbws+sms"):
            result = simulate(REDUCED_CONFIG, make_prefetcher(name), trace)
            assert result.ipc > baseline.ipc, (
                f"{name} should beat no-prefetch on a strided loop"
            )

    def test_cbws_eliminates_strided_loop_misses(self):
        trace = annotated_trace(make_strided_kernel(iterations=1500))
        baseline = simulate(REDUCED_CONFIG, make_prefetcher("no-prefetch"), trace)
        cbws = simulate(REDUCED_CONFIG, make_prefetcher("cbws"), trace)
        assert cbws.mpki < baseline.mpki * 0.2

    def test_simulation_is_deterministic(self, stencil_trace):
        first = simulate(REDUCED_CONFIG, make_prefetcher("cbws+sms"), stencil_trace)
        second = simulate(REDUCED_CONFIG, make_prefetcher("cbws+sms"), stencil_trace)
        assert first.cycles == second.cycles
        assert first.classes == second.classes
        assert first.prefetches_issued == second.prefetches_issued
