"""Frozen regression corpus replay plus invariant wiring tests.

The traces under ``tests/corpus/`` are committed artifacts: every tier-1
run replays them through the differential harness (implementation vs
oracle, fast vs reference engine, hierarchy vs model) with runtime
invariants armed.  A divergence here means an algorithm changed
behaviour without its oracle being updated — exactly the regression this
corpus exists to catch.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.check import invariants
from repro.check.diff import diff_all
from repro.common.errors import InvariantViolation
from repro.harness.registry import PREFETCHER_FACTORIES
from repro.memory.hierarchy import CacheHierarchy
from repro.sim.config import REDUCED_CONFIG
from repro.sim.engine import SimulationEngine
from repro.trace.io import read_trace

CORPUS_DIR = Path(__file__).parent / "corpus"


def _corpus_paths():
    paths = sorted(CORPUS_DIR.glob("*.trace"))
    assert paths, f"frozen corpus missing under {CORPUS_DIR}"
    return paths


@pytest.mark.parametrize(
    "path", _corpus_paths(), ids=lambda path: path.stem
)
def test_corpus_replays_with_zero_divergences(path):
    trace = read_trace(path)
    trace.validate()
    divergences = diff_all(
        trace, engine_names=["cbws", "cbws+sms", "pangloss", "pythia"]
    )
    assert divergences == [], "\n".join(str(d) for d in divergences)


def test_corpus_runs_clean_under_invariants():
    trace = read_trace(_corpus_paths()[0])
    invariants.enable()
    try:
        for name in ("cbws", "cbws+sms", "stride"):
            engine = SimulationEngine(
                REDUCED_CONFIG, PREFETCHER_FACTORIES[name]()
            )
            engine.run(trace)  # raises InvariantViolation on any breach
    finally:
        invariants.disable()


def test_invariants_disabled_by_default():
    assert not invariants.enabled()


def test_inclusion_breach_is_caught():
    hierarchy = CacheHierarchy(REDUCED_CONFIG.hierarchy)
    hierarchy._invariant_checking = True
    hierarchy.l1._sets[0][99999] = False  # L1-resident, absent from L2
    with pytest.raises(InvariantViolation, match="inclusive-L2"):
        invariants.check_hierarchy(hierarchy)


def test_occupancy_breach_is_caught():
    hierarchy = CacheHierarchy(REDUCED_CONFIG.hierarchy)
    ways = hierarchy.l1.config.associativity
    target = hierarchy.l1._sets[0]
    num_sets = len(hierarchy.l1._sets)
    for extra in range(ways + 1):
        line = extra * num_sets  # all map to set 0
        target[line] = False
        hierarchy.l2._sets[line & hierarchy.l2._index_mask][line] = False
    with pytest.raises(InvariantViolation, match="associativity"):
        invariants.check_hierarchy(hierarchy)


def test_engine_state_check_catches_mshr_overflow():
    with pytest.raises(InvariantViolation, match="MSHR"):
        invariants.check_engine_state(
            event_index=1, icount=10, last_icount=5,
            queue_length=0, queued=set(), queue_members=set(),
            in_flight={1: 5.0, 2: 6.0, 3: 7.0}, fill_heap=[(5.0, 1), (6.0, 2), (7.0, 3)],
            next_issue=0.0, last_next_issue=0.0,
            window_count=0, window_start_icount=-1,
            mshr_limit=4, queue_capacity=8, max_in_flight=2,
        )


def test_engine_state_check_catches_orphaned_queue_member():
    with pytest.raises(InvariantViolation, match="membership"):
        invariants.check_engine_state(
            event_index=1, icount=10, last_icount=5,
            queue_length=1, queued={7, 8}, queue_members={7},
            in_flight={}, fill_heap=[],
            next_issue=0.0, last_next_issue=0.0,
            window_count=0, window_start_icount=-1,
            mshr_limit=4, queue_capacity=8, max_in_flight=2,
        )
