"""Differential tests: implementations vs clean-room oracles.

Every prefetcher with an oracle is replayed over real workload traces
and the fuzzer's synthetic seeds; any divergence fails with the first
mismatching event and a machine-state dump.  The hierarchy and both
engine implementations are cross-checked the same way.
"""

from __future__ import annotations

import pytest

from repro.check.diff import (
    DIFF_PREFETCHERS,
    diff_all,
    diff_engine,
    diff_hierarchy,
    diff_prefetcher,
)
from repro.check.fuzz import seed_traces
from repro.check.oracles import ORACLE_FACTORIES, make_oracle
from repro.workloads import build_trace, get_workload

ORACLE_WORKLOADS = ["stencil-default", "429.mcf-ref", "canneal-simlarge"]


@pytest.fixture(scope="module")
def workload_traces():
    return [
        build_trace(get_workload(name), max_accesses=4000, seed=0)
        for name in ORACLE_WORKLOADS
    ]


@pytest.fixture(scope="module")
def synthetic_traces():
    return seed_traces()


class TestOracleRegistry:
    def test_every_diff_prefetcher_has_an_oracle(self):
        for name in DIFF_PREFETCHERS:
            assert name in ORACLE_FACTORIES
            assert make_oracle(name) is not None

    def test_unknown_oracle_rejected(self):
        with pytest.raises(KeyError):
            make_oracle("definitely-not-a-prefetcher")


class TestPrefetcherOracles:
    @pytest.mark.parametrize("name", DIFF_PREFETCHERS)
    def test_matches_on_workloads(self, name, workload_traces):
        for trace in workload_traces:
            divergence = diff_prefetcher(name, trace)
            assert divergence is None, str(divergence)

    @pytest.mark.parametrize("name", DIFF_PREFETCHERS)
    def test_matches_on_synthetic_seeds(self, name, synthetic_traces):
        for trace in synthetic_traces:
            divergence = diff_prefetcher(name, trace)
            assert divergence is None, str(divergence)


class TestHierarchyOracle:
    def test_matches_on_workloads(self, workload_traces):
        for trace in workload_traces:
            divergence = diff_hierarchy(trace)
            assert divergence is None, str(divergence)

    def test_matches_on_synthetic_seeds(self, synthetic_traces):
        for trace in synthetic_traces:
            divergence = diff_hierarchy(trace)
            assert divergence is None, str(divergence)


class TestEngineDiff:
    @pytest.mark.parametrize("name", ["cbws", "cbws+sms", "sms"])
    def test_fast_vs_reference_on_workloads(self, name, workload_traces):
        for trace in workload_traces:
            divergence = diff_engine(name, trace)
            assert divergence is None, str(divergence)


class TestDiffAll:
    def test_clean_on_seed(self, synthetic_traces):
        divergences = diff_all(
            synthetic_traces[0], engine_names=["cbws"]
        )
        assert divergences == []


class TestHarnessSensitivity:
    """The harness must actually detect a wrong implementation."""

    def test_oracle_with_wrong_degree_diverges(self, synthetic_traces):
        from repro.check.oracles import StrideOracle

        divergence = None
        for trace in synthetic_traces:
            divergence = diff_prefetcher(
                "stride", trace, oracle_factory=lambda: StrideOracle(degree=1)
            )
            if divergence is not None:
                break
        assert divergence is not None
        assert divergence.kind == "prefetcher"
