"""Tests for the experiment harness: registry, runner, reporting."""

import pytest

from repro.common.errors import ConfigError
from repro.harness.registry import (
    PAPER_PREFETCHER_ORDER,
    make_cbws_variant,
    make_prefetcher,
)
from repro.harness.report import format_mapping, format_percent_table, format_table
from repro.harness.runner import GridRunner, clear_trace_cache
from repro.core.predictor import CbwsConfig


class TestRegistry:
    def test_all_seven_prefetchers(self):
        assert len(PAPER_PREFETCHER_ORDER) == 7
        for name in PAPER_PREFETCHER_ORDER:
            prefetcher = make_prefetcher(name)
            assert prefetcher.name == name

    def test_factories_build_fresh_instances(self):
        assert make_prefetcher("sms") is not make_prefetcher("sms")

    def test_unknown_prefetcher_raises(self):
        with pytest.raises(ConfigError, match="unknown prefetcher"):
            make_prefetcher("oracle")

    def test_cbws_variant_builder(self):
        config = CbwsConfig(table_entries=8)
        standalone = make_cbws_variant(config)
        hybrid = make_cbws_variant(config, hybrid=True)
        assert standalone.config.table_entries == 8
        assert hybrid.cbws.config.table_entries == 8


class TestRunner:
    def test_trace_cached_in_memory(self, fresh_trace_cache):
        runner = GridRunner(budget_fraction=0.02)
        first = runner.trace("nw")
        second = runner.trace("nw")
        assert first is second

    def test_cache_key_includes_budget(self, fresh_trace_cache):
        small = GridRunner(budget_fraction=0.02).trace("nw")
        large = GridRunner(budget_fraction=0.04).trace("nw")
        assert len(large.events) > len(small.events)

    def test_disk_cache_round_trip(self, fresh_trace_cache, tmp_path):
        runner = GridRunner(budget_fraction=0.02, cache_dir=tmp_path)
        original = runner.trace("nw")
        clear_trace_cache()
        reloaded = GridRunner(budget_fraction=0.02, cache_dir=tmp_path).trace("nw")
        assert reloaded.events == original.events

    def test_run_one_produces_result(self, tiny_runner):
        result = tiny_runner.run_one("nw", "sms")
        assert result.workload == "nw"
        assert result.prefetcher == "sms"
        assert result.cycles > 0

    def test_run_grid_shape(self, tiny_runner):
        grid = tiny_runner.run_grid(["nw"], ["no-prefetch", "sms"])
        assert len(grid) == 2
        assert grid.get("nw", "sms").ipc >= grid.get("nw", "no-prefetch").ipc


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"],
            [["short", 1.5], ["a-much-longer-name", 2.0]],
            title="Demo",
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "1.500" in text
        # All data rows align to the same width.
        assert len(lines[2]) == len(lines[3]) == len(lines[4])

    def test_percent_table(self):
        text = format_percent_table(["name", "frac"], [["x", 0.5]])
        assert "50.0%" in text

    def test_format_mapping(self):
        text = format_mapping({"a": 1.0, "b": 2.0})
        assert "a" in text and "2.000" in text
