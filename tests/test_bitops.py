"""Unit and property tests for repro.common.bitops."""

import pytest
from hypothesis import given, strategies as st

from repro.common.bitops import (
    bit_select,
    fold_xor,
    is_power_of_two,
    line_of,
    log2_exact,
    mask,
    sign_extend,
)


class TestMask:
    def test_zero_bits_is_empty(self):
        assert mask(0) == 0

    def test_twelve_bits(self):
        assert mask(12) == 0xFFF

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mask(-1)

    @given(st.integers(min_value=0, max_value=64))
    def test_popcount_matches_width(self, bits):
        assert bin(mask(bits)).count("1") == bits


class TestBitSelect:
    def test_keeps_low_bits(self):
        assert bit_select(0xABCD, 8) == 0xCD

    def test_negative_maps_to_twos_complement(self):
        assert bit_select(-1, 12) == 0xFFF

    @given(st.integers(), st.integers(min_value=1, max_value=48))
    def test_result_fits_width(self, value, bits):
        assert 0 <= bit_select(value, bits) <= mask(bits)


class TestSignExtend:
    def test_negative_one(self):
        assert sign_extend(0xFFF, 12) == -1

    def test_max_positive(self):
        assert sign_extend(0x7FF, 12) == 2047

    def test_min_negative(self):
        assert sign_extend(0x800, 12) == -2048

    @given(st.integers(min_value=-2048, max_value=2047))
    def test_roundtrip_within_range(self, value):
        assert sign_extend(bit_select(value, 12), 12) == value

    @given(st.integers(), st.integers(min_value=2, max_value=32))
    def test_result_in_signed_range(self, value, bits):
        result = sign_extend(value, bits)
        assert -(1 << (bits - 1)) <= result < (1 << (bits - 1))


class TestFoldXor:
    def test_zero_folds_to_zero(self):
        assert fold_xor(0, 16) == 0

    def test_value_within_width_unchanged(self):
        assert fold_xor(0x1234, 16) == 0x1234

    def test_folding_xors_chunks(self):
        # 0xABCD1234 folded to 16 bits = 0xABCD ^ 0x1234.
        assert fold_xor(0xABCD1234, 16) == (0xABCD ^ 0x1234)

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            fold_xor(1, 0)

    @given(st.integers(min_value=0), st.integers(min_value=1, max_value=24))
    def test_result_fits_width(self, value, bits):
        assert 0 <= fold_xor(value, bits) <= mask(bits)


class TestPowersOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 64, 4096, 1 << 40])
    def test_powers_accepted(self, value):
        assert is_power_of_two(value)
        assert 1 << log2_exact(value) == value

    @pytest.mark.parametrize("value", [0, -2, 3, 48, 100])
    def test_non_powers_rejected(self, value):
        assert not is_power_of_two(value)
        with pytest.raises(ValueError):
            log2_exact(value)


class TestLineOf:
    def test_line_boundaries(self):
        assert line_of(0) == 0
        assert line_of(63) == 0
        assert line_of(64) == 1

    def test_custom_shift(self):
        assert line_of(256, line_shift=7) == 2
