"""Unit and property tests for repro.common.bitops."""

import pytest
from hypothesis import given, strategies as st

from repro.common.bitops import (
    bit_select,
    fold_xor,
    is_power_of_two,
    line_of,
    log2_exact,
    mask,
    sign_extend,
)


class TestMask:
    def test_zero_bits_is_empty(self):
        assert mask(0) == 0

    def test_twelve_bits(self):
        assert mask(12) == 0xFFF

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mask(-1)

    @given(st.integers(min_value=0, max_value=64))
    def test_popcount_matches_width(self, bits):
        assert bin(mask(bits)).count("1") == bits


class TestBitSelect:
    def test_keeps_low_bits(self):
        assert bit_select(0xABCD, 8) == 0xCD

    def test_negative_maps_to_twos_complement(self):
        assert bit_select(-1, 12) == 0xFFF

    @given(st.integers(), st.integers(min_value=1, max_value=48))
    def test_result_fits_width(self, value, bits):
        assert 0 <= bit_select(value, bits) <= mask(bits)


class TestSignExtend:
    def test_negative_one(self):
        assert sign_extend(0xFFF, 12) == -1

    def test_max_positive(self):
        assert sign_extend(0x7FF, 12) == 2047

    def test_min_negative(self):
        assert sign_extend(0x800, 12) == -2048

    @given(st.integers(min_value=-2048, max_value=2047))
    def test_roundtrip_within_range(self, value):
        assert sign_extend(bit_select(value, 12), 12) == value

    @given(st.integers(), st.integers(min_value=2, max_value=32))
    def test_result_in_signed_range(self, value, bits):
        result = sign_extend(value, bits)
        assert -(1 << (bits - 1)) <= result < (1 << (bits - 1))


class TestFoldXor:
    def test_zero_folds_to_zero(self):
        assert fold_xor(0, 16) == 0

    def test_value_within_width_unchanged(self):
        assert fold_xor(0x1234, 16) == 0x1234

    def test_folding_xors_chunks(self):
        # 0xABCD1234 folded to 16 bits = 0xABCD ^ 0x1234.
        assert fold_xor(0xABCD1234, 16) == (0xABCD ^ 0x1234)

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            fold_xor(1, 0)

    @given(st.integers(min_value=0), st.integers(min_value=1, max_value=24))
    def test_result_fits_width(self, value, bits):
        assert 0 <= fold_xor(value, bits) <= mask(bits)


class TestPowersOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 64, 4096, 1 << 40])
    def test_powers_accepted(self, value):
        assert is_power_of_two(value)
        assert 1 << log2_exact(value) == value

    @pytest.mark.parametrize("value", [0, -2, 3, 48, 100])
    def test_non_powers_rejected(self, value):
        assert not is_power_of_two(value)
        with pytest.raises(ValueError):
            log2_exact(value)


class TestLineOf:
    def test_line_boundaries(self):
        assert line_of(0) == 0
        assert line_of(63) == 0
        assert line_of(64) == 1

    def test_custom_shift(self):
        assert line_of(256, line_shift=7) == 2

    @given(st.integers(min_value=0, max_value=(1 << 40) - 1))
    def test_line_size_128_consistency(self, address):
        # line_shift=7 is the 128-byte-line geometry: every byte of a
        # line maps to that line, and adjacent lines differ by one.
        line = line_of(address, line_shift=7)
        assert line == address >> 7
        assert line_of((line << 7) + 127, line_shift=7) == line
        assert line_of((line + 1) << 7, line_shift=7) == line + 1


# Strides representable in the CBWS differential's 16-bit field.
_strides = st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1)
_deltas = st.lists(_strides, min_size=0, max_size=16)


class TestHashDifferential:
    """Property tests for the 12-bit CBWS differential hash."""

    @given(_deltas)
    def test_deterministic_and_in_range(self, delta):
        from repro.core.history import hash_differential

        first = hash_differential(tuple(delta))
        assert first == hash_differential(tuple(delta))
        assert 0 <= first <= mask(12)

    def test_empty_reserves_all_ones(self):
        from repro.core.history import hash_differential

        assert hash_differential(()) == mask(12)
        assert hash_differential((0,)) != mask(12)

    def test_permutation_sensitive(self):
        from repro.core.history import hash_differential

        assert hash_differential((1, 2)) != hash_differential((2, 1))
        assert hash_differential((64, 0, 0)) != hash_differential((0, 0, 64))

    @given(_deltas)
    def test_sixteen_bit_twos_complement_roundtrip(self, delta):
        # Elements are encoded as 16-bit two's complement before
        # hashing, so the hash is invariant under the 2^16 wraparound
        # and the bit_select/sign_extend round trip is exact.
        from repro.core.history import hash_differential

        wrapped = tuple(d + (1 << 16) for d in delta)
        assert hash_differential(tuple(delta)) == hash_differential(wrapped)
        for d in delta:
            assert sign_extend(bit_select(d, 16), 16) == d

    def test_single_stride_distribution(self):
        # Bit-select hashing must spread the common single-stride
        # deltas: the 4096 12-bit buckets should not collapse.
        from repro.core.history import hash_differential

        hashes = {hash_differential((stride,)) for stride in range(1024)}
        assert len(hashes) >= 1000

    @given(_deltas, st.integers(min_value=4, max_value=16))
    def test_custom_width(self, delta, bits):
        from repro.core.history import hash_differential

        assert 0 <= hash_differential(tuple(delta), bits) <= mask(bits)


class TestDifferentialRoundTrip:
    """differential / apply_differential invert each other (Eq. 2)."""

    @given(
        st.lists(st.integers(min_value=0, max_value=(1 << 32) - 1),
                 min_size=1, max_size=16),
        st.lists(st.integers(min_value=0, max_value=(1 << 32) - 1),
                 min_size=1, max_size=16),
    )
    def test_apply_inverts_differential(self, older, newer):
        from repro.core.cbws import apply_differential, differential

        delta = differential(older, newer)
        length = min(len(older), len(newer))
        assert len(delta) == length
        assert apply_differential(older, delta) == tuple(newer[:length])
