"""Adaptive refinement on synthetic metric surfaces."""

from dataclasses import dataclass

import pytest

from repro.campaign.planner import CellSample
from repro.campaign.refine import metric_surface, refine_wave
from repro.campaign.spec import SPEC_VERSION, parse_spec


@dataclass
class FakeResult:
    ipc: float
    mpki: float = 0.0


def make_spec(refine_overrides=None, spacing="log2"):
    refine = {
        "metric": "ipc",
        "axes": ["cbws.table_entries"],
        "competitors": ["cbws", "sms"],
        "max_cells": 64,
        "max_waves": 2,
    }
    refine.update(refine_overrides or {})
    axis = ({"name": "cbws.table_entries", "log2_range": [1, 64]}
            if spacing == "log2"
            else {"name": "cbws.table_entries", "values": [10, 20, 30]})
    return parse_spec({
        "version": SPEC_VERSION,
        "name": "synthetic",
        "base": {"workloads": ["nw"], "prefetchers": ["sms", "cbws"],
                 "budget_fraction": 0.02},
        "axes": [axis],
        "refine": refine,
    })


def surface(points, workload="nw", context=()):
    """Samples + results from ``{axis value: {base: ipc}}``."""
    samples, results = [], {}
    for value, metrics in points.items():
        for base, ipc in metrics.items():
            prefetcher = (base if base == "sms"
                          else f"{base}[table_entries={value}]")
            key = f"{workload}:{prefetcher}:{value}"
            coords = (("cbws.table_entries", value),) + tuple(context)
            samples.append(CellSample(
                workload=workload, prefetcher=prefetcher,
                coords=coords, key=key))
            results[key] = FakeResult(ipc=ipc)
    return samples, results


class TestMetricSurface:
    def test_groups_by_workload_and_context(self):
        samples, results = surface({1: {"cbws": 0.5, "sms": 0.6},
                                    64: {"cbws": 0.7, "sms": 0.6}})
        table = metric_surface(samples, results, "cbws.table_entries", "ipc")
        assert ("nw", ()) in table
        assert table[("nw", ())]["cbws"] == {1: 0.5, 64: 0.7}
        assert table[("nw", ())]["sms"] == {1: 0.6, 64: 0.6}

    def test_missing_results_are_skipped(self):
        samples, results = surface({1: {"cbws": 0.5, "sms": 0.6}})
        results.pop("nw:sms:1")
        table = metric_surface(samples, results, "cbws.table_entries", "ipc")
        assert "sms" not in table[("nw", ())]


class TestWinnerFlip:
    def test_flip_interval_subdivided_geometrically(self):
        spec = make_spec()
        # sms wins through 16, cbws wins from 32: flip inside [16, 32].
        samples, results = surface({
            1: {"cbws": 0.40, "sms": 0.50},
            16: {"cbws": 0.45, "sms": 0.50},
            32: {"cbws": 0.55, "sms": 0.50},
            64: {"cbws": 0.60, "sms": 0.50},
        })
        points, intervals = refine_wave(spec, samples, results, 8)
        assert len(intervals) == 1
        interval = intervals[0]
        assert interval.reason == "winner-flip"
        assert (interval.lo, interval.hi) == (16, 32)
        assert interval.midpoint == 23  # round(sqrt(16 * 32))
        assert points == [{"cbws.table_entries": 23}]
        assert interval.detail["winner_lo"] == "sms"
        assert interval.detail["winner_hi"] == "cbws"

    def test_linear_axis_uses_arithmetic_midpoint(self):
        spec = make_spec(spacing="linear")
        samples, results = surface({
            10: {"cbws": 0.4, "sms": 0.5},
            20: {"cbws": 0.6, "sms": 0.5},
            30: {"cbws": 0.7, "sms": 0.5},
        })
        points, intervals = refine_wave(spec, samples, results, 8)
        assert intervals[0].midpoint == 15

    def test_tie_is_not_a_flip(self):
        spec = make_spec()
        samples, results = surface({
            16: {"cbws": 0.50, "sms": 0.50},  # exact tie at the edge
            32: {"cbws": 0.55, "sms": 0.50},
        })
        points, intervals = refine_wave(spec, samples, results, 8)
        assert intervals == [] and points == []

    def test_no_flip_no_intervals(self):
        spec = make_spec()
        samples, results = surface({
            1: {"cbws": 0.6, "sms": 0.5},
            64: {"cbws": 0.7, "sms": 0.5},
        })
        points, intervals = refine_wave(spec, samples, results, 8)
        assert intervals == [] and points == []

    def test_min_gap_convergence(self):
        spec = make_spec(refine_overrides={"min_gap": 20.0})
        samples, results = surface({
            16: {"cbws": 0.45, "sms": 0.50},
            32: {"cbws": 0.55, "sms": 0.50},
        })
        points, intervals = refine_wave(spec, samples, results, 8)
        assert intervals == []  # gap 16 <= min_gap 20: converged

    def test_adjacent_integers_converge(self):
        spec = make_spec()
        samples, results = surface({
            2: {"cbws": 0.45, "sms": 0.50},
            3: {"cbws": 0.55, "sms": 0.50},
        })
        points, intervals = refine_wave(spec, samples, results, 8)
        assert points == []  # no integer strictly between 2 and 3

    def test_max_points_caps_output(self):
        spec = make_spec()
        samples, results = [], {}
        for index, interval_lo in enumerate((4, 16, 64)):
            extra, extra_results = surface(
                {interval_lo: {"cbws": 0.4, "sms": 0.5},
                 interval_lo * 2: {"cbws": 0.6, "sms": 0.5}},
                context=(("prefetch.issue_interval", 2 ** index),))
            samples.extend(extra)
            results.update(extra_results)
        points, intervals = refine_wave(spec, samples, results, 2)
        assert len(intervals) == 3  # analysis still reports every flip
        assert len(points) == 2  # but the budget caps the new samples

    def test_zero_budget_short_circuits(self):
        spec = make_spec()
        samples, results = surface({
            16: {"cbws": 0.45, "sms": 0.50},
            32: {"cbws": 0.55, "sms": 0.50},
        })
        assert refine_wave(spec, samples, results, 0) == ([], [])


class TestGradient:
    def test_gradient_trigger(self):
        spec = make_spec(refine_overrides={"gradient_threshold": 0.25})
        # cbws wins everywhere (no flip) but jumps 50% across [16, 32].
        samples, results = surface({
            16: {"cbws": 0.60, "sms": 0.50},
            32: {"cbws": 0.90, "sms": 0.50},
        })
        points, intervals = refine_wave(spec, samples, results, 8)
        assert len(intervals) == 1
        assert intervals[0].reason == "gradient"
        assert intervals[0].detail["competitor"] == "cbws"
        assert intervals[0].detail["gradient"] == pytest.approx(0.5)

    def test_gradient_below_threshold_ignored(self):
        spec = make_spec(refine_overrides={"gradient_threshold": 0.60})
        samples, results = surface({
            16: {"cbws": 0.60, "sms": 0.50},
            32: {"cbws": 0.90, "sms": 0.50},
        })
        assert refine_wave(spec, samples, results, 8) == ([], [])

    def test_flip_takes_precedence_over_gradient(self):
        spec = make_spec(refine_overrides={"gradient_threshold": 0.01})
        samples, results = surface({
            16: {"cbws": 0.45, "sms": 0.50},
            32: {"cbws": 0.90, "sms": 0.50},
        })
        points, intervals = refine_wave(spec, samples, results, 8)
        assert [interval.reason for interval in intervals] == ["winner-flip"]

    def test_mpki_direction_inverts_winner(self):
        spec = make_spec(refine_overrides={"metric": "mpki"})
        samples, results = surface({
            16: {"cbws": 0.0, "sms": 0.0},
            32: {"cbws": 0.0, "sms": 0.0},
        })
        # Rebuild results with mpki values: lower is better, so cbws
        # "wins" at 16 (lower mpki) and loses at 32.
        for key in results:
            value = 1.0 if "cbws" in key and ":16" in key else 2.0
            if "sms" in key:
                value = 1.5
            results[key] = FakeResult(ipc=0.0, mpki=value)
        points, intervals = refine_wave(spec, samples, results, 8)
        assert len(intervals) == 1
        assert intervals[0].detail["winner_lo"] == "cbws"
        assert intervals[0].detail["winner_hi"] == "sms"
