"""Unit and property tests for the set-associative cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.memory.cache import CacheConfig, SetAssociativeCache


def small_cache(ways=2, sets=4):
    config = CacheConfig(
        name="test", size_bytes=64 * ways * sets, associativity=ways
    )
    return SetAssociativeCache(config)


class TestConfig:
    def test_geometry_derived(self):
        config = CacheConfig(name="l1", size_bytes=4096, associativity=4)
        assert config.num_lines == 64
        assert config.num_sets == 16

    def test_bad_sizes_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(name="x", size_bytes=0, associativity=4)
        with pytest.raises(ConfigError):
            CacheConfig(name="x", size_bytes=1000, associativity=4)

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(name="x", size_bytes=64 * 3, associativity=1)


class TestBasicOperation:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert not cache.access(5)
        cache.insert(5)
        assert cache.access(5)

    def test_lru_eviction_order(self):
        cache = small_cache(ways=2, sets=1)
        cache.insert(0)
        cache.insert(1)
        victim = cache.insert(2)  # evicts 0 (LRU)
        assert victim is not None and victim.line == 0
        assert cache.contains(1) and cache.contains(2)

    def test_access_refreshes_lru(self):
        cache = small_cache(ways=2, sets=1)
        cache.insert(0)
        cache.insert(1)
        cache.access(0)  # 1 becomes LRU
        victim = cache.insert(2)
        assert victim.line == 1

    def test_reinsert_does_not_evict(self):
        cache = small_cache(ways=2, sets=1)
        cache.insert(0)
        cache.insert(1)
        assert cache.insert(0) is None
        assert cache.occupancy == 2

    def test_invalidate(self):
        cache = small_cache()
        cache.insert(3)
        record = cache.invalidate(3)
        assert record is not None and record.line == 3
        assert not cache.contains(3)
        assert cache.invalidate(3) is None

    def test_flush_returns_everything(self):
        cache = small_cache()
        for line in range(6):
            cache.insert(line)
        evicted = {record.line for record in cache.flush()}
        assert evicted == set(range(6))
        assert cache.occupancy == 0

    def test_set_isolation(self):
        cache = small_cache(ways=1, sets=4)
        cache.insert(0)
        cache.insert(1)  # different set (line & 3)
        assert cache.contains(0) and cache.contains(1)


class TestPrefetchSemantics:
    def test_prefetch_flag_tracked(self):
        cache = small_cache()
        cache.insert(7, from_prefetch=True)
        assert cache.is_unused_prefetch(7)

    def test_demand_access_clears_flag(self):
        cache = small_cache()
        cache.insert(7, from_prefetch=True)
        cache.access(7)
        assert not cache.is_unused_prefetch(7)

    def test_prefetch_inserts_at_lru(self):
        cache = small_cache(ways=2, sets=1)
        cache.insert(0)                      # demand, MRU
        cache.insert(2, from_prefetch=True)  # prefetch, LRU
        victim = cache.insert(4)             # evicts the prefetch first
        assert victim.line == 2
        assert victim.was_prefetch

    def test_promoted_prefetch_survives(self):
        cache = small_cache(ways=2, sets=1)
        cache.insert(0)
        cache.insert(2, from_prefetch=True)
        cache.access(2)  # promote to MRU
        victim = cache.insert(4)
        assert victim.line == 0

    def test_eviction_reports_unused_prefetch(self):
        cache = small_cache(ways=1, sets=1)
        cache.insert(0, from_prefetch=True)
        victim = cache.insert(1)
        assert victim.was_prefetch

    def test_redundant_prefetch_keeps_demand_status(self):
        cache = small_cache(ways=2, sets=1)
        cache.insert(0)  # demand line at MRU
        cache.insert(0, from_prefetch=True)
        assert not cache.is_unused_prefetch(0)


class _ReferenceLru:
    """Oracle: per-set list ordered LRU-first."""

    def __init__(self, ways, sets):
        self.ways = ways
        self.sets = sets
        self.state = {index: [] for index in range(sets)}

    def access(self, line):
        bucket = self.state[line % self.sets]
        if line in bucket:
            bucket.remove(line)
            bucket.append(line)
            return True
        return False

    def insert(self, line):
        bucket = self.state[line % self.sets]
        if line in bucket:
            bucket.remove(line)
            bucket.append(line)
            return None
        victim = bucket.pop(0) if len(bucket) >= self.ways else None
        bucket.append(line)
        return victim


class TestLruProperty:
    @settings(max_examples=60)
    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(min_value=0, max_value=31)),
            max_size=200,
        )
    )
    def test_matches_reference_model(self, operations):
        ways, sets = 4, 4
        cache = small_cache(ways=ways, sets=sets)
        oracle = _ReferenceLru(ways, sets)
        for is_insert, line in operations:
            if is_insert:
                got = cache.insert(line)
                expected = oracle.insert(line)
                got_line = got.line if got else None
                assert got_line == expected
            else:
                assert cache.access(line) == oracle.access(line)
