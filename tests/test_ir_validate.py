"""Tests for kernel validation and static numbering."""

import pytest

from repro.common.errors import ValidationError
from repro.ir.builder import c, v
from repro.ir.nodes import (
    ArrayDecl,
    Compute,
    For,
    If,
    Kernel,
    Load,
    Store,
    While,
)
from repro.ir.validate import (
    count_memory_ops,
    loop_contains_loop,
    number_kernel,
    validate_kernel,
)


def nested_kernel():
    inner = For("j", 0, 4, [Load("a", v("j")), Store("a", v("j"))])
    outer = For("i", 0, 4, [inner, Compute(1)])
    return Kernel("nest", [ArrayDecl("a", 16)], [outer]), inner, outer


class TestValidation:
    def test_undeclared_array_rejected(self):
        kernel = Kernel("k", [ArrayDecl("a", 4)], [Load("b", 0)])
        with pytest.raises(ValidationError, match="undeclared"):
            validate_kernel(kernel)

    def test_declared_arrays_accepted(self):
        kernel, *_ = nested_kernel()
        validate_kernel(kernel)

    def test_if_and_while_conditions_validated(self):
        kernel = Kernel(
            "k",
            [ArrayDecl("a", 4)],
            [
                If(v("x").lt(3), [Load("a", 0)]),
                While(v("x").gt(0), [Store("a", 1)], max_iterations=5),
            ],
        )
        validate_kernel(kernel)


class TestNumbering:
    def test_every_memory_op_gets_unique_pc(self):
        kernel, *_ = nested_kernel()
        summary = number_kernel(kernel)
        assert summary.static_memory_ops == 2
        pcs = [
            statement.pc
            for statement in kernel.body[0].body[0].body
        ]
        assert len(set(pcs)) == 2
        assert all(pc >= 0x400000 for pc in pcs)

    def test_numbering_is_idempotent(self):
        kernel, *_ = nested_kernel()
        number_kernel(kernel)
        first = kernel.body[0].body[0].body[0].pc
        number_kernel(kernel)
        assert kernel.body[0].body[0].body[0].pc == first

    def test_summary_identifies_innermost_loops(self):
        kernel, inner, outer = nested_kernel()
        summary = number_kernel(kernel)
        assert outer in summary.loops
        assert inner in summary.loops
        assert summary.innermost_loops == [inner]

    def test_array_names_collected(self):
        kernel, *_ = nested_kernel()
        assert number_kernel(kernel).array_names == {"a"}


class TestStructuralHelpers:
    def test_loop_contains_loop(self):
        _, inner, outer = nested_kernel()
        assert loop_contains_loop(outer)
        assert not loop_contains_loop(inner)

    def test_loop_detection_inside_if(self):
        loop = For("i", 0, 2, [])
        wrapper = For("o", 0, 2, [If(c(1), [loop])])
        assert loop_contains_loop(wrapper)

    def test_count_memory_ops_counts_all_paths(self):
        body = [
            Load("a", 0),
            If(c(1), [Store("a", 1)], [Store("a", 2), Load("a", 3)]),
        ]
        assert count_memory_ops(body) == 4
