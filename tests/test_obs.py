"""Tests for the repro.obs probe registry and profile report."""

import time

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _clean_registry():
    obs.reset()
    obs.disable()
    yield
    obs.reset()
    obs.disable()


def test_disabled_records_nothing():
    with obs.phase("off.phase"):
        pass
    obs.add("off.counter", 5)
    obs.observe("off.value", 3)
    obs.record_seconds("off.span", 1.0)
    snap = obs.snapshot()
    assert snap["phases"] == {}
    assert snap["counters"] == {}
    assert snap["values"] == {}


def test_phase_context_manager_records_span():
    obs.enable()
    with obs.phase("work"):
        time.sleep(0.01)
    with obs.phase("work"):
        pass
    stat = obs.snapshot()["phases"]["work"]
    assert stat["count"] == 2
    assert stat["total_seconds"] >= 0.01
    assert stat["max_seconds"] >= stat["min_seconds"] >= 0.0


def test_phase_records_on_exception():
    obs.enable()
    with pytest.raises(ValueError):
        with obs.phase("explode"):
            raise ValueError("boom")
    assert obs.snapshot()["phases"]["explode"]["count"] == 1


def test_timed_decorator():
    calls = []

    @obs.timed("decorated")
    def work(x):
        calls.append(x)
        return x * 2

    assert work(3) == 6  # disabled: passthrough, nothing recorded
    assert "decorated" not in obs.snapshot()["phases"]
    obs.enable()
    assert work(4) == 8
    assert obs.snapshot()["phases"]["decorated"]["count"] == 1
    assert calls == [3, 4]
    assert work.__name__ == "work"


def test_counters_accumulate():
    obs.enable()
    obs.add("events")
    obs.add("events", 9)
    obs.add("bytes", 2.5)
    counters = obs.snapshot()["counters"]
    assert counters["events"] == 10
    assert counters["bytes"] == 2.5


def test_observe_tracks_distribution():
    obs.enable()
    for value in (4, 1, 7):
        obs.observe("queue.occupancy", value)
    stat = obs.snapshot()["values"]["queue.occupancy"]
    assert stat["count"] == 3
    assert stat["min"] == 1
    assert stat["max"] == 7
    assert stat["mean"] == pytest.approx(4.0)


def test_reset_clears_but_keeps_flag():
    obs.enable()
    obs.add("x")
    obs.reset()
    assert obs.snapshot()["counters"] == {}
    assert obs.enabled()


def test_render_empty_and_populated():
    assert "nothing recorded" in obs.render()
    obs.enable()
    with obs.phase("sim.run"):
        pass
    obs.add("sim.events", 1000)
    obs.observe("sim.prefetch_queue.occupancy", 12)
    text = obs.render()
    assert "sim.run" in text
    assert "sim.events" in text
    assert "sim.prefetch_queue.occupancy" in text


def test_render_derived_rates():
    snap = {
        "phases": {"sim.run": {"count": 1, "total_seconds": 2.0,
                               "min_seconds": 2.0, "max_seconds": 2.0}},
        "counters": {"sim.events": 1_000_000},
        "values": {},
    }
    text = obs.render(snap)
    assert "sim events/sec" in text
    assert "500000" in text


def test_disabled_overhead_is_negligible():
    """The disabled path must not dominate a tight loop."""
    started = time.perf_counter()
    for _ in range(100_000):
        obs.add("hot", 1)
    elapsed = time.perf_counter() - started
    assert elapsed < 0.5  # generous bound: it's a flag test + return
