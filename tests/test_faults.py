"""Fault-injection harness, artifact corruption, and degradation policy."""

import json
import math

import pytest

from repro.common.errors import (
    ConfigError,
    ErrorKind,
    ExecError,
    InjectedCrash,
    PermanentError,
    TransientError,
    ValidationError,
    classify_error,
)
from repro.exec import ExecOptions, GridPlan, InjectSpec, ResultCache, faults
from repro.exec import telemetry as telemetry_module
from repro.exec.faults import (
    FaultInjector,
    FaultSpec,
    bitflip_file,
    parse_fault_plan,
    parse_fault_spec,
    truncate_file,
)
from repro.exec.keys import sim_key
from repro.exec.scheduler import execute_grid, quarantine_report
from repro.harness.report import format_table
from repro.harness.runner import GridRunner, clear_trace_cache
from repro.metrics.aggregate import ResultGrid
from repro.sim.config import REDUCED_CONFIG
from repro.sim.results import SimResult
from repro.trace.io import try_read_trace, verify_trace_file, write_trace


@pytest.fixture(autouse=True)
def _no_lingering_faults():
    faults.deactivate()
    yield
    faults.deactivate()


def tiny_plan(workloads=("nw",), prefetchers=("no-prefetch", "stride")):
    return GridPlan.from_grid(
        list(workloads), list(prefetchers),
        scale=1.0, budget_fraction=0.02, seed=0, config=REDUCED_CONFIG,
    )


class TestSpecParsing:
    def test_full_clause(self):
        spec = parse_fault_spec("task-done:exit@3")
        assert spec == FaultSpec(site="task-done", kind="exit", at=3)

    def test_defaults(self):
        spec = parse_fault_spec("journal.append:torn")
        assert spec.at == 1 and spec.times == 1

    def test_repeat_count(self):
        spec = parse_fault_spec("task-done:raise@2x4")
        assert spec.at == 2 and spec.times == 4

    @pytest.mark.parametrize("text", [
        "nosite", "task-done:", ":raise", "a:raise@x", "a:not-a-kind",
    ])
    def test_malformed_rejected(self, text):
        with pytest.raises(ExecError):
            parse_fault_spec(text)

    def test_plan_parsing(self):
        plan = parse_fault_plan("task-done:raise, journal.append:torn@2")
        assert [s.site for s in plan] == ["task-done", "journal.append"]

    def test_env_install(self):
        injector = faults.install_from_env(
            {"REPRO_FAULTS": "task-done:raise@5"})
        assert injector is faults.ACTIVE
        assert injector.specs[0].at == 5
        faults.deactivate()
        assert faults.install_from_env({}) is None


class TestInjector:
    def test_fires_exactly_at_seeded_occurrence(self):
        injector = FaultInjector(FaultSpec(site="s", kind="raise", at=2))
        injector.check("s")  # hit 1: silent
        with pytest.raises(TransientError):
            injector.check("s")  # hit 2: fires
        injector.check("s")  # hit 3: silent again
        assert injector.hits["s"] == 3
        assert injector.fired == [("s", "raise", 2)]

    def test_other_sites_unaffected(self):
        injector = FaultInjector(FaultSpec(site="s", kind="raise"))
        injector.check("other")
        with pytest.raises(TransientError):
            injector.check("s")

    def test_crash_and_permanent_kinds(self):
        injector = FaultInjector([
            FaultSpec(site="a", kind="crash"),
            FaultSpec(site="b", kind="raise-permanent"),
        ])
        with pytest.raises(InjectedCrash):
            injector.check("a")
        with pytest.raises(PermanentError):
            injector.check("b")

    def test_mangle_tears_the_payload(self):
        injector = FaultInjector(FaultSpec(site="w", kind="torn"))
        data, error = injector.mangle("w", b"0123456789")
        assert data == b"01234"
        assert isinstance(error, InjectedCrash)
        # Subsequent writes pass through untouched.
        data, error = injector.mangle("w", b"0123456789")
        assert data == b"0123456789" and error is None

    def test_module_level_noop_without_injector(self):
        faults.check("anything")
        data, error = faults.mangle("anything", b"abc")
        assert data == b"abc" and error is None


class TestErrorTaxonomy:
    def test_classification(self):
        assert classify_error(ConfigError("x")) is ErrorKind.PERMANENT
        assert classify_error(ValidationError("x")) is ErrorKind.PERMANENT
        assert classify_error(PermanentError("x")) is ErrorKind.PERMANENT
        assert classify_error(TransientError("x")) is ErrorKind.TRANSIENT
        assert classify_error(RuntimeError("x")) is ErrorKind.TRANSIENT

    def test_injected_crash_is_an_exec_error(self):
        # ^C-style deaths must flow through the existing ReproError
        # handling (CLI exit 1) rather than tracebacking.
        assert isinstance(InjectedCrash("x"), ExecError)


class TestArtifactCorruption:
    def test_bitflip_detected_by_trace_checksum(self, stream_trace, tmp_path):
        path = tmp_path / "t.trace"
        write_trace(stream_trace, path)
        assert verify_trace_file(path) is None
        bitflip_file(path, -5)
        assert try_read_trace(path) is None
        assert "checksum" in verify_trace_file(path)

    def test_truncation_detected(self, stream_trace, tmp_path):
        path = tmp_path / "t.trace"
        write_trace(stream_trace, path)
        truncate_file(path, keep_fraction=0.5)
        assert try_read_trace(path) is None
        assert verify_trace_file(path) is not None

    def test_corrupt_result_entry_is_logged_miss_and_rebuilt(
            self, fresh_trace_cache, tmp_path, caplog):
        runner = GridRunner(budget_fraction=0.02, jobs=1, cache_dir=tmp_path)
        runner.run_grid(["nw"], ["stride"])
        clear_trace_cache()

        cache = ResultCache(tmp_path / "results")
        key = sim_key("nw", "stride", 1.0, 0.02, 0, REDUCED_CONFIG)
        path = cache.path_for(key)
        document = json.loads(path.read_text())
        document["result"]["cycles"] += 1  # silent bit rot
        path.write_text(json.dumps(document))

        with caplog.at_level("WARNING", logger="repro.exec"):
            assert cache.get(key) is None
        assert "discarding unusable result-cache entry" in caplog.text
        assert not path.exists()

        # A fresh runner rebuilds the cell rather than crashing.
        rebuilt = GridRunner(budget_fraction=0.02, jobs=1,
                             cache_dir=tmp_path)
        grid = rebuilt.run_grid(["nw"], ["stride"])
        assert telemetry_module.LAST_RUN.sims_run == 1
        assert grid.get("nw", "stride").cycles > 0

    def test_stale_schema_entry_is_deleted_not_deserialized(
            self, fresh_trace_cache, tmp_path):
        runner = GridRunner(budget_fraction=0.02, jobs=1, cache_dir=tmp_path)
        runner.run_grid(["nw"], ["stride"])
        cache = ResultCache(tmp_path / "results")
        key = sim_key("nw", "stride", 1.0, 0.02, 0, REDUCED_CONFIG)
        path = cache.path_for(key)
        document = json.loads(path.read_text())
        document["schema"] = 1  # an envelope from an older build
        path.write_text(json.dumps(document))

        assert cache.get(key) is None
        assert not path.exists()


class TestCircuitBreaker:
    PREFETCHERS = ("no-prefetch", "stride", "sms", "ghb-pc/dc")

    def test_breaker_trips_and_grid_completes_with_holes(
            self, fresh_trace_cache, tmp_path):
        broken = dict.fromkeys(
            [("nw", p) for p in self.PREFETCHERS[:3]],
            InjectSpec(mode="raise-permanent", times=10),
        )
        results, telemetry = execute_grid(
            tiny_plan(("nw", "stencil-default"), self.PREFETCHERS),
            options=ExecOptions(jobs=1, max_retries=2, retry_backoff=0.0,
                                breaker_threshold=3),
            trace_dir=tmp_path,
            inject=broken,
        )
        # The healthy workload finishes every cell.
        for prefetcher in self.PREFETCHERS:
            assert ("stencil-default", prefetcher) in results
        # The poisoned workload is fully DEGRADED: three permanent
        # quarantines trip the breaker, the fourth cell is skipped.
        assert not any(w == "nw" for w, _ in results)
        classes = [entry["class"] for entry in telemetry.quarantined
                   if entry["task"].startswith("sim:nw")]
        assert classes.count("permanent") == 3
        assert classes.count("degraded") == 1
        assert telemetry.is_degraded("nw")
        assert "nw" in telemetry.summary()["degraded_workloads"]
        assert "DEGRADED" in quarantine_report(telemetry)

    def test_permanent_failures_skip_the_retry_budget(
            self, fresh_trace_cache, tmp_path):
        results, telemetry = execute_grid(
            tiny_plan(),
            options=ExecOptions(jobs=1, max_retries=5, retry_backoff=0.0),
            trace_dir=tmp_path,
            inject={("nw", "stride"):
                    InjectSpec(mode="raise-permanent", times=10)},
        )
        assert telemetry.retries == 0
        entry = next(e for e in telemetry.quarantined
                     if e["task"] == "sim:nw:stride")
        assert entry["attempts"] == 1
        assert entry["class"] == "permanent"

    def test_breaker_disabled_with_zero_threshold(self, fresh_trace_cache,
                                                  tmp_path):
        broken = dict.fromkeys(
            [("nw", p) for p in self.PREFETCHERS[:3]],
            InjectSpec(mode="raise-permanent", times=10),
        )
        results, telemetry = execute_grid(
            tiny_plan(("nw",), self.PREFETCHERS),
            options=ExecOptions(jobs=1, retry_backoff=0.0,
                                breaker_threshold=0),
            trace_dir=tmp_path,
            inject=broken,
        )
        assert not telemetry.degraded
        # Without the breaker the healthy fourth cell still runs.
        assert ("nw", self.PREFETCHERS[3]) in results

    def test_pool_path_breaker(self, fresh_trace_cache, tmp_path):
        broken = dict.fromkeys(
            [("nw", p) for p in self.PREFETCHERS[:2]],
            InjectSpec(mode="raise-permanent", times=10),
        )
        results, telemetry = execute_grid(
            tiny_plan(("nw",), self.PREFETCHERS),
            options=ExecOptions(jobs=2, retry_backoff=0.0,
                                breaker_threshold=2),
            trace_dir=tmp_path,
            inject=broken,
        )
        assert telemetry.is_degraded("nw")
        # In-flight healthy sims may still land; the breaker only stops
        # future dispatches.  Every cell is accounted for either way.
        quarantined_cells = {
            tuple(entry["task"].split(":")[1:]) for entry in
            telemetry.quarantined if entry["kind"] == "sim"
        }
        assert quarantined_cells | set(results) == {
            ("nw", p) for p in self.PREFETCHERS
        }
        classes = [entry["class"] for entry in telemetry.quarantined]
        assert classes.count("permanent") == 2


class TestDegradedSurface:
    def test_placeholder_metrics_are_nan(self):
        cell = SimResult.degraded_cell("nw", "stride")
        assert cell.degraded
        assert math.isnan(cell.ipc) and math.isnan(cell.mpki)
        with pytest.raises(ConfigError, match="DEGRADED"):
            cell.to_dict()

    def test_grid_exposes_holes_explicitly(self):
        real = SimResult(workload="nw", prefetcher="stride",
                         instructions=10, cycles=5.0)
        grid = ResultGrid([real], degraded=[("nw", "sms")])
        assert grid.has("nw", "stride")
        assert not grid.has("nw", "sms")
        assert grid.is_degraded("nw", "sms")
        assert grid.degraded_cells == [("nw", "sms")]
        assert grid.get("nw", "sms").degraded
        # Averages skip the hole instead of going NaN.
        assert grid.metric_average("stride", lambda r: r.ipc) == 2.0

    def test_degraded_renders_in_tables(self):
        text = format_table(["w", "ipc"], [["nw", float("nan")]])
        assert "DEGRADED" in text

    def test_strict_runner_raises_on_quarantine(self, fresh_trace_cache,
                                                tmp_path):
        from repro.exec.scheduler import ExecOptions as Options

        runner = GridRunner(
            budget_fraction=0.02, jobs=1, cache_dir=tmp_path, strict=True,
            exec_options=Options(max_retries=0, retry_backoff=0.0,
                                 breaker_threshold=1),
        )
        # Sabotage the trace build so every dependent sim degrades.
        runner.trace = lambda workload: (_ for _ in ()).throw(
            ExecError(f"no trace for {workload}"))
        with pytest.raises(ExecError, match="quarantined"):
            runner.run_grid(["nw"], ["no-prefetch", "stride"])

    def test_lenient_runner_marks_degraded_cells(self, fresh_trace_cache,
                                                 tmp_path):
        runner = GridRunner(budget_fraction=0.02, jobs=1, cache_dir=tmp_path)
        runner.trace = lambda workload: (_ for _ in ()).throw(
            ExecError(f"no trace for {workload}"))
        grid = runner.run_grid(["nw"], ["no-prefetch", "stride"])
        assert grid.degraded_cells == [("nw", "no-prefetch"), ("nw", "stride")]
        assert math.isnan(grid.get("nw", "stride").ipc)
        assert "DEGRADED" in format_table(
            ["w", "ipc"], [["nw", grid.get("nw", "stride").ipc]])
