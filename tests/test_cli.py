"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_workloads(self, capsys):
        assert main(["list", "workloads"]) == 0
        out = capsys.readouterr().out
        assert "stencil-default" in out
        assert "458.sjeng-ref" in out
        assert out.count("\n") >= 30

    def test_prefetchers(self, capsys):
        assert main(["list", "prefetchers"]) == 0
        out = capsys.readouterr().out
        assert "cbws+sms" in out and "ghb-pc/dc" in out


class TestRun:
    def test_single_cell(self, capsys):
        code = main([
            "run", "--workload", "nw", "--prefetcher", "cbws",
            "--budget-fraction", "0.03",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "nw" in out and "cbws" in out
        assert "IPC" in out

    def test_unknown_workload_fails_cleanly(self, capsys):
        code = main([
            "run", "--workload", "nope", "--prefetcher", "cbws",
        ])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestExperiments:
    def test_table3(self, capsys):
        assert main(["table", "3"]) == 0
        assert "Table III" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table", "1", "--budget-fraction", "0.05"]) == 0
        assert "CBWS0" in capsys.readouterr().out

    def test_figure1(self, capsys):
        assert main(["figure", "1", "--budget-fraction", "0.03"]) == 0
        assert "Figure 1" in capsys.readouterr().out


class TestTraceRoundTrip:
    def test_trace_then_inspect(self, tmp_path, capsys):
        path = tmp_path / "nw.trace"
        assert main([
            "trace", "--workload", "nw", "--out", str(path),
            "--accesses", "500",
        ]) == 0
        assert path.exists()
        capsys.readouterr()
        assert main(["inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "memory accesses:   500" in out
        assert "loop fraction:" in out

    def test_inspect_rejects_garbage(self, tmp_path, capsys):
        path = tmp_path / "bad.trace"
        path.write_bytes(b"not a trace")
        assert main(["inspect", str(path)]) == 1


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "99"])


class TestJsonExport:
    def test_run_with_json_output(self, tmp_path, capsys):
        import json

        path = tmp_path / "out.json"
        code = main([
            "run", "--workload", "nw", "--prefetcher", "cbws",
            "--budget-fraction", "0.03", "--json", str(path),
        ])
        assert code == 0
        document = json.loads(path.read_text())
        assert document["results"][0]["workload"] == "nw"
        assert document["metadata"]["budget_fraction"] == 0.03


class TestVersion:
    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {repro.__version__}"

    def test_dunder_version_is_set(self):
        import repro

        major = repro.__version__.split(".")[0]
        assert major.isdigit()


class TestKeyboardInterrupt:
    def test_ctrl_c_exits_130(self, capsys, monkeypatch):
        from repro import cli

        def interrupted(args):
            raise KeyboardInterrupt

        # build_parser runs inside main(), so the parser's handler
        # default picks up the patched module global.
        monkeypatch.setattr(cli, "_cmd_list", interrupted)
        code = main(["list", "workloads"])
        assert code == 130
        assert "interrupted" in capsys.readouterr().err


class TestCampaignCli:
    SPEC = {
        "version": 1,
        "name": "cli-tiny",
        "base": {
            "workloads": ["nw"],
            "prefetchers": ["stride", "cbws"],
            "budget_fraction": 0.02,
        },
        "axes": [
            {"name": "cbws.table_entries", "log2_range": [1, 4]},
        ],
    }

    def write_spec(self, tmp_path):
        import json

        path = tmp_path / "spec.json"
        path.write_text(json.dumps(self.SPEC))
        return path

    def test_run_status_report_round_trip(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path)
        cache = str(tmp_path / "cache")
        assert main(["campaign", "run", str(spec), "--id", "t",
                     "--jobs", "1", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "campaign t: complete" in out

        assert main(["campaign", "status", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "t" in out and "complete" in out

        json_path = tmp_path / "cache" / "campaigns" / "t" / "campaign.json"
        before = json_path.read_bytes()
        assert main(["campaign", "report", "t", "--jobs", "1",
                     "--cache-dir", cache]) == 0
        assert json_path.read_bytes() == before

    def test_duplicate_id_fails_cleanly(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path)
        cache = str(tmp_path / "cache")
        assert main(["campaign", "run", str(spec), "--id", "t",
                     "--jobs", "1", "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["campaign", "run", str(spec), "--id", "t",
                     "--jobs", "1", "--cache-dir", cache]) == 1
        assert "already exists" in capsys.readouterr().err

    def test_bad_spec_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99}')
        assert main(["campaign", "run", str(path),
                     "--cache-dir", str(tmp_path / "c")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_status_empty_dir(self, tmp_path, capsys):
        assert main(["campaign", "status",
                     "--cache-dir", str(tmp_path / "nothing")]) == 0
        assert "no campaigns" in capsys.readouterr().out


class TestCacheGcCli:
    def test_gc_census_and_eviction(self, tmp_path, capsys):
        results = tmp_path / "cache" / "results" / "ab"
        results.mkdir(parents=True)
        (results / "one.json").write_text("x" * 50)
        (results / "two.json").write_text("y" * 50)
        cache = str(tmp_path / "cache")

        assert main(["cache", "gc", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "census" in out and "scanned 2" in out

        assert main(["cache", "gc", "--cache-dir", cache,
                     "--max-bytes", "60", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "would evict 1" in out
        assert len(list(results.glob("*.json"))) == 2

        assert main(["cache", "gc", "--cache-dir", cache,
                     "--max-bytes", "60"]) == 0
        assert len(list(results.glob("*.json"))) == 1

    def test_gc_missing_cache_dir(self, tmp_path, capsys):
        assert main(["cache", "gc",
                     "--cache-dir", str(tmp_path / "nope")]) == 0
        assert "no result cache" in capsys.readouterr().out

    def test_bad_size_fails_cleanly(self, tmp_path, capsys):
        results = tmp_path / "cache" / "results"
        results.mkdir(parents=True)
        assert main(["cache", "gc", "--cache-dir", str(tmp_path / "cache"),
                     "--max-bytes", "lots"]) == 1
        assert "cannot parse size" in capsys.readouterr().err
