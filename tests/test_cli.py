"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_workloads(self, capsys):
        assert main(["list", "workloads"]) == 0
        out = capsys.readouterr().out
        assert "stencil-default" in out
        assert "458.sjeng-ref" in out
        assert out.count("\n") >= 30

    def test_prefetchers(self, capsys):
        assert main(["list", "prefetchers"]) == 0
        out = capsys.readouterr().out
        assert "cbws+sms" in out and "ghb-pc/dc" in out


class TestRun:
    def test_single_cell(self, capsys):
        code = main([
            "run", "--workload", "nw", "--prefetcher", "cbws",
            "--budget-fraction", "0.03",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "nw" in out and "cbws" in out
        assert "IPC" in out

    def test_unknown_workload_fails_cleanly(self, capsys):
        code = main([
            "run", "--workload", "nope", "--prefetcher", "cbws",
        ])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestExperiments:
    def test_table3(self, capsys):
        assert main(["table", "3"]) == 0
        assert "Table III" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table", "1", "--budget-fraction", "0.05"]) == 0
        assert "CBWS0" in capsys.readouterr().out

    def test_figure1(self, capsys):
        assert main(["figure", "1", "--budget-fraction", "0.03"]) == 0
        assert "Figure 1" in capsys.readouterr().out


class TestTraceRoundTrip:
    def test_trace_then_inspect(self, tmp_path, capsys):
        path = tmp_path / "nw.trace"
        assert main([
            "trace", "--workload", "nw", "--out", str(path),
            "--accesses", "500",
        ]) == 0
        assert path.exists()
        capsys.readouterr()
        assert main(["inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "memory accesses:   500" in out
        assert "loop fraction:" in out

    def test_inspect_rejects_garbage(self, tmp_path, capsys):
        path = tmp_path / "bad.trace"
        path.write_bytes(b"not a trace")
        assert main(["inspect", str(path)]) == 1


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "99"])


class TestJsonExport:
    def test_run_with_json_output(self, tmp_path, capsys):
        import json

        path = tmp_path / "out.json"
        code = main([
            "run", "--workload", "nw", "--prefetcher", "cbws",
            "--budget-fraction", "0.03", "--json", str(path),
        ])
        assert code == 0
        document = json.loads(path.read_text())
        assert document["results"][0]["workload"] == "nw"
        assert document["metadata"]["budget_fraction"] == 0.03


class TestVersion:
    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {repro.__version__}"

    def test_dunder_version_is_set(self):
        import repro

        major = repro.__version__.split(".")[0]
        assert major.isdigit()


class TestKeyboardInterrupt:
    def test_ctrl_c_exits_130(self, capsys, monkeypatch):
        from repro import cli

        def interrupted(args):
            raise KeyboardInterrupt

        # build_parser runs inside main(), so the parser's handler
        # default picks up the patched module global.
        monkeypatch.setattr(cli, "_cmd_list", interrupted)
        code = main(["list", "workloads"])
        assert code == 130
        assert "interrupted" in capsys.readouterr().err
