"""Tests for the Figure 1 loop-runtime analysis."""

import pytest

from repro.passes.loopstats import loop_runtime_stats
from repro.trace.events import BlockBegin, BlockEnd, MemoryAccess
from repro.trace.stream import Trace

from conftest import annotated_trace, make_stream_kernel


class TestOnCraftedTrace:
    def test_fraction_and_counts(self):
        events = [
            MemoryAccess(1, 0, 0, False),          # outside any block
            BlockBegin(10, 0),
            MemoryAccess(11, 0, 64, False),
            MemoryAccess(12, 0, 128, True),
            BlockEnd(20, 0),
        ]
        stats = loop_runtime_stats(Trace("t", events, 100))
        assert stats.loop_instructions == 10
        assert stats.loop_fraction == pytest.approx(0.10)
        assert stats.total_memory_accesses == 3
        assert stats.loop_memory_accesses == 2
        assert stats.loop_access_fraction == pytest.approx(2 / 3)
        assert stats.block_instances == 1

    def test_empty_trace(self):
        stats = loop_runtime_stats(Trace("t", [], 0))
        assert stats.loop_fraction == 0.0
        assert stats.loop_access_fraction == 0.0


class TestOnRealKernel:
    def test_tight_stream_kernel_is_loop_dominated(self):
        trace = annotated_trace(make_stream_kernel(length=512))
        stats = loop_runtime_stats(trace)
        assert stats.block_instances == 512
        # The kernel body is one tight loop: the loop fraction must
        # dominate (Figure 1 reports >70% on average).
        assert stats.loop_fraction > 0.7
