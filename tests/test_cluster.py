"""The cluster layer: ring, chaos parsing, retry policy, failover.

Unit tests cover the consistent-hash ring's determinism and stability,
chaos-spec parsing, the supervisor's crash-loop circuit breaker (with a
fake process — no subprocesses), and the client retry policy's jitter
bounds.  The end-to-end section runs a real 2-shard cluster once per
module, and the chaos drill — kill every shard on its second finished
job, then prove 100% availability and bit-identical digests against a
fault-free single-broker run — is the PR's acceptance criterion.
"""

from __future__ import annotations

import time

import pytest

from repro.cluster import HashRing, ShardState, Supervisor, parse_chaos
from repro.cluster.ring import DEFAULT_REPLICAS
from repro.common.errors import ConfigError, ReproError
from repro.serve.client import (
    ConnectionFailed,
    DeadlineExceeded,
    RetryPolicy,
    ServeClient,
    ServeClientError,
)
from repro.serve.http import ThreadedServer
from repro.serve.loadgen import LoadgenConfig, build_plan
from repro.serve.protocol import JobStatus, SimulateRequest

BUDGET = 0.02


def request(prefetcher: str = "stride",
            workload: str = "nw") -> SimulateRequest:
    return SimulateRequest(workload=workload, prefetcher=prefetcher,
                           budget_fraction=BUDGET, seed=0)


class TestHashRing:
    def test_owner_is_deterministic_across_instances(self):
        keys = [f"key-{index}" for index in range(200)]
        first = HashRing(["s0", "s1", "s2"])
        second = HashRing(["s0", "s1", "s2"])
        assert [first.owner(key) for key in keys] == \
               [second.owner(key) for key in keys]

    def test_distribution_is_roughly_balanced(self):
        ring = HashRing(["s0", "s1", "s2"])
        counts = ring.distribution(f"key-{index}" for index in range(3000))
        assert sum(counts.values()) == 3000
        for member, count in counts.items():
            assert 600 <= count <= 1400, (member, counts)

    def test_membership_growth_remaps_only_a_fraction(self):
        keys = [f"key-{index}" for index in range(1000)]
        small = HashRing(["s0", "s1", "s2"])
        large = HashRing(["s0", "s1", "s2", "s3"])
        moved = sum(1 for key in keys
                    if small.owner(key) != large.owner(key))
        # Consistent hashing moves ~1/4 of keys to the new member; a
        # modulo scheme would move ~3/4.  Allow generous slack.
        assert moved < 500, moved

    def test_owner_always_a_member(self):
        ring = HashRing(["a", "b"])
        assert ring.owner("anything") in ring.members
        assert "a" in ring and "c" not in ring
        assert len(ring) == 2

    def test_rejects_degenerate_rings(self):
        with pytest.raises(ConfigError):
            HashRing([])
        with pytest.raises(ConfigError):
            HashRing(["s0", "s0"])
        with pytest.raises(ConfigError):
            HashRing(["s0"], replicas=0)

    def test_replicas_default_smooths_load(self):
        assert DEFAULT_REPLICAS >= 32


class TestParseChaos:
    NAMES = ("s0", "s1", "s2")

    def test_star_targets_every_shard(self):
        plans = parse_chaos(["*:serve.admit:crash"], self.NAMES)
        assert set(plans) == set(self.NAMES)
        assert plans["s1"] == "serve.admit:crash"

    def test_single_shard_target(self):
        plans = parse_chaos(["s1:serve.job-finished:exit@2"], self.NAMES)
        assert plans == {"s1": "serve.job-finished:exit@2"}

    def test_multiple_clauses_join(self):
        plans = parse_chaos(
            ["s0:serve.admit:raise", "s0:journal.append:torn"], self.NAMES)
        assert plans["s0"] == "serve.admit:raise,journal.append:torn"

    def test_unknown_shard_rejected(self):
        with pytest.raises(ConfigError, match="unknown shard"):
            parse_chaos(["s9:serve.admit:crash"], self.NAMES)

    def test_malformed_spec_rejected(self):
        with pytest.raises(ConfigError, match="malformed"):
            parse_chaos(["no-colon-here"], self.NAMES)

    def test_invalid_fault_plan_rejected_at_parse_time(self):
        with pytest.raises(ReproError):
            parse_chaos(["s0:serve.admit:not-a-kind"], self.NAMES)


class _FakeProcess:
    """A dead subprocess, as far as the supervisor can tell."""

    returncode = 1

    def poll(self):
        return self.returncode


class TestCrashLoopBreaker:
    def make_supervisor(self, tmp_path, **kwargs):
        kwargs.setdefault("announce", lambda *_: None)
        return Supervisor(shards=1, cache_dir=tmp_path, **kwargs)

    def test_breaker_opens_after_consecutive_fast_crashes(self, tmp_path):
        supervisor = self.make_supervisor(tmp_path, crash_loop_limit=3,
                                          min_uptime=5.0)
        shard = supervisor.shards[0]
        shard.process = _FakeProcess()
        now = time.monotonic()
        for crash in range(2):
            shard.started_at = now  # zero uptime: a fast failure
            supervisor._handle_exit(shard, now)
            assert shard.state is ShardState.BACKOFF, crash
        shard.started_at = now
        supervisor._handle_exit(shard, now)
        assert shard.state is ShardState.FAILED
        assert supervisor.counters["cluster.breaker_trips"] == 1
        assert supervisor.endpoint("s0") is None

    def test_long_uptime_resets_the_fast_failure_count(self, tmp_path):
        supervisor = self.make_supervisor(tmp_path, crash_loop_limit=2,
                                          min_uptime=5.0)
        shard = supervisor.shards[0]
        shard.process = _FakeProcess()
        now = time.monotonic()
        shard.started_at = now
        supervisor._handle_exit(shard, now)
        assert shard.consecutive_fast_failures == 1
        # A healthy stretch longer than min_uptime wipes the slate.
        shard.started_at = now - 60.0
        supervisor._handle_exit(shard, now)
        assert shard.consecutive_fast_failures == 0
        assert shard.state is ShardState.BACKOFF

    def test_restart_backoff_grows_with_consecutive_crashes(self, tmp_path):
        supervisor = self.make_supervisor(tmp_path, backoff_base=1.0,
                                          backoff_cap=100.0,
                                          crash_loop_limit=10)
        shard = supervisor.shards[0]
        shard.process = _FakeProcess()
        now = time.monotonic()
        delays = []
        for _ in range(4):
            shard.started_at = now
            supervisor._handle_exit(shard, now)
            delays.append(shard.backoff_until - now)
        # Exponential-with-jitter: each delay at least ~1.5x the last.
        for earlier, later in zip(delays, delays[1:]):
            assert later > earlier * 1.2, delays

    def test_drain_marks_exits_stopped_not_crashed(self, tmp_path):
        supervisor = self.make_supervisor(tmp_path)
        shard = supervisor.shards[0]
        shard.process = _FakeProcess()
        supervisor._stopping = True
        supervisor._handle_exit(shard, time.monotonic())
        assert shard.state is ShardState.STOPPED
        assert supervisor.counters["cluster.restarts"] == 0

    def test_cluster_requires_shared_cache_dir(self):
        with pytest.raises(ConfigError, match="cache-dir"):
            Supervisor(shards=2, cache_dir=None)


class TestRetryPolicy:
    def test_full_jitter_stays_under_the_exponential_cap(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=2.0)
        for attempt in range(1, 10):
            cap = min(2.0, 0.1 * 2 ** (attempt - 1))
            for _ in range(20):
                assert 0.0 <= policy.delay(attempt) <= cap

    def test_retry_after_overrides_the_jittered_draw(self):
        policy = RetryPolicy(base_delay=0.1)
        for _ in range(20):
            delay = policy.delay(1, retry_after=3.0)
            assert 3.0 <= delay <= 3.1

    def test_unreachable_server_gives_up_after_max_attempts(self):
        client = ServeClient("127.0.0.1", 1,  # nothing listens on port 1
                             retry=RetryPolicy(max_attempts=3,
                                               base_delay=0.001,
                                               max_delay=0.002,
                                               max_deadline=30.0))
        with pytest.raises(ServeClientError, match="gave up after 3"):
            client.run(request())
        assert client.retries == 2  # attempts - 1 sleeps happened

    def test_deadline_beats_attempts_when_tighter(self):
        client = ServeClient("127.0.0.1", 1,
                             retry=RetryPolicy(max_attempts=50,
                                               base_delay=5.0,
                                               max_delay=5.0,
                                               max_deadline=0.05))
        with pytest.raises(DeadlineExceeded):
            client.run(request())

    def test_no_policy_preserves_raise_on_first_failure(self):
        client = ServeClient("127.0.0.1", 1)
        with pytest.raises(ConnectionFailed):
            client.run(request())


class TestCoverGridPlan:
    def test_cover_grid_prefix_hits_every_cell(self):
        config = LoadgenConfig.quick_cluster()
        plan = build_plan(config)
        cells = {(req.workload, req.prefetcher) for req, _ in plan}
        assert cells == {("nw", prefetcher)
                         for prefetcher in config.prefetchers}
        assert len(plan) == config.requests

    def test_default_plan_is_unchanged_without_cover_grid(self):
        config = LoadgenConfig.quick()
        assert not config.cover_grid
        plan = build_plan(config)
        assert len(plan) == config.requests


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    from repro.cluster import ThreadedCluster

    cache_dir = tmp_path_factory.mktemp("cluster-cache")
    with ThreadedCluster(shards=2, cache_dir=cache_dir, jobs=1,
                         probe_interval=0.2) as running:
        yield running


@pytest.fixture(scope="module")
def cluster_client(cluster):
    client = ServeClient(port=cluster.port,
                         retry=RetryPolicy(max_attempts=8,
                                           base_delay=0.05,
                                           max_delay=1.0,
                                           max_deadline=180.0))
    client.wait_until_ready(timeout=90.0)
    return client


class TestClusterEndToEnd:
    def test_simulate_routes_to_a_shard_and_completes(self, cluster_client):
        view = cluster_client.run(request("stride"), timeout=180.0)
        assert view.status is JobStatus.DONE
        shard, _, local = view.job_id.partition(":")
        assert shard in ("s0", "s1") or view.job_id.startswith("cache:")
        assert view.result is not None

    def test_repeat_request_short_circuits_via_shared_cache(
            self, cluster_client):
        first = cluster_client.run(request("no-prefetch"), timeout=180.0)
        assert first.status is JobStatus.DONE
        again = cluster_client.submit(request("no-prefetch"))
        assert again.status is JobStatus.DONE
        assert again.cache_hit is True
        assert again.job_id.startswith("cache:")
        # Cache-backed jobs poll and stream like any other job.
        polled = cluster_client.job(again.job_id)
        assert polled.status is JobStatus.DONE
        events = list(cluster_client.stream_events(again.job_id,
                                                   timeout=30.0))
        assert events[-1]["_event"] == "terminal"

    def test_healthz_reports_per_shard_state(self, cluster_client):
        health = cluster_client.health()
        assert health["shards_healthy"] == 2
        assert set(health["shards"]) == {"s0", "s1"}
        for state in health["shards"].values():
            assert state["state"] == "ready"

    def test_metrics_aggregates_shards_plus_cluster_counters(
            self, cluster_client):
        text = cluster_client.metrics_text()
        assert "repro_cluster_forwards_total" in text
        assert "repro_cluster_shards_healthy 2" in text
        assert "repro_cluster_shard_up_s0 1" in text
        # Shard-side serve counters roll up under the same names.
        assert "repro_serve_requests_total" in text

    def test_unknown_job_id_is_a_404_shape_the_client_understands(
            self, cluster_client):
        from repro.serve.client import JobNotFound

        bare = ServeClient(port=cluster_client.port)
        with pytest.raises(JobNotFound):
            bare.job("not-a-cluster-id")
        with pytest.raises(JobNotFound):
            bare.job("s0:j999999")


class TestChaosFailover:
    """The acceptance drill: kill shards mid-run, lose nothing."""

    def test_kill_shard_chaos_is_invisible_after_retries(
            self, tmp_path_factory):
        from repro.cluster import ThreadedCluster
        from repro.serve.loadgen import run_cluster_loadgen

        chaos_dir = tmp_path_factory.mktemp("chaos-cache")
        with ThreadedCluster(shards=3, cache_dir=chaos_dir, jobs=1,
                             chaos=["*:serve.job-finished:exit@2"],
                             min_uptime=1.0, backoff_base=0.2,
                             probe_interval=0.2) as cluster:
            config = LoadgenConfig.quick_cluster(port=cluster.port)
            document = run_cluster_loadgen(config)

        totals = document["totals"]
        assert totals["failed"] == 0, document["errors"]
        assert totals["availability"] == 1.0
        # The full grid over 3 shards guarantees some shard finished
        # two jobs, so the exit@2 fault must have killed at least one.
        delta = document["cluster"]["metrics_delta"]
        assert delta.get("repro_cluster_restarts_total", 0) >= 1
        assert totals["retries"] >= 1

        # Bit-identity: the same plan against a fault-free single
        # broker (fresh cache) produces identical digests per cell.
        clean_dir = tmp_path_factory.mktemp("clean-cache")
        with ThreadedServer(workers=1, cache_dir=clean_dir,
                            batch_window=0.01) as server:
            reference = run_cluster_loadgen(
                LoadgenConfig.quick_cluster(port=server.port))
        assert reference["totals"]["failed"] == 0
        assert document["digests"] == reference["digests"]
        assert len(document["digests"]) == 6
