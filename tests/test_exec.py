"""Tests for repro.exec: keys, cache, plan, scheduler, runner wiring."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.cli import _runner, build_parser, main
from repro.common.errors import ExecError
from repro.exec import (
    ExecOptions,
    GridPlan,
    InjectSpec,
    ResultCache,
    stable_hash,
    trace_filename,
)
from repro.exec import telemetry as telemetry_module
from repro.exec.keys import canonicalize, sim_key
from repro.exec.scheduler import execute_grid
from repro.exec.telemetry import ExecTelemetry, PROCESS_COUNTERS, load_stats
from repro.harness import runner as runner_module
from repro.harness.report import format_exec_stats
from repro.harness.runner import GridRunner, clear_trace_cache
from repro.sim.config import PAPER_CONFIG, REDUCED_CONFIG

WORKLOADS = ["nw", "stencil-default"]
PREFETCHERS = ["no-prefetch", "stride"]

# The acceptance grid: 4 workloads x 3 prefetchers.
IDENTITY_WORKLOADS = ["nw", "stencil-default", "histo-large", "fft-simlarge"]
IDENTITY_PREFETCHERS = ["no-prefetch", "stride", "sms"]


def tiny_plan(workloads=("nw",), prefetchers=("no-prefetch", "stride")):
    return GridPlan.from_grid(
        list(workloads), list(prefetchers),
        scale=1.0, budget_fraction=0.02, seed=0, config=REDUCED_CONFIG,
    )


def grid_cells(grid, workloads=WORKLOADS, prefetchers=PREFETCHERS):
    return {
        (w, p): grid.get(w, p).to_dict()
        for w in workloads for p in prefetchers
    }


class TestKeys:
    def test_equal_inputs_equal_keys(self):
        assert stable_hash("a", 1, 0.3) == stable_hash("a", 1, 0.3)

    def test_float_precision_never_collides(self):
        # 0.1 + 0.2 != 0.3 exactly; the keys must reflect that.
        assert stable_hash(0.1 + 0.2) != stable_hash(0.3)
        # int 1 and float 1.0 compare equal but are distinct inputs.
        assert stable_hash(1) != stable_hash(1.0)

    def test_canonicalize_rejects_unkeyable_values(self):
        with pytest.raises(TypeError, match="stable key"):
            canonicalize(object())

    def test_trace_filename_stable_and_distinct(self):
        first = trace_filename("nw", 1.0, 0.1 + 0.2, 0)
        again = trace_filename("nw", 1.0, 0.1 + 0.2, 0)
        other = trace_filename("nw", 1.0, 0.3, 0)
        assert first == again
        assert first != other
        # No raw float repr may leak into the name.
        assert "0.30000000000000004" not in first
        assert first.startswith("nw-") and first.endswith(".trace")

    def test_sim_key_covers_config(self):
        reduced = sim_key("nw", "stride", 1.0, 0.3, 0, REDUCED_CONFIG)
        paper = sim_key("nw", "stride", 1.0, 0.3, 0, PAPER_CONFIG)
        assert reduced != paper

    def test_sim_key_stable_across_processes(self):
        local = sim_key("nw", "stride", 1.0, 0.3, 0, REDUCED_CONFIG)
        src = str(Path(repro.__file__).resolve().parents[1])
        code = (
            f"import sys; sys.path.insert(0, {src!r})\n"
            "from repro.exec.keys import sim_key\n"
            "from repro.sim.config import REDUCED_CONFIG\n"
            "print(sim_key('nw', 'stride', 1.0, 0.3, 0, REDUCED_CONFIG))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True,
        )
        assert out.stdout.strip() == local


class TestResultCache:
    def test_round_trip(self, tiny_runner, tmp_path):
        result = tiny_runner.run_one("nw", "stride")
        cache = ResultCache(tmp_path)
        key = sim_key("nw", "stride", 1.0, 0.05, 0, REDUCED_CONFIG)
        assert cache.get(key) is None
        cache.put(key, result)
        assert cache.contains(key)
        assert cache.get(key).to_dict() == result.to_dict()
        assert len(cache) == 1

    def test_corrupt_entry_is_miss_and_deleted(self, tiny_runner, tmp_path):
        cache = ResultCache(tmp_path)
        key = sim_key("nw", "stride", 1.0, 0.05, 0, REDUCED_CONFIG)
        cache.put(key, tiny_runner.run_one("nw", "stride"))
        cache.path_for(key).write_text("{ not json")
        assert cache.get(key) is None
        assert not cache.path_for(key).exists()

    def test_schema_mismatch_is_miss(self, tiny_runner, tmp_path):
        cache = ResultCache(tmp_path)
        key = sim_key("nw", "stride", 1.0, 0.05, 0, REDUCED_CONFIG)
        cache.put(key, tiny_runner.run_one("nw", "stride"))
        document = json.loads(cache.path_for(key).read_text())
        document["result"]["schema"] = 999
        cache.path_for(key).write_text(json.dumps(document))
        assert cache.get(key) is None

    def test_clear(self, tiny_runner, tmp_path):
        cache = ResultCache(tmp_path)
        key = sim_key("nw", "stride", 1.0, 0.05, 0, REDUCED_CONFIG)
        cache.put(key, tiny_runner.run_one("nw", "stride"))
        cache.clear()
        assert len(cache) == 0


class TestGridPlan:
    def test_one_trace_node_per_workload(self):
        plan = tiny_plan(WORKLOADS, PREFETCHERS)
        assert sorted(plan.trace_nodes) == sorted(WORKLOADS)
        assert len(plan) == 4

    def test_sim_nodes_preserve_grid_order(self):
        plan = tiny_plan(WORKLOADS, PREFETCHERS)
        cells = [node.cell for node in plan.sim_nodes]
        assert cells == [(w, p) for w in WORKLOADS for p in PREFETCHERS]

    def test_dependents(self):
        plan = tiny_plan(WORKLOADS, PREFETCHERS)
        fanout = plan.dependents("nw")
        assert [node.prefetcher for node in fanout] == PREFETCHERS
        assert all(node.workload == "nw" for node in fanout)


class TestExecuteGrid:
    def test_parallel_matches_serial(self, fresh_trace_cache, tmp_path):
        plan = tiny_plan()
        serial, _ = execute_grid(
            plan, options=ExecOptions(jobs=1), trace_dir=tmp_path / "s")
        parallel, telemetry = execute_grid(
            plan, options=ExecOptions(jobs=2), trace_dir=tmp_path / "p")
        assert serial.keys() == parallel.keys()
        for cell, result in serial.items():
            assert parallel[cell].to_dict() == result.to_dict()
        assert telemetry.sims_run == 2
        assert telemetry.jobs == 2

    def test_retry_then_success(self, fresh_trace_cache, tmp_path):
        results, telemetry = execute_grid(
            tiny_plan(),
            options=ExecOptions(jobs=1, max_retries=2, retry_backoff=0.0),
            trace_dir=tmp_path,
            inject={("nw", "stride"): InjectSpec(mode="raise", times=1)},
        )
        assert len(results) == 2
        assert telemetry.retries == 1
        assert not telemetry.quarantined

    def test_retry_exhaustion_quarantines(self, fresh_trace_cache, tmp_path):
        results, telemetry = execute_grid(
            tiny_plan(),
            options=ExecOptions(jobs=1, max_retries=1, retry_backoff=0.0),
            trace_dir=tmp_path,
            inject={("nw", "stride"): InjectSpec(mode="raise", times=10)},
        )
        assert ("nw", "stride") not in results
        assert ("nw", "no-prefetch") in results
        names = [entry["task"] for entry in telemetry.quarantined]
        assert names == ["sim:nw:stride"]
        assert telemetry.quarantined[0]["attempts"] == 2

    def test_trace_failure_quarantines_dependents(self, fresh_trace_cache,
                                                  tmp_path):
        def broken_provider(workload):
            raise ExecError(f"no trace for {workload}")

        results, telemetry = execute_grid(
            tiny_plan(),
            options=ExecOptions(jobs=1),
            trace_dir=tmp_path,
            trace_provider=broken_provider,
        )
        assert not results
        names = sorted(entry["task"] for entry in telemetry.quarantined)
        assert names == ["sim:nw:no-prefetch", "sim:nw:stride", "trace:nw"]

    def test_worker_crash_quarantines_only_guilty(self, fresh_trace_cache,
                                                  tmp_path):
        # One cell crashes its worker on every attempt.  The pool break
        # kills the innocent neighbour's future too, but the serial
        # probe must re-run it uncharged and quarantine only the
        # repeat offender.
        results, telemetry = execute_grid(
            tiny_plan(),
            options=ExecOptions(jobs=2, max_retries=1, retry_backoff=0.0),
            trace_dir=tmp_path,
            inject={("nw", "stride"): InjectSpec(mode="crash", times=10)},
        )
        names = [entry["task"] for entry in telemetry.quarantined]
        assert names == ["sim:nw:stride"]
        assert ("nw", "no-prefetch") in results
        assert telemetry.worker_crashes >= 1

    def test_hung_task_times_out(self, fresh_trace_cache, tmp_path):
        results, telemetry = execute_grid(
            tiny_plan(),
            options=ExecOptions(jobs=2, max_retries=0, timeout=1.5,
                                retry_backoff=0.0),
            trace_dir=tmp_path,
            inject={("nw", "stride"): InjectSpec(mode="hang",
                                                 hang_seconds=30.0,
                                                 times=10)},
        )
        assert telemetry.timeouts >= 1
        names = [entry["task"] for entry in telemetry.quarantined]
        assert names == ["sim:nw:stride"]
        assert ("nw", "no-prefetch") in results

    def test_cache_replay_runs_zero_sims(self, fresh_trace_cache, tmp_path):
        cache = ResultCache(tmp_path / "results")
        cold_results, cold = execute_grid(
            tiny_plan(), options=ExecOptions(jobs=1), cache=cache,
            trace_dir=tmp_path)
        warm_results, warm = execute_grid(
            tiny_plan(), options=ExecOptions(jobs=1), cache=cache,
            trace_dir=tmp_path)
        assert cold.sims_run == 2 and cold.cache_hits == 0
        assert warm.sims_run == 0 and warm.cache_hits == 2
        for cell, result in cold_results.items():
            assert warm_results[cell].to_dict() == result.to_dict()

    def test_stats_persist_and_render(self, fresh_trace_cache, tmp_path):
        stats_path = tmp_path / "exec-stats.json"
        execute_grid(tiny_plan(), options=ExecOptions(jobs=1),
                     trace_dir=tmp_path, stats_path=stats_path)
        document = load_stats(stats_path)
        assert document["summary"]["sims_run"] == 2
        rendered = format_exec_stats(document["summary"])
        assert "simulations run" in rendered
        assert telemetry_module.LAST_RUN is not None


class TestTelemetry:
    def test_counters_balance(self):
        telemetry = ExecTelemetry()
        telemetry.task_queued(3)
        telemetry.task_started()
        telemetry.task_finished("t", "sim", 0.1, 1)
        assert telemetry.tasks_done == 1
        assert telemetry.tasks_pending == 2
        assert telemetry.mean_task_seconds() == pytest.approx(0.1)
        assert telemetry.eta_seconds() == pytest.approx(0.2)

    def test_summary_includes_quarantined_tasks(self):
        telemetry = ExecTelemetry()
        telemetry.quarantine("sim:a:b", "sim", "boom", 3)
        summary = telemetry.summary()
        assert summary["quarantined"] == 1
        assert summary["quarantined_tasks"] == ["sim:a:b"]
        assert "sim:a:b" in format_exec_stats(summary)


class TestRunnerWiring:
    def test_memory_cache_is_bounded(self, fresh_trace_cache):
        capacity = runner_module._MEMORY_CACHE_CAPACITY
        for index in range(capacity + 4):
            runner_module._remember_trace(("w", float(index), 1.0, 0), object())
        assert len(runner_module._MEMORY_CACHE) == capacity
        # Oldest entries were evicted, newest kept.
        assert ("w", 0.0, 1.0, 0) not in runner_module._MEMORY_CACHE
        assert ("w", float(capacity + 3), 1.0, 0) in runner_module._MEMORY_CACHE

    def test_disk_path_is_stable_and_distinct(self, tmp_path):
        first = GridRunner(budget_fraction=0.1 + 0.2, cache_dir=tmp_path)
        again = GridRunner(budget_fraction=0.1 + 0.2, cache_dir=tmp_path)
        other = GridRunner(budget_fraction=0.3, cache_dir=tmp_path)
        assert first._disk_path("nw") == again._disk_path("nw")
        assert first._disk_path("nw") != other._disk_path("nw")
        assert "0.30000000000000004" not in first._disk_path("nw").name

    def test_corrupt_disk_trace_is_rebuilt(self, fresh_trace_cache, tmp_path):
        runner = GridRunner(budget_fraction=0.02, cache_dir=tmp_path)
        original = runner.trace("nw")
        path = runner._disk_path("nw")
        assert path.exists()
        path.write_bytes(b"not a trace")
        clear_trace_cache()
        before = PROCESS_COUNTERS["corrupt_traces"]
        rebuilt = GridRunner(budget_fraction=0.02,
                             cache_dir=tmp_path).trace("nw")
        assert PROCESS_COUNTERS["corrupt_traces"] == before + 1
        assert rebuilt.events == original.events
        # The rebuilt trace was re-persisted and now loads cleanly.
        clear_trace_cache()
        reloaded = GridRunner(budget_fraction=0.02,
                              cache_dir=tmp_path).trace("nw")
        assert reloaded.events == original.events

    def test_exec_path_matches_legacy_grid(self, fresh_trace_cache, tmp_path):
        legacy = GridRunner(budget_fraction=0.02).run_grid(
            WORKLOADS, PREFETCHERS)
        clear_trace_cache()
        executed = GridRunner(
            budget_fraction=0.02, jobs=1, cache_dir=tmp_path,
        ).run_grid(WORKLOADS, PREFETCHERS)
        assert grid_cells(executed) == grid_cells(legacy)

    def test_parallel_grid_identical_to_serial_4x3(self, fresh_trace_cache,
                                                   tmp_path):
        serial = GridRunner(budget_fraction=0.02).run_grid(
            IDENTITY_WORKLOADS, IDENTITY_PREFETCHERS)
        clear_trace_cache()
        parallel = GridRunner(
            budget_fraction=0.02, jobs=2, cache_dir=tmp_path / "par",
        ).run_grid(IDENTITY_WORKLOADS, IDENTITY_PREFETCHERS)
        for workload in IDENTITY_WORKLOADS:
            for prefetcher in IDENTITY_PREFETCHERS:
                expected = serial.get(workload, prefetcher)
                actual = parallel.get(workload, prefetcher)
                assert actual.mpki == expected.mpki
                assert actual.ipc == expected.ipc
                assert actual.to_dict() == expected.to_dict()

    def test_result_cache_replay_across_runners(self, fresh_trace_cache,
                                                tmp_path):
        cold = GridRunner(budget_fraction=0.02, jobs=1, cache_dir=tmp_path)
        cold_grid = cold.run_grid(["nw"], PREFETCHERS)
        clear_trace_cache()
        warm = GridRunner(budget_fraction=0.02, jobs=1, cache_dir=tmp_path)
        warm_grid = warm.run_grid(["nw"], PREFETCHERS)
        telemetry = telemetry_module.LAST_RUN
        assert telemetry.sims_run == 0
        assert telemetry.cache_hits == len(PREFETCHERS)
        assert (grid_cells(warm_grid, ["nw"], PREFETCHERS)
                == grid_cells(cold_grid, ["nw"], PREFETCHERS))
        assert (tmp_path / "exec-stats.json").exists()

    def test_figure14_warm_rerun_runs_zero_sims(self, fresh_trace_cache,
                                                tmp_path):
        from repro.harness import experiments

        cold_runner = GridRunner(budget_fraction=0.02, jobs=1,
                                 cache_dir=tmp_path)
        cold = experiments.figure14(cold_runner)
        cold_stats = telemetry_module.LAST_RUN
        assert cold_stats.sims_run > 0
        clear_trace_cache()
        warm_runner = GridRunner(budget_fraction=0.02, jobs=1,
                                 cache_dir=tmp_path)
        warm = experiments.figure14(warm_runner)
        warm_stats = telemetry_module.LAST_RUN
        assert warm_stats.sims_run == 0
        assert warm_stats.cache_hits == cold_stats.sims_run
        assert warm.render() == cold.render()

    def test_no_result_cache_keeps_legacy_path(self, fresh_trace_cache):
        marker = telemetry_module.LAST_RUN = None
        grid = GridRunner(budget_fraction=0.02).run_grid(["nw"], ["stride"])
        assert grid.get("nw", "stride").prefetcher == "stride"
        # jobs=1 with no cache never touches the exec scheduler.
        assert telemetry_module.LAST_RUN is marker


class TestCliExec:
    def test_runner_flag_plumbing(self, tmp_path):
        parser = build_parser()
        args = parser.parse_args([
            "run", "--workload", "nw", "--prefetcher", "stride",
            "--jobs", "3", "--cache-dir", str(tmp_path),
            "--no-result-cache",
        ])
        runner = _runner(args)
        assert runner.jobs == 3
        assert runner.cache_dir == tmp_path
        assert runner._result_cache_root is None

    def test_default_jobs_uses_all_cores(self, tmp_path):
        parser = build_parser()
        args = parser.parse_args([
            "run", "--workload", "nw", "--prefetcher", "stride",
            "--cache-dir", str(tmp_path),
        ])
        runner = _runner(args)
        assert runner.jobs is None
        assert runner._result_cache_root == tmp_path / "results"

    def test_exec_stats_command(self, fresh_trace_cache, tmp_path, capsys):
        GridRunner(budget_fraction=0.02, jobs=1, cache_dir=tmp_path).run_grid(
            ["nw"], ["stride"])
        assert main(["exec-stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Grid execution statistics" in out
        assert "simulations run" in out

    def test_exec_stats_without_run_fails_cleanly(self, tmp_path, capsys):
        code = main(["exec-stats", "--cache-dir", str(tmp_path / "empty")])
        assert code == 1
        assert "no recorded execution statistics" in capsys.readouterr().err


class TestWorkerTraceCacheBytes:
    """The per-worker trace LRU is bounded by estimated total bytes."""

    def _fake_trace(self, events: int):
        # trace_nbytes only looks at len(trace.events); a stand-in with
        # that shape keeps these tests free of real trace construction.
        class FakeTrace:
            def __init__(self, count):
                self.events = [None] * count

        return FakeTrace(events)

    def test_byte_bound_evicts_oldest(self, monkeypatch):
        from repro.exec import pool

        monkeypatch.setattr(pool, "_TRACE_CACHE_MAX_BYTES", 100_000)
        monkeypatch.setattr(pool, "_TRACE_CACHE", pool.OrderedDict())
        # Each ~33 KB trace fits; a fourth pushes the total over 100 KB.
        trace = self._fake_trace(events=200)
        assert 30_000 < pool.trace_nbytes(trace) < 40_000
        for index in range(4):
            pool._remember_trace(f"t{index}", self._fake_trace(events=200))
        assert "t0" not in pool._TRACE_CACHE
        assert "t3" in pool._TRACE_CACHE
        total = sum(pool.trace_nbytes(t)
                    for t in pool._TRACE_CACHE.values())
        assert total <= 100_000

    def test_single_oversized_trace_is_retained(self, monkeypatch):
        from repro.exec import pool

        monkeypatch.setattr(pool, "_TRACE_CACHE_MAX_BYTES", 1_000)
        monkeypatch.setattr(pool, "_TRACE_CACHE", pool.OrderedDict())
        pool._remember_trace("big", self._fake_trace(events=10_000))
        # Over budget, but the most recent entry always survives so
        # repeated sims of one oversized workload still hit the cache.
        assert "big" in pool._TRACE_CACHE
        pool._remember_trace("bigger", self._fake_trace(events=20_000))
        assert "big" not in pool._TRACE_CACHE
        assert "bigger" in pool._TRACE_CACHE

    def test_count_bound_still_applies(self, monkeypatch):
        from repro.exec import pool

        monkeypatch.setattr(pool, "_TRACE_CACHE", pool.OrderedDict())
        for index in range(pool._TRACE_CACHE_CAPACITY + 2):
            pool._remember_trace(f"t{index}", self._fake_trace(events=1))
        assert len(pool._TRACE_CACHE) == pool._TRACE_CACHE_CAPACITY


class TestSingleFlight:
    def test_leader_then_followers(self):
        from repro.exec import SingleFlight

        flight = SingleFlight()
        work, is_leader = flight.lease("k", lambda: "payload")
        assert is_leader and work == "payload"
        again, still_leader = flight.lease("k", lambda: "other")
        assert not still_leader and again == "payload"
        assert flight.hits == 1 and flight.leaders == 1
        assert flight.peek("k") == "payload"

    def test_release_allows_fresh_lease(self):
        from repro.exec import SingleFlight

        flight = SingleFlight()
        flight.lease("k", lambda: "first")
        flight.release("k")
        assert flight.peek("k") is None
        work, is_leader = flight.lease("k", lambda: "second")
        assert is_leader and work == "second"
        assert flight.leaders == 2

    def test_release_unknown_key_is_noop(self):
        from repro.exec import SingleFlight

        flight = SingleFlight()
        flight.release("never-leased")
        assert len(flight) == 0


class TestSharedPool:
    def test_execute_grid_reuses_borrowed_pool(self, tmp_path):
        from repro.exec.pool import WorkerPool

        pool = WorkerPool(2)
        try:
            plan = tiny_plan()
            first, _ = execute_grid(plan, options=ExecOptions(jobs=2),
                                    trace_dir=tmp_path, pool=pool)
            second, _ = execute_grid(plan, options=ExecOptions(jobs=2),
                                     trace_dir=tmp_path, pool=pool)
            assert first.keys() == second.keys()
            for cell in first:
                assert first[cell].to_dict() == second[cell].to_dict()
        finally:
            pool.shutdown()
        # The borrowed pool survived both runs; shutdown was ours alone.
