"""Learned-prefetcher family: Pangloss (Markov) and Pythia (RL).

Unit mechanics, statistical acceptance bands on real workload traces,
frozen result digests over the regression corpus, and property-based
engine/batch parity at multiple line sizes.  The whole module carries
the ``learned`` marker so CI can run it standalone (``-m learned``).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.check.diff import config_with_line_size, diff_batch, diff_engine
from repro.common.errors import ConfigError
from repro.harness.registry import (
    canonical_prefetcher_name,
    make_prefetcher,
    parse_prefetcher_name,
)
from repro.prefetchers.base import DemandInfo
from repro.prefetchers.learned import (
    PanglossConfig,
    PanglossPrefetcher,
    PythiaConfig,
    PythiaPrefetcher,
)
from repro.prefetchers.storage import pangloss_storage, pythia_storage
from repro.sim.config import REDUCED_CONFIG
from repro.sim.engine import simulate
from repro.trace.events import BlockBegin, BlockEnd, MemoryAccess
from repro.trace.io import read_trace
from repro.trace.stream import Trace
from repro.workloads import build_trace, get_workload

pytestmark = pytest.mark.learned

CORPUS_DIR = Path(__file__).parent / "corpus"

#: A page-aligned line number well clear of address zero.
_BASE_LINE = 4096


def _miss(pc: int, line: int) -> DemandInfo:
    return DemandInfo(pc=pc, line=line, address=line << 6,
                      is_write=False, l1_hit=False, l2_hit=False)


def _hit(pc: int, line: int) -> DemandInfo:
    return DemandInfo(pc=pc, line=line, address=line << 6,
                      is_write=False, l1_hit=True, l2_hit=True)


@pytest.fixture(scope="module")
def workload_traces():
    """Small real-workload traces shared by the acceptance tests."""
    return {
        name: build_trace(get_workload(name), max_accesses=20_000)
        for name in ("462.libquantum-ref", "429.mcf-ref")
    }


class TestPanglossMechanics:
    def test_config_validation(self):
        with pytest.raises(ConfigError, match="counter_max"):
            PanglossConfig(counter_max=0)
        with pytest.raises(ConfigError, match="degree"):
            PanglossConfig(degree=0)
        with pytest.raises(ConfigError, match="confidence_percent"):
            PanglossConfig(confidence_percent=101)
        with pytest.raises(ConfigError, match="lines_per_page"):
            PanglossConfig(lines_per_page=3)

    def test_learns_unit_stride_and_chains_to_degree(self):
        p = PanglossPrefetcher()
        outs = [p.on_access(_miss(0x400, _BASE_LINE + i)) for i in range(10)]
        # Access 0 is page-new, access 1 records the first delta; from
        # access 2 the (+1 -> +1) row exists and the chain walk emits
        # `degree` successive in-page lines.
        assert outs[0] == [] and outs[1] == []
        for index in range(2, 10):
            line = _BASE_LINE + index
            assert outs[index] == [line + 1, line + 2, line + 3, line + 4]

    def test_l1_hits_are_invisible(self):
        p = PanglossPrefetcher()
        for i in range(6):
            p.on_access(_miss(0x400, _BASE_LINE + i))
        assert p.on_access(_hit(0x400, _BASE_LINE + 50)) == []
        # The hit neither trained nor moved the page tracker: the miss
        # stream resumes exactly where it left off.
        assert p.on_access(_miss(0x400, _BASE_LINE + 6))[0] == _BASE_LINE + 7

    def test_chain_stops_at_page_boundary(self):
        p = PanglossPrefetcher()
        last = PanglossConfig().lines_per_page - 1
        outs = [
            p.on_access(_miss(0x400, _BASE_LINE + last - 4 + i))
            for i in range(5)
        ]
        # At the page's last line every successor is out-of-page.
        assert outs[-1] == []
        # One line earlier only a single in-page step remains.
        assert outs[-2] == [_BASE_LINE + last]

    def test_lfu_decay_halves_row(self):
        config = PanglossConfig(counter_max=2, row_slots=2)
        p = PanglossPrefetcher(config)
        for i in range(8):
            p.on_access(_miss(0x400, _BASE_LINE + i))
        # Counts saturate at counter_max and halve instead of growing.
        slots = dict(p.row_of(1))
        assert slots and all(
            count <= config.counter_max for count in slots.values()
        )

    def test_low_confidence_suppresses_issue(self):
        config = PanglossConfig(confidence_percent=70, row_slots=4)
        p = PanglossPrefetcher(config)
        # Alternate successors of delta +1 so no single slot reaches 70%,
        # then end on a +1 step: the prediction consults row[+1], whose
        # best successor holds only 60% of the mass.
        pattern = [1, 2, 1, 3, 1, 2, 1, 3, 1, 2, 1, 3, 1]
        line = _BASE_LINE
        outs = []
        for delta in pattern:
            line += delta
            outs.append(p.on_access(_miss(0x400, line)))
        assert outs[-1] == []

    def test_storage_matches_estimate(self):
        config = PanglossConfig()
        p = PanglossPrefetcher(config)
        estimate = pangloss_storage(config)
        assert p.storage_bits() == estimate.bits
        assert 10 < estimate.kilobytes < 20

    def test_reset_forgets_everything(self):
        p = PanglossPrefetcher()
        first = [p.on_access(_miss(0x400, _BASE_LINE + i)) for i in range(8)]
        p.reset()
        again = [p.on_access(_miss(0x400, _BASE_LINE + i)) for i in range(8)]
        assert first == again


class TestPythiaMechanics:
    def test_config_validation(self):
        with pytest.raises(ConfigError, match="alpha"):
            PythiaConfig(alpha=0.0)
        with pytest.raises(ConfigError, match="gamma"):
            PythiaConfig(gamma=1.5)
        with pytest.raises(ConfigError, match="feature_set"):
            PythiaConfig(feature_set="pc+bogus")
        with pytest.raises(ConfigError, match="actions"):
            PythiaConfig(actions=(1, 2))  # missing the 0 action

    def test_reward_signal_converges_to_unit_stride(self):
        # Pure exploitation on a tiny action space: the +1 action is the
        # only one ever rewarded on a dense +1 stream, so the greedy
        # policy must lock onto it.
        config = PythiaConfig(feature_set="delta", history_len=1,
                              actions=(-1, 0, 1), alpha=0.5, epsilon=0.0,
                              timely_age=1, useless_age=4)
        p = PythiaPrefetcher(config)
        outs = [p.on_access(_miss(0x500, _BASE_LINE + i)) for i in range(40)]
        for index in range(35, 40):
            assert outs[index] == [_BASE_LINE + index + 1]

    def test_shadow_table_is_bounded(self):
        config = PythiaConfig(inflight_entries=4)
        p = PythiaPrefetcher(config)
        for i in range(200):
            p.on_access(_miss(0x500 + (i % 7) * 4, _BASE_LINE + (i * 3) % 512))
        assert p.outstanding <= config.inflight_entries

    def test_determinism_and_reset(self):
        first = PythiaPrefetcher()
        second = PythiaPrefetcher()
        stream = [(0x500 + (i % 5) * 4, _BASE_LINE + (i * 7) % 256)
                  for i in range(300)]
        out_first = [first.on_access(_miss(pc, ln)) for pc, ln in stream]
        out_second = [second.on_access(_miss(pc, ln)) for pc, ln in stream]
        assert out_first == out_second
        first.reset()
        assert [first.on_access(_miss(pc, ln)) for pc, ln in stream] == out_first

    def test_distinct_seeds_explore_differently(self):
        config = PythiaConfig(epsilon=0.5)
        stream = [(0x500, _BASE_LINE + (i * 3) % 128) for i in range(400)]
        outs = []
        for seed in (0, 1):
            p = PythiaPrefetcher(
                PythiaConfig(epsilon=0.5, seed=seed,
                             actions=config.actions)
            )
            outs.append([p.on_access(_miss(pc, ln)) for pc, ln in stream])
        assert outs[0] != outs[1]

    def test_storage_matches_estimate(self):
        config = PythiaConfig()
        p = PythiaPrefetcher(config)
        estimate = pythia_storage(config)
        assert p.storage_bits() == estimate.bits
        assert 100 < estimate.kilobytes < 200


class TestRegistryNames:
    def test_inline_parameters_round_trip(self):
        base, params = parse_prefetcher_name(
            "pythia[alpha=0.065,feature_set=pc+offset,history_len=3]"
        )
        assert base == "pythia"
        assert params == {"alpha": 0.065, "feature_set": "pc+offset",
                          "history_len": 3}
        prefetcher = make_prefetcher(
            "pythia[alpha=0.065,feature_set=pc+offset,history_len=3]"
        )
        assert prefetcher.config.alpha == 0.065
        assert prefetcher.config.feature_set == "pc+offset"

    def test_canonical_name_drops_defaults_and_sorts(self):
        assert canonical_prefetcher_name(
            "pythia[gamma=0.556,alpha=0.065]") == "pythia[alpha=0.065]"
        assert canonical_prefetcher_name(
            "pangloss[degree=4,markov_rows=512]"
        ) == "pangloss[markov_rows=512]"

    def test_bad_parameters_fail_loudly(self):
        with pytest.raises(ConfigError, match="unknown pangloss parameter"):
            parse_prefetcher_name("pangloss[alpha=0.1]")
        with pytest.raises(ConfigError, match="must be a number"):
            parse_prefetcher_name("pythia[alpha=fast]")

    def test_parametrized_learned_prefetchers_build(self):
        p = make_prefetcher("pangloss[degree=2,counter_max=7]")
        assert p.config.degree == 2 and p.config.counter_max == 7


class TestStatisticalAcceptance:
    """Bands over real workload traces (20k accesses, reduced machine).

    The simulator is fully deterministic, so these are exact replays —
    the bands leave headroom only for intentional algorithm retunes.
    """

    def test_dense_streaming_bands(self, workload_traces):
        trace = workload_traces["462.libquantum-ref"]
        none = simulate(REDUCED_CONFIG, make_prefetcher("no-prefetch"), trace)
        pangloss = simulate(REDUCED_CONFIG, make_prefetcher("pangloss"), trace)
        pythia = simulate(REDUCED_CONFIG, make_prefetcher("pythia"), trace)
        # Pangloss's degree-4 chain hides most of the miss latency.
        assert pangloss.ipc > 2.0 * none.ipc
        assert pangloss.accuracy > 0.95
        # Pythia's one-delta issue converges to near-perfect accuracy
        # but hides less latency per miss.
        assert pythia.ipc > none.ipc
        assert pythia.accuracy > 0.95

    def test_pointer_chasing_bands(self, workload_traces):
        trace = workload_traces["429.mcf-ref"]
        none = simulate(REDUCED_CONFIG, make_prefetcher("no-prefetch"), trace)
        for name in ("pangloss", "pythia"):
            result = simulate(REDUCED_CONFIG, make_prefetcher(name), trace)
            # Delta prediction cannot cover mcf's tree walks; the gates
            # must keep the schemes from hurting the baseline.
            assert result.accuracy < 0.5
            assert result.ipc > 0.9 * none.ipc

    def test_pythia_accuracy_is_seed_stable(self, workload_traces):
        """The *policy quality* statistic is stable across exploration
        seeds even though per-seed IPC varies with which deltas the
        exploration draws happen to try."""
        trace = workload_traces["462.libquantum-ref"]
        none = simulate(REDUCED_CONFIG, make_prefetcher("no-prefetch"), trace)
        accuracies = []
        for seed in (0, 1, 2):
            result = simulate(
                REDUCED_CONFIG, PythiaPrefetcher(PythiaConfig(seed=seed)),
                trace,
            )
            accuracies.append(result.accuracy)
            assert result.ipc >= none.ipc
        assert min(accuracies) > 0.99
        assert max(accuracies) - min(accuracies) < 0.01


class TestFrozenDigests:
    def test_corpus_digests_are_frozen(self):
        """Exact replay of the learned prefetchers over the committed
        corpus: any behavioural drift flips a digest."""
        digests = json.loads(
            (CORPUS_DIR / "learned_digests.json").read_text()
        )
        paths = sorted(CORPUS_DIR.glob("*.trace"))
        assert len(digests) == 2 * len(paths)
        for path in paths:
            trace = read_trace(path)
            trace.validate()
            for name in ("pangloss", "pythia"):
                result = simulate(
                    REDUCED_CONFIG, make_prefetcher(name), trace
                )
                payload = json.dumps(result.to_dict(), sort_keys=True)
                digest = hashlib.sha256(payload.encode()).hexdigest()
                assert digest == digests[f"{path.stem}:{name}"], (
                    f"{path.stem}:{name} drifted; if intentional, "
                    "regenerate tests/corpus/learned_digests.json"
                )


@st.composite
def _learned_traces(draw):
    """Miss-heavy traces with page-local runs — the regions where the
    learned prefetchers actually train and issue."""
    events = []
    icount = 0
    page = draw(st.integers(min_value=1, max_value=1 << 12)) * 64
    offset = draw(st.integers(min_value=0, max_value=63))
    block_open = False
    for _ in range(draw(st.integers(min_value=4, max_value=90))):
        icount += draw(st.integers(min_value=1, max_value=12))
        roll = draw(st.integers(min_value=0, max_value=11))
        if roll == 0 and not block_open:
            events.append(BlockBegin(icount, draw(st.integers(0, 2))))
            block_open = True
        elif roll == 1 and block_open:
            block_id = next(
                e.block_id for e in reversed(events)
                if isinstance(e, BlockBegin)
            )
            events.append(BlockEnd(icount, block_id))
            block_open = False
        else:
            if roll <= 8:
                offset += draw(st.sampled_from([-3, -1, 1, 1, 1, 2, 4]))
                offset %= 64
            else:
                page = draw(st.integers(min_value=1, max_value=1 << 12)) * 64
                offset = draw(st.integers(min_value=0, max_value=63))
            events.append(MemoryAccess(
                icount,
                draw(st.integers(0, 5)) * 4 + 0x400000,
                (page + offset) << 6,
                draw(st.booleans()),
            ))
    if block_open:
        icount += 1
        block_id = next(
            e.block_id for e in reversed(events)
            if isinstance(e, BlockBegin)
        )
        events.append(BlockEnd(icount, block_id))
    return Trace("learned-prop", events, icount + 10)


class TestEngineParityProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        _learned_traces(),
        st.sampled_from(["pangloss", "pythia"]),
        st.sampled_from([64, 128]),
    )
    def test_fast_matches_reference_across_line_sizes(
        self, trace, name, line_size
    ):
        trace.validate()
        divergence = diff_engine(
            name, trace, config=config_with_line_size(line_size)
        )
        assert divergence is None, str(divergence)

    @settings(max_examples=10, deadline=None)
    @given(_learned_traces(), st.sampled_from([64, 128]))
    def test_batch_lanes_match_fast_path(self, trace, line_size):
        trace.validate()
        config = config_with_line_size(line_size)
        divergence = diff_batch(
            ["pangloss", "pythia", "cbws"], trace, config=config
        )
        assert divergence is None, str(divergence)
