"""Tests for the offline trace analyses (Figure 5 and the 16-line claim)."""

import pytest

from repro.analysis.differentials import (
    differential_distribution,
    extract_cbws_sequences,
)
from repro.analysis.workingsets import working_set_distribution
from repro.trace.events import BlockBegin, BlockEnd, MemoryAccess
from repro.trace.stream import Trace


def block_trace(blocks, block_id=0):
    """Build a trace from a list of per-block line lists."""
    events = []
    icount = 0
    for lines in blocks:
        events.append(BlockBegin(icount, block_id))
        for line in lines:
            icount += 1
            events.append(MemoryAccess(icount, 0, line * 64, False))
        icount += 1
        events.append(BlockEnd(icount, block_id))
    return Trace("crafted", events, icount)


class TestExtraction:
    def test_cbws_per_block_instance(self):
        trace = block_trace([[1, 2, 2, 3], [4, 5]])
        sequences = extract_cbws_sequences(trace)
        assert sequences[0] == [(1, 2, 3), (4, 5)]

    def test_accesses_outside_blocks_ignored(self):
        events = [
            MemoryAccess(0, 0, 64, False),
            BlockBegin(1, 0),
            MemoryAccess(2, 0, 128, False),
            BlockEnd(3, 0),
        ]
        sequences = extract_cbws_sequences(Trace("t", events, 5))
        assert sequences[0] == [(2,)]

    def test_capacity_cap_applied(self):
        trace = block_trace([list(range(30))])
        sequences = extract_cbws_sequences(trace, max_members=16)
        assert len(sequences[0][0]) == 16

    def test_multiple_block_ids_separated(self):
        events = []
        icount = 0
        for block_id, line in ((0, 1), (1, 9), (0, 2)):
            events.append(BlockBegin(icount, block_id))
            icount += 1
            events.append(MemoryAccess(icount, 0, line * 64, False))
            icount += 1
            events.append(BlockEnd(icount, block_id))
        sequences = extract_cbws_sequences(Trace("t", events, icount))
        assert sequences[0] == [(1,), (2,)]
        assert sequences[1] == [(9,)]


class TestDifferentialDistribution:
    def test_single_constant_vector(self):
        blocks = [[k, k + 100] for k in range(0, 50, 5)]
        dist = differential_distribution(block_trace(blocks))
        assert dist.distinct_vectors == 1
        assert dist.iterations == 9
        assert dist.coverage_at(0.01) == pytest.approx(1.0)

    def test_skewed_mixture(self):
        # 18 transitions with delta (1,); 2 odd ones.
        blocks = [[k] for k in range(19)] + [[100], [500]]
        dist = differential_distribution(block_trace(blocks))
        assert dist.distinct_vectors == 3
        # The single most frequent vector covers 18/20 transitions.
        assert dist.coverage_at(1 / 3) == pytest.approx(18 / 20)

    def test_coverage_curve_monotone(self):
        blocks = [[k * 7 % 50] for k in range(40)]
        dist = differential_distribution(block_trace(blocks))
        coverages = [cov for _, cov in dist.coverage_curve]
        assert coverages == sorted(coverages)
        assert coverages[-1] == pytest.approx(1.0)

    def test_empty_trace(self):
        dist = differential_distribution(Trace("t", [], 0))
        assert dist.iterations == 0
        assert dist.coverage_at(0.5) == 0.0


class TestWorkingSetDistribution:
    def test_histogram(self):
        trace = block_trace([[1, 2, 3], [4, 5], [6, 7]])
        dist = working_set_distribution(trace)
        assert dist.blocks == 3
        assert dist.size_histogram == {3: 1, 2: 2}
        assert dist.max_size == 3
        assert dist.mean_size == pytest.approx(7 / 3)

    def test_fraction_within_capacity(self):
        trace = block_trace([list(range(10)), list(range(100, 120))])
        dist = working_set_distribution(trace)
        assert dist.fraction_within(16) == pytest.approx(0.5)
        assert dist.fraction_within(20) == pytest.approx(1.0)

    def test_duplicates_counted_once(self):
        trace = block_trace([[1, 1, 1, 2]])
        assert working_set_distribution(trace).size_histogram == {2: 1}

    def test_empty(self):
        dist = working_set_distribution(Trace("t", [], 0))
        assert dist.blocks == 0
        assert dist.fraction_within(16) == 0.0
        assert dist.max_size == 0
