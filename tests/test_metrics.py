"""Tests for metric aggregation: grids, speedups, perf/cost, timeliness."""

import pytest

from repro.common.errors import ConfigError
from repro.metrics.aggregate import ResultGrid, arithmetic_mean, geometric_mean
from repro.metrics.perfcost import perf_cost, perf_cost_table
from repro.metrics.speedup import normalized_ipc, speedup_table
from repro.metrics.timeliness import timeliness_breakdown
from repro.sim.results import DemandClass, SimResult


def result(workload, prefetcher, cycles=1000.0, instructions=10_000,
           llc=100, demand_bytes=6400, prefetch_bytes=0):
    sim = SimResult(workload=workload, prefetcher=prefetcher)
    sim.instructions = instructions
    sim.cycles = cycles
    sim.llc_misses = llc
    sim.l1_misses = 200
    sim.demand_bytes_read = demand_bytes
    sim.prefetch_bytes_read = prefetch_bytes
    return sim


class TestMeans:
    def test_arithmetic(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == 2.0
        assert arithmetic_mean([]) == 0.0

    def test_geometric(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0

    def test_geometric_rejects_non_positive(self):
        with pytest.raises(ConfigError):
            geometric_mean([1.0, 0.0])


class TestResultGrid:
    def test_indexing(self):
        grid = ResultGrid([result("w1", "sms"), result("w1", "cbws")])
        assert grid.get("w1", "sms").prefetcher == "sms"
        assert grid.workloads == ["w1"]
        assert grid.prefetchers == ["sms", "cbws"]

    def test_duplicate_cells_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            ResultGrid([result("w", "sms"), result("w", "sms")])

    def test_missing_cell_raises(self):
        grid = ResultGrid([result("w1", "sms")])
        with pytest.raises(ConfigError, match="no result"):
            grid.get("w1", "cbws")
        assert not grid.has("w1", "cbws")

    def test_metric_average_over_subset(self):
        grid = ResultGrid([
            result("w1", "sms", llc=100),
            result("w2", "sms", llc=300),
        ])
        assert grid.metric_average("sms", lambda r: r.mpki) == pytest.approx(
            (10.0 + 30.0) / 2
        )
        assert grid.metric_average(
            "sms", lambda r: r.mpki, workloads=["w2"]
        ) == pytest.approx(30.0)

    def test_metric_row(self):
        grid = ResultGrid([result("w1", "sms"), result("w1", "cbws", llc=50)])
        row = grid.metric_row("w1", lambda r: r.mpki)
        assert row["sms"] == pytest.approx(10.0)
        assert row["cbws"] == pytest.approx(5.0)


class TestSpeedup:
    def test_normalized_ipc(self):
        grid = ResultGrid([
            result("w", "sms", cycles=1000.0),
            result("w", "cbws+sms", cycles=800.0),
        ])
        assert normalized_ipc(grid, "w", "cbws+sms") == pytest.approx(1.25)
        assert normalized_ipc(grid, "w", "sms") == pytest.approx(1.0)

    def test_speedup_table_includes_geomean_average(self):
        grid = ResultGrid([
            result("w1", "sms", cycles=1000.0),
            result("w1", "cbws+sms", cycles=500.0),
            result("w2", "sms", cycles=1000.0),
            result("w2", "cbws+sms", cycles=2000.0),
        ])
        table = speedup_table(grid)
        assert table["w1"]["cbws+sms"] == pytest.approx(2.0)
        assert table["w2"]["cbws+sms"] == pytest.approx(0.5)
        assert table["average"]["cbws+sms"] == pytest.approx(1.0)

    def test_degenerate_baseline_rejected(self):
        grid = ResultGrid([
            result("w", "sms", cycles=0.0),
            result("w", "cbws", cycles=100.0),
        ])
        with pytest.raises(ConfigError):
            normalized_ipc(grid, "w", "cbws")


class TestPerfCost:
    def test_baseline_scores_one(self):
        grid = ResultGrid([
            result("w", "no-prefetch"),
            result("w", "sms", cycles=500.0, prefetch_bytes=6400),
        ])
        assert perf_cost(grid, "w", "no-prefetch") == pytest.approx(1.0)
        # SMS: double the IPC at double the bytes -> ratio 1.0.
        assert perf_cost(grid, "w", "sms") == pytest.approx(1.0)

    def test_wasted_bytes_lower_the_score(self):
        grid = ResultGrid([
            result("w", "no-prefetch"),
            result("w", "wasteful", cycles=1000.0, prefetch_bytes=6400),
        ])
        assert perf_cost(grid, "w", "wasteful") == pytest.approx(0.5)

    def test_table_has_average(self):
        grid = ResultGrid([
            result("w", "no-prefetch"),
            result("w", "sms", cycles=500.0),
        ])
        table = perf_cost_table(grid)
        assert table["average"]["sms"] == pytest.approx(2.0)


class TestTimeliness:
    def test_breakdown_fractions(self):
        sim = result("w", "sms")
        sim.classes[DemandClass.TIMELY] = 100
        sim.classes[DemandClass.SHORTER_WAITING] = 40
        sim.classes[DemandClass.MISSING] = 60
        sim.wrong_prefetches = 20
        breakdown = timeliness_breakdown(sim)
        assert breakdown.timely == pytest.approx(0.5)
        assert breakdown.shorter_waiting == pytest.approx(0.2)
        assert breakdown.missing == pytest.approx(0.3)
        assert breakdown.wrong == pytest.approx(0.1)
        assert breakdown.covered == pytest.approx(0.7)

    def test_zero_misses_yield_zero_fractions(self):
        sim = SimResult(workload="w", prefetcher="p")
        breakdown = timeliness_breakdown(sim)
        assert breakdown.timely == 0.0
        assert breakdown.wrong == 0.0
