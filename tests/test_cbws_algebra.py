"""Tests for the CBWS / differential algebra (Equations 1 and 2)."""

from hypothesis import given, strategies as st

from repro.core.cbws import (
    CodeBlockWorkingSet,
    apply_differential,
    differential,
)


class TestWorkingSet:
    def test_first_touch_order_preserved(self):
        cbws = CodeBlockWorkingSet([5, 3, 5, 9, 3, 1])
        assert cbws.as_tuple() == (5, 3, 9, 1)

    def test_duplicates_are_ignored(self):
        cbws = CodeBlockWorkingSet()
        assert cbws.observe(7)
        assert not cbws.observe(7)
        assert len(cbws) == 1

    def test_capacity_cap_and_overflow_flag(self):
        cbws = CodeBlockWorkingSet(max_members=3)
        for line in (1, 2, 3):
            assert cbws.observe(line)
        assert not cbws.overflowed
        assert not cbws.observe(4)
        assert cbws.overflowed
        assert cbws.as_tuple() == (1, 2, 3)

    def test_repeat_of_member_does_not_set_overflow(self):
        cbws = CodeBlockWorkingSet([1, 2, 3], max_members=3)
        cbws.observe(2)
        assert not cbws.overflowed

    def test_membership_and_indexing(self):
        cbws = CodeBlockWorkingSet([10, 20])
        assert 10 in cbws and 30 not in cbws
        assert cbws[1] == 20
        assert list(cbws) == [10, 20]

    def test_equality_with_tuples(self):
        assert CodeBlockWorkingSet([1, 2]) == (1, 2)
        assert CodeBlockWorkingSet([1, 2]) == [1, 2]
        assert CodeBlockWorkingSet([1, 2]) == CodeBlockWorkingSet([1, 2, 2])

    @given(st.lists(st.integers(min_value=0, max_value=100)))
    def test_elements_unique_and_order_stable(self, lines):
        cbws = CodeBlockWorkingSet(lines)
        out = cbws.as_tuple()
        assert len(set(out)) == len(out)
        seen = []
        for line in lines:
            if line not in seen:
                seen.append(line)
        assert out == tuple(seen)


class TestDifferential:
    def test_paper_figure4_example(self):
        # Figure 3 rows 0 and 1; Figure 4 first differential.
        cbws0 = (80, 81, 6515, 4467, 5499, 5483, 5491)
        cbws1 = (80, 81, 7539, 5491, 6523, 6507, 6515)
        assert differential(cbws0, cbws1) == (0, 0, 1024, 1024, 1024, 1024, 1024)

    def test_alignment_takes_shorter_length(self):
        assert differential((10, 20, 30), (11, 22)) == (1, 2)
        assert differential((10,), (11, 22, 33)) == (1,)

    def test_empty_operands(self):
        assert differential((), (1, 2)) == ()
        assert differential((1, 2), ()) == ()

    def test_negative_strides(self):
        assert differential((100, 50), (90, 60)) == (-10, 10)

    def test_accepts_working_set_objects(self):
        a = CodeBlockWorkingSet([1, 2, 3])
        b = CodeBlockWorkingSet([4, 6, 8])
        assert differential(a, b) == (3, 4, 5)

    @given(
        st.lists(st.integers(-10**6, 10**6), max_size=20),
        st.lists(st.integers(-10**6, 10**6), max_size=20),
    )
    def test_length_is_min(self, a, b):
        assert len(differential(a, b)) == min(len(a), len(b))

    @given(st.lists(st.integers(-10**6, 10**6), max_size=20))
    def test_self_differential_is_zero(self, a):
        assert differential(a, a) == tuple([0] * len(a))


class TestApplyDifferential:
    def test_prediction_is_inverse_of_differential(self):
        base = (80, 81, 6515)
        delta = (0, 0, 1024)
        assert apply_differential(base, delta) == (80, 81, 7539)

    @given(
        st.lists(st.integers(0, 10**6), min_size=1, max_size=16),
        st.lists(st.integers(0, 10**6), min_size=1, max_size=16),
    )
    def test_roundtrip_property(self, older, newer):
        """apply(older, diff(older, newer)) reconstructs the aligned
        prefix of newer."""
        delta = differential(older, newer)
        predicted = apply_differential(older, delta)
        assert predicted == tuple(newer[: len(delta)])
