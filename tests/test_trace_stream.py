"""Tests for the Trace container: validation and statistics."""

import pytest

from repro.common.errors import TraceError
from repro.trace.events import BlockBegin, BlockEnd, MemoryAccess
from repro.trace.stream import Trace


def mem(icount, addr, write=False, pc=0x400000):
    return MemoryAccess(icount, pc, addr, write)


class TestConstruction:
    def test_instructions_below_last_event_rejected(self):
        with pytest.raises(TraceError):
            Trace("t", [mem(100, 0)], instructions=50)

    def test_empty_trace_is_fine(self):
        trace = Trace("t", [], instructions=0)
        trace.validate()
        assert len(trace) == 0

    def test_indexing_and_iteration(self):
        events = [mem(1, 0), mem(2, 64)]
        trace = Trace("t", events, 10)
        assert trace[0] == events[0]
        assert list(trace) == events
        assert list(trace.memory_events()) == events


class TestValidation:
    def test_decreasing_icount_rejected(self):
        trace = Trace("t", [mem(5, 0)], 10)
        trace.events.append(mem(3, 64))
        with pytest.raises(TraceError, match="decreases"):
            trace.validate()

    def test_nested_blocks_rejected(self):
        trace = Trace("t", [BlockBegin(0, 1), BlockBegin(1, 2)], 10)
        with pytest.raises(TraceError, match="nested"):
            trace.validate()

    def test_end_without_begin_rejected(self):
        trace = Trace("t", [BlockEnd(0, 1)], 10)
        with pytest.raises(TraceError, match="without"):
            trace.validate()

    def test_mismatched_block_id_rejected(self):
        trace = Trace("t", [BlockBegin(0, 1), BlockEnd(1, 2)], 10)
        with pytest.raises(TraceError, match="does not match"):
            trace.validate()

    def test_unclosed_block_rejected(self):
        trace = Trace("t", [BlockBegin(0, 1), mem(1, 0)], 10)
        with pytest.raises(TraceError, match="never closed"):
            trace.validate()

    def test_wellformed_blocks_pass(self):
        trace = Trace(
            "t",
            [
                BlockBegin(0, 1), mem(1, 0), BlockEnd(2, 1),
                BlockBegin(3, 2), mem(4, 64), BlockEnd(5, 2),
            ],
            6,
        )
        trace.validate()


class TestStats:
    def test_counts(self):
        trace = Trace(
            "t",
            [
                BlockBegin(0, 0),
                mem(1, 0), mem(2, 64, write=True),
                BlockEnd(4, 0),
                mem(6, 128),
            ],
            20,
        )
        stats = trace.stats()
        assert stats.memory_accesses == 3
        assert stats.loads == 2
        assert stats.stores == 1
        assert stats.blocks == 1
        assert stats.block_instructions == 4
        assert stats.distinct_block_ids == 1
        assert stats.loop_fraction == pytest.approx(0.2)

    def test_empty_trace_loop_fraction_zero(self):
        assert Trace("t", [], 0).stats().loop_fraction == 0.0

    def test_distinct_block_ids(self):
        events = []
        icount = 0
        for block_id in (0, 1, 0):
            events.append(BlockBegin(icount, block_id))
            icount += 1
            events.append(mem(icount, 0))
            icount += 1
            events.append(BlockEnd(icount, block_id))
        trace = Trace("t", events, icount)
        assert trace.stats().distinct_block_ids == 2
        assert trace.stats().blocks == 3
