"""Tests for Algorithm 1 — the CBWS differential predictor."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.predictor import CbwsConfig, CbwsPredictor


def run_block(predictor, lines, block_id=0):
    predictor.block_begin(block_id)
    for line in lines:
        predictor.memory_access(line)
    return predictor.block_end()


def stencil_block(n, stride=1024):
    """The Figure 3 pattern: constant lines plus strided streams."""
    return [80, 81, 6515 + stride * n, 4467 + stride * n, 5499 + stride * n]


class TestConfig:
    def test_defaults_match_table2(self):
        config = CbwsConfig()
        assert config.max_vector_members == 16
        assert config.max_step == 4
        assert config.table_entries == 16
        assert config.stride_bits == 16
        assert config.hash_bits == 12

    def test_invalid_rejected(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            CbwsConfig(max_step=0)
        with pytest.raises(ConfigError):
            CbwsConfig(predict_steps=5, max_step=4)
        with pytest.raises(ConfigError):
            CbwsConfig(max_vector_members=0)


class TestWarmup:
    def test_first_blocks_predict_nothing(self):
        predictor = CbwsPredictor()
        assert run_block(predictor, stencil_block(0)) == []
        # The second block trains but its history has no repeat yet.
        assert run_block(predictor, stencil_block(1)) == []

    def test_constant_pattern_predicts_after_warmup(self):
        predictor = CbwsPredictor()
        predictions = []
        for n in range(8):
            predictions = run_block(predictor, stencil_block(n))
        assert predictions, "steady pattern must eventually predict"

    def test_steady_predictions_are_future_working_sets(self):
        predictor = CbwsPredictor()
        for n in range(10):
            predictions = run_block(predictor, stencil_block(n))
        future = set()
        for k in range(10, 15):
            future.update(stencil_block(k))
        assert set(predictions) <= future
        # The 1-step prediction (the very next block) must be covered.
        assert set(stencil_block(10)) <= set(predictions) | set(stencil_block(9))


class TestStatistics:
    def test_blocks_counted(self):
        predictor = CbwsPredictor()
        for n in range(5):
            run_block(predictor, stencil_block(n))
        assert predictor.stats.blocks_completed == 5

    def test_overflow_counted(self):
        predictor = CbwsPredictor(CbwsConfig(max_vector_members=4))
        run_block(predictor, list(range(100, 110)))
        assert predictor.stats.blocks_overflowed == 1
        assert predictor.last_block_overflowed

    def test_hit_rate_grows_on_regular_stream(self):
        predictor = CbwsPredictor()
        for n in range(20):
            run_block(predictor, stencil_block(n))
        assert predictor.stats.hit_rate > 0.3

    def test_random_blocks_rarely_hit(self):
        import random

        rng = random.Random(42)
        predictor = CbwsPredictor()
        for _ in range(20):
            run_block(predictor, [rng.randrange(1 << 30) for _ in range(5)])
        assert predictor.stats.hit_rate < 0.2


class TestBlockIdHandling:
    def test_block_id_change_flushes_history(self):
        predictor = CbwsPredictor()
        for n in range(8):
            run_block(predictor, stencil_block(n), block_id=0)
        # Switching to a different static loop must not predict from the
        # old loop's history.
        predictions = run_block(predictor, [1, 2, 3], block_id=1)
        assert len(predictor.last_blocks) == 1  # only the new block

    def test_same_block_id_keeps_history(self):
        predictor = CbwsPredictor()
        run_block(predictor, stencil_block(0))
        run_block(predictor, stencil_block(1))
        assert len(predictor.last_blocks) == 2


class TestDivergence:
    def test_shrinking_blocks_align_prefix(self):
        predictor = CbwsPredictor()
        run_block(predictor, [100, 200, 300])
        run_block(predictor, [101, 201])  # shorter: branch divergence
        # Differentials were computed over the aligned prefix only; no
        # crash, and history contains both CBWSs.
        assert len(predictor.last_blocks) == 2

    def test_empty_block_is_harmless(self):
        predictor = CbwsPredictor()
        run_block(predictor, [])
        run_block(predictor, [5])
        assert predictor.stats.blocks_completed == 2


class TestStrideTruncation:
    def test_large_strides_wrap_to_16_bits(self):
        """Strides beyond 16 bits truncate, as in hardware — the
        prediction is then wrong but bounded."""
        predictor = CbwsPredictor()
        huge = 1 << 20
        for n in range(6):
            predictions = run_block(predictor, [100 + huge * n])
        for line in predictions:
            assert 0 <= line < (1 << 32)


class TestReset:
    def test_reset_clears_everything(self):
        predictor = CbwsPredictor()
        for n in range(8):
            run_block(predictor, stencil_block(n))
        predictor.reset()
        assert predictor.stats.blocks_completed == 0
        assert len(predictor.last_blocks) == 0
        assert run_block(predictor, stencil_block(0)) == []


class TestRobustnessProperty:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(0, 1 << 34), max_size=20),
            max_size=30,
        )
    )
    def test_never_crashes_and_respects_width(self, blocks):
        predictor = CbwsPredictor()
        for block in blocks:
            predictions = run_block(predictor, block)
            for line in predictions:
                assert 0 <= line < (1 << 32)
            assert len(predictor.last_blocks) <= 4
