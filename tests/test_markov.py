"""Tests for the Markov correlation prefetcher."""

import pytest

from repro.common.errors import ConfigError
from repro.prefetchers.base import DemandInfo
from repro.prefetchers.markov import MarkovConfig, MarkovPrefetcher


def miss(line):
    return DemandInfo(
        pc=0x400000, line=line, address=line * 64,
        is_write=False, l1_hit=False, l2_hit=False,
    )


def hit(line):
    return DemandInfo(
        pc=0x400000, line=line, address=line * 64,
        is_write=False, l1_hit=True, l2_hit=True,
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            MarkovConfig(table_entries=0)
        with pytest.raises(ConfigError):
            MarkovConfig(successors=0)

    def test_storage(self):
        assert MarkovPrefetcher().storage_bits() == 16384 * 32 * 3


class TestCorrelation:
    def test_repeated_sequence_predicted(self):
        prefetcher = MarkovPrefetcher()
        sequence = [5, 90, 33, 7]
        for line in sequence:
            prefetcher.on_access(miss(line))
        # The second pass sees each transition predicted.
        assert prefetcher.on_access(miss(5)) == [90]
        assert prefetcher.on_access(miss(90)) == [33]

    def test_most_recent_successor_first(self):
        prefetcher = MarkovPrefetcher()
        for line in (1, 10, 1, 20, 1):
            prefetcher.on_access(miss(line))
        assert prefetcher.successors_of(1) == [20, 10]

    def test_successor_slots_bounded(self):
        prefetcher = MarkovPrefetcher(MarkovConfig(successors=2))
        for follower in (10, 20, 30, 40):
            prefetcher.on_access(miss(1))
            prefetcher.on_access(miss(follower))
        assert len(prefetcher.successors_of(1)) == 2
        assert prefetcher.successors_of(1)[0] == 40

    def test_hits_do_not_train_or_trigger(self):
        prefetcher = MarkovPrefetcher()
        prefetcher.on_access(miss(1))
        prefetcher.on_access(hit(99))
        prefetcher.on_access(miss(2))
        # The hit did not break the 1 -> 2 correlation.
        assert prefetcher.successors_of(1) == [2]

    def test_self_loop_ignored(self):
        prefetcher = MarkovPrefetcher()
        prefetcher.on_access(miss(7))
        prefetcher.on_access(miss(7))
        assert prefetcher.successors_of(7) == []

    def test_table_capacity_lru(self):
        prefetcher = MarkovPrefetcher(MarkovConfig(table_entries=2))
        for line in (1, 2, 3, 4):
            prefetcher.on_access(miss(line))
        assert prefetcher.successors_of(1) == []
        assert prefetcher.successors_of(3) == [4]

    def test_reset(self):
        prefetcher = MarkovPrefetcher()
        prefetcher.on_access(miss(1))
        prefetcher.on_access(miss(2))
        prefetcher.reset()
        assert prefetcher.successors_of(1) == []


class TestPointerChase:
    def test_covers_repeating_permutation_cycle(self):
        """The mcf scenario: a pointer chase repeating the same cycle is
        invisible to stride/delta schemes but trivially Markov."""
        import random

        rng = random.Random(3)
        cycle = list(range(100, 160))
        rng.shuffle(cycle)
        prefetcher = MarkovPrefetcher()
        for line in cycle:  # first lap trains
            prefetcher.on_access(miss(line))
        prefetcher.on_access(miss(cycle[0]))
        covered = 0
        for index in range(1, len(cycle)):
            predictions = prefetcher.on_access(miss(cycle[index]))
            if index + 1 < len(cycle) and cycle[index + 1] in predictions:
                covered += 1
        assert covered > 0.9 * (len(cycle) - 2)
