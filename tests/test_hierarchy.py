"""Tests for the two-level inclusive hierarchy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import (
    AccessOutcome,
    CacheHierarchy,
    HierarchyConfig,
)


def tiny_hierarchy(l1_bytes=256, l2_bytes=1024):
    return CacheHierarchy(
        HierarchyConfig(
            l1=CacheConfig(name="L1", size_bytes=l1_bytes, associativity=2),
            l2=CacheConfig(name="L2", size_bytes=l2_bytes, associativity=4),
        )
    )


class TestConfig:
    def test_l2_smaller_than_l1_rejected(self):
        with pytest.raises(ConfigError, match="inclusive"):
            HierarchyConfig(
                l1=CacheConfig(name="L1", size_bytes=1024, associativity=2),
                l2=CacheConfig(name="L2", size_bytes=512, associativity=4),
            )

    def test_mismatched_line_size_rejected(self):
        with pytest.raises(ConfigError):
            HierarchyConfig(
                l1=CacheConfig(name="L1", size_bytes=1024, associativity=2,
                               line_size=128),
                l2=CacheConfig(name="L2", size_bytes=2048, associativity=4),
            )


class TestAccessPath:
    def test_cold_miss_goes_to_memory(self):
        hierarchy = tiny_hierarchy()
        assert hierarchy.demand_access(5).outcome is AccessOutcome.MEMORY

    def test_second_access_hits_l1(self):
        hierarchy = tiny_hierarchy()
        hierarchy.demand_access(5)
        assert hierarchy.demand_access(5).outcome is AccessOutcome.L1_HIT

    def test_l1_victim_still_hits_l2(self):
        hierarchy = tiny_hierarchy(l1_bytes=128)  # 2 lines, 1 set
        hierarchy.demand_access(0)
        hierarchy.demand_access(1)
        hierarchy.demand_access(2)  # evicts 0 from L1
        assert hierarchy.demand_access(0).outcome is AccessOutcome.L2_HIT

    def test_stats_counters(self):
        hierarchy = tiny_hierarchy()
        hierarchy.demand_access(0)
        hierarchy.demand_access(0)
        assert hierarchy.stats.accesses == 2
        assert hierarchy.stats.l1_misses == 1
        assert hierarchy.stats.l2_misses == 1


class TestPrefetchPath:
    def test_prefetch_fills_l2_only(self):
        hierarchy = tiny_hierarchy()
        hierarchy.prefetch_fill(9)
        assert hierarchy.in_l2(9)
        assert not hierarchy.l1.contains(9)

    def test_redundant_prefetch_reports_none(self):
        hierarchy = tiny_hierarchy()
        hierarchy.prefetch_fill(9)
        assert hierarchy.prefetch_fill(9) is None
        assert hierarchy.stats.prefetch_fills == 1

    def test_demand_on_prefetched_line_counts_useful(self):
        hierarchy = tiny_hierarchy()
        hierarchy.prefetch_fill(9)
        result = hierarchy.demand_access(9)
        assert result.outcome is AccessOutcome.L2_HIT
        assert result.l2_fill_was_prefetch
        assert hierarchy.stats.useful_prefetch_hits == 1

    def test_unused_prefetch_eviction_counted_wrong(self):
        hierarchy = tiny_hierarchy(l1_bytes=128, l2_bytes=256)  # L2: 4 lines
        hierarchy.prefetch_fill(0)
        # Fill the set with demand lines until the prefetch is evicted.
        for line in (4, 8, 12, 16):
            hierarchy.demand_access(line)
        assert hierarchy.stats.wrong_prefetch_evictions >= 1

    def test_reset(self):
        hierarchy = tiny_hierarchy()
        hierarchy.demand_access(1)
        hierarchy.reset()
        assert hierarchy.stats.accesses == 0
        assert hierarchy.demand_access(1).outcome is AccessOutcome.MEMORY


class TestInclusion:
    def test_l2_eviction_back_invalidates_l1(self):
        # L2 of 4 lines (1 set x 4 ways at 64B), L1 of 2 lines.
        hierarchy = CacheHierarchy(
            HierarchyConfig(
                l1=CacheConfig(name="L1", size_bytes=128, associativity=2),
                l2=CacheConfig(name="L2", size_bytes=256, associativity=4),
            )
        )
        for line in range(5):  # fifth access evicts line 0 from L2
            hierarchy.demand_access(line)
        assert not hierarchy.l1.contains(0)
        assert not hierarchy.in_l2(0)

    @settings(max_examples=40)
    @given(st.lists(st.integers(min_value=0, max_value=63), max_size=300))
    def test_inclusion_invariant_holds(self, lines):
        hierarchy = tiny_hierarchy(l1_bytes=256, l2_bytes=512)
        for index, line in enumerate(lines):
            if index % 5 == 4:
                hierarchy.prefetch_fill(line)
            else:
                hierarchy.demand_access(line)
            for resident in hierarchy.l1.resident_lines():
                assert hierarchy.l2.contains(resident), (
                    f"L1 line {resident} missing from inclusive L2"
                )
