"""Tests for the compiling backend, including interpreter equivalence."""

import pytest

from repro.common.errors import WorkloadError
from repro.ir.builder import c, v
from repro.ir.compile import compile_kernel, run_kernel_compiled
from repro.ir.interp import ExecutionLimits, run_kernel
from repro.ir.nodes import (
    ArrayDecl,
    Assign,
    Compute,
    For,
    If,
    Kernel,
    Load,
    Store,
    While,
)
from repro.passes.annotate import annotate_tight_loops
from repro.workloads import ALL_WORKLOADS, get_workload


def assert_traces_equal(a, b):
    assert a.instructions == b.instructions
    assert len(a.events) == len(b.events)
    assert a.events == b.events


class TestBasicEquivalence:
    def test_straightline(self):
        kernel = Kernel(
            "k", [ArrayDecl("a", 8)],
            [Load("a", 0), Store("a", 1, c(5)), Compute(3), Assign("x", 7)],
        )
        assert_traces_equal(run_kernel(kernel), run_kernel_compiled(kernel))

    def test_loops_and_branches(self):
        kernel = Kernel(
            "k", [ArrayDecl("a", 64)],
            [
                For("i", 0, 16, [
                    Load("a", v("i"), dst="x"),
                    If(v("x").ge(0), [Store("a", v("i"), v("x") + 1)],
                       [Compute(2)]),
                ], step=2),
            ],
        )
        assert_traces_equal(run_kernel(kernel), run_kernel_compiled(kernel))

    def test_while_loop(self):
        kernel = Kernel(
            "k", [ArrayDecl("a", 32)],
            [
                Assign("n", 0),
                While(v("n").lt(10), [
                    Load("a", v("n") * 3 % c(32)),
                    Assign("n", v("n") + 1),
                ]),
            ],
        )
        assert_traces_equal(run_kernel(kernel), run_kernel_compiled(kernel))

    def test_annotated_blocks(self):
        kernel = Kernel(
            "k", [ArrayDecl("a", 32)],
            [For("i", 0, 8, [Load("a", v("i") * 4)])],
        )
        annotate_tight_loops(kernel)
        assert_traces_equal(run_kernel(kernel), run_kernel_compiled(kernel))

    def test_data_dependence(self):
        import numpy as np

        kernel = Kernel(
            "k",
            [
                ArrayDecl("idx", 16,
                          init=lambda rng: rng.integers(0, 16, size=16)),
                ArrayDecl("a", 16),
            ],
            [For("i", 0, 16, [
                Load("idx", v("i"), dst="j"),
                Load("a", v("j")),
                Store("a", v("j"), v("j") * 2),
            ])],
        )
        assert_traces_equal(
            run_kernel(kernel, seed=5), run_kernel_compiled(kernel, seed=5)
        )


class TestBudgetEquivalence:
    @pytest.mark.parametrize("budget", [1, 7, 50, 333])
    def test_truncation_matches(self, budget):
        kernel = Kernel(
            "k", [ArrayDecl("a", 4096)],
            [For("i", 0, 64, [
                For("j", 0, 64, [Load("a", v("i") * 64 + v("j"))]),
                Compute(2),
            ])],
        )
        annotate_tight_loops(kernel)
        limits = ExecutionLimits(max_memory_accesses=budget)
        assert_traces_equal(
            run_kernel(kernel, limits=limits),
            run_kernel_compiled(kernel, limits=limits),
        )

    def test_instruction_budget_matches(self):
        kernel = Kernel(
            "k", [ArrayDecl("a", 1024)],
            [For("i", 0, 1024, [Load("a", v("i")), Compute(5)])],
        )
        limits = ExecutionLimits(max_instructions=500)
        assert_traces_equal(
            run_kernel(kernel, limits=limits),
            run_kernel_compiled(kernel, limits=limits),
        )


class TestErrorEquivalence:
    def test_out_of_bounds(self):
        kernel = Kernel("k", [ArrayDecl("a", 4)], [Load("a", 99)])
        with pytest.raises(WorkloadError, match="out of range"):
            run_kernel_compiled(kernel)

    def test_runaway_while(self):
        kernel = Kernel(
            "k", [ArrayDecl("a", 4)],
            [While(c(1), [Load("a", 0)], max_iterations=5)],
        )
        with pytest.raises(WorkloadError, match="exceeded"):
            run_kernel_compiled(kernel)


@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_workload_suite_equivalence(name):
    """The compiled backend reproduces the interpreter bit-for-bit on
    every benchmark kernel (the strongest equivalence check we have)."""
    spec = get_workload(name)
    limits = ExecutionLimits(max_memory_accesses=1200)

    kernel_a = spec.kernel()
    annotate_tight_loops(kernel_a)
    interpreted = run_kernel(kernel_a, seed=11, limits=limits)

    kernel_b = spec.kernel()
    annotate_tight_loops(kernel_b)
    compiled = compile_kernel(kernel_b).run(seed=11, limits=limits)

    assert_traces_equal(interpreted, compiled)


def test_compiled_source_is_inspectable():
    kernel = Kernel("k", [ArrayDecl("a", 4)], [Load("a", 0)])
    compiled = compile_kernel(kernel)
    assert "def _kernel_main(" in compiled.source
    assert "MemoryAccess" in compiled.source
