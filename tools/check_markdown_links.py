#!/usr/bin/env python
"""Markdown link checker for the repo's documentation set.

Stdlib-only (runs in CI without installing anything).  For every given
markdown file it extracts inline links and validates the local ones:

* relative file links must point at an existing file or directory
  (checked relative to the linking file's directory);
* fragment links (``#anchor`` or ``file.md#anchor``) must match a
  heading in the target file, using GitHub's anchor slug rules
  (lowercase, punctuation stripped, spaces to hyphens);
* ``http(s)``/``mailto`` links are *not* fetched — network checks flake
  in CI — but must at least parse as absolute URLs.

Exit status is the number of broken links (0 == all good).

Usage::

    python tools/check_markdown_links.py README.md DESIGN.md ...
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links: [text](target).  Images share the syntax
#: (preceded by '!'), and both are checked the same way.
_LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING_PATTERN = re.compile(r"^#{1,6}\s+(.*)$")
_CODE_FENCE = re.compile(r"^(```|~~~)")


def github_anchor(heading: str) -> str:
    """GitHub's heading-to-anchor slug: lowercase, drop punctuation,
    spaces become hyphens (backticks and trailing markup stripped)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def extract_links(markdown: str) -> list[tuple[int, str]]:
    """All inline link targets with their 1-based line numbers.

    Fenced code blocks are skipped — they hold example syntax, not
    navigable links.
    """
    links: list[tuple[int, str]] = []
    in_fence = False
    for number, line in enumerate(markdown.splitlines(), start=1):
        if _CODE_FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK_PATTERN.finditer(line):
            links.append((number, match.group(1)))
    return links


def anchors_of(path: Path) -> set[str]:
    """Anchor slugs for every heading in a markdown file."""
    anchors: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _CODE_FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        heading = _HEADING_PATTERN.match(line)
        if heading:
            anchors.add(github_anchor(heading.group(1)))
    return anchors


def check_file(path: Path) -> list[str]:
    """Validate every link in one markdown file; returns problem strings."""
    problems: list[str] = []
    for line_number, target in extract_links(path.read_text(encoding="utf-8")):
        where = f"{path}:{line_number}"
        if target.startswith(("http://", "https://", "mailto:")):
            continue  # not fetched; syntactically absolute already
        if target.startswith("#"):
            if github_anchor(target[1:]) not in anchors_of(path):
                problems.append(f"{where}: missing anchor {target!r}")
            continue
        file_part, _, fragment = target.partition("#")
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            problems.append(f"{where}: broken link {target!r} "
                            f"({resolved} does not exist)")
            continue
        if fragment and resolved.suffix == ".md":
            if github_anchor(fragment) not in anchors_of(resolved):
                problems.append(
                    f"{where}: missing anchor #{fragment} in {file_part}"
                )
    return problems


def main(argv: list[str]) -> int:
    """Check each named file; print problems; exit with their count."""
    if not argv:
        print("usage: check_markdown_links.py FILE.md [FILE.md ...]")
        return 2
    problems: list[str] = []
    for name in argv:
        path = Path(name)
        if not path.exists():
            problems.append(f"{name}: file not found")
            continue
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    if not problems:
        print(f"checked {len(argv)} files: all links ok")
    return min(len(problems), 125)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
