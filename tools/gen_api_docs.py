#!/usr/bin/env python
"""Generate per-package API reference pages under ``docs/api/``.

Stdlib-only (runs in CI without installing anything).  For each target
package this imports every module, collects the public surface —
module docstring, public classes with their public methods, public
functions — and renders one deterministic markdown page per package
plus an ``index.md``.  Pages carry signatures (via
:func:`inspect.signature`) and the first paragraph of each docstring,
so the reference stays honest: it is derived from the code, never
hand-edited.

Determinism matters because CI re-generates the pages and fails on
drift: no timestamps, stable sort orders, and only docstring/signature
content that changes when the code changes.

Usage::

    PYTHONPATH=src python tools/gen_api_docs.py          # (re)write docs/api
    PYTHONPATH=src python tools/gen_api_docs.py --check  # fail on drift
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import pkgutil
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs" / "api"

#: Packages with a documented public API, in index order.  Each entry is
#: (package name under ``repro.``, one-line blurb for the index page).
PACKAGES: list[tuple[str, str]] = [
    ("sim", "simulation engines (reference, fast, batch) and configs"),
    ("prefetchers", "the prefetcher zoo: paper set, related work, "
                    "learned family"),
    ("exec", "grid planning, keyed caching, schedulers, telemetry"),
    ("check", "differential harnesses, fuzzing, invariants"),
    ("serve", "simulation-as-a-service HTTP API"),
    ("cluster", "supervised serve shards with failover"),
    ("campaign", "journaled, resumable parameter sweeps"),
    ("ingest", "external-trace frontend: ChampSim/CSV decoding, "
               "loop-marker recovery, the ext: workload store"),
]


def _first_paragraph(obj: object) -> str:
    """The first docstring paragraph, collapsed to one line."""
    doc = inspect.getdoc(obj)
    if not doc:
        return ""
    paragraph = doc.split("\n\n", 1)[0]
    return " ".join(paragraph.split())


def _signature(obj: object) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def _public_members(module: object) -> tuple[list, list, list]:
    """(classes, functions, constants) defined in *module* itself."""
    classes, functions, constants = [], [], []
    for name in sorted(vars(module)):
        if name.startswith("_"):
            continue
        member = getattr(module, name)
        defined_here = getattr(member, "__module__", None) == module.__name__
        if inspect.isclass(member) and defined_here:
            classes.append((name, member))
        elif (inspect.isfunction(member) and defined_here):
            functions.append((name, member))
        elif (not inspect.ismodule(member)
              and not callable(member)
              and name.isupper()):
            constants.append((name, member))
    return classes, functions, constants


def _render_class(name: str, cls: type) -> list[str]:
    lines = [f"### `{name}{_signature(cls)}`", ""]
    summary = _first_paragraph(cls)
    if summary:
        lines += [summary, ""]
    for method_name in sorted(vars(cls)):
        if method_name.startswith("_"):
            continue
        method = inspect.getattr_static(cls, method_name)
        if isinstance(method, (staticmethod, classmethod)):
            method = method.__func__
        if not inspect.isfunction(method):
            continue
        lines.append(f"- `.{method_name}{_signature(method)}` — "
                     f"{_first_paragraph(method) or 'undocumented'}")
    if lines[-1] != "":
        lines.append("")
    return lines


def _render_module(module_name: str) -> list[str]:
    module = importlib.import_module(module_name)
    classes, functions, constants = _public_members(module)
    if not (classes or functions or constants):
        return []
    lines = [f"## `{module_name}`", ""]
    summary = _first_paragraph(module)
    if summary:
        lines += [summary, ""]
    for name, value in constants:
        if isinstance(value, (set, frozenset)):
            # Set reprs are hash-ordered, which varies per process;
            # sort so regeneration is deterministic.
            rendered = "{" + ", ".join(
                repr(item) for item in sorted(value, key=repr)) + "}"
        else:
            rendered = repr(value)
        if len(rendered) > 80:
            rendered = rendered[:77] + "..."
        lines.append(f"- `{name} = {rendered}`")
    if constants:
        lines.append("")
    for name, func in functions:
        lines.append(f"- `{name}{_signature(func)}` — "
                     f"{_first_paragraph(func) or 'undocumented'}")
    if functions:
        lines.append("")
    for name, cls in classes:
        lines += _render_class(name, cls)
    return lines


def _iter_module_names(package_name: str) -> list[str]:
    package = importlib.import_module(package_name)
    names = [package_name]
    for info in pkgutil.iter_modules(package.__path__):
        if info.name.startswith("_"):
            continue
        full_name = f"{package_name}.{info.name}"
        if info.ispkg:
            names.extend(_iter_module_names(full_name))
        else:
            names.append(full_name)
    return names


def render_package(short_name: str, blurb: str) -> str:
    package_name = f"repro.{short_name}"
    lines = [
        f"# `{package_name}` — {blurb}",
        "",
        "<!-- generated by tools/gen_api_docs.py; do not edit by hand -->",
        "",
    ]
    for module_name in _iter_module_names(package_name):
        lines += _render_module(module_name)
    return "\n".join(lines).rstrip() + "\n"


def render_index() -> str:
    lines = [
        "# API reference",
        "",
        "<!-- generated by tools/gen_api_docs.py; do not edit by hand -->",
        "",
        "Generated per-package reference pages.  Regenerate with",
        "`PYTHONPATH=src python tools/gen_api_docs.py`; CI fails when",
        "these pages drift from the code (`--check`).",
        "",
    ]
    for short_name, blurb in PACKAGES:
        lines.append(f"- [`repro.{short_name}`]({short_name}.md) — {blurb}")
    return "\n".join(lines) + "\n"


def generate() -> dict[Path, str]:
    pages = {DOCS_DIR / "index.md": render_index()}
    for short_name, blurb in PACKAGES:
        pages[DOCS_DIR / f"{short_name}.md"] = render_package(
            short_name, blurb)
    return pages


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="verify the committed pages match the code; write nothing")
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO_ROOT / "src"))
    pages = generate()

    if args.check:
        stale = []
        for path, content in sorted(pages.items()):
            on_disk = path.read_text() if path.exists() else None
            if on_disk != content:
                stale.append(path.relative_to(REPO_ROOT))
        for path in stale:
            print(f"stale: {path} (re-run tools/gen_api_docs.py)",
                  file=sys.stderr)
        return 1 if stale else 0

    DOCS_DIR.mkdir(parents=True, exist_ok=True)
    for path, content in sorted(pages.items()):
        path.write_text(content)
        print(f"wrote {path.relative_to(REPO_ROOT)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
