#!/usr/bin/env python
"""Generate the frozen ChampSim-format ingest fixture.

Synthesizes a small ChampSim instruction trace from existing IR kernel
traces, so the fixture has a *known ground-truth loop structure* to
score the back-edge recovery heuristic against:

* each IR code block becomes a code region (``0x40_0000`` + 64 KiB per
  static block) with a head-marker instruction at the region base, one
  stable instruction pointer per static load/store, and a conditional
  branch at the region tail that is taken exactly when the IR trace
  begins another iteration of the same block — a textbook back-edge;
* IR accesses outside blocks, plus a deterministic straight-line tail
  segment, map to a disjoint region (``0x100_0000``) with no branch
  records at all — ground-truth *non*-loop content that recovery must
  not mark.

Alongside the raw file the script writes an ``.xz`` copy (the two must
ingest to the same digest) and a ``.truth.json`` sidecar holding the
per-access in-loop ground truth (run-length encoded), the expected
post-recovery content digest, and the recovery coverage measured
against the ground truth.  Tier-1 tests replay the fixture and pin all
three, so any drift in decoders, recovery, or serialization fails
loudly.

Deterministic by construction: IR traces are seeded, instruction
pointers are assigned in first-seen order, and xz compression uses a
fixed preset.  Regenerate with::

    PYTHONPATH=src python tools/make_fixture_trace.py
"""

from __future__ import annotations

import argparse
import json
import lzma
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.ingest.convert import ingest_trace  # noqa: E402
from repro.ingest.formats import Instr, pack_champsim  # noqa: E402
from repro.trace.events import (  # noqa: E402
    BLOCK_BEGIN,
    BLOCK_END,
    MEMORY_ACCESS,
)
from repro.workloads import build_trace, get_workload  # noqa: E402

#: Code region of the first synthetic loop; one 64 KiB region per block.
LOOP_REGION_BASE = 0x40_0000
LOOP_REGION_SIZE = 0x1_0000
#: Offset of the back-edge branch inside its region (the span tail).
BRANCH_OFFSET = 0xFFF0
#: Region of straight-line (non-loop) code.
STRAIGHT_REGION_BASE = 0x100_0000

DEFAULT_WORKLOADS = ("nw", "stencil-default")
DEFAULT_ACCESSES_PER_WORKLOAD = 700
DEFAULT_TAIL_ACCESSES = 64


def _instrs_from_ir(workloads: list[str], accesses_per: int,
                    tail: int) -> tuple[list[Instr], list[bool]]:
    """Map IR traces to ChampSim instructions + per-access loop truth."""
    instrs: list[Instr] = []
    truth: list[bool] = []
    region_of: dict[tuple[str, int], int] = {}
    straight_slots: dict[tuple[str, int], int] = {}

    def region_base(workload: str, block_id: int) -> int:
        key = (workload, block_id)
        if key not in region_of:
            region_of[key] = LOOP_REGION_BASE + len(region_of) * LOOP_REGION_SIZE
        return region_of[key]

    def straight_ip(workload: str, pc: int) -> int:
        key = (workload, pc)
        if key not in straight_slots:
            straight_slots[key] = len(straight_slots)
        return STRAIGHT_REGION_BASE + straight_slots[key] * 0x10

    for workload in workloads:
        trace = build_trace(get_workload(workload), max_accesses=accesses_per)
        events = trace.events
        open_block: int | None = None
        slot_of: dict[int, int] = {}
        for position, event in enumerate(events):
            if event.kind == BLOCK_BEGIN:
                open_block = event.block_id
                slot_of = {}
                instrs.append(Instr(0, region_base(workload, open_block)))
            elif event.kind == BLOCK_END:
                base = region_base(workload, event.block_id)
                following = events[position + 1] if position + 1 < len(events) else None
                taken = (following is not None
                         and following.kind == BLOCK_BEGIN
                         and following.block_id == event.block_id)
                instrs.append(Instr(0, base + BRANCH_OFFSET,
                                    is_branch=True, taken=taken))
                open_block = None
            elif event.kind == MEMORY_ACCESS:
                if open_block is not None:
                    if event.pc not in slot_of:
                        slot_of[event.pc] = len(slot_of)
                    ip = (region_base(workload, open_block)
                          + 0x10 + slot_of[event.pc] * 0x10)
                    truth.append(True)
                else:
                    ip = straight_ip(workload, event.pc)
                    truth.append(False)
                address = (event.address,)
                instrs.append(Instr(
                    0, ip,
                    loads=() if event.is_write else address,
                    stores=address if event.is_write else (),
                ))

    # Straight-line tail: strictly ascending ips, no branches — recovery
    # must leave every one of these accesses unmarked.
    for index in range(tail):
        instrs.append(Instr(
            0, STRAIGHT_REGION_BASE + 0x8_0000 + index * 0x10,
            loads=(0x200_0000 + index * 64,),
        ))
        truth.append(False)
    return instrs, truth


def _measure(path: Path, truth: list[bool]) -> dict:
    """Ingest the fixture once and score recovery against ground truth."""
    with tempfile.TemporaryDirectory() as scratch:
        result = ingest_trace(path, Path(scratch) / "fixture.trace",
                              trace_name="ext:fixture")
        from repro.trace.io import read_trace

        recovered = read_trace(Path(scratch) / "fixture.trace")
    marked: list[bool] = []
    inside = False
    for event in recovered.events:
        if event.kind == BLOCK_BEGIN:
            inside = True
        elif event.kind == BLOCK_END:
            inside = False
        else:
            marked.append(inside)
    assert len(marked) == len(truth), (len(marked), len(truth))
    in_loop = sum(truth)
    covered = sum(1 for t, m in zip(truth, marked) if t and m)
    false_marked = sum(1 for t, m in zip(truth, marked) if not t and m)
    return {
        "expected_digest": result.digest,
        "records": result.stats.records,
        "events": result.events,
        "instructions": result.instructions,
        "accesses": len(truth),
        "in_loop_accesses": in_loop,
        "covered_in_loop_accesses": covered,
        "false_marked_accesses": false_marked,
        "coverage_vs_truth": covered / in_loop if in_loop else 0.0,
        "reported_coverage": result.stats.coverage,
    }


def _rle(values: list[bool]) -> list[list[int]]:
    """Run-length encode a boolean list as [value(0/1), count] pairs."""
    runs: list[list[int]] = []
    for value in values:
        flag = int(value)
        if runs and runs[-1][0] == flag:
            runs[-1][1] += 1
        else:
            runs.append([flag, 1])
    return runs


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="tests/fixtures/ingest/fixture.champsimtrace",
        help="raw fixture path (.xz copy and .truth.json written beside it)")
    parser.add_argument(
        "--workloads", default=",".join(DEFAULT_WORKLOADS),
        help="comma-separated IR workloads to derive loops from")
    parser.add_argument(
        "--accesses-per-workload", type=int,
        default=DEFAULT_ACCESSES_PER_WORKLOAD)
    parser.add_argument(
        "--tail-accesses", type=int, default=DEFAULT_TAIL_ACCESSES,
        help="straight-line (ground-truth non-loop) accesses appended")
    args = parser.parse_args(argv)

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    workloads = [w for w in args.workloads.split(",") if w]
    instrs, truth = _instrs_from_ir(
        workloads, args.accesses_per_workload, args.tail_accesses)

    raw = b"".join(pack_champsim(instr) for instr in instrs)
    out.write_bytes(raw)
    compressed = out.with_name(out.name + ".xz")
    compressed.write_bytes(lzma.compress(raw, preset=6))

    measured = _measure(out, truth)
    sidecar = {
        "generator": "tools/make_fixture_trace.py",
        "workloads": workloads,
        "accesses_per_workload": args.accesses_per_workload,
        "tail_accesses": args.tail_accesses,
        "in_loop_runs": _rle(truth),
        **measured,
    }
    truth_path = out.with_name(out.name + ".truth.json")
    truth_path.write_text(json.dumps(sidecar, indent=2, sort_keys=True) + "\n")

    print(f"wrote {out} ({len(instrs)} records, {len(raw)} bytes)")
    print(f"wrote {compressed} ({compressed.stat().st_size} bytes)")
    print(f"wrote {truth_path}")
    print(f"  digest:            {measured['expected_digest'][:12]}")
    print(f"  in-loop accesses:  {measured['in_loop_accesses']}"
          f"/{measured['accesses']}")
    print(f"  coverage vs truth: {measured['coverage_vs_truth']:.1%} "
          f"(false marks: {measured['false_marked_accesses']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
