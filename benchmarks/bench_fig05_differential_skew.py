"""Figure 5: the skewed distribution of CBWS differential vectors.

Paper: "the vast majority of loop iterations are served by a tiny
fraction of the differential vectors" — e.g. soplex reaches ~90% of
iterations with 5% of its distinct vectors, while fft/streamcluster-like
code needs many more (Section VII-A).
"""

from repro.harness import experiments

from conftest import publish


def bench_figure5(benchmark, runner, results_dir):
    result = benchmark.pedantic(
        lambda: experiments.figure5(runner), rounds=1, iterations=1
    )
    publish(results_dir, "figure05_differential_skew", result.render())

    # Block-structured kernels collapse to very few vectors...
    for name in ("stencil-default", "sgemm-medium", "433.milc-su3imp"):
        dist = result.distributions[name]
        assert dist.coverage_at(0.25) > 0.5 or dist.distinct_vectors <= 8, name
    # ...while streamcluster needs an order of magnitude more.
    assert (
        result.distributions["streamcluster-simlarge"].distinct_vectors
        > 10 * result.distributions["stencil-default"].distinct_vectors
    )
