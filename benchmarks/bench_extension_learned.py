"""Extension: learned prefetchers (Pangloss Markov + Pythia RL).

Post-2014 related work against the paper's schemes, over the full
30-workload suite: do loop annotations (CBWS) still buy anything once a
prefetcher *learns* its delta policy — from frequency statistics
(Pangloss) or from demand-feedback rewards (Pythia)?
"""

from repro.harness import experiments

from conftest import publish


def bench_extension_learned(benchmark, runner, results_dir):
    result = benchmark.pedantic(
        lambda: experiments.extension_learned(runner), rounds=1, iterations=1
    )
    publish(results_dir, "extension_learned", result.render())

    grid = result.grid
    assert len(grid.workloads) == 30

    # Dense streaming: both learned schemes lock onto the +1 delta.
    # Pangloss's degree-4 chain walk hides most of the miss latency;
    # Pythia issues a single delta per miss, so its speedup is modest
    # but its policy converges to near-perfect accuracy.
    libquantum_none = grid.get("462.libquantum-ref", "no-prefetch").ipc
    assert grid.get("462.libquantum-ref", "pangloss").ipc > 1.5 * libquantum_none
    assert grid.get("462.libquantum-ref", "pythia").ipc > libquantum_none
    assert grid.get("462.libquantum-ref", "pythia").accuracy > 0.9

    # Pointer chasing defeats delta prediction; the confidence (Pangloss)
    # and reward (Pythia) gates must keep accuracy-destroying issue in
    # check rather than flooding the bus.
    for name in ("pangloss", "pythia"):
        assert grid.get("429.mcf-ref", name).accuracy < 0.5, name
