"""Micro-benchmarks of the hot simulator components.

These time the structures every grid simulation leans on — useful for
keeping the pure-Python model fast enough to sweep all 30 benchmarks.
"""

from repro.core.predictor import CbwsConfig, CbwsPredictor
from repro.memory.cache import CacheConfig, SetAssociativeCache
from repro.prefetchers.base import DemandInfo
from repro.prefetchers.ghb import GhbConfig, GhbPrefetcher
from repro.prefetchers.sms import SmsPrefetcher
from repro.prefetchers.stride import StridePrefetcher


def bench_cache_access_throughput(benchmark):
    cache = SetAssociativeCache(
        CacheConfig(name="L2", size_bytes=128 * 1024, associativity=8)
    )
    lines = [(line * 37) & 0x3FFF for line in range(4096)]

    def run():
        for line in lines:
            if not cache.access(line):
                cache.insert(line)

    benchmark(run)


def bench_cbws_predictor_throughput(benchmark):
    predictor = CbwsPredictor(CbwsConfig())
    blocks = [
        [80, 81, 6515 + 1024 * n, 4467 + 1024 * n, 5499 + 1024 * n]
        for n in range(64)
    ]

    def run():
        for block in blocks:
            predictor.block_begin(0)
            for line in block:
                predictor.memory_access(line)
            predictor.block_end()

    benchmark(run)


def _accesses(count):
    return [
        DemandInfo(
            pc=0x400000 + (k % 8) * 16,
            line=k * 16,
            address=k * 1024,
            is_write=False,
            l1_hit=False,
            l2_hit=False,
        )
        for k in range(count)
    ]


def bench_stride_throughput(benchmark):
    infos = _accesses(2048)

    def run():
        prefetcher = StridePrefetcher()
        for info in infos:
            prefetcher.on_access(info)

    benchmark(run)


def bench_ghb_pcdc_throughput(benchmark):
    infos = _accesses(2048)

    def run():
        prefetcher = GhbPrefetcher(GhbConfig(mode="pc"))
        for info in infos:
            prefetcher.on_access(info)

    benchmark(run)


def bench_sms_throughput(benchmark):
    infos = _accesses(2048)

    def run():
        prefetcher = SmsPrefetcher()
        for info in infos:
            prefetcher.on_access(info)
        for info in infos[::7]:
            prefetcher.on_l1_eviction(info.line)

    benchmark(run)
