"""Figure 14: IPC normalized to SMS over all 30 benchmarks.

The headline result.  Paper: "CBWS+SMS outperforms SMS by 1.31x for the
memory-intensive benchmarks and by 1.16x for all benchmarks", with
per-benchmark wins on nw, sgemm, radix, stencil, lu-ncb and a ~5% loss
on bzip2; SMS is the best non-CBWS prefetcher.
"""

from repro.harness import experiments

from conftest import publish


def bench_figure14(benchmark, runner, results_dir):
    result = benchmark.pedantic(
        lambda: experiments.figure14(runner), rounds=1, iterations=1
    )
    publish(results_dir, "figure14_speedup", result.render())

    mi = result.average_mi("cbws+sms")
    overall = result.average_all("cbws+sms")
    benchmark.extra_info["cbws_sms_speedup_mi"] = round(mi, 3)
    benchmark.extra_info["cbws_sms_speedup_all"] = round(overall, 3)

    # The headline factors (paper: 1.31x MI, 1.16x ALL).
    assert 1.10 <= mi <= 1.60, f"MI speedup {mi:.2f} out of band"
    assert 1.05 <= overall <= 1.40, f"ALL speedup {overall:.2f} out of band"
    assert mi > overall, "the MI group must gain more than the average"

    # SMS is the best non-CBWS prefetcher on average.
    for name in ("no-prefetch", "stride", "ghb-pc/dc", "ghb-g/dc"):
        assert result.average_all(name) <= 1.0, name

    # Per-benchmark showcases: both CBWS schemes win clearly.
    for workload in ("nw", "sgemm-medium", "stencil-default"):
        assert result.speedup(workload, "cbws+sms") > 1.02, workload

    # bzip2: the 16-line overflow keeps the hybrid at (or slightly
    # below) SMS, and the standalone CBWS prefetcher clearly behind.
    assert result.speedup("401.bzip2-source", "cbws+sms") < 1.10
    assert result.speedup("401.bzip2-source", "cbws") < 1.0

    # fft/streamcluster: too many distinct differentials — the
    # standalone prefetcher trails SMS and the hybrid recovers by
    # falling back (Section VII-A).
    for workload in ("fft-simlarge", "streamcluster-simlarge"):
        assert result.speedup(workload, "cbws") < 1.0, workload
        assert result.speedup(workload, "cbws+sms") >= 0.97, workload
