"""Table I / Figures 3-4: CBWS construction and differential example.

Paper: the stencil's innermost loop produces CBWS vectors whose
element-wise differentials are one constant stride vector.
"""

from repro.harness import experiments

from conftest import publish


def bench_table1(benchmark, runner, results_dir):
    result = benchmark.pedantic(
        lambda: experiments.table1(runner), rounds=1, iterations=1
    )
    publish(results_dir, "table01_cbws_construction", result.render())
    assert len(result.cbws_vectors) == 8
    assert result.constant_differential, (
        "stencil differentials must collapse to one constant vector"
    )
