"""Figure 12: last-level-cache MPKI across the memory-intensive group.

Paper shapes asserted here:

* the integrated CBWS+SMS policy has the lowest average MPKI;
* the standalone CBWS prefetcher averages *above* SMS ("due to the
  limited size of the history table");
* fft is an exception where SMS beats both CBWS schemes;
* histo/soplex (data-dependent / branch-divergent) are helped by nobody.
"""

from repro.harness import experiments

from conftest import publish


def bench_figure12(benchmark, runner, results_dir):
    result = benchmark.pedantic(
        lambda: experiments.figure12(runner), rounds=1, iterations=1
    )
    publish(results_dir, "figure12_mpki", result.render())

    averages = {
        name: result.average(name)
        for name in experiments.EVALUATED_PREFETCHERS
    }
    benchmark.extra_info["average_mpki"] = {
        name: round(value, 2) for name, value in averages.items()
    }

    # CBWS+SMS is the best average policy.
    best = min(averages, key=averages.get)
    assert best == "cbws+sms", f"expected cbws+sms lowest, got {best}"
    # streamcluster: the history table thrashes (too many distinct
    # differential vectors), so standalone CBWS barely removes misses
    # and SMS beats it clearly (Section VII-A).
    assert result.mpki("streamcluster-simlarge", "sms") < result.mpki(
        "streamcluster-simlarge", "cbws"
    )
    assert result.mpki("streamcluster-simlarge", "cbws") > 0.7 * result.mpki(
        "streamcluster-simlarge", "no-prefetch"
    )
    # Data-dependent benchmarks resist everyone: no prefetcher removes
    # even half of histo's or soplex's misses.
    for workload in ("histo-large", "450.soplex-ref"):
        baseline = result.mpki(workload, "no-prefetch")
        for name in experiments.EVALUATED_PREFETCHERS:
            assert result.mpki(workload, name) > 0.5 * baseline, (
                f"{name} unexpectedly fixed {workload}"
            )
    # Block-structured showcases: CBWS+SMS effectively eliminates misses.
    for workload in ("sgemm-medium", "radix-simlarge", "lu-ncb-simlarge"):
        assert result.mpki(workload, "cbws+sms") < 0.2 * result.mpki(
            workload, "no-prefetch"
        )
