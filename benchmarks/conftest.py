"""Shared fixtures for the benchmark harness.

Every ``bench_*`` target regenerates one table or figure of the paper.
The fixtures share a single :class:`GridRunner` per session so traces
and grid cells are computed once, and each bench writes its rendered
rows to ``results/<target>.txt`` next to this directory.

The trace budget can be scaled with ``REPRO_BENCH_BUDGET`` (default 1.0,
the full reduced-scale budget; use e.g. 0.2 for a quick pass).  Grid
sweeps run through the :mod:`repro.exec` worker pool: ``REPRO_BENCH_JOBS``
sets the worker count (default: all cores; 1 = in-process) and finished
cells persist in a result cache under ``results/.exec-cache`` (override
with ``REPRO_BENCH_CACHE``), so re-running a bench with unchanged
parameters replays cached results instead of simulating.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.harness.runner import GridRunner

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def runner() -> GridRunner:
    budget = float(os.environ.get("REPRO_BENCH_BUDGET", "1.0"))
    jobs_env = os.environ.get("REPRO_BENCH_JOBS", "")
    jobs = int(jobs_env) if jobs_env else None  # None = all cores
    cache_dir = os.environ.get(
        "REPRO_BENCH_CACHE", str(RESULTS_DIR / ".exec-cache")
    )
    return GridRunner(budget_fraction=budget, jobs=jobs, cache_dir=cache_dir)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def publish(results_dir: Path, name: str, rendered: str) -> None:
    """Print a reproduced table and persist it under results/."""
    print()
    print(rendered)
    (results_dir / f"{name}.txt").write_text(rendered + "\n")
