"""Extension: Markov correlation and feedback-directed throttling.

Two mechanisms the paper cites ([13], [30]) but does not evaluate:

* the Markov prefetcher is the only scheme that removes a meaningful
  share of mcf's pointer-chase misses — at 192 KB of correlation state
  (vs CBWS's ~1 KB) and a one-hop prefetch lead;
* FDP throttling trims the hybrid's wrong prefetches on hostile
  workloads at some cost on the showcases.
"""

from repro.harness import experiments

from conftest import publish


def bench_extension_robustness(benchmark, runner, results_dir):
    result = benchmark.pedantic(
        lambda: experiments.extension_robustness(runner),
        rounds=1, iterations=1,
    )
    publish(results_dir, "extension_robustness", result.render())
    grid = result.grid

    # Markov: the only scheme that digs into mcf's chase misses.
    markov_mpki = grid.get("429.mcf-ref", "markov").mpki
    baseline_mpki = grid.get("429.mcf-ref", "no-prefetch").mpki
    hybrid_mpki = grid.get("429.mcf-ref", "cbws+sms").mpki
    assert markov_mpki < 0.85 * baseline_mpki
    assert markov_mpki < hybrid_mpki

    # FDP: less waste than the raw hybrid, at a bounded showcase cost.
    def mean_wrong(prefetcher):
        values = [
            grid.get(w, prefetcher).wrong_fraction for w in grid.workloads
        ]
        return sum(values) / len(values)

    assert mean_wrong("fdp(cbws+sms)") <= mean_wrong("cbws+sms")
    assert grid.get("stencil-default", "fdp(cbws+sms)").ipc > (
        0.6 * grid.get("stencil-default", "cbws+sms").ipc
    )
