"""Figure 1: fraction of runtime spent executing tight innermost loops.

Paper: "on average, over 70% of the benchmarks' runtime is spent
executing tight loops" for the memory-intensive group.
"""

from repro.harness import experiments

from conftest import publish


def bench_figure1(benchmark, runner, results_dir):
    result = benchmark.pedantic(
        lambda: experiments.figure1(runner), rounds=1, iterations=1
    )
    publish(results_dir, "figure01_loop_fraction", result.render())
    assert result.average > 0.70, (
        f"MI loop fraction {result.average:.1%} below the paper's >70% claim"
    )
    benchmark.extra_info["average_loop_fraction"] = round(result.average, 4)
