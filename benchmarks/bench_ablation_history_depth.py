"""Ablation: CBWS history depth (Section IV-C).

Paper: "we have found that a history of 4 differentials provides
sufficient performance" — a 1-deep predictor loses the multi-step
lookahead that hides the BLOCK_END timing constraint.
"""

from repro.harness import experiments

from conftest import publish


def bench_ablation_history_depth(benchmark, runner, results_dir):
    result = benchmark.pedantic(
        lambda: experiments.ablation_history_depth(runner, values=[1, 2, 4]),
        rounds=1, iterations=1,
    )
    publish(results_dir, "ablation_history_depth", result.render())

    # Deeper history must help the block-structured showcases.
    for workload in ("stencil-default", "sgemm-medium"):
        assert result.ipc[workload][4] > result.ipc[workload][1], (
            f"{workload}: depth-4 should beat depth-1"
        )
