"""Ablation: CBWS buffer capacity + the Section IV-A 16-line claim.

Paper: "16 lines are sufficient to map the entire working set of over
98% of the dynamic code blocks", and bzip2 — whose blocks read larger
buffers — is the one benchmark hurt by the cap, yet "increasing the
number of differentials is not justified".
"""

from repro.harness import experiments

from conftest import publish


def bench_working_set_claim(benchmark, runner, results_dir):
    result = benchmark.pedantic(
        lambda: experiments.working_set_claim(runner), rounds=1, iterations=1
    )
    publish(results_dir, "working_set_claim", result.render())
    assert result.overall_fraction > 0.95, (
        f"only {result.overall_fraction:.1%} of dynamic blocks fit 16 lines"
    )
    # bzip2 is the designed outlier.
    assert result.distributions["401.bzip2-source"].fraction_within(16) < 0.5


def bench_ablation_vector_members(benchmark, runner, results_dir):
    result = benchmark.pedantic(
        lambda: experiments.ablation_vector_members(runner, values=[8, 16, 32]),
        rounds=1, iterations=1,
    )
    publish(results_dir, "ablation_vector_members", result.render())

    # bzip2 (24-line blocks) benefits from a 32-entry buffer...
    bzip2 = result.ipc["401.bzip2-source"]
    assert bzip2[32] >= bzip2[16]
    # ...while the regular kernels do not need more than 16 (the paper's
    # justification for not growing the buffer).
    stencil = result.ipc["stencil-default"]
    assert stencil[32] < stencil[16] * 1.10
