"""Extension: the AMPM prefetcher (related work, Section III-A).

The paper's related-work argument, made measurable: AMPM's zone-local
bitmap matching covers dense streams as well as anyone, but loops whose
iterations stride across zones (the CBWS showcases) defeat it — it has
"no notion of code blocks".
"""

from repro.harness import experiments

from conftest import publish


def bench_extension_ampm(benchmark, runner, results_dir):
    result = benchmark.pedantic(
        lambda: experiments.extension_ampm(runner), rounds=1, iterations=1
    )
    publish(results_dir, "extension_ampm", result.render())

    grid = result.grid
    # Dense streaming: AMPM clearly covers it (its degree-4 lookahead is
    # shallower than SMS's whole-region streaming, so it trails SMS).
    libquantum_ampm = grid.get("462.libquantum-ref", "ampm").ipc
    libquantum_none = grid.get("462.libquantum-ref", "no-prefetch").ipc
    assert libquantum_ampm > 2.0 * libquantum_none

    # Cross-zone block strides: the CBWS hybrid stays ahead of AMPM.
    for workload in ("stencil-default", "sgemm-medium"):
        assert grid.get(workload, "cbws+sms").ipc > grid.get(
            workload, "ampm"
        ).ipc, workload
