"""Figure 13: timeliness and accuracy of the competing prefetchers.

Paper shapes asserted here:

* the standalone CBWS scheme achieves the best accuracy (smallest
  *wrong* fraction) of all prefetchers, ~5% on the MI group;
* integrating CBWS improves SMS coverage: the timely + shorter-waiting
  fraction rises and the missing fraction falls.
"""

from repro.harness import experiments

from conftest import publish


def bench_figure13(benchmark, runner, results_dir):
    result = benchmark.pedantic(
        lambda: experiments.figure13(runner), rounds=1, iterations=1
    )
    publish(results_dir, "figure13_timeliness", result.render())

    prefetchers = [
        p for p in experiments.EVALUATED_PREFETCHERS if p != "no-prefetch"
    ]
    wrong = {p: result.average_fraction(p, "wrong") for p in prefetchers}
    benchmark.extra_info["average_wrong"] = {
        name: round(value, 4) for name, value in wrong.items()
    }

    # The standalone CBWS prefetcher stays accurate: wrong under ~10%.
    assert wrong["cbws"] < 0.10, f"cbws wrong fraction {wrong['cbws']:.1%}"

    # Integration improves coverage over plain SMS.
    def covered(prefetcher):
        return (
            result.average_fraction(prefetcher, "timely")
            + result.average_fraction(prefetcher, "shorter_waiting")
        )

    assert covered("cbws+sms") > covered("sms")
    assert result.average_fraction("cbws+sms", "missing") < (
        result.average_fraction("sms", "missing")
    )
