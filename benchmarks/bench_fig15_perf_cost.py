"""Figure 15: performance/cost — IPC per byte read from memory.

Paper: "the CBWS+SMS policy provides the best performance/cost, with an
average of 1.64 IPC/bytes fetched compared to 1.39 for the best
non-CBWS prefetcher (SMS)" (both normalized to no-prefetch = 1.0).
"""

from repro.harness import experiments

from conftest import publish


def bench_figure15(benchmark, runner, results_dir):
    result = benchmark.pedantic(
        lambda: experiments.figure15(runner), rounds=1, iterations=1
    )
    publish(results_dir, "figure15_perf_cost", result.render())

    averages = {
        name: result.average(name)
        for name in experiments.EVALUATED_PREFETCHERS
    }
    benchmark.extra_info["average_perf_cost"] = {
        name: round(value, 3) for name, value in averages.items()
    }

    # CBWS+SMS is the most bandwidth-efficient policy on average.
    best = max(averages, key=averages.get)
    assert best == "cbws+sms", f"expected cbws+sms best, got {best}"
    assert averages["cbws+sms"] > averages["sms"] > 1.0
