"""Table III: hardware storage requirements of the evaluated prefetchers.

Paper: Stride 2.25 KB, GHB G/DC 2.25 KB, GHB PC/DC 3.75 KB, SMS ~5 KB,
CBWS < 1 KB (we measure ~1.1 KB for the full Figure 8 bill of materials;
see EXPERIMENTS.md for the accounting difference).
"""

import pytest

from repro.harness import experiments

from conftest import publish


def bench_table3(benchmark, results_dir):
    result = benchmark.pedantic(experiments.table3, rounds=5, iterations=1)
    publish(results_dir, "table03_storage", result.render())

    estimates = result.estimates
    assert estimates["stride"].kilobytes == pytest.approx(2.25)
    assert estimates["ghb-g/dc"].kilobytes == pytest.approx(2.25)
    assert estimates["ghb-pc/dc"].kilobytes == pytest.approx(3.75)
    assert 4.5 <= estimates["sms"].kilobytes <= 6.5
    assert estimates["cbws"].kilobytes < 1.3
    assert estimates["cbws"].bits == min(e.bits for e in estimates.values())
