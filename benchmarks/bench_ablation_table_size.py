"""Ablation: differential history table capacity (Section VII-A).

Paper: for fft/streamcluster "the history table is too small to
represent a meaningful CBWS differential history".  Growing the table
should narrow fft's gap; the regular kernels should not need it.
"""

from repro.harness import experiments

from conftest import publish


def bench_ablation_table_size(benchmark, runner, results_dir):
    result = benchmark.pedantic(
        lambda: experiments.ablation_table_size(runner, values=[4, 16, 64]),
        rounds=1, iterations=1,
    )
    publish(results_dir, "ablation_table_size", result.render())

    # The regular kernels are insensitive: 16 entries already suffice,
    # so 64 gains little over 16 (< 10%).
    for workload in ("stencil-default", "sgemm-medium"):
        ipc16 = result.ipc[workload][16]
        ipc64 = result.ipc[workload][64]
        assert ipc64 < ipc16 * 1.10, (
            f"{workload}: regular kernels should not need a bigger table"
        )
