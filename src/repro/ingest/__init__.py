"""External-trace ingestion: ChampSim/CSV decoding, loop-marker
recovery, and conversion into registered ``ext:`` workloads.

The public surface:

* :mod:`repro.ingest.formats` — streaming decoders (``champsim``,
  ``csv``) with transparent ``.xz``/``.gz`` decompression;
* :mod:`repro.ingest.recover` — heuristic BLOCK_BEGIN/END recovery
  from PC back-edges, with observable coverage stats;
* :mod:`repro.ingest.convert` — bounded-memory streaming conversion
  into the internal v2 trace container;
* :mod:`repro.ingest.store` — the content-addressed store that turns
  an ingested trace into the workload ``ext:<name>``.
"""

from repro.ingest.convert import (
    IngestResult,
    StreamingTraceWriter,
    ingest_trace,
    trace_digest,
)
from repro.ingest.formats import FORMATS, Instr, decode, detect_format
from repro.ingest.recover import RecoveryConfig, RecoveryStats, recover_blocks
from repro.ingest.store import (
    EXT_PREFIX,
    IngestRecord,
    IngestStore,
    default_store_root,
    is_ext_workload,
    truncate_to_accesses,
)

__all__ = [
    "EXT_PREFIX",
    "FORMATS",
    "IngestRecord",
    "IngestResult",
    "IngestStore",
    "Instr",
    "RecoveryConfig",
    "RecoveryStats",
    "StreamingTraceWriter",
    "decode",
    "default_store_root",
    "detect_format",
    "ingest_trace",
    "is_ext_workload",
    "recover_blocks",
    "trace_digest",
    "truncate_to_accesses",
]
