"""Conversion of external traces into the internal v2 container.

The internal format (:mod:`repro.trace.io`) is built around in-memory
:class:`~repro.trace.stream.Trace` objects — fine for synthetic kernels,
fatal for multi-GB ChampSim traces.  This module provides the streaming
path: :class:`StreamingTraceWriter` emits the *identical* v2 byte layout
(same header, same delta-encoded records, same payload CRC) one event at
a time in constant memory, by reserving the header's count/CRC fields up
front and patching them with a single seek once the stream ends.  A
byte-equivalence test pins the two writers against each other.

:func:`ingest_trace` is the orchestration: decode an external file
(:mod:`repro.ingest.formats`), recover loop markers
(:mod:`repro.ingest.recover`), and stream the result to disk — returning
the content digest that names the trace in the ingest store and salts
every downstream cache key.
"""

from __future__ import annotations

import hashlib
import os
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.common.errors import IngestFormatError, TraceError
# The private struct definitions ARE the v2 wire format; importing them
# (rather than redeclaring) keeps the two writers incapable of drifting
# apart silently, and the byte-equivalence test pins the coupling.
from repro.trace.io import _COUNTS, _CRC, _HEADER, _MAGIC, _VERSION
from repro.trace.events import (
    BLOCK_BEGIN,
    BLOCK_END,
    MEMORY_ACCESS,
    TraceEvent,
)
from repro.trace.io import _BLOCK_RECORD, _MEM_RECORD
from repro.exec.keys import stable_hash
from repro.ingest.formats import decode
from repro.ingest.recover import RecoveryConfig, RecoveryStats, recover_blocks

_U32_MAX = 0xFFFFFFFF
_U64_MAX = 0xFFFFFFFFFFFFFFFF


@dataclass(frozen=True)
class WriterResult:
    """What one finished streaming write produced.

    ``records_sha256`` hashes the record section only (the part the CRC
    covers) — it is the content fingerprint :func:`trace_digest` builds
    on, deliberately independent of the embedded trace name.
    """

    path: Path
    events: int
    instructions: int
    crc32: int
    records_sha256: str
    bytes_written: int


class StreamingTraceWriter:
    """Write a v2 trace file one event at a time in bounded memory.

    Usage::

        with StreamingTraceWriter(path, name) as writer:
            for event in events:
                writer.append(event)
            result = writer.finalize(instructions)

    The file appears under ``path`` only when :meth:`finalize` succeeds
    (temp file + ``os.replace``, like :func:`repro.trace.io.write_trace`);
    leaving the ``with`` block without finalizing discards the temp file.
    """

    def __init__(self, path: str | Path, name: str) -> None:
        self._path = Path(path)
        name_bytes = name.encode("utf-8")
        if len(name_bytes) > 0xFFFF:
            raise TraceError(f"trace name too long to serialize: {name!r}")
        self._temporary = self._path.with_name(
            f".{self._path.name}.{os.getpid()}.tmp")
        self._handle = open(self._temporary, "wb")
        self._handle.write(_HEADER.pack(_MAGIC, _VERSION, len(name_bytes)))
        self._handle.write(name_bytes)
        self._counts_offset = self._handle.tell()
        # Reserve the counts + CRC fields; finalize() patches them.
        self._handle.write(_COUNTS.pack(0, 0))
        self._handle.write(_CRC.pack(0))
        self._crc = 0
        self._sha = hashlib.sha256()
        self._events = 0
        self._record_bytes = 0
        self._last_icount = 0
        self._done = False

    def append(self, event: TraceEvent) -> None:
        """Serialize one event (icounts must be non-decreasing)."""
        delta = event.icount - self._last_icount
        if delta < 0:
            raise TraceError(
                f"event {self._events}: icount decreases "
                f"({event.icount} < {self._last_icount}); cannot serialize"
            )
        if delta > _U32_MAX:
            raise TraceError(
                f"event {self._events}: icount jump {delta} exceeds the "
                "format's u32 delta field"
            )
        if event.kind == MEMORY_ACCESS:
            if event.pc > _U64_MAX or event.address > _U64_MAX:  # type: ignore[attr-defined]
                raise TraceError(
                    f"event {self._events}: pc/address exceeds u64"
                )
            record = _MEM_RECORD.pack(
                MEMORY_ACCESS, delta,
                event.pc, event.address,  # type: ignore[attr-defined]
                1 if event.is_write else 0,  # type: ignore[attr-defined]
            )
        elif event.kind in (BLOCK_BEGIN, BLOCK_END):
            if event.block_id > _U32_MAX:  # type: ignore[attr-defined]
                raise TraceError(
                    f"event {self._events}: block id exceeds u32"
                )
            record = _BLOCK_RECORD.pack(
                event.kind, delta, event.block_id)  # type: ignore[attr-defined]
        else:
            raise TraceError(f"unknown event kind {event.kind}")
        self._handle.write(record)
        self._crc = zlib.crc32(record, self._crc)
        self._sha.update(record)
        self._record_bytes += len(record)
        self._events += 1
        self._last_icount = event.icount

    def finalize(self, instructions: int) -> WriterResult:
        """Patch the header, fsync, and publish the file atomically."""
        if self._done:
            raise TraceError("streaming writer already finalized or aborted")
        self._done = True
        self._handle.seek(self._counts_offset)
        self._handle.write(_COUNTS.pack(instructions, self._events))
        self._handle.write(_CRC.pack(self._crc & 0xFFFFFFFF))
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        os.replace(self._temporary, self._path)
        return WriterResult(
            path=self._path,
            events=self._events,
            instructions=instructions,
            crc32=self._crc & 0xFFFFFFFF,
            records_sha256=self._sha.hexdigest(),
            bytes_written=self._counts_offset + _COUNTS.size + _CRC.size
            + self._record_bytes,
        )

    def abort(self) -> None:
        """Discard the partial write; nothing appears under ``path``."""
        if self._done:
            return
        self._done = True
        self._handle.close()
        self._temporary.unlink(missing_ok=True)

    def __enter__(self) -> "StreamingTraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.abort()


def trace_digest(records_sha256: str, instructions: int, events: int) -> str:
    """Content digest of an ingested trace.

    Hashes the record payload plus the header counts — everything except
    the embedded name — so renaming an ingested trace keeps its digest
    and re-ingesting identical content is always digest-stable.
    """
    return stable_hash("ext-trace", records_sha256, instructions, events)


@dataclass(frozen=True)
class IngestResult:
    """Everything one ingestion produced: the file, its identity, and
    the recovery report."""

    source: Path
    format: str
    path: Path
    digest: str
    records_sha256: str
    instructions: int
    events: int
    accesses: int
    stats: RecoveryStats


def ingest_trace(
    source: str | Path,
    out_path: str | Path,
    *,
    trace_name: str,
    fmt: str | None = None,
    config: RecoveryConfig | None = None,
) -> IngestResult:
    """Decode ``source``, recover loop markers, and write a v2 trace.

    The whole pipeline is a single streaming pass — decoder, recovery,
    and writer are all generators/incremental, so peak memory is
    independent of the trace length.  ``fmt`` overrides file-name format
    detection; the CSV fallback automatically switches recovery to
    inferred back-edges (it has no branch records to go by).
    """
    source = Path(source)
    if fmt is None:
        from repro.ingest.formats import detect_format
        fmt = detect_format(source)
    if config is None:
        config = RecoveryConfig(infer_backedges=(fmt == "csv"))
    stats = RecoveryStats()
    with StreamingTraceWriter(out_path, trace_name) as writer:
        for event in recover_blocks(decode(source, fmt), config, stats):
            writer.append(event)
        if stats.accesses == 0:
            raise IngestFormatError(
                f"{source} decodes to zero memory accesses; there is "
                "nothing to simulate"
            )
        result = writer.finalize(stats.instructions)
    return IngestResult(
        source=source,
        format=fmt,
        path=result.path,
        digest=trace_digest(result.records_sha256, result.instructions,
                            result.events),
        records_sha256=result.records_sha256,
        instructions=result.instructions,
        events=result.events,
        accesses=stats.accesses,
        stats=stats,
    )
