"""The ingest store: ingested traces as first-class ``ext:`` workloads.

An ingested trace lives in a content-addressed store directory (by
default ``<cache>/ingest``, overridable via ``REPRO_INGEST_STORE`` so
exec-pool workers and cluster shards resolve the same store as the
submitting CLI).  Each trace is one v2 file named
``<name>-<digest12>.trace`` plus a row in ``registry.json`` mapping the
user-facing name to the file, its content digest, and its recovery
metadata.

Downstream, the trace appears as the workload ``ext:<name>``:
:func:`repro.workloads.base.get_workload` fabricates a spec from the
registry row, and the content digest is mixed into every trace/sim cache
key (:mod:`repro.exec.keys`), so re-ingesting *different* content under
the same name can never replay stale cached results — and is refused
outright unless ``--force`` is given.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from pathlib import Path

from repro.common.errors import IngestRegistryError, TraceError
from repro.ingest.convert import IngestResult, ingest_trace
from repro.ingest.recover import RecoveryConfig, RecoveryStats
from repro.trace.events import BLOCK_BEGIN, BLOCK_END, MEMORY_ACCESS, BlockEnd
from repro.trace.io import read_trace
from repro.trace.stream import Trace

#: Namespace prefix that marks a workload name as an ingested trace.
EXT_PREFIX = "ext:"

_REGISTRY_VERSION = 1
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

#: File-name suffixes stripped when deriving a default trace name.
_STRIP_SUFFIXES = (".xz", ".gz", ".champsimtrace", ".champsim", ".csv",
                   ".trace")


def default_store_root() -> Path:
    """Resolve the store directory from the environment.

    ``REPRO_INGEST_STORE`` wins (the CLI exports it from ``--cache-dir``
    so multiprocessing workers and serve shards inherit the same store);
    otherwise ``<REPRO_CACHE_DIR or .repro-cache>/ingest``.
    """
    explicit = os.environ.get("REPRO_INGEST_STORE")
    if explicit:
        return Path(explicit)
    cache = os.environ.get("REPRO_CACHE_DIR") or ".repro-cache"
    return Path(cache) / "ingest"


def is_ext_workload(name: str) -> bool:
    """True when ``name`` lives in the ``ext:`` namespace."""
    return name.startswith(EXT_PREFIX)


def ext_name(name: str) -> str:
    """Strip the ``ext:`` prefix (tolerating its absence)."""
    return name[len(EXT_PREFIX):] if name.startswith(EXT_PREFIX) else name


def derive_name(source: str | Path) -> str:
    """Default trace name from a source file name.

    Strips compression/format suffixes and normalizes the remainder; an
    unusable result (empty, or nothing but punctuation) asks the caller
    to pass ``--name`` instead of guessing.
    """
    stem = Path(source).name
    lowered = stem.lower()
    changed = True
    while changed:
        changed = False
        for suffix in _STRIP_SUFFIXES:
            if lowered.endswith(suffix) and len(lowered) > len(suffix):
                stem = stem[: -len(suffix)]
                lowered = lowered[: -len(suffix)]
                changed = True
    cleaned = re.sub(r"[^A-Za-z0-9._-]+", "-", stem).strip("-._")
    if not cleaned or not _NAME_RE.match(cleaned):
        raise IngestRegistryError(
            f"cannot derive a usable trace name from {source!r}; "
            "pass --name"
        )
    return cleaned


def validate_name(name: str) -> str:
    """Reject names that would break the registry or the namespace."""
    if not _NAME_RE.match(name):
        raise IngestRegistryError(
            f"invalid trace name {name!r}: use letters, digits, dot, "
            "underscore, dash (no spaces, no ':')"
        )
    return name


@dataclass(frozen=True)
class IngestRecord:
    """One registry row: identity and metadata of a stored trace."""

    name: str
    digest: str
    file: str
    format: str
    source: str
    instructions: int
    events: int
    accesses: int
    coverage: float
    block_instances: int
    block_ids: int

    @property
    def workload(self) -> str:
        """The workload name downstream layers use (``ext:<name>``)."""
        return EXT_PREFIX + self.name

    def to_json(self) -> dict:
        return {
            "digest": self.digest,
            "file": self.file,
            "format": self.format,
            "source": self.source,
            "instructions": self.instructions,
            "events": self.events,
            "accesses": self.accesses,
            "coverage": self.coverage,
            "block_instances": self.block_instances,
            "block_ids": self.block_ids,
        }

    @classmethod
    def from_json(cls, name: str, row: dict) -> "IngestRecord":
        try:
            return cls(
                name=name,
                digest=row["digest"],
                file=row["file"],
                format=row["format"],
                source=row["source"],
                instructions=row["instructions"],
                events=row["events"],
                accesses=row["accesses"],
                coverage=row["coverage"],
                block_instances=row["block_instances"],
                block_ids=row["block_ids"],
            )
        except (KeyError, TypeError) as error:
            raise IngestRegistryError(
                f"registry row for {name!r} is malformed: {error}"
            ) from None


class IngestStore:
    """Directory of ingested traces plus their ``registry.json``."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_store_root()

    @property
    def registry_path(self) -> Path:
        return self.root / "registry.json"

    # -- registry ----------------------------------------------------------

    def _load(self) -> dict[str, dict]:
        if not self.registry_path.exists():
            return {}
        try:
            payload = json.loads(self.registry_path.read_text("utf-8"))
        except (OSError, ValueError) as error:
            raise IngestRegistryError(
                f"ingest registry {self.registry_path} is unreadable or "
                f"corrupt: {error}"
            ) from error
        if (not isinstance(payload, dict)
                or payload.get("version") != _REGISTRY_VERSION
                or not isinstance(payload.get("traces"), dict)):
            raise IngestRegistryError(
                f"ingest registry {self.registry_path} has an unexpected "
                "schema; delete it and re-ingest"
            )
        return payload["traces"]

    def _save(self, traces: dict[str, dict]) -> None:
        payload = {"version": _REGISTRY_VERSION, "traces": traces}
        temporary = self.registry_path.with_name(
            f".registry.json.{os.getpid()}.tmp")
        temporary.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", "utf-8")
        os.replace(temporary, self.registry_path)

    def names(self) -> list[str]:
        """Stored trace names (without the ``ext:`` prefix), sorted."""
        return sorted(self._load())

    def records(self) -> list[IngestRecord]:
        traces = self._load()
        return [IngestRecord.from_json(name, traces[name])
                for name in sorted(traces)]

    def get(self, name: str) -> IngestRecord:
        """Look up a trace by bare or ``ext:``-prefixed name."""
        bare = ext_name(name)
        traces = self._load()
        if bare not in traces:
            known = ", ".join(sorted(traces)) or "<none ingested>"
            raise IngestRegistryError(
                f"unknown ingested trace {bare!r} in {self.root}; "
                f"known: {known}"
            )
        return IngestRecord.from_json(bare, traces[bare])

    def digest(self, name: str) -> str:
        """Content digest of a stored trace (salts downstream keys)."""
        return self.get(name).digest

    # -- ingestion ---------------------------------------------------------

    def ingest(
        self,
        source: str | Path,
        *,
        name: str | None = None,
        fmt: str | None = None,
        config: RecoveryConfig | None = None,
        force: bool = False,
    ) -> tuple[IngestRecord, RecoveryStats]:
        """Ingest ``source`` and register it under ``name``.

        Idempotent for identical content: re-ingesting the same bytes
        under the same name rewrites the same digest-named file and
        leaves every cache key valid.  *Different* content under an
        existing name is refused without ``force`` — silently changing
        what ``ext:<name>`` means would poison every content-addressed
        result derived from it.
        """
        source = Path(source)
        name = validate_name(name) if name is not None else derive_name(source)
        self.root.mkdir(parents=True, exist_ok=True)
        incoming = self.root / f".incoming-{os.getpid()}.trace"
        try:
            result = ingest_trace(
                source, incoming, trace_name=EXT_PREFIX + name,
                fmt=fmt, config=config,
            )
            traces = self._load()
            existing = traces.get(name)
            if (existing is not None and existing.get("digest") != result.digest
                    and not force):
                raise IngestRegistryError(
                    f"trace {name!r} already exists with different content "
                    f"(stored digest {existing.get('digest', '?')[:12]}, "
                    f"new {result.digest[:12]}); re-ingest with --force or "
                    "pick another --name"
                )
            final = self.root / f"{name}-{result.digest[:12]}.trace"
            os.replace(incoming, final)
            if existing is not None and existing.get("file") not in (
                    None, final.name):
                (self.root / existing["file"]).unlink(missing_ok=True)
            record = IngestRecord(
                name=name,
                digest=result.digest,
                file=final.name,
                format=result.format,
                source=str(source),
                instructions=result.instructions,
                events=result.events,
                accesses=result.accesses,
                coverage=result.stats.coverage,
                block_instances=result.stats.block_instances,
                block_ids=result.stats.block_ids,
            )
            traces[name] = record.to_json()
            self._save(traces)
            return record, result.stats
        finally:
            incoming.unlink(missing_ok=True)

    # -- loading -----------------------------------------------------------

    def trace_path(self, name: str) -> Path:
        return self.root / self.get(name).file

    def load_trace(self, name: str, max_accesses: int | None = None) -> Trace:
        """Load a stored trace, optionally truncated to a budget.

        Truncation mirrors the ``max_accesses`` budget semantics of
        synthetic workloads: keep the first N memory accesses and close
        any block left open at the cut, so the result still validates.
        """
        record = self.get(name)
        path = self.root / record.file
        if not path.exists():
            raise IngestRegistryError(
                f"trace file {path} is missing (registry row exists); "
                f"re-ingest {record.name!r}"
            )
        trace = read_trace(path)
        if max_accesses is not None:
            trace = truncate_to_accesses(trace, max_accesses)
        return trace


def truncate_to_accesses(trace: Trace, limit: int) -> Trace:
    """First ``limit`` memory accesses of ``trace``, markers balanced.

    Returns ``trace`` itself when it already fits the budget.  A block
    left open at the cut is closed at the last kept icount, so the
    truncated trace satisfies the same invariants as the full one.
    """
    if limit <= 0:
        raise TraceError(f"access budget must be positive, got {limit}")
    kept = 0
    events = []
    open_block: int | None = None
    truncated = False
    for event in trace.events:
        if event.kind == MEMORY_ACCESS:
            if kept >= limit:
                truncated = True
                break
            kept += 1
        elif event.kind == BLOCK_BEGIN:
            if kept >= limit:
                truncated = True
                break
            open_block = event.block_id
        elif event.kind == BLOCK_END:
            open_block = None
        events.append(event)
    if not truncated:
        return trace
    if open_block is not None:
        last_icount = events[-1].icount if events else 0
        events.append(BlockEnd(last_icount, open_block))
    instructions = (events[-1].icount + 1) if events else 0
    return Trace(trace.name, events, instructions)
