"""Streaming decoders for external trace formats.

Two formats are understood:

``champsim``
    The ChampSim instruction trace: a headerless stream of fixed-width
    64-byte records (the ecosystem's ``input_instr`` layout) —
    instruction pointer, branch flags, register ids, and up to two
    store / four load addresses per instruction.  The file length must
    be an exact multiple of the record width; flag bytes must be 0/1
    and ``branch_taken`` implies ``is_branch`` — anything else raises
    :class:`~repro.common.errors.IngestFormatError` naming the record.

``csv``
    A plain-text fallback: one memory access per line,
    ``pc,address[,is_write[,icount]]`` with decimal or ``0x`` hex
    values.  Lines starting with ``#`` and an optional ``pc,...``
    header line are skipped.  An explicit ``icount`` column must be
    monotonically non-decreasing; the first offending line is named in
    the error (a non-monotonic icount would silently corrupt the MLP
    timing model downstream).

Both decoders stream: they never hold more than one chunk of the input
in memory, so multi-GB traces decode in bounded space.  Compression is
transparent — ``.xz`` and ``.gz`` inputs are detected by their magic
bytes (not just the extension) and decompressed through the stdlib
``lzma`` / ``gzip`` streaming readers.
"""

from __future__ import annotations

import gzip
import lzma
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator

from repro.common.errors import IngestFormatError

#: Known decoder names, in detection-priority order.
FORMATS = ("champsim", "csv")

#: The ChampSim ``input_instr`` record: ip u64, is_branch u8,
#: branch_taken u8, destination_registers[2] u8, source_registers[4] u8,
#: destination_memory[2] u64 (stores), source_memory[4] u64 (loads).
_CHAMPSIM_RECORD = struct.Struct("<QBB2B4B2Q4Q")
assert _CHAMPSIM_RECORD.size == 64

#: Records decoded per chunked read (64 KiB of input at a time).
_CHUNK_RECORDS = 1024

_XZ_MAGIC = b"\xfd7zXZ\x00"
_GZ_MAGIC = b"\x1f\x8b"


@dataclass(frozen=True)
class Instr:
    """One decoded instruction of an external trace.

    Attributes:
        icount: committed-instruction index of this record (decoder
            assigned for ChampSim, optionally explicit in CSV).
        pc: instruction pointer.
        loads: byte addresses read by the instruction (may be empty).
        stores: byte addresses written by the instruction (may be empty).
        is_branch: the record is a branch instruction.
        taken: the branch was taken (the *next* record's ``pc`` is its
            target, which is how back-edges are recovered downstream).
    """

    icount: int
    pc: int
    loads: tuple[int, ...] = ()
    stores: tuple[int, ...] = ()
    is_branch: bool = False
    taken: bool = False

    @property
    def accesses(self) -> int:
        """Memory accesses carried by this instruction."""
        return len(self.loads) + len(self.stores)


def sniff_compression(path: str | Path) -> str | None:
    """``"xz"``, ``"gz"``, or None — decided by magic bytes, not name."""
    with open(path, "rb") as handle:
        head = handle.read(len(_XZ_MAGIC))
    if head.startswith(_XZ_MAGIC):
        return "xz"
    if head.startswith(_GZ_MAGIC):
        return "gz"
    return None


def open_stream(path: str | Path) -> BinaryIO:
    """Open ``path`` for binary reading with transparent decompression."""
    compression = sniff_compression(path)
    if compression == "xz":
        return lzma.open(path, "rb")  # type: ignore[return-value]
    if compression == "gz":
        return gzip.open(path, "rb")  # type: ignore[return-value]
    return open(path, "rb")


def detect_format(path: str | Path) -> str:
    """Pick the decoder from the file name (compression suffixes aside).

    ``*.champsimtrace[.xz|.gz]`` (and the common ``*.trace.xz`` spelling
    ChampSim distributions use) decode as ``champsim``;
    ``*.csv[.xz|.gz]`` as ``csv``.  Anything else must state its format
    explicitly (``repro ingest --format ...``).
    """
    suffixes = [s.lower() for s in Path(path).suffixes]
    while suffixes and suffixes[-1] in (".xz", ".gz"):
        suffixes.pop()
    if suffixes and suffixes[-1] in (".champsimtrace", ".champsim"):
        return "champsim"
    if suffixes and suffixes[-1] == ".csv":
        return "csv"
    raise IngestFormatError(
        f"cannot infer the trace format of {path}: expected a "
        ".champsimtrace or .csv file (optionally .xz/.gz compressed); "
        "pass --format champsim|csv to override"
    )


def _check_flag(value: int, what: str, record: int) -> bool:
    if value not in (0, 1):
        raise IngestFormatError(
            f"record {record}: {what} flag must be 0 or 1, got {value} "
            "(not a ChampSim instruction trace, or a corrupt one)"
        )
    return bool(value)


def iter_champsim(handle: BinaryIO, *, what: str = "<stream>") -> Iterator[Instr]:
    """Decode a stream of 64-byte ChampSim records.

    ``what`` names the source in error messages.  The stream is
    validated strictly: a trailing partial record or an out-of-range
    flag byte raises :class:`IngestFormatError` with the record index.
    """
    record_size = _CHAMPSIM_RECORD.size
    unpack_from = _CHAMPSIM_RECORD.unpack_from
    index = 0
    pending = b""
    while True:
        chunk = handle.read(record_size * _CHUNK_RECORDS)
        if not chunk:
            break
        if pending:
            chunk = pending + chunk
            pending = b""
        usable = len(chunk) - len(chunk) % record_size
        pending = chunk[usable:]
        for offset in range(0, usable, record_size):
            (ip, is_branch, taken, _d0, _d1, _s0, _s1, _s2, _s3,
             dst0, dst1, src0, src1, src2, src3) = unpack_from(chunk, offset)
            is_branch = _check_flag(is_branch, "is_branch", index)
            taken = _check_flag(taken, "branch_taken", index)
            if taken and not is_branch:
                raise IngestFormatError(
                    f"record {index}: branch_taken set on a non-branch "
                    f"instruction in {what}"
                )
            loads = tuple(a for a in (src0, src1, src2, src3) if a)
            stores = tuple(a for a in (dst0, dst1) if a)
            yield Instr(index, ip, loads, stores, is_branch, taken)
            index += 1
    if pending:
        raise IngestFormatError(
            f"{what} is truncated: {len(pending)} trailing byte(s) after "
            f"record {index - 1} (records are exactly {record_size} bytes)"
        )
    if index == 0:
        raise IngestFormatError(f"{what} contains no records")


def _parse_int(text: str, what: str, line: int) -> int:
    try:
        value = int(text.strip(), 0)
    except ValueError:
        raise IngestFormatError(
            f"line {line}: {what} {text.strip()!r} is not a decimal or "
            "0x-hex integer"
        ) from None
    if value < 0:
        raise IngestFormatError(f"line {line}: {what} must be non-negative")
    return value


def iter_csv(handle: BinaryIO, *, what: str = "<stream>") -> Iterator[Instr]:
    """Decode the ``pc,address[,is_write[,icount]]`` fallback format.

    Each data line becomes one single-access instruction.  Without an
    explicit ``icount`` column, icount is the access index.  With one,
    monotonicity is enforced: the first decreasing line is rejected by
    index so the timing model never sees time running backwards.
    """
    index = 0
    last_icount = 0
    saw_data = False
    for line_number, raw in enumerate(handle, start=1):
        try:
            text = raw.decode("utf-8")
        except UnicodeDecodeError:
            raise IngestFormatError(
                f"line {line_number}: {what} is not UTF-8 text "
                "(is this really a CSV trace?)"
            ) from None
        text = text.strip()
        if not text or text.startswith("#"):
            continue
        if not saw_data and text.lower().startswith("pc"):
            continue  # optional header line
        parts = text.split(",")
        if not 2 <= len(parts) <= 4:
            raise IngestFormatError(
                f"line {line_number}: expected pc,address[,is_write"
                f"[,icount]], got {len(parts)} field(s) in {what}"
            )
        pc = _parse_int(parts[0], "pc", line_number)
        address = _parse_int(parts[1], "address", line_number)
        if address == 0:
            raise IngestFormatError(
                f"line {line_number}: address 0 is reserved (a null "
                "access marks an unused slot)"
            )
        is_write = False
        if len(parts) >= 3:
            flag = _parse_int(parts[2], "is_write", line_number)
            if flag not in (0, 1):
                raise IngestFormatError(
                    f"line {line_number}: is_write must be 0 or 1, "
                    f"got {flag}"
                )
            is_write = bool(flag)
        if len(parts) == 4:
            icount = _parse_int(parts[3], "icount", line_number)
            if icount < last_icount:
                raise IngestFormatError(
                    f"line {line_number} (event {index}): icount "
                    f"decreases ({icount} < {last_icount}); a "
                    "non-monotonic icount corrupts the MLP timing model"
                )
        else:
            icount = index
        last_icount = icount
        saw_data = True
        yield Instr(
            icount, pc,
            loads=() if is_write else (address,),
            stores=(address,) if is_write else (),
        )
        index += 1
    if not saw_data:
        raise IngestFormatError(f"{what} contains no accesses")


def decode(path: str | Path, fmt: str | None = None) -> Iterator[Instr]:
    """Stream the instructions of an external trace file.

    ``fmt`` overrides :func:`detect_format`.  The returned iterator
    owns the file handle and closes it on exhaustion.
    """
    path = Path(path)
    if fmt is None:
        fmt = detect_format(path)
    if fmt not in FORMATS:
        raise IngestFormatError(
            f"unknown trace format {fmt!r}; known: {', '.join(FORMATS)}"
        )

    def _generate() -> Iterator[Instr]:
        with open_stream(path) as handle:
            if fmt == "champsim":
                yield from iter_champsim(handle, what=str(path))
            else:
                yield from iter_csv(handle, what=str(path))

    return _generate()


# -- encoders (tooling + round-trip tests) ---------------------------------


def pack_champsim(instr: Instr) -> bytes:
    """Encode one instruction as a 64-byte ChampSim record.

    Unused memory slots encode as 0, matching the decoder's "nonzero
    means used" convention; an instruction may carry at most 4 loads
    and 2 stores (the record's slot count).
    """
    if len(instr.loads) > 4 or len(instr.stores) > 2:
        raise IngestFormatError(
            f"cannot encode {len(instr.loads)} load(s) / "
            f"{len(instr.stores)} store(s) in one ChampSim record "
            "(limits: 4 loads, 2 stores)"
        )
    if any(a == 0 for a in (*instr.loads, *instr.stores)):
        raise IngestFormatError(
            "address 0 is not encodable (zero marks an unused slot)"
        )
    loads = tuple(instr.loads) + (0,) * (4 - len(instr.loads))
    stores = tuple(instr.stores) + (0,) * (2 - len(instr.stores))
    return _CHAMPSIM_RECORD.pack(
        instr.pc, int(instr.is_branch), int(instr.taken),
        0, 0, 0, 0, 0, 0, *stores, *loads,
    )


def pack_csv(instrs: Iterable[Instr], *, explicit_icount: bool = False) -> str:
    """Encode single-access instructions as CSV text (tests, tooling)."""
    lines = ["pc,address,is_write" + (",icount" if explicit_icount else "")]
    for instr in instrs:
        if instr.accesses != 1:
            raise IngestFormatError(
                "CSV encodes exactly one access per line; got an "
                f"instruction with {instr.accesses}"
            )
        address = instr.loads[0] if instr.loads else instr.stores[0]
        row = f"{instr.pc:#x},{address:#x},{int(bool(instr.stores))}"
        if explicit_icount:
            row += f",{instr.icount}"
        lines.append(row)
    return "\n".join(lines) + "\n"
