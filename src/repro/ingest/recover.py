"""Heuristic BLOCK_BEGIN/BLOCK_END recovery from PC back-edges.

External traces carry no LLVM loop markers, but the CBWS prefetcher is
built around them.  This pass recovers per-iteration block markers from
the one loop signal any instruction trace does have: **back-edges** — a
taken branch whose target does not advance the PC.  Each distinct
``(branch_pc, target_pc)`` back-edge is one static loop; the span
``[target_pc, branch_pc]`` is its body; every traversal of the edge is
one completed iteration.

The recovered markers mirror the synthetic annotation pass exactly:
one balanced, non-nested ``BLOCK_BEGIN(id)`` / ``BLOCK_END(id)`` pair
per loop iteration, with a stable block id per back-edge — so a
recovered trace passes :meth:`repro.trace.stream.Trace.validate` and
drives CBWS exactly like an IR-annotated one.

The pass is a single streaming scan in bounded memory.  Loop state
lives in a **decayed back-edge table**: a capacity-bounded map from
``(branch_pc, target_pc)`` to a hotness counter that halves every
``decay_interval`` instructions, so stale edges from earlier program
phases age out instead of pinning the table.  Marking is conservative:
an edge must be traversed ``min_iterations`` times before its head
starts opening blocks, which costs the first iterations of a loop's
first visit but never invents a loop out of a single backwards jump.

Recovery is heuristic, so its quality is *observable*: every run fills
a :class:`RecoveryStats` with marker coverage (fraction of accesses
inside recovered blocks), block counts, and a block-size histogram —
``repro ingest --report`` prints it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.common.errors import ConfigError, IngestFormatError
from repro.ingest.formats import Instr
from repro.trace.events import BlockBegin, BlockEnd, MemoryAccess, TraceEvent


@dataclass(frozen=True)
class RecoveryConfig:
    """Knobs of the back-edge recovery pass.

    Attributes:
        table_entries: back-edge table capacity.  When full, the
            coldest edge (smallest counter, oldest traversal) is
            evicted; an evicted edge re-entering later gets a fresh
            block id.
        min_iterations: traversals of an edge before its head starts
            opening blocks.  1 marks from the second iteration on;
            the default 2 additionally survives one stray backwards
            jump without minting a block.
        decay_interval: instructions between halvings of every
            hotness counter (the decay that lets dead loops age out).
        infer_backedges: treat *any* non-advancing PC transition as a
            back-edge instead of requiring an explicit taken-branch
            record.  This is the CSV fallback mode, where the input
            has no branch information at all.
    """

    table_entries: int = 4096
    min_iterations: int = 2
    decay_interval: int = 1 << 17
    infer_backedges: bool = False

    def __post_init__(self) -> None:
        if self.table_entries <= 0:
            raise ConfigError("recovery: table_entries must be positive")
        if self.min_iterations <= 0:
            raise ConfigError("recovery: min_iterations must be positive")
        if self.decay_interval <= 0:
            raise ConfigError("recovery: decay_interval must be positive")


class _Edge:
    """One resident back-edge: identity, hotness, and its block id."""

    __slots__ = ("branch_pc", "target_pc", "block_id", "count", "last_seen")

    def __init__(self, branch_pc: int, target_pc: int, block_id: int) -> None:
        self.branch_pc = branch_pc
        self.target_pc = target_pc
        self.block_id = block_id
        self.count = 0
        self.last_seen = 0


class BackEdgeTable:
    """Bounded, decayed map of observed back-edges.

    Determinism matters more than cleverness here: eviction picks the
    minimum ``(count, last_seen, block_id)`` tuple and decay halves
    every counter at fixed instruction boundaries, so two ingestions of
    the same trace always assign identical block ids — the property the
    re-ingestion digest-stability test pins.
    """

    def __init__(self, config: RecoveryConfig) -> None:
        self._config = config
        self._edges: dict[tuple[int, int], _Edge] = {}
        self._heads: dict[int, list[_Edge]] = {}
        self._next_block_id = 1
        self._decay_epoch = 0
        self.edges_observed = 0
        self.edges_evicted = 0

    def __len__(self) -> int:
        return len(self._edges)

    def observe(self, branch_pc: int, target_pc: int, icount: int) -> _Edge:
        """Record one traversal of a back-edge, creating it if new."""
        key = (branch_pc, target_pc)
        edge = self._edges.get(key)
        if edge is None:
            if len(self._edges) >= self._config.table_entries:
                self._evict_coldest()
            edge = _Edge(branch_pc, target_pc, self._next_block_id)
            self._next_block_id += 1
            self._edges[key] = edge
            self._heads.setdefault(target_pc, []).append(edge)
            self.edges_observed += 1
        edge.count += 1
        edge.last_seen = icount
        return edge

    def hottest_at_head(self, pc: int) -> _Edge | None:
        """The hottest marking-eligible edge whose loop head is ``pc``."""
        best: _Edge | None = None
        for edge in self._heads.get(pc, ()):
            if edge.count < self._config.min_iterations:
                continue
            if best is None or (edge.count, -edge.block_id) > (
                    best.count, -best.block_id):
                best = edge
        return best

    def maybe_decay(self, icount: int) -> None:
        """Halve every counter when ``icount`` crosses a decay boundary."""
        epoch = icount // self._config.decay_interval
        if epoch == self._decay_epoch:
            return
        halvings = epoch - self._decay_epoch
        self._decay_epoch = epoch
        dead = []
        for key, edge in self._edges.items():
            edge.count >>= halvings
            if edge.count == 0:
                dead.append(key)
        for key in dead:
            self._drop(key)

    def _drop(self, key: tuple[int, int]) -> None:
        edge = self._edges.pop(key)
        peers = self._heads[edge.target_pc]
        peers.remove(edge)
        if not peers:
            del self._heads[edge.target_pc]

    def _evict_coldest(self) -> None:
        key = min(
            self._edges,
            key=lambda k: (self._edges[k].count, self._edges[k].last_seen,
                           self._edges[k].block_id),
        )
        self._drop(key)
        self.edges_evicted += 1


@dataclass
class RecoveryStats:
    """Observable quality of one recovery pass (``--report``).

    ``coverage`` is the headline number: the fraction of memory
    accesses that landed inside recovered blocks.  On a trace whose
    loops dominate, low coverage means the heuristic missed them.
    """

    records: int = 0
    instructions: int = 0
    accesses: int = 0
    accesses_in_blocks: int = 0
    block_instances: int = 0
    block_ids: int = 0
    back_edges_taken: int = 0
    edges_observed: int = 0
    edges_evicted: int = 0
    #: Histogram of accesses-per-block-instance, keyed by the power-of-2
    #: bucket floor (0, 1, 2, 4, 8, ...).
    size_histogram: dict[int, int] = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        """Fraction of memory accesses inside recovered blocks."""
        if self.accesses == 0:
            return 0.0
        return self.accesses_in_blocks / self.accesses

    def record_instance(self, accesses: int) -> None:
        """Fold one completed block instance into the histogram."""
        self.block_instances += 1
        bucket = 0
        if accesses > 0:
            bucket = 1 << (accesses.bit_length() - 1)
        self.size_histogram[bucket] = self.size_histogram.get(bucket, 0) + 1

    def render(self) -> str:
        """The ``--report`` text: coverage first, then the shape."""
        lines = [
            "marker recovery report",
            f"  records:            {self.records}",
            f"  instructions:       {self.instructions}",
            f"  memory accesses:    {self.accesses}",
            f"  in-block accesses:  {self.accesses_in_blocks} "
            f"({self.coverage:.1%} coverage)",
            f"  block instances:    {self.block_instances} "
            f"({self.block_ids} static block(s))",
            f"  back-edges taken:   {self.back_edges_taken} "
            f"({self.edges_observed} distinct, "
            f"{self.edges_evicted} evicted)",
        ]
        if self.size_histogram:
            lines.append("  accesses per block instance:")
            for bucket in sorted(self.size_histogram):
                count = self.size_histogram[bucket]
                label = f"{bucket}" if bucket else "0"
                lines.append(f"    >= {label:>6}: {count}")
        return "\n".join(lines)


def recover_blocks(
    instrs: Iterable[Instr],
    config: RecoveryConfig | None = None,
    stats: RecoveryStats | None = None,
) -> Iterator[TraceEvent]:
    """Stream trace events with recovered block markers.

    Yields :class:`MemoryAccess` events for every load/store in the
    input plus balanced, non-nested ``BLOCK_BEGIN`` / ``BLOCK_END``
    pairs around recovered loop iterations.  ``stats`` (if given) is
    filled in as a side effect and is complete once the iterator is
    exhausted.

    The state machine, per instruction:

    1. the previous instruction's taken back-edge (if any) is recorded
       in the table and closes the open block — an iteration boundary;
    2. leaving the open block's PC span ``[head, tail]`` closes it —
       the loop exited some other way;
    3. with no block open, arriving at the head PC of a
       marking-eligible edge opens a new iteration;
    4. the instruction's loads and stores are emitted (so a loop head's
       own accesses land inside its block).

    Input icounts must be monotonically non-decreasing; the first
    offending record is rejected by index.
    """
    config = config or RecoveryConfig()
    stats = stats if stats is not None else RecoveryStats()
    table = BackEdgeTable(config)

    prev: Instr | None = None
    open_edge: _Edge | None = None
    open_accesses = 0
    block_ids_emitted: set[int] = set()
    last_icount = 0

    for instr in instrs:
        if instr.icount < last_icount:
            raise IngestFormatError(
                f"record {stats.records}: icount decreases "
                f"({instr.icount} < {last_icount}); a non-monotonic "
                "icount corrupts the MLP timing model"
            )
        last_icount = instr.icount
        stats.records += 1
        table.maybe_decay(instr.icount)

        if prev is not None:
            if config.infer_backedges:
                is_back = instr.pc <= prev.pc
            else:
                is_back = prev.is_branch and prev.taken and instr.pc <= prev.pc
            if is_back:
                stats.back_edges_taken += 1
                table.observe(prev.pc, instr.pc, prev.icount)
                if open_edge is not None:
                    # Any back-edge is an iteration boundary: either our
                    # own loop wrapping around, or an inner/sibling loop
                    # taking over (blocks never nest).
                    yield BlockEnd(prev.icount, open_edge.block_id)
                    stats.record_instance(open_accesses)
                    open_edge = None

        if open_edge is not None and not (
                open_edge.target_pc <= instr.pc <= open_edge.branch_pc):
            # Control left the loop body without its back-edge (break,
            # call to distant code): close at the last in-span point.
            yield BlockEnd(prev.icount if prev is not None else instr.icount,
                           open_edge.block_id)
            stats.record_instance(open_accesses)
            open_edge = None

        if open_edge is None:
            candidate = table.hottest_at_head(instr.pc)
            if candidate is not None:
                yield BlockBegin(instr.icount, candidate.block_id)
                block_ids_emitted.add(candidate.block_id)
                open_edge = candidate
                open_accesses = 0

        for address in instr.loads:
            yield MemoryAccess(instr.icount, instr.pc, address, False)
        for address in instr.stores:
            yield MemoryAccess(instr.icount, instr.pc, address, True)
        emitted = instr.accesses
        stats.accesses += emitted
        if open_edge is not None:
            stats.accesses_in_blocks += emitted
            open_accesses += emitted
        prev = instr

    if open_edge is not None:
        yield BlockEnd(last_icount, open_edge.block_id)
        stats.record_instance(open_accesses)

    stats.instructions = last_icount + 1 if stats.records else 0
    stats.block_ids = len(block_ids_emitted)
    stats.edges_observed = table.edges_observed
    stats.edges_evicted = table.edges_evicted
