"""The probe registry: named phase timers and counters.

State is process-global and guarded by a lock only on the slow paths
(registration of a new name); recording into an existing stat is plain
attribute arithmetic.  Worker processes of the execution pool start with
probes disabled — grid-level observability aggregates in the parent via
:mod:`repro.exec.telemetry`, and per-cell numbers come from
``repro bench`` timing simulations in-process.
"""

from __future__ import annotations

import functools
import threading
import time
from typing import Any, Callable, Iterator
from contextlib import contextmanager

#: Master switch.  Call sites may read this directly once per bulk
#: operation (e.g. the engine reads it once per ``run``), so flipping it
#: mid-operation affects only subsequent operations.
_ENABLED = False

_LOCK = threading.Lock()


class PhaseStat:
    """Aggregate of one named phase: count, total/min/max seconds."""

    __slots__ = ("name", "count", "total_seconds", "min_seconds",
                 "max_seconds")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_seconds = 0.0
        self.min_seconds = float("inf")
        self.max_seconds = 0.0

    def record(self, seconds: float) -> None:
        """Fold one completed span into the aggregate."""
        self.count += 1
        self.total_seconds += seconds
        if seconds < self.min_seconds:
            self.min_seconds = seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view (used by ``snapshot`` and the bench export)."""
        return {
            "count": self.count,
            "total_seconds": self.total_seconds,
            "min_seconds": self.min_seconds if self.count else 0.0,
            "max_seconds": self.max_seconds,
        }


class ValueStat:
    """Aggregate of one named value distribution (unitless samples)."""

    __slots__ = ("name", "count", "total", "min_value", "max_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min_value = float("inf")
        self.max_value = 0.0

    def record(self, value: float) -> None:
        """Fold one sample into the aggregate."""
        self.count += 1
        self.total += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view (used by ``snapshot`` and the bench export)."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.total / self.count if self.count else 0.0,
            "min": self.min_value if self.count else 0.0,
            "max": self.max_value,
        }


_PHASES: dict[str, PhaseStat] = {}
_COUNTERS: dict[str, float] = {}
_VALUES: dict[str, ValueStat] = {}
_GAUGES: dict[str, float] = {}


def enable() -> None:
    """Turn probes on (``repro run --profile`` / ``repro bench``)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn probes off; recorded data is kept until :func:`reset`."""
    global _ENABLED
    _ENABLED = False


def enabled() -> bool:
    """Whether probes are currently recording.

    Hot loops should hoist this to a local before the loop rather than
    calling :func:`add` per iteration.
    """
    return _ENABLED


def reset() -> None:
    """Drop all recorded phases and counters (keeps the enabled flag)."""
    with _LOCK:
        _PHASES.clear()
        _COUNTERS.clear()
        _VALUES.clear()
        _GAUGES.clear()


def add(name: str, value: float = 1) -> None:
    """Add ``value`` to counter ``name`` (no-op while disabled)."""
    if not _ENABLED:
        return
    try:
        _COUNTERS[name] += value
    except KeyError:
        with _LOCK:
            _COUNTERS[name] = _COUNTERS.get(name, 0) + value


def record_seconds(name: str, seconds: float) -> None:
    """Record one completed span for phase ``name`` (no-op while disabled).

    For call sites that already measured a duration themselves (the
    engine times its run with a single pair of clock reads) and only
    need to publish it.
    """
    if not _ENABLED:
        return
    stat = _PHASES.get(name)
    if stat is None:
        with _LOCK:
            stat = _PHASES.setdefault(name, PhaseStat(name))
    stat.record(seconds)


def observe(name: str, value: float) -> None:
    """Record one sample of value distribution ``name`` (no-op while disabled).

    For unitless gauges sampled over time — e.g. prefetch-queue occupancy
    at each enqueue — where min/mean/max matter, not a running sum.
    """
    if not _ENABLED:
        return
    stat = _VALUES.get(name)
    if stat is None:
        with _LOCK:
            stat = _VALUES.setdefault(name, ValueStat(name))
    stat.record(value)


def set_gauge(name: str, value: float) -> None:
    """Set the current value of gauge ``name`` (no-op while disabled).

    Gauges are point-in-time levels (queue depth, in-flight jobs) as
    opposed to monotone counters; each call overwrites the last value.
    """
    if not _ENABLED:
        return
    _GAUGES[name] = float(value)


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Context manager timing one span of phase ``name``.

    Disabled probes skip the clock reads entirely; the only residual
    cost is the generator frame.
    """
    if not _ENABLED:
        yield
        return
    started = time.perf_counter()
    try:
        yield
    finally:
        record_seconds(name, time.perf_counter() - started)


def timed(name: str) -> Callable[[Callable], Callable]:
    """Decorator form of :func:`phase` for whole-function spans."""

    def decorate(function: Callable) -> Callable:
        @functools.wraps(function)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _ENABLED:
                return function(*args, **kwargs)
            started = time.perf_counter()
            try:
                return function(*args, **kwargs)
            finally:
                record_seconds(name, time.perf_counter() - started)

        return wrapper

    return decorate


def snapshot() -> dict[str, Any]:
    """JSON-ready dump of everything recorded so far.

    Layout::

        {"phases": {name: {count, total_seconds, min_seconds,
                           max_seconds}},
         "counters": {name: value},
         "values": {name: {count, total, mean, min, max}},
         "gauges": {name: value}}
    """
    with _LOCK:
        return {
            "phases": {name: stat.to_dict()
                       for name, stat in sorted(_PHASES.items())},
            "counters": dict(sorted(_COUNTERS.items())),
            "values": {name: stat.to_dict()
                       for name, stat in sorted(_VALUES.items())},
            "gauges": dict(sorted(_GAUGES.items())),
        }
