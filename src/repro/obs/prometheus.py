"""Prometheus text-format rendering of the probe registry.

``repro serve`` exposes a ``/metrics`` endpoint; this module turns an
:func:`repro.obs.snapshot` dict (plus any caller-supplied counters and
gauges, e.g. the serve broker's admission statistics) into the
`Prometheus text exposition format`_ using only the stdlib.

Mapping rules:

* counters   -> ``<prefix>_<name>_total`` (TYPE counter)
* gauges     -> ``<prefix>_<name>`` (TYPE gauge)
* phases     -> ``<prefix>_<name>_seconds_total`` (counter) and
  ``<prefix>_<name>_count`` (counter)
* values     -> ``<prefix>_<name>_{min,mean,max}`` (gauges)

Dots and other non-identifier characters in probe names become
underscores, so ``exec.cache_hits`` exports as
``repro_exec_cache_hits_total``.

.. _Prometheus text exposition format:
   https://prometheus.io/docs/instrumenting/exposition_formats/
"""

from __future__ import annotations

import math
import re
from typing import Any, Iterable, Mapping

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def metric_name(name: str, prefix: str = "repro") -> str:
    """Sanitize one probe name into a legal Prometheus metric name."""
    cleaned = _NAME_RE.sub("_", name.strip())
    if cleaned and cleaned[0].isdigit():
        cleaned = f"_{cleaned}"
    return f"{prefix}_{cleaned}" if prefix else cleaned


def _format_value(value: float) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def _emit(lines: list[str], name: str, kind: str, value: float,
          help_text: str | None = None) -> None:
    if help_text:
        lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} {kind}")
    lines.append(f"{name} {_format_value(value)}")


def render_prometheus(
    snapshot: Mapping[str, Any] | None = None,
    *,
    counters: Mapping[str, float] | None = None,
    gauges: Mapping[str, float] | None = None,
    prefix: str = "repro",
) -> str:
    """Render one scrape of the probe registry as Prometheus text.

    Args:
        snapshot: an :func:`repro.obs.snapshot` dict; ``None`` means
            "no probe data" (only the extra counters/gauges export).
        counters / gauges: extra metrics merged in under the same
            prefix, e.g. the serve broker's request statistics.
        prefix: metric-name prefix (no trailing underscore).
    """
    lines: list[str] = []
    snapshot = snapshot or {}

    merged_counters: dict[str, float] = dict(snapshot.get("counters", {}))
    for name, value in (counters or {}).items():
        merged_counters[name] = merged_counters.get(name, 0) + value
    for name in sorted(merged_counters):
        _emit(lines, f"{metric_name(name, prefix)}_total", "counter",
              merged_counters[name])

    merged_gauges: dict[str, float] = dict(snapshot.get("gauges", {}))
    merged_gauges.update(gauges or {})
    for name in sorted(merged_gauges):
        _emit(lines, metric_name(name, prefix), "gauge",
              merged_gauges[name])

    for name in sorted(snapshot.get("phases", {})):
        stat = snapshot["phases"][name]
        base = metric_name(name, prefix)
        _emit(lines, f"{base}_seconds_total", "counter",
              stat.get("total_seconds", 0.0))
        _emit(lines, f"{base}_count", "counter", stat.get("count", 0))

    for name in sorted(snapshot.get("values", {})):
        stat = snapshot["values"][name]
        base = metric_name(name, prefix)
        _emit(lines, f"{base}_min", "gauge", stat.get("min", 0.0))
        _emit(lines, f"{base}_mean", "gauge", stat.get("mean", 0.0))
        _emit(lines, f"{base}_max", "gauge", stat.get("max", 0.0))

    return "\n".join(lines) + "\n"


def sum_metrics(scrapes: "Iterable[Mapping[str, float]]") -> dict[str, float]:
    """Sum parsed scrapes metric-wise.

    The cluster router aggregates its shards' ``/metrics`` this way:
    every shard exports the same single-sample metric names, so a
    plain per-name sum is the correct roll-up for counters and for the
    additive gauges (pending jobs); it is approximate for min/mean/max
    value gauges, which is acceptable for a smoke-level dashboard.
    """
    summed: dict[str, float] = {}
    for scrape in scrapes:
        for name, value in scrape.items():
            summed[name] = summed.get(name, 0.0) + value
    return summed


def render_samples(metrics: Mapping[str, float]) -> str:
    """Render pre-aggregated ``{metric: value}`` samples as exposition text.

    Samples only — no TYPE/HELP comments, since post-aggregation the
    per-metric kind is no longer known.  Prometheus treats them as
    untyped, which scrapes fine.
    """
    lines = [f"{name} {_format_value(metrics[name])}"
             for name in sorted(metrics)]
    return "\n".join(lines) + "\n" if lines else ""


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse exposition text back into ``{metric: value}``.

    The inverse of :func:`render_prometheus` for *this module's* output
    (single samples, no labels); the load generator uses it to diff a
    server's ``/metrics`` before and after a run.
    """
    metrics: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.partition(" ")
        try:
            metrics[name] = float(value)
        except ValueError:
            continue
    return metrics
