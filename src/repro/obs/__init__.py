"""Performance observability: phase timers and counters for the hot path.

``repro.obs`` is the process-wide probe registry behind
``repro run --profile`` and ``repro bench``.  Instrumented call sites —
the simulation engine, trace build/load, and the execution scheduler —
report *phases* (named wall-clock spans) and *counters* (named integer
accumulators) here, and the CLI renders a profile report at the end of
the command.

Design constraints (in priority order):

1. **Near-zero overhead when disabled.**  Probes are off by default;
   hot loops must guard instrumentation behind a single
   :func:`enabled` check hoisted out of the loop, and :func:`add` /
   :func:`phase` themselves return immediately when disabled.
2. **No clock reads unless enabled.**  ``perf_counter`` calls only
   happen inside an enabled phase.
3. **Deterministic simulation.**  Probes observe, never steer: nothing
   in this package feeds back into simulated behaviour, so enabling
   profiling cannot change a :class:`~repro.sim.results.SimResult`.

API surface::

    with obs.phase("trace.build"):        # context manager
        ...
    @obs.timed("exec.grid")               # decorator
    def execute(...): ...
    obs.add("sim.events", len(trace))     # counter
    obs.enable(); obs.disable(); obs.reset()
    obs.snapshot()                        # dict for JSON export
    obs.render()                          # human-readable report
"""

from repro.obs.probe import (
    PhaseStat,
    ValueStat,
    add,
    disable,
    enable,
    enabled,
    observe,
    phase,
    record_seconds,
    reset,
    set_gauge,
    snapshot,
    timed,
)
from repro.obs.prometheus import parse_prometheus, render_prometheus
from repro.obs.report import render

__all__ = [
    "PhaseStat",
    "ValueStat",
    "add",
    "disable",
    "enable",
    "enabled",
    "observe",
    "parse_prometheus",
    "phase",
    "record_seconds",
    "render",
    "render_prometheus",
    "reset",
    "set_gauge",
    "snapshot",
    "timed",
]
