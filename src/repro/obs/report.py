"""Human-readable rendering of the probe registry.

``repro run --profile`` prints this after the result table; the layout
mirrors ``repro exec-stats`` so the two reports read as one family.
"""

from __future__ import annotations

from typing import Any

from repro.obs import probe

#: Derived rates worth printing when both operands were recorded:
#: (label, counter numerator, phase denominator).
_RATES = (
    ("sim events/sec", "sim.events", "sim.run"),
    ("trace events/sec built", "trace.build.events", "trace.build"),
)


def render(snapshot: dict[str, Any] | None = None) -> str:
    """Format a probe snapshot (default: the live registry) as text."""
    data = snapshot if snapshot is not None else probe.snapshot()
    phases: dict[str, dict[str, Any]] = data.get("phases", {})
    counters: dict[str, float] = data.get("counters", {})
    values: dict[str, dict[str, Any]] = data.get("values", {})
    lines = ["profile (repro.obs)", "-" * 56]
    if not phases and not counters and not values:
        lines.append("  nothing recorded (probes disabled?)")
        return "\n".join(lines)

    if phases:
        lines.append(f"  {'phase':<28} {'count':>6} {'total':>9} "
                     f"{'mean':>9} {'max':>9}")
        for name, stat in phases.items():
            count = stat["count"]
            total = stat["total_seconds"]
            mean = total / count if count else 0.0
            lines.append(
                f"  {name:<28} {count:>6} {total:>8.3f}s "
                f"{mean:>8.4f}s {stat['max_seconds']:>8.4f}s"
            )
    if values:
        lines.append("")
        lines.append(f"  {'value':<28} {'count':>6} {'mean':>9} "
                     f"{'min':>9} {'max':>9}")
        for name, stat in values.items():
            lines.append(
                f"  {name:<28} {stat['count']:>6} {stat['mean']:>9.2f} "
                f"{stat['min']:>9.0f} {stat['max']:>9.0f}"
            )
    if counters:
        lines.append("")
        lines.append(f"  {'counter':<40} {'value':>12}")
        for name, value in counters.items():
            rendered = f"{value:.0f}" if float(value).is_integer() \
                else f"{value:.3f}"
            lines.append(f"  {name:<40} {rendered:>12}")

    rates = []
    for label, counter_name, phase_name in _RATES:
        count = counters.get(counter_name)
        span = phases.get(phase_name, {}).get("total_seconds")
        if count and span:
            rates.append(f"  {label:<40} {count / span:>12.0f}")
    if rates:
        lines.append("")
        lines.extend(rates)
    return "\n".join(lines)
