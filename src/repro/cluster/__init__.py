"""Supervised, self-healing multi-shard serve cluster.

Layout::

    ring        consistent-hash ring over content-addressed sim keys
    supervisor  spawns/probes/restarts N broker shard subprocesses
    router      asyncio HTTP front end: cache short-circuit + forwarding

One ``repro cluster`` process runs the supervisor and the router in a
single event loop.  The supervisor owns N ``repro serve`` subprocesses
(the *shards*, each a full broker with its own write-ahead job journal)
sharing one on-disk result cache; the router owns the public port and
forwards each request to the shard that owns its
:func:`~repro.exec.keys.sim_key` on the ring.  Same key → same shard,
so the per-broker single-flight registry deduplicates cluster-wide; the
router's shared-cache short-circuit means *any* shard's completed work
is served without touching any shard at all.

Failure handling is layered: the supervisor health-checks ``/readyz``
with exponential-backoff probes, SIGKILLs hung shards, restarts dead
ones with jittered backoff behind a per-shard crash-loop circuit
breaker; the shards recover journaled jobs on restart; and the client's
:class:`~repro.serve.client.RetryPolicy` rides out the window in
between.  All of it is exercised deterministically through the
``REPRO_FAULTS`` chaos sites (``serve.admit``, ``serve.job-finished``,
``journal.append``, ``cluster.forward``).
"""

from repro.cluster.ring import HashRing
from repro.cluster.router import Router
from repro.cluster.supervisor import (
    Shard,
    ShardState,
    Supervisor,
    ThreadedCluster,
    parse_chaos,
    run_cluster,
)

__all__ = [
    "HashRing",
    "Router",
    "Shard",
    "ShardState",
    "Supervisor",
    "ThreadedCluster",
    "parse_chaos",
    "run_cluster",
]
