"""The shard supervisor: spawn, probe, restart, drain.

Each shard is a full ``repro serve`` subprocess (its own broker, worker
pool, and write-ahead job journal) started with ``--port 0`` — the
kernel picks a free port, the shard announces it on its log, and the
supervisor reads it back.  All shards share one cache dir: the shared
result cache is what lets the router short-circuit completed work and
lets a restarted shard replay crashed jobs as cache hits.

Per-shard state machine::

    STARTING --(readyz ok)--> READY --(probe failures)--> UNHEALTHY
        |                       ^                             |
        |                       |                     (limit) SIGKILL
        +--(no port in time)----+---------+                   |
                                          |                   v
    FAILED <--(crash-loop breaker)-- BACKOFF <--(process exit)+
                                          |
                                          +--(jittered delay)--> spawn

Health probes hit ``/readyz`` with *exponential backoff* on failure —
a struggling shard is probed less often, not hammered.  A shard whose
probes keep failing (a hung event loop: the ``serve.admit:stall``
chaos) is SIGKILLed and restarted.  Restart delays are exponential in
the number of *consecutive fast failures* (death within ``min_uptime``)
with multiplicative jitter, and a per-shard crash-loop circuit breaker
stops restarting after ``crash_loop_limit`` consecutive fast failures —
one deterministically broken shard must not burn CPU forever while the
ring routes its keys into 503s the client can at least see.

Chaos: ``--chaos '<shard>:<faultspec>'`` (shard name or ``*``) sets
``REPRO_FAULTS`` in the matching shard's environment *on first spawn
only*, so an injected death is followed by a clean restart — exactly
the kill-shard drill the failover proof needs.
"""

from __future__ import annotations

import asyncio
import enum
import json
import os
import random
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.common.errors import ConfigError
from repro.exec.faults import parse_fault_plan

#: Marker line every shard prints once its port is bound.
_ANNOUNCE_MARKER = "listening on http://"


class ShardState(enum.Enum):
    """Lifecycle of one supervised shard."""

    STARTING = "starting"
    READY = "ready"
    UNHEALTHY = "unhealthy"
    BACKOFF = "backoff"
    FAILED = "failed"
    STOPPED = "stopped"


class Shard:
    """One supervised broker subprocess and its probe/restart state."""

    def __init__(self, name: str, log_path: Path) -> None:
        self.name = name
        self.log_path = log_path
        self.process: subprocess.Popen | None = None
        self.port: int | None = None
        self.state = ShardState.STARTING
        self.restarts = 0
        self.consecutive_fast_failures = 0
        self.probe_failures = 0
        self.started_at = 0.0
        self.backoff_until = 0.0
        self.next_probe_at = 0.0
        #: Bytes of the log already scanned for the announce line.
        self.log_offset = 0

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def describe(self) -> dict[str, Any]:
        return {
            "state": self.state.value,
            "port": self.port,
            "restarts": self.restarts,
            "probe_failures": self.probe_failures,
        }


def parse_chaos(specs: Sequence[str],
                shard_names: Sequence[str]) -> dict[str, str]:
    """Expand ``<shard>:<faultspec>`` clauses into per-shard fault plans.

    The shard part is a name (``s0``) or ``*`` for every shard; the
    fault part is a full ``REPRO_FAULTS`` clause (it may itself contain
    colons, so only the *first* colon splits).  Multiple clauses for
    one shard join into a comma-separated plan.  Plans are validated at
    parse time so a typo fails the ``repro cluster`` invocation, not a
    shard three restarts later.
    """
    plans: dict[str, str] = {}
    for spec in specs:
        target, separator, plan = spec.partition(":")
        if not separator or not target or not plan:
            raise ConfigError(
                f"malformed chaos spec {spec!r}; want <shard>:<faultspec>")
        parse_fault_plan(plan)  # validate; raises ExecError on nonsense
        targets = list(shard_names) if target == "*" else [target]
        for name in targets:
            if name not in shard_names:
                raise ConfigError(
                    f"chaos spec {spec!r} names unknown shard {name!r}; "
                    f"shards: {', '.join(shard_names)}")
            plans[name] = f"{plans[name]},{plan}" if name in plans else plan
    return plans


class Supervisor:
    """Owns N shard subprocesses; probes, restarts, and drains them."""

    def __init__(
        self,
        *,
        shards: int,
        cache_dir: str | Path,
        host: str = "127.0.0.1",
        jobs: int = 1,
        max_pending: int = 64,
        chaos: Sequence[str] = (),
        probe_interval: float = 0.5,
        probe_timeout: float = 2.0,
        probe_failures_limit: int = 3,
        spawn_timeout: float = 30.0,
        min_uptime: float = 5.0,
        backoff_base: float = 0.5,
        backoff_cap: float = 10.0,
        crash_loop_limit: int = 5,
        announce=print,
    ) -> None:
        if shards < 1:
            raise ConfigError("a cluster needs at least one shard")
        if cache_dir is None:
            raise ConfigError(
                "a cluster needs a shared --cache-dir (the shared result "
                "cache is what makes any shard able to serve any cell)")
        self.host = host
        self.cache_dir = Path(cache_dir)
        self.jobs = jobs
        self.max_pending = max_pending
        self.probe_interval = probe_interval
        self.probe_timeout = probe_timeout
        self.probe_failures_limit = probe_failures_limit
        self.spawn_timeout = spawn_timeout
        self.min_uptime = min_uptime
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.crash_loop_limit = crash_loop_limit
        self.announce = announce

        log_dir = self.cache_dir / "serve"
        log_dir.mkdir(parents=True, exist_ok=True)
        names = [f"s{index}" for index in range(shards)]
        self.shards = [Shard(name, log_dir / f"{name}.log")
                       for name in names]
        self.chaos = parse_chaos(chaos, names)
        self._stopping = False
        self.counters: dict[str, int] = {
            "cluster.spawns": 0,
            "cluster.restarts": 0,
            "cluster.kills": 0,
            "cluster.probe_failures": 0,
            "cluster.breaker_trips": 0,
        }

    # -- spawn / exit --------------------------------------------------------

    def spawn_all(self) -> None:
        """First spawn of every shard (chaos env applies here only)."""
        for shard in self.shards:
            self._spawn(shard, first=True)

    def _spawn(self, shard: Shard, first: bool) -> None:
        env = {name: value for name, value in os.environ.items()
               if name != "REPRO_FAULTS"}
        if first and shard.name in self.chaos:
            env["REPRO_FAULTS"] = self.chaos[shard.name]
        command = [
            sys.executable, "-u", "-m", "repro", "serve",
            "--host", self.host, "--port", "0",
            "--jobs", str(self.jobs),
            "--max-pending", str(self.max_pending),
            "--cache-dir", str(self.cache_dir),
            "--shard-name", shard.name,
        ]
        log = open(shard.log_path, "ab")
        shard.log_offset = shard.log_path.stat().st_size
        try:
            shard.process = subprocess.Popen(
                command, stdout=log, stderr=subprocess.STDOUT, env=env)
        finally:
            log.close()
        shard.port = None
        shard.state = ShardState.STARTING
        shard.probe_failures = 0
        shard.started_at = time.monotonic()
        shard.next_probe_at = 0.0
        self.counters["cluster.spawns"] += 1

    def _scan_for_port(self, shard: Shard) -> None:
        """Look for the shard's announce line past the spawn offset."""
        try:
            with open(shard.log_path, "rb") as handle:
                handle.seek(shard.log_offset)
                text = handle.read().decode("utf-8", errors="replace")
        except OSError:
            return
        for line in text.splitlines():
            if _ANNOUNCE_MARKER in line:
                address = line.split(_ANNOUNCE_MARKER, 1)[1].split()[0]
                try:
                    shard.port = int(address.rsplit(":", 1)[1])
                except ValueError:
                    continue
                return

    def _handle_exit(self, shard: Shard, now: float) -> None:
        code = shard.process.returncode if shard.process else None
        if self._stopping:
            shard.state = ShardState.STOPPED
            return
        uptime = now - shard.started_at
        fast = uptime < self.min_uptime
        shard.consecutive_fast_failures = (
            shard.consecutive_fast_failures + 1 if fast else 0)
        if shard.consecutive_fast_failures >= self.crash_loop_limit:
            shard.state = ShardState.FAILED
            self.counters["cluster.breaker_trips"] += 1
            self.announce(
                f"repro cluster: shard {shard.name} crash-looped "
                f"{shard.consecutive_fast_failures}x within "
                f"{self.min_uptime:.1f}s — circuit open, not restarting")
            return
        delay = min(self.backoff_cap,
                    self.backoff_base
                    * (2 ** min(shard.consecutive_fast_failures, 6)))
        delay *= random.uniform(0.75, 1.25)
        shard.state = ShardState.BACKOFF
        shard.backoff_until = now + delay
        shard.restarts += 1
        self.counters["cluster.restarts"] += 1
        self.announce(
            f"repro cluster: shard {shard.name} exited (code={code}, "
            f"uptime={uptime:.1f}s); restarting in {delay:.2f}s "
            f"(restart #{shard.restarts})")

    def _kill(self, shard: Shard, reason: str) -> None:
        self.counters["cluster.kills"] += 1
        self.announce(f"repro cluster: killing shard {shard.name}: {reason}")
        if shard.process is not None and shard.process.poll() is None:
            shard.process.kill()
            shard.process.wait()

    # -- probing -------------------------------------------------------------

    async def _probe(self, shard: Shard) -> bool:
        """One ``GET /readyz``; False on refusal, timeout, or non-200."""
        if shard.port is None:
            return False
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, shard.port),
                self.probe_timeout)
        except (OSError, asyncio.TimeoutError):
            return False
        try:
            writer.write(b"GET /readyz HTTP/1.1\r\nHost: cluster\r\n"
                         b"Connection: close\r\n\r\n")
            await writer.drain()
            status_line = await asyncio.wait_for(reader.readline(),
                                                 self.probe_timeout)
            return b" 200 " in status_line
        except (OSError, asyncio.TimeoutError):
            return False
        finally:
            writer.close()

    # -- the monitor loop ----------------------------------------------------

    async def monitor(self, tick: float = 0.05) -> None:
        """Run ticks until cancelled (the supervisor's main task)."""
        while not self._stopping:
            await self.tick_all()
            await asyncio.sleep(tick)

    async def tick_all(self) -> None:
        """One pass of the state machine over every shard."""
        now = time.monotonic()
        for shard in self.shards:
            await self._tick(shard, now)

    async def _tick(self, shard: Shard, now: float) -> None:
        if shard.state in (ShardState.FAILED, ShardState.STOPPED):
            return
        if shard.state == ShardState.BACKOFF:
            if now >= shard.backoff_until:
                self._spawn(shard, first=False)
            return
        if shard.process is not None and shard.process.poll() is not None:
            self._handle_exit(shard, now)
            return
        if shard.state == ShardState.STARTING:
            if shard.port is None:
                self._scan_for_port(shard)
            if shard.port is None:
                if now - shard.started_at > self.spawn_timeout:
                    self._kill(shard, "no port announced in time")
                return
        if now < shard.next_probe_at:
            return
        healthy = await self._probe(shard)
        if healthy:
            if shard.state is not ShardState.READY:
                self.announce(f"repro cluster: shard {shard.name} ready "
                              f"on port {shard.port}")
            shard.state = ShardState.READY
            shard.probe_failures = 0
            shard.next_probe_at = now + self.probe_interval
            if now - shard.started_at >= self.min_uptime:
                shard.consecutive_fast_failures = 0
            return
        shard.probe_failures += 1
        self.counters["cluster.probe_failures"] += 1
        if shard.state is ShardState.READY:
            shard.state = ShardState.UNHEALTHY
        # Exponential backoff between probes of a failing shard.
        shard.next_probe_at = now + self.probe_interval * (
            2 ** min(shard.probe_failures, 5))
        if (shard.state is ShardState.UNHEALTHY
                and shard.probe_failures >= self.probe_failures_limit):
            self._kill(shard, f"{shard.probe_failures} consecutive "
                              f"failed health probes (hung?)")

    # -- the router's view ---------------------------------------------------

    def endpoint(self, name: str) -> tuple[str, int] | None:
        """``(host, port)`` of a READY shard, else None (don't route)."""
        for shard in self.shards:
            if shard.name == name:
                if shard.state is ShardState.READY and shard.port:
                    return (self.host, shard.port)
                return None
        return None

    def shard_names(self) -> list[str]:
        return [shard.name for shard in self.shards]

    def healthy_count(self) -> int:
        return sum(1 for shard in self.shards
                   if shard.state is ShardState.READY)

    def describe(self) -> dict[str, Any]:
        return {shard.name: shard.describe() for shard in self.shards}

    def gauges(self) -> dict[str, float]:
        """Per-shard up/restart gauges for the aggregated ``/metrics``."""
        gauges: dict[str, float] = {
            "cluster.shards": float(len(self.shards)),
            "cluster.shards_healthy": float(self.healthy_count()),
        }
        for shard in self.shards:
            up = 1.0 if shard.state is ShardState.READY else 0.0
            gauges[f"cluster.shard_up_{shard.name}"] = up
            gauges[f"cluster.shard_restarts_{shard.name}"] = float(
                shard.restarts)
        return gauges

    # -- drain ---------------------------------------------------------------

    async def drain(self, timeout: float = 60.0) -> None:
        """SIGTERM every shard, await clean exits, SIGKILL stragglers."""
        self._stopping = True
        for shard in self.shards:
            if shard.alive:
                shard.process.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if not any(shard.alive for shard in self.shards):
                break
            await asyncio.sleep(0.1)
        for shard in self.shards:
            if shard.alive:
                self.announce(f"repro cluster: shard {shard.name} did not "
                              f"drain in {timeout:.0f}s; killing")
                shard.process.kill()
                shard.process.wait()
            shard.state = ShardState.STOPPED

    def write_stats(self, router_counters: Mapping[str, int] | None = None
                    ) -> Path:
        """Persist supervisor + router counters next to the cache."""
        document = {
            "counters": {**self.counters, **(router_counters or {})},
            "shards": self.describe(),
        }
        path = self.cache_dir / "cluster-stats.json"
        path.write_text(json.dumps(document, indent=2, sort_keys=True)
                        + "\n")
        return path


async def run_cluster(
    *,
    host: str = "127.0.0.1",
    port: int = 8400,
    announce=print,
    ready_event: "threading.Event | None" = None,
    stop_event: "asyncio.Event | None" = None,
    **supervisor_kwargs: Any,
) -> int:
    """Run supervisor + router until SIGTERM/SIGINT, then drain.

    The cluster-level twin of :func:`repro.serve.http.run_server`: same
    signal wiring, same announce contract (the ``listening on http://``
    line carries the bound router port), same clean-drain exit 0.
    """
    from repro.cluster.router import Router

    supervisor = Supervisor(host=host, announce=announce,
                            **supervisor_kwargs)
    supervisor.spawn_all()
    router = Router(supervisor, host=host, port=port,
                    cache_dir=supervisor.cache_dir)
    await router.start()
    monitor_task = asyncio.create_task(supervisor.monitor(),
                                       name="cluster-monitor")

    if stop_event is None:
        stop_event = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed: list[signal.Signals] = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop_event.set)
            installed.append(signum)
        except (NotImplementedError, RuntimeError):
            pass

    announce(f"repro cluster: listening on http://{host}:{router.port} "
             f"(shards={len(supervisor.shards)}, "
             f"workers/shard={supervisor.jobs})")
    if ready_event is not None:
        ready_event.set()
    try:
        await stop_event.wait()
        announce("repro cluster: draining (stopping shards)")
        router.begin_drain()
        monitor_task.cancel()
        try:
            await monitor_task
        except asyncio.CancelledError:
            pass
        await supervisor.drain()
        await router.stop()
        supervisor.write_stats(router.counters)
        announce("repro cluster: drained cleanly")
        return 0
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)


class ThreadedCluster:
    """The full cluster stack on a background thread (tests).

    Mirrors :class:`repro.serve.http.ThreadedServer`: enter the context,
    read ``.port`` for the router's bound port, exit for a graceful
    drain (exit code in ``.exit_code``).
    """

    def __init__(self, port: int = 0, **kwargs: Any) -> None:
        self.port = port
        self.exit_code: int | None = None
        self._kwargs = kwargs
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread = threading.Thread(target=self._run,
                                        name="repro-cluster", daemon=True)

    def _run(self) -> None:
        async def main() -> int:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            return await run_cluster(
                port=self.port,
                announce=self._capture_announce,
                ready_event=self._ready,
                stop_event=self._stop,
                **self._kwargs,
            )

        self.exit_code = asyncio.run(main())

    def _capture_announce(self, line: str) -> None:
        if _ANNOUNCE_MARKER in line and "cluster" in line:
            address = line.split(_ANNOUNCE_MARKER, 1)[1].split()[0]
            self.port = int(address.rsplit(":", 1)[1])

    def start(self, timeout: float = 60.0) -> "ThreadedCluster":
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ConfigError("threaded cluster failed to start")
        return self

    def stop(self, timeout: float = 120.0) -> int:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise ConfigError("threaded cluster did not drain in time")
        return self.exit_code if self.exit_code is not None else 1

    def __enter__(self) -> "ThreadedCluster":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def main_cluster(args: Any) -> int:
    """``repro cluster`` entry point (driven by :mod:`repro.cli`)."""
    try:
        return asyncio.run(run_cluster(
            host=args.host,
            port=args.port,
            shards=args.shards,
            cache_dir=args.cache_dir,
            jobs=args.jobs,
            max_pending=args.max_pending,
            chaos=args.chaos or (),
            probe_interval=args.probe_interval,
            probe_timeout=args.probe_timeout,
            min_uptime=args.min_uptime,
            backoff_base=args.backoff_base,
            backoff_cap=args.backoff_cap,
            crash_loop_limit=args.crash_loop_limit,
        ))
    except KeyboardInterrupt:
        print("repro cluster: interrupted before drain", file=sys.stderr)
        return 130
