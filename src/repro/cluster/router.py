"""The cluster's public HTTP front end: cache short-circuit + forwarding.

The router owns the one port clients talk to.  Every ``POST
/v1/simulate`` body is parsed (so malformed requests die at the edge
with a 400 instead of burning a forward), keyed by its content-addressed
:meth:`~repro.serve.protocol.SimulateRequest.sim_key`, and then:

1. **Cache short-circuit** — the shared on-disk result cache is checked
   first; a hit answers 200 immediately with a synthesized terminal
   job (``job_id = "cache:<key>"``) without touching any shard.  This
   is the "any shard serves any cached cell" half of cluster-wide
   single-flight: once *some* shard computed a cell, the whole cluster
   serves it even while that shard is dead.
2. **Ring forward** — a miss goes to the shard owning the key on the
   consistent-hash ring (same key → same shard → the owning broker's
   single-flight registry dedupes concurrent leaders cluster-wide).
   An unavailable owner (crashed, restarting, unhealthy) is a 503 with
   ``Retry-After`` — the client's retry policy rides out the restart.

Job ids returned to clients are prefixed with the owning shard
(``s1:j000042``) so polls route back without any router-side state; a
poll for a shard that restarted (and thus forgot the id) surfaces the
broker's 404, which the client treats as "resubmit the request" —
idempotent by key, and typically a cache hit by then.

``GET /metrics`` aggregates: each healthy shard's exposition is parsed
and summed metric-wise, then the router appends its own
``cluster.*`` counters and per-shard up/restart gauges.

The ``cluster.forward`` fault site fires on every forward, so the
``slow-network`` (stall) and dropped-forward chaos drills run entirely
inside this module.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path
from typing import Any, Mapping

from repro import obs
from repro.common.errors import ReproError
from repro.exec import faults
from repro.exec.cache import ResultCache
from repro.obs.prometheus import (
    parse_prometheus,
    render_prometheus,
    render_samples,
    sum_metrics,
)
from repro.cluster.ring import HashRing
from repro.serve.http import (
    HttpParseError,
    read_http_request,
    write_json,
    write_raw,
)
from repro.serve.protocol import (
    JobStatus,
    JobView,
    SimulateRequest,
    dumps,
    error_body,
    loads,
)

#: Seconds allowed for one non-streaming shard round trip.
FORWARD_TIMEOUT = 30.0
#: ``Retry-After`` hint when the owning shard is down or unreachable.
SHARD_RETRY_AFTER = 1.0


class Router:
    """Asyncio HTTP server routing requests across supervised shards."""

    def __init__(self, supervisor: Any, host: str = "127.0.0.1",
                 port: int = 0, cache_dir: str | Path | None = None,
                 forward_timeout: float = FORWARD_TIMEOUT) -> None:
        self.supervisor = supervisor
        self.host = host
        self.port = port
        self.forward_timeout = forward_timeout
        self.ring = HashRing(supervisor.shard_names())
        cache_root = Path(cache_dir if cache_dir is not None
                          else supervisor.cache_dir)
        self.cache = ResultCache(cache_root / "results")
        self.draining = False
        self.counters: dict[str, int] = {
            "cluster.requests": 0,
            "cluster.cache_hits": 0,
            "cluster.forwards": 0,
            "cluster.forward_failures": 0,
        }
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        """Bind and serve; ``self.port`` holds the bound port."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    def begin_drain(self) -> None:
        """Flip ``/readyz`` to 503 ahead of the shard drain."""
        self.draining = True

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling ------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            await self._handle_one(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as error:  # defensive: a router bug is a 500
            try:
                await write_json(writer, 500, error_body(
                    "internal", f"unhandled router error: {error}"))
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _handle_one(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        try:
            parsed = await read_http_request(reader)
        except HttpParseError as error:
            await write_json(writer, error.status, error.body)
            return
        if parsed is None:
            return
        method, path, _headers, body = parsed
        self.counters["cluster.requests"] += 1
        if path == "/healthz" and method == "GET":
            await self._handle_healthz(writer)
        elif path == "/readyz" and method == "GET":
            await self._handle_readyz(writer)
        elif path == "/metrics" and method == "GET":
            await self._handle_metrics(writer)
        elif path == "/v1/simulate" and method == "POST":
            await self._handle_simulate(writer, body)
        elif path.startswith("/v1/jobs/") and method == "GET":
            rest = path[len("/v1/jobs/"):]
            if rest.endswith("/events"):
                await self._handle_events(writer, rest[:-len("/events")])
            else:
                await self._handle_job(writer, rest)
        else:
            status = 405 if path in ("/v1/simulate", "/healthz", "/readyz",
                                     "/metrics") else 404
            await write_json(writer, status, error_body(
                "routing", f"no route for {method} {path}"))

    # -- forwarding plumbing -------------------------------------------------

    async def _forward(self, endpoint: tuple[str, int], method: str,
                       path: str, body: bytes | None = None
                       ) -> tuple[int, dict[str, str], bytes]:
        """One ``Connection: close`` round trip to a shard."""
        host, port = endpoint
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), self.forward_timeout)
        try:
            head = [f"{method} {path} HTTP/1.1",
                    f"Host: {host}:{port}",
                    "Connection: close"]
            if body:
                head.append("Content-Type: application/json")
                head.append(f"Content-Length: {len(body)}")
            writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
            if body:
                writer.write(body)
            await writer.drain()

            status_line = await asyncio.wait_for(reader.readline(),
                                                 self.forward_timeout)
            parts = status_line.decode("latin-1").split()
            if len(parts) < 2 or not parts[1].isdigit():
                raise OSError(f"shard sent a malformed status line "
                              f"{status_line!r}")
            status = int(parts[1])
            headers: dict[str, str] = {}
            while True:
                line = await asyncio.wait_for(reader.readline(),
                                              self.forward_timeout)
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            payload = await asyncio.wait_for(reader.read(),
                                             self.forward_timeout)
            return status, headers, payload
        finally:
            writer.close()

    def _owner_endpoint(self, owner: str) -> tuple[str, int] | None:
        return self.supervisor.endpoint(owner)

    async def _shard_unavailable(self, writer: asyncio.StreamWriter,
                                 owner: str, detail: str) -> None:
        self.counters["cluster.forward_failures"] += 1
        await write_json(
            writer, 503,
            error_body("shard-unavailable",
                       f"shard {owner} is unavailable ({detail}); "
                       f"retry shortly",
                       retry_after=SHARD_RETRY_AFTER),
            extra_headers={"Retry-After":
                           str(max(1, int(SHARD_RETRY_AFTER)))})

    @staticmethod
    def _prefix_job_id(owner: str, payload: bytes) -> bytes:
        """Rewrite a shard job body's id to the routed ``owner:id`` form."""
        try:
            document = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return payload
        if (isinstance(document, dict)
                and isinstance(document.get("job_id"), str)):
            document["job_id"] = f"{owner}:{document['job_id']}"
            return dumps(document)
        return payload

    def _cached_view(self, key: str, result: Any) -> JobView:
        """A synthesized terminal job for a router-level cache hit."""
        return JobView(
            job_id=f"cache:{key}",
            status=JobStatus.DONE,
            workload=result.workload,
            prefetcher=result.prefetcher,
            key=key,
            cache_hit=True,
            wall_seconds=0.0,
            result=result.to_dict(),
        )

    # -- endpoints ----------------------------------------------------------

    async def _handle_simulate(self, writer: asyncio.StreamWriter,
                               body: bytes) -> None:
        try:
            request = SimulateRequest.from_dict(loads(body))
        except ReproError as error:
            await write_json(writer, 400, error_body(
                type(error).__name__, str(error)))
            return
        key = request.sim_key()
        cached = self.cache.get(key)
        if cached is not None:
            self.counters["cluster.cache_hits"] += 1
            await write_json(writer, 200,
                             self._cached_view(key, cached).to_dict())
            return
        owner = self.ring.owner(key)
        endpoint = self._owner_endpoint(owner)
        if endpoint is None:
            await self._shard_unavailable(writer, owner, "down or starting")
            return
        self.counters["cluster.forwards"] += 1
        try:
            if faults.ACTIVE is not None:
                await faults.ACTIVE.async_check("cluster.forward")
            status, headers, payload = await self._forward(
                endpoint, "POST", "/v1/simulate", body)
        except (OSError, asyncio.TimeoutError, ReproError) as error:
            await self._shard_unavailable(writer, owner, str(error))
            return
        extra = ({"Retry-After": headers["retry-after"]}
                 if "retry-after" in headers else None)
        await write_raw(writer, status, self._prefix_job_id(owner, payload),
                        "application/json", extra)

    async def _handle_job(self, writer: asyncio.StreamWriter,
                          job_id: str) -> None:
        if job_id.startswith("cache:"):
            key = job_id[len("cache:"):]
            cached = self.cache.get(key)
            if cached is None:
                await write_json(writer, 404, error_body(
                    "unknown-job",
                    f"cached result {key[:12]}… was evicted; resubmit"))
                return
            await write_json(writer, 200,
                             self._cached_view(key, cached).to_dict())
            return
        owner, separator, raw_id = job_id.partition(":")
        if not separator or owner not in self.ring:
            await write_json(writer, 404, error_body(
                "unknown-job", f"no such job {job_id!r} (cluster job ids "
                f"look like <shard>:<id>)"))
            return
        endpoint = self._owner_endpoint(owner)
        if endpoint is None:
            await self._shard_unavailable(writer, owner, "down or starting")
            return
        try:
            status, headers, payload = await self._forward(
                endpoint, "GET", f"/v1/jobs/{raw_id}")
        except (OSError, asyncio.TimeoutError) as error:
            await self._shard_unavailable(writer, owner, str(error))
            return
        extra = ({"Retry-After": headers["retry-after"]}
                 if "retry-after" in headers else None)
        await write_raw(writer, status, self._prefix_job_id(owner, payload),
                        "application/json", extra)

    async def _handle_events(self, writer: asyncio.StreamWriter,
                             job_id: str) -> None:
        if job_id.startswith("cache:"):
            await self._handle_cache_events(writer, job_id)
            return
        owner, separator, raw_id = job_id.partition(":")
        if not separator or owner not in self.ring:
            await write_json(writer, 404, error_body(
                "unknown-job", f"no such job {job_id!r}"))
            return
        endpoint = self._owner_endpoint(owner)
        if endpoint is None:
            await self._shard_unavailable(writer, owner, "down or starting")
            return
        # Pipe the shard's response — status line, headers, and the SSE
        # stream — byte-for-byte.  (Known cosmetic limit: job ids inside
        # forwarded event payloads keep their shard-local form.)
        try:
            upstream_reader, upstream_writer = await asyncio.wait_for(
                asyncio.open_connection(*endpoint), self.forward_timeout)
        except (OSError, asyncio.TimeoutError) as error:
            await self._shard_unavailable(writer, owner, str(error))
            return
        try:
            upstream_writer.write(
                (f"GET /v1/jobs/{raw_id}/events HTTP/1.1\r\n"
                 f"Host: {endpoint[0]}:{endpoint[1]}\r\n"
                 f"Connection: close\r\n\r\n").encode("latin-1"))
            await upstream_writer.drain()
            while True:
                chunk = await upstream_reader.read(65536)
                if not chunk:
                    return
                writer.write(chunk)
                await writer.drain()
        finally:
            upstream_writer.close()

    async def _handle_cache_events(self, writer: asyncio.StreamWriter,
                                   job_id: str) -> None:
        """A cache-backed job's whole history is one terminal frame."""
        key = job_id[len("cache:"):]
        cached = self.cache.get(key)
        if cached is None:
            await write_json(writer, 404, error_body(
                "unknown-job",
                f"cached result {key[:12]}… was evicted; resubmit"))
            return
        view = self._cached_view(key, cached)
        payload = json.dumps({"event": "terminal", "job": view.to_dict()},
                             sort_keys=True)
        body = f"event: terminal\ndata: {payload}\n\n".encode("utf-8")
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n" + body)
        await writer.drain()

    async def _handle_healthz(self, writer: asyncio.StreamWriter) -> None:
        import repro

        await write_json(writer, 200, {
            "status": "ok",
            "version": repro.__version__,
            "draining": self.draining,
            "shards": self.supervisor.describe(),
            "shards_healthy": self.supervisor.healthy_count(),
        })

    async def _handle_readyz(self, writer: asyncio.StreamWriter) -> None:
        if self.draining:
            await write_json(writer, 503, error_body(
                "draining", "cluster is draining"))
        elif self.supervisor.healthy_count() < 1:
            await write_json(writer, 503, error_body(
                "shard-unavailable", "no healthy shards yet",
                retry_after=SHARD_RETRY_AFTER))
        else:
            await write_json(writer, 200, {
                "status": "ready",
                "shards_healthy": self.supervisor.healthy_count(),
            })

    async def _handle_metrics(self, writer: asyncio.StreamWriter) -> None:
        scrapes: list[Mapping[str, float]] = []
        for name in self.supervisor.shard_names():
            endpoint = self._owner_endpoint(name)
            if endpoint is None:
                continue
            try:
                status, _, payload = await self._forward(
                    endpoint, "GET", "/metrics")
            except (OSError, asyncio.TimeoutError):
                continue
            if status == 200:
                scrapes.append(
                    parse_prometheus(payload.decode("utf-8",
                                                    errors="replace")))
        counters = {**self.counters, **self.supervisor.counters}
        text = render_samples(sum_metrics(scrapes)) + render_prometheus(
            obs.snapshot(),
            counters=counters,
            gauges=self.supervisor.gauges(),
        )
        await write_raw(writer, 200, text.encode("utf-8"),
                        "text/plain; version=0.0.4")
