"""Consistent-hash ring over content-addressed simulation keys.

The cluster routes every request by the :func:`~repro.exec.keys
.sim_key` of its fully resolved body, so identical requests — however
they reached the cluster — land on the same shard and fold into that
shard's single-flight registry.  A plain ``hash(key) % N`` would do
that too, but would reshuffle almost every key when N changes; the
consistent ring only remaps the keys owned by the member that left
(or arrived), which keeps warm per-shard state (in-flight leaders,
trace LRU contents) valid across membership changes.

Implementation: each member is hashed onto ``replicas`` pseudo-random
points of a 64-bit circle (via the same :func:`~repro.exec.keys
.stable_hash` that builds sim keys, so placement is deterministic
across processes and Python builds); a key belongs to the member whose
point follows the key's point clockwise.  With 64 virtual nodes per
member the expected load imbalance across 3-16 shards is a few
percent, plenty for a cache-backed workload.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Sequence

from repro.common.errors import ConfigError
from repro.exec.keys import stable_hash

#: Virtual nodes per member; more evens out load at O(replicas·members)
#: ring-build cost (build happens once per process).
DEFAULT_REPLICAS = 64


def _point(*parts: object) -> int:
    """A deterministic 64-bit position on the ring circle."""
    return int(stable_hash(*parts)[:16], 16)


class HashRing:
    """Maps content-addressed keys onto a fixed set of member names."""

    def __init__(self, members: Sequence[str],
                 replicas: int = DEFAULT_REPLICAS) -> None:
        members = list(members)
        if not members:
            raise ConfigError("a hash ring needs at least one member")
        if len(set(members)) != len(members):
            raise ConfigError(f"duplicate ring members in {members!r}")
        if replicas < 1:
            raise ConfigError("replicas must be >= 1")
        self.members = tuple(members)
        self.replicas = replicas
        pairs: list[tuple[int, str]] = []
        for member in members:
            for replica in range(replicas):
                pairs.append((_point("ring-member", member, replica),
                              member))
        # Sort by (point, member) so a (vanishingly unlikely) point
        # collision still resolves deterministically.
        pairs.sort()
        self._points = [point for point, _ in pairs]
        self._owners = [member for _, member in pairs]

    def owner(self, key: str) -> str:
        """The member owning ``key`` (clockwise-successor rule)."""
        index = bisect.bisect_right(self._points, _point("ring-key", key))
        return self._owners[index % len(self._owners)]

    def distribution(self, keys: Iterable[str]) -> dict[str, int]:
        """How many of ``keys`` each member owns (diagnostics, tests)."""
        counts = {member: 0 for member in self.members}
        for key in keys:
            counts[self.owner(key)] += 1
        return counts

    def __len__(self) -> int:
        return len(self.members)

    def __contains__(self, member: object) -> bool:
        return member in self.members
