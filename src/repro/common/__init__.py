"""Shared primitives used across every subsystem.

This package deliberately has no dependencies on the rest of :mod:`repro`,
so any module may import from it without creating cycles.
"""

from repro.common.constants import (
    DEFAULT_LINE_SIZE,
    DEFAULT_PAGE_SIZE,
    LINE_SHIFT,
)
from repro.common.errors import (
    ConfigError,
    ReproError,
    TraceError,
    ValidationError,
    WorkloadError,
)
from repro.common.bitops import (
    bit_select,
    fold_xor,
    is_power_of_two,
    line_of,
    log2_exact,
    mask,
    sign_extend,
)
from repro.common.rng import DeterministicRng

__all__ = [
    "DEFAULT_LINE_SIZE",
    "DEFAULT_PAGE_SIZE",
    "LINE_SHIFT",
    "ReproError",
    "ConfigError",
    "TraceError",
    "ValidationError",
    "WorkloadError",
    "bit_select",
    "fold_xor",
    "is_power_of_two",
    "line_of",
    "log2_exact",
    "mask",
    "sign_extend",
    "DeterministicRng",
]
