"""Deterministic random number generation.

All stochastic pieces of the system (the history table's random eviction
policy, data-dependent workload inputs) draw from seeded generators so
every experiment is exactly reproducible run-to-run.
"""

from __future__ import annotations

import random
import zlib
from typing import Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A thin, seedable wrapper around :class:`random.Random`.

    Wrapping (instead of using module-level ``random``) keeps each
    hardware structure's randomness independent: evicting randomly in the
    CBWS history table does not perturb workload input generation.
    """

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._rng = random.Random(seed)

    @property
    def seed(self) -> int:
        """The seed this generator was created with."""
        return self._seed

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range [low, high]."""
        return self._rng.randint(low, high)

    def choice(self, items: Sequence[T]) -> T:
        """Uniformly pick one element of a non-empty sequence."""
        return self._rng.choice(items)

    def index(self, length: int) -> int:
        """Uniform index into a container of ``length`` slots."""
        if length <= 0:
            raise ValueError(f"length must be positive, got {length}")
        return self._rng.randrange(length)

    def shuffled(self, items: Sequence[T]) -> list[T]:
        """Return a shuffled copy of ``items``."""
        out = list(items)
        self._rng.shuffle(out)
        return out

    def fork(self, salt: int) -> "DeterministicRng":
        """Derive an independent generator, stable for a given salt."""
        return DeterministicRng((self._seed * 1_000_003 + salt) & 0x7FFF_FFFF)

    def stream(self, name: str) -> "DeterministicRng":
        """Derive an independent generator keyed by a string label."""
        return self.fork(zlib.crc32(name.encode("utf-8")))


def named_stream(name: str, seed: int = 0) -> DeterministicRng:
    """Return the seeded stream for a named stochastic site.

    Every random-eviction (or otherwise stochastic) path in the system
    draws from a stream obtained here, keyed by a stable site label such
    as ``"cbws.history-table"``.  The function is pure — two calls with
    the same ``(name, seed)`` return generators that produce identical
    sequences, and there is no module-level generator whose state one
    caller could perturb for another.  That purity is what makes
    differential runs (implementation vs oracle) reproducible: both
    sides construct the same stream independently and observe the same
    draws.
    """
    return DeterministicRng(seed).stream(name)
