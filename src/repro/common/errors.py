"""Exception hierarchy and failure taxonomy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at the API boundary.

The execution engine additionally *classifies* failures so its retry and
degradation policies can react differently to each class:

``TRANSIENT``
    The attempt failed for a reason that may not recur (worker crash,
    timeout, resource pressure).  Worth retrying.
``PERMANENT``
    The task is deterministically broken (bad configuration, unknown
    workload, invalid program).  Retrying wastes time; fail fast.
``POISONED``
    The task repeatedly kills or wedges its worker.  It must be isolated
    so it cannot take the rest of the grid down with it.

:func:`classify_error` maps an exception to a class; tasks that want a
specific classification raise :class:`TransientError` or
:class:`PermanentError` directly.
"""

from __future__ import annotations

from enum import Enum


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError):
    """An architectural or prefetcher configuration is inconsistent."""


class TraceError(ReproError):
    """A trace is malformed (bad ordering, unknown event, truncated file)."""


class ExecError(ReproError):
    """Grid execution failed (quarantined tasks, broken pool, bad stats)."""


class ValidationError(ReproError):
    """An IR program failed structural validation."""


class WorkloadError(ReproError):
    """A workload was requested with unknown name or invalid parameters."""


class IntegrityError(ReproError):
    """A persisted artifact failed its checksum or schema check."""


class IngestError(ReproError):
    """An external trace cannot be ingested.

    Base of the ingest taxonomy: :class:`IngestFormatError` for inputs
    that violate their declared format and :class:`IngestRegistryError`
    for problems with the ingest store itself.  All of them are
    deterministic — the same file fails the same way every time — so
    the whole family classifies as permanent (no retry storms).
    """


class IngestFormatError(IngestError):
    """An external trace file violates its declared format.

    Truncated fixed-width records, out-of-range flag bytes, malformed
    CSV lines, non-monotonic instruction counts: the message always
    names the offending record or line so multi-GB inputs are
    diagnosable without a hex editor.
    """


class IngestRegistryError(IngestError):
    """The ingest store registry is missing, corrupt, or inconsistent.

    Covers unknown ``ext:`` workload names, a registry.json that does
    not parse, and re-ingesting different content under an existing
    name without ``--force`` (which would silently poison every
    content-addressed cache key derived from that name).
    """


class JournalError(ReproError):
    """A run journal is missing, unreadable, or does not match the grid."""


class CampaignError(ReproError):
    """A parameter-space campaign cannot be planned, run, or resumed."""


class SpecError(CampaignError):
    """A sweep spec is malformed, inconsistent, or yields no cells."""


class InvariantViolation(ReproError):
    """A runtime invariant of the simulator was violated.

    Raised by :mod:`repro.check.invariants` when invariant checking is
    enabled and a structural property (MSHR bounds, L2 inclusion, queue
    capacity, issue-clock monotonicity, ...) does not hold.  Carries the
    machine-state ``context`` captured at the point of violation so the
    failure is diagnosable without a rerun.
    """

    def __init__(self, message: str, context: dict | None = None) -> None:
        super().__init__(message)
        self.context = dict(context or {})

    def __str__(self) -> str:
        base = super().__str__()
        if not self.context:
            return base
        detail = ", ".join(f"{k}={v!r}" for k, v in sorted(self.context.items()))
        return f"{base} [{detail}]"


class TransientError(ExecError):
    """A task failure that is expected to succeed on retry."""


class PermanentError(ExecError):
    """A task failure that retrying cannot fix."""


class DiskFullError(PermanentError):
    """The filesystem under the cache or journal is out of space.

    ``ENOSPC`` is an *environment* failure, not a task failure: every
    retry re-hits the same full disk, so this classifies as permanent
    (no retry storm) and carries an actionable remediation hint.
    """

    REMEDIATION = (
        "reclaim space with `repro cache gc --max-bytes <SIZE>` "
        "(or `--max-age <AGE>`), then rerun"
    )

    def __init__(self, message: str) -> None:
        super().__init__(f"{message}; {self.REMEDIATION}")


#: ``errno`` values that mean "the disk under this write is full".
_DISK_FULL_ERRNOS = (28, 122)  # ENOSPC, EDQUOT


def raise_if_disk_full(error: OSError, what: str) -> None:
    """Re-raise an ``OSError`` as :class:`DiskFullError` when it is a
    disk-full condition; return (caller re-raises the original) otherwise.
    """
    if error.errno in _DISK_FULL_ERRNOS:
        raise DiskFullError(f"disk full while writing {what} ({error})") from error


class FaultInjected(ExecError):
    """An error raised by the fault-injection harness (tests only)."""


class InjectedCrash(FaultInjected):
    """A simulated process death raised by the fault-injection harness.

    In-process fault tests raise this instead of calling ``os._exit`` so
    the 'crashed' state (torn journal line, half-written artifact) can be
    inspected and resumed within the same test process.
    """


class ErrorKind(Enum):
    """Failure classification used by the retry/degradation policy."""

    TRANSIENT = "transient"
    PERMANENT = "permanent"
    POISONED = "poisoned"


#: Exception types whose failures are deterministic: the same inputs
#: will fail the same way, so retries are pointless.  Invariant
#: violations are deterministic by construction: the simulator replays
#: the same trace the same way every time.
_PERMANENT_TYPES = (ConfigError, ValidationError, WorkloadError,
                    InvariantViolation, IngestError)


def classify_error(error: BaseException) -> ErrorKind:
    """Map an exception to its failure class.

    Explicit :class:`TransientError` / :class:`PermanentError` wins;
    configuration and validation errors are deterministic and therefore
    permanent; everything else (I/O hiccups, crashes surfaced as generic
    exceptions) defaults to transient so the bounded retry policy gets a
    chance to recover it.
    """
    if isinstance(error, PermanentError):
        return ErrorKind.PERMANENT
    if isinstance(error, TransientError):
        return ErrorKind.TRANSIENT
    if isinstance(error, _PERMANENT_TYPES):
        return ErrorKind.PERMANENT
    return ErrorKind.TRANSIENT
