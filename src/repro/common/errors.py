"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at the API boundary.
"""


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError):
    """An architectural or prefetcher configuration is inconsistent."""


class TraceError(ReproError):
    """A trace is malformed (bad ordering, unknown event, truncated file)."""


class ExecError(ReproError):
    """Grid execution failed (quarantined tasks, broken pool, bad stats)."""


class ValidationError(ReproError):
    """An IR program failed structural validation."""


class WorkloadError(ReproError):
    """A workload was requested with unknown name or invalid parameters."""
