"""Bit-level helpers used by the cache model and CBWS hardware structures.

The CBWS prefetcher aggressively truncates addresses and strides to keep
its storage under 1 KB (Figure 8), so the predictor relies on the helpers
here to model the exact bit widths of each hardware field.
"""

from __future__ import annotations

from repro.common.constants import LINE_SHIFT


def mask(bits: int) -> int:
    """Return a bitmask with the low ``bits`` bits set.

    >>> hex(mask(12))
    '0xfff'
    """
    if bits < 0:
        raise ValueError(f"bit count must be non-negative, got {bits}")
    return (1 << bits) - 1


def bit_select(value: int, bits: int) -> int:
    """Keep only the low ``bits`` bits of ``value``.

    This models the "bit-select hashing" the paper uses to compress CBWS
    differentials down to 12 bits before they enter the history shift
    registers.  Negative strides are first mapped to their two's-complement
    representation so the selection is well defined.
    """
    return value & mask(bits)


def sign_extend(value: int, bits: int) -> int:
    """Interpret the low ``bits`` bits of ``value`` as a signed integer.

    >>> sign_extend(0xFFF, 12)
    -1
    >>> sign_extend(0x7FF, 12)
    2047
    """
    value &= mask(bits)
    sign_bit = 1 << (bits - 1)
    return (value ^ sign_bit) - sign_bit


def fold_xor(value: int, out_bits: int) -> int:
    """XOR-fold ``value`` down to ``out_bits`` bits.

    The differential history table is "indexed by the history shift
    registers, whose 48 bits are xor-ed to provide a 16-bit tag"
    (Section V-A); this helper performs that folding for arbitrary widths.
    """
    if out_bits <= 0:
        raise ValueError(f"output width must be positive, got {out_bits}")
    folded = 0
    value &= (1 << max(value.bit_length(), out_bits)) - 1
    while value:
        folded ^= value & mask(out_bits)
        value >>= out_bits
    return folded


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return log2 of a power of two, raising on anything else."""
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


def line_of(byte_address: int, line_shift: int = LINE_SHIFT) -> int:
    """Convert a byte address to its cache line number."""
    return byte_address >> line_shift
