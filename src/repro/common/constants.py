"""Architectural constants shared across the simulator.

The values mirror Table II of the paper: 64-byte cache lines and 4 KB
physical pages.  Everything else (cache sizes, latencies, prefetcher
geometry) is configurable and lives in :mod:`repro.sim.config`.
"""

#: Cache line size in bytes (Table II: all caches use 64-byte lines).
DEFAULT_LINE_SIZE = 64

#: log2(DEFAULT_LINE_SIZE); used to convert byte addresses to line numbers.
LINE_SHIFT = 6

#: Physical page size in bytes (Table II).
DEFAULT_PAGE_SIZE = 4096

#: Number of bits kept for a line address inside CBWS hardware buffers
#: (Figure 8: "the lower 32 bits of the line addresses").
CBWS_LINE_ADDR_BITS = 32

#: Number of bits used to represent one element of a CBWS differential
#: (Section V-A: "16 bits are sufficient to represent each element").
CBWS_STRIDE_BITS = 16

#: Number of bits of a differential kept in the history shift registers
#: (Section V-A: "differentials are represented using 12 bits ...
#: bit-select hashing").
CBWS_HASH_BITS = 12
