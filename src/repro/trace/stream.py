"""Trace container and summary statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.common.errors import TraceError
from repro.trace.events import (
    BLOCK_BEGIN,
    BLOCK_END,
    MEMORY_ACCESS,
    BlockBegin,
    BlockEnd,
    MemoryAccess,
    TraceEvent,
)


@dataclass(frozen=True)
class TraceStats:
    """Summary counts for a trace.

    Attributes:
        instructions: total committed instructions (including the final
            stretch after the last event).
        memory_accesses: number of committed loads + stores.
        loads: committed loads.
        stores: committed stores.
        blocks: number of completed code block instances (BLOCK_END count).
        block_instructions: instructions committed inside annotated blocks;
            ``block_instructions / instructions`` is the Figure 1 metric.
        distinct_block_ids: number of static code blocks observed.
    """

    instructions: int
    memory_accesses: int
    loads: int
    stores: int
    blocks: int
    block_instructions: int
    distinct_block_ids: int

    @property
    def loop_fraction(self) -> float:
        """Fraction of runtime (instructions) spent inside tight loops."""
        if self.instructions == 0:
            return 0.0
        return self.block_instructions / self.instructions


class Trace:
    """An in-order sequence of trace events plus metadata.

    Args:
        name: workload identifier the trace was generated from.
        events: events in commit order.
        instructions: total committed instruction count.  Must be at least
            the icount of the last event; the tail difference models
            non-memory work after the final access.
    """

    def __init__(
        self,
        name: str,
        events: Sequence[TraceEvent] | Iterable[TraceEvent],
        instructions: int,
    ) -> None:
        self.name = name
        self.events: list[TraceEvent] = list(events)
        self.instructions = instructions
        self._columns = None
        if self.events and instructions < self.events[-1].icount:
            raise TraceError(
                f"trace '{name}': instruction total {instructions} is below the "
                f"last event icount {self.events[-1].icount}"
            )

    def columns(self):
        """Columnar (structure-of-arrays) view of the event stream.

        Built lazily on first use and cached: the engine's fast path
        iterates these typed arrays instead of the event objects.  The
        event list is treated as immutable once a trace is constructed
        (nothing in the codebase mutates it), so the cache never goes
        stale.
        """
        if self._columns is None:
            from repro.trace.columnar import EventColumns

            self._columns = EventColumns(self.events)
        return self._columns

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __getitem__(self, index: int) -> TraceEvent:
        return self.events[index]

    def memory_events(self) -> Iterator[MemoryAccess]:
        """Iterate only the committed loads and stores."""
        for event in self.events:
            if event.kind == MEMORY_ACCESS:
                yield event  # type: ignore[misc]

    def validate(self) -> None:
        """Check structural invariants, raising :class:`TraceError` on the
        first violation.

        Invariants:
          * icount is monotonically non-decreasing,
          * block markers are balanced and non-nested (tight innermost
            loops never nest),
          * every BLOCK_END matches the id of the open BLOCK_BEGIN.
        """
        last_icount = 0
        open_block: int | None = None
        for position, event in enumerate(self.events):
            if event.icount < last_icount:
                raise TraceError(
                    f"trace '{self.name}': icount decreases at event {position} "
                    f"({event.icount} < {last_icount})"
                )
            last_icount = event.icount
            if event.kind == BLOCK_BEGIN:
                if open_block is not None:
                    raise TraceError(
                        f"trace '{self.name}': nested BLOCK_BEGIN at event "
                        f"{position} (block {open_block} still open)"
                    )
                open_block = event.block_id  # type: ignore[attr-defined]
            elif event.kind == BLOCK_END:
                if open_block is None:
                    raise TraceError(
                        f"trace '{self.name}': BLOCK_END without BLOCK_BEGIN "
                        f"at event {position}"
                    )
                if event.block_id != open_block:  # type: ignore[attr-defined]
                    raise TraceError(
                        f"trace '{self.name}': BLOCK_END id "
                        f"{event.block_id} does not match open block "  # type: ignore[attr-defined]
                        f"{open_block} at event {position}"
                    )
                open_block = None
        if open_block is not None:
            raise TraceError(
                f"trace '{self.name}': block {open_block} never closed"
            )

    def stats(self) -> TraceStats:
        """Compute summary statistics in a single pass."""
        loads = stores = blocks = 0
        block_instructions = 0
        block_ids: set[int] = set()
        begin_icount: int | None = None
        for event in self.events:
            if event.kind == MEMORY_ACCESS:
                if event.is_write:  # type: ignore[attr-defined]
                    stores += 1
                else:
                    loads += 1
            elif event.kind == BLOCK_BEGIN:
                begin_icount = event.icount
                block_ids.add(event.block_id)  # type: ignore[attr-defined]
            elif event.kind == BLOCK_END:
                blocks += 1
                if begin_icount is not None:
                    # Count the loop back-edge overhead as part of the block.
                    block_instructions += event.icount - begin_icount
                    begin_icount = None
        return TraceStats(
            instructions=self.instructions,
            memory_accesses=loads + stores,
            loads=loads,
            stores=stores,
            blocks=blocks,
            block_instructions=block_instructions,
            distinct_block_ids=len(block_ids),
        )

    def __repr__(self) -> str:
        return (
            f"Trace(name={self.name!r}, events={len(self.events)}, "
            f"instructions={self.instructions})"
        )
