"""Synthetic virtual address space and parametric loop-trace generation.

The IR interpreter places every array a kernel declares into a single flat
address space.  Allocations are line-aligned and separated by a guard gap
so that distinct arrays never share a cache line — the same layout a
malloc-based C benchmark would see for large arrays.

The module also provides :class:`LoopSpec` / :func:`synthesize_loop_trace`,
a direct-to-events generator of annotated loop traces.  The trace fuzzer
(:mod:`repro.check.fuzz`) uses it to mint seed corpora without going
through the IR interpreter; tests use it to build minimal, fully
controlled inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.common.constants import DEFAULT_LINE_SIZE, DEFAULT_PAGE_SIZE
from repro.common.errors import ConfigError, WorkloadError
from repro.trace.events import BlockBegin, BlockEnd, MemoryAccess, TraceEvent
from repro.trace.stream import Trace


@dataclass(frozen=True)
class Allocation:
    """One array placed in the synthetic address space.

    Attributes:
        name: array name as declared by the kernel.
        base: first byte address of the array.
        length: number of elements.
        element_size: bytes per element.
    """

    name: str
    base: int
    length: int
    element_size: int

    @property
    def size_bytes(self) -> int:
        """Total footprint of the allocation in bytes."""
        return self.length * self.element_size

    def address_of(self, index: int) -> int:
        """Byte address of ``array[index]``, bounds-checked."""
        if not 0 <= index < self.length:
            raise WorkloadError(
                f"array '{self.name}': index {index} out of range "
                f"[0, {self.length})"
            )
        return self.base + index * self.element_size


class AddressSpace:
    """Sequential, line-aligned allocator for kernel arrays.

    Args:
        base: address of the first allocation.  Defaults to one page, so
            address 0 is never handed out (it reads as a null pointer).
        guard_lines: number of unused cache lines placed between
            consecutive allocations.
    """

    def __init__(self, base: int = DEFAULT_PAGE_SIZE, guard_lines: int = 4) -> None:
        if base < 0:
            raise WorkloadError(f"address space base must be non-negative: {base}")
        self._next = _align_up(base, DEFAULT_LINE_SIZE)
        self._guard = guard_lines * DEFAULT_LINE_SIZE
        self._allocations: dict[str, Allocation] = {}

    def allocate(self, name: str, length: int, element_size: int = 8) -> Allocation:
        """Place a new array and return its allocation record."""
        if name in self._allocations:
            raise WorkloadError(f"array '{name}' allocated twice")
        if length <= 0:
            raise WorkloadError(f"array '{name}': length must be positive")
        if element_size <= 0:
            raise WorkloadError(f"array '{name}': element size must be positive")
        allocation = Allocation(name, self._next, length, element_size)
        footprint = _align_up(allocation.size_bytes, DEFAULT_LINE_SIZE)
        self._next += footprint + self._guard
        self._allocations[name] = allocation
        return allocation

    def lookup(self, name: str) -> Allocation:
        """Return the allocation for ``name``, raising if unknown."""
        try:
            return self._allocations[name]
        except KeyError:
            raise WorkloadError(f"unknown array '{name}'") from None

    @property
    def allocations(self) -> dict[str, Allocation]:
        """Mapping of array name to allocation (insertion ordered)."""
        return dict(self._allocations)

    @property
    def footprint_bytes(self) -> int:
        """Total bytes spanned by all allocations including guard gaps."""
        return self._next


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


@dataclass(frozen=True)
class LoopSpec:
    """One annotated loop in a synthetic trace.

    Each iteration emits ``BLOCK_BEGIN(block_id)``, then ``accesses``
    memory events walking ``base`` with the given byte ``stride`` (the
    walk continues across iterations, streaming through memory like a
    loop over a large array), then ``BLOCK_END(block_id)``.

    Attributes:
        block_id: static code block identifier for the markers.
        base: byte address of the first access.
        stride: byte distance between consecutive accesses.  May be
            negative (a backwards walk) but the walk must stay at
            non-negative addresses.
        accesses: memory accesses per iteration.
        iterations: number of loop iterations.
        pc_base: pc of the first static access; access ``j`` of every
            iteration uses ``pc_base + j``.
        write_every: every ``write_every``-th access is a store
            (0 = loads only).
        instructions_per_access: committed-instruction gap between
            consecutive accesses.
    """

    block_id: int
    base: int
    stride: int
    accesses: int
    iterations: int
    pc_base: int = 0x40_0000
    write_every: int = 0
    instructions_per_access: int = 4

    def __post_init__(self) -> None:
        # A zero-length loop (no iterations, or iterations with no body)
        # is a specification bug, not an empty trace: fuzz seeds used to
        # silently produce event-free traces that exercised nothing.
        if self.iterations <= 0:
            raise ConfigError(
                f"loop {self.block_id}: zero-length loop "
                f"(iterations={self.iterations}; must be positive)"
            )
        if self.accesses <= 0:
            raise ConfigError(
                f"loop {self.block_id}: zero-length loop body "
                f"(accesses={self.accesses}; must be positive)"
            )
        if self.base < 0:
            raise ConfigError(f"loop {self.block_id}: negative base address")
        if self.instructions_per_access <= 0:
            raise ConfigError(
                f"loop {self.block_id}: instructions_per_access must be positive"
            )
        if self.write_every < 0:
            raise ConfigError(f"loop {self.block_id}: write_every must be >= 0")
        last = self.base + self.stride * (self.accesses * self.iterations - 1)
        if last < 0:
            raise ConfigError(
                f"loop {self.block_id}: backwards walk underflows address 0 "
                f"(base={self.base:#x}, stride={self.stride})"
            )


def synthesize_loop_trace(
    specs: Sequence[LoopSpec],
    name: str = "synthetic",
    tail_instructions: int = 16,
) -> Trace:
    """Build a validated trace from loop specs, run back to back.

    Loops execute sequentially in the order given; block markers are
    balanced and non-nested by construction and icounts are strictly
    monotonic, so the result always passes :meth:`Trace.validate`.
    """
    if not specs:
        raise ConfigError("synthesize_loop_trace: need at least one loop spec")
    events: list[TraceEvent] = []
    icount = 0
    for spec in specs:
        walk = 0
        for _ in range(spec.iterations):
            icount += 1
            events.append(BlockBegin(icount, spec.block_id))
            for access in range(spec.accesses):
                icount += spec.instructions_per_access
                address = spec.base + spec.stride * walk
                walk += 1
                is_write = (
                    spec.write_every > 0 and access % spec.write_every == spec.write_every - 1
                )
                events.append(
                    MemoryAccess(icount, spec.pc_base + access, address, is_write)
                )
            icount += 1
            events.append(BlockEnd(icount, spec.block_id))
    trace = Trace(name, events, icount + tail_instructions)
    trace.validate()
    return trace
