"""Synthetic virtual address space for workload kernels.

The IR interpreter places every array a kernel declares into a single flat
address space.  Allocations are line-aligned and separated by a guard gap
so that distinct arrays never share a cache line — the same layout a
malloc-based C benchmark would see for large arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.constants import DEFAULT_LINE_SIZE, DEFAULT_PAGE_SIZE
from repro.common.errors import WorkloadError


@dataclass(frozen=True)
class Allocation:
    """One array placed in the synthetic address space.

    Attributes:
        name: array name as declared by the kernel.
        base: first byte address of the array.
        length: number of elements.
        element_size: bytes per element.
    """

    name: str
    base: int
    length: int
    element_size: int

    @property
    def size_bytes(self) -> int:
        """Total footprint of the allocation in bytes."""
        return self.length * self.element_size

    def address_of(self, index: int) -> int:
        """Byte address of ``array[index]``, bounds-checked."""
        if not 0 <= index < self.length:
            raise WorkloadError(
                f"array '{self.name}': index {index} out of range "
                f"[0, {self.length})"
            )
        return self.base + index * self.element_size


class AddressSpace:
    """Sequential, line-aligned allocator for kernel arrays.

    Args:
        base: address of the first allocation.  Defaults to one page, so
            address 0 is never handed out (it reads as a null pointer).
        guard_lines: number of unused cache lines placed between
            consecutive allocations.
    """

    def __init__(self, base: int = DEFAULT_PAGE_SIZE, guard_lines: int = 4) -> None:
        if base < 0:
            raise WorkloadError(f"address space base must be non-negative: {base}")
        self._next = _align_up(base, DEFAULT_LINE_SIZE)
        self._guard = guard_lines * DEFAULT_LINE_SIZE
        self._allocations: dict[str, Allocation] = {}

    def allocate(self, name: str, length: int, element_size: int = 8) -> Allocation:
        """Place a new array and return its allocation record."""
        if name in self._allocations:
            raise WorkloadError(f"array '{name}' allocated twice")
        if length <= 0:
            raise WorkloadError(f"array '{name}': length must be positive")
        if element_size <= 0:
            raise WorkloadError(f"array '{name}': element size must be positive")
        allocation = Allocation(name, self._next, length, element_size)
        footprint = _align_up(allocation.size_bytes, DEFAULT_LINE_SIZE)
        self._next += footprint + self._guard
        self._allocations[name] = allocation
        return allocation

    def lookup(self, name: str) -> Allocation:
        """Return the allocation for ``name``, raising if unknown."""
        try:
            return self._allocations[name]
        except KeyError:
            raise WorkloadError(f"unknown array '{name}'") from None

    @property
    def allocations(self) -> dict[str, Allocation]:
        """Mapping of array name to allocation (insertion ordered)."""
        return dict(self._allocations)

    @property
    def footprint_bytes(self) -> int:
        """Total bytes spanned by all allocations including guard gaps."""
        return self._next


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment
