"""Binary trace serialization.

The format is a small custom container:

``header``  — magic ``b"CBWS"``, version u16, name length u16, name bytes,
              instruction total u64, event count u64, payload CRC32 u32
              (version ≥ 2).
``records`` — one tag byte per event followed by the event payload.
              Memory accesses store the icount *delta* from the previous
              event as a u32, which keeps files compact for long traces.
              Deltas are unsigned, so a stored trace cannot even encode a
              non-monotonic icount; inputs that carry absolute icounts
              (external traces) are validated at their decode boundary in
              :mod:`repro.ingest` instead, and the writers here reject a
              decreasing icount by event index before it reaches disk.

Round-tripping is exact: ``read_trace(path)`` returns a trace equal to the
one passed to ``write_trace``.

Integrity: version 2 headers carry a CRC32 of the record section, so any
truncation or bit flip in the payload is detected at read time and
surfaces as :class:`TraceError` — which every cache-reading call site
demotes to "discard and rebuild" via :func:`try_read_trace`.  Version 1
files (no checksum) still read for backward compatibility.  Writes go
through a temp file + ``os.replace`` so a crash mid-write can never leave
a half-written file under the final name.
"""

from __future__ import annotations

import io
import os
import struct
import zlib
from pathlib import Path
from typing import BinaryIO

from repro import obs
from repro.common.errors import TraceError
from repro.trace.events import (
    BLOCK_BEGIN,
    BLOCK_END,
    MEMORY_ACCESS,
    BlockBegin,
    BlockEnd,
    MemoryAccess,
)
from repro.trace.stream import Trace

_MAGIC = b"CBWS"
_VERSION = 2
_CHECKSUM_VERSIONS = (2,)

_HEADER = struct.Struct("<4sHH")
_COUNTS = struct.Struct("<QQ")
_CRC = struct.Struct("<I")
_MEM_RECORD = struct.Struct("<BIQQB")  # tag, icount delta, pc, address, is_write
_BLOCK_RECORD = struct.Struct("<BII")  # tag, icount delta, block id


def write_trace(trace: Trace, path: str | Path) -> None:
    """Serialize ``trace`` to ``path`` atomically (temp + rename + fsync)."""
    path = Path(path)
    temporary = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    try:
        with obs.phase("trace.write"), open(temporary, "wb") as handle:
            _write(trace, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, path)
    finally:
        temporary.unlink(missing_ok=True)


def _pack_records(trace: Trace) -> bytes:
    buffer = io.BytesIO()
    last_icount = 0
    for index, event in enumerate(trace.events):
        delta = event.icount - last_icount
        if delta < 0:
            raise TraceError(
                f"event {index}: icount decreases ({event.icount} < "
                f"{last_icount}); cannot serialize a non-monotonic trace"
            )
        last_icount = event.icount
        if event.kind == MEMORY_ACCESS:
            buffer.write(
                _MEM_RECORD.pack(
                    MEMORY_ACCESS,
                    delta,
                    event.pc,  # type: ignore[attr-defined]
                    event.address,  # type: ignore[attr-defined]
                    1 if event.is_write else 0,  # type: ignore[attr-defined]
                )
            )
        elif event.kind in (BLOCK_BEGIN, BLOCK_END):
            buffer.write(
                _BLOCK_RECORD.pack(event.kind, delta, event.block_id)  # type: ignore[attr-defined]
            )
        else:
            raise TraceError(f"unknown event kind {event.kind}")
    return buffer.getvalue()


def _write(trace: Trace, handle: BinaryIO) -> None:
    name_bytes = trace.name.encode("utf-8")
    if len(name_bytes) > 0xFFFF:
        raise TraceError(f"trace name too long to serialize: {trace.name!r}")
    records = _pack_records(trace)
    handle.write(_HEADER.pack(_MAGIC, _VERSION, len(name_bytes)))
    handle.write(name_bytes)
    handle.write(_COUNTS.pack(trace.instructions, len(trace.events)))
    handle.write(_CRC.pack(zlib.crc32(records) & 0xFFFFFFFF))
    handle.write(records)


def read_trace(path: str | Path) -> Trace:
    """Read a trace previously written by :func:`write_trace`.

    Every failure mode — truncated header, short name field, bad
    checksum, garbage bytes that leak a ``struct.error`` — surfaces as
    :class:`TraceError` with the file path in the message, so a corrupt
    cache entry is diagnosable from the error alone.
    """
    with obs.phase("trace.read"), open(path, "rb") as handle:
        try:
            trace = _read(handle)
        except TraceError as error:
            raise TraceError(f"{path}: {error}") from None
        except (struct.error, UnicodeDecodeError) as error:
            # Defensive: garbage length fields can, in principle, drive
            # the decoder into a raw unpack/decode failure; fold it into
            # the typed taxonomy instead of leaking an opaque error.
            raise TraceError(f"{path}: corrupt trace file ({error})") from error
    obs.add("trace.read.events", len(trace.events))
    return trace


def _read(handle: BinaryIO) -> Trace:
    header = handle.read(_HEADER.size)
    if len(header) < _HEADER.size:
        raise TraceError("truncated trace header")
    magic, version, name_length = _HEADER.unpack(header)
    if magic != _MAGIC:
        raise TraceError(f"bad magic {magic!r}; not a CBWS trace file")
    if version not in (1, *_CHECKSUM_VERSIONS):
        raise TraceError(f"unsupported trace version {version}")
    name_bytes = handle.read(name_length)
    if len(name_bytes) < name_length:
        raise TraceError(
            f"truncated trace header: name field declares {name_length} "
            f"byte(s), file has {len(name_bytes)}"
        )
    try:
        name = name_bytes.decode("utf-8")
    except UnicodeDecodeError as error:
        raise TraceError(f"trace name field is not UTF-8 ({error})") from None
    counts = handle.read(_COUNTS.size)
    if len(counts) < _COUNTS.size:
        raise TraceError("truncated trace counts")
    instructions, event_count = _COUNTS.unpack(counts)

    if version in _CHECKSUM_VERSIONS:
        crc_bytes = handle.read(_CRC.size)
        if len(crc_bytes) < _CRC.size:
            raise TraceError("truncated trace checksum")
        (expected_crc,) = _CRC.unpack(crc_bytes)
        records = handle.read()
        if zlib.crc32(records) & 0xFFFFFFFF != expected_crc:
            raise TraceError(
                f"trace payload checksum mismatch for {name!r}: the file "
                "is truncated or corrupt"
            )
        body: BinaryIO = io.BytesIO(records)
    else:
        body = handle

    events = []
    icount = 0
    for _ in range(event_count):
        tag_byte = body.read(1)
        if not tag_byte:
            raise TraceError("trace file truncated mid-stream")
        tag = tag_byte[0]
        if tag == MEMORY_ACCESS:
            payload = body.read(_MEM_RECORD.size - 1)
            if len(payload) < _MEM_RECORD.size - 1:
                raise TraceError("truncated memory access record")
            delta, pc, address, is_write = struct.unpack("<IQQB", payload)
            icount += delta
            events.append(MemoryAccess(icount, pc, address, bool(is_write)))
        elif tag in (BLOCK_BEGIN, BLOCK_END):
            payload = body.read(_BLOCK_RECORD.size - 1)
            if len(payload) < _BLOCK_RECORD.size - 1:
                raise TraceError("truncated block marker record")
            delta, block_id = struct.unpack("<II", payload)
            icount += delta
            cls = BlockBegin if tag == BLOCK_BEGIN else BlockEnd
            events.append(cls(icount, block_id))
        else:
            raise TraceError(f"unknown record tag {tag}")
    return Trace(name, events, instructions)


def try_read_trace(path: str | Path) -> Trace | None:
    """Read a trace, returning None instead of raising on a bad file.

    Covers every way an on-disk cache entry can be unusable — truncated
    mid-stream, garbage bytes, wrong version, checksum mismatch,
    unreadable — so callers can treat all of them uniformly as
    "rebuild it".
    """
    try:
        return read_trace(path)
    except (TraceError, OSError, UnicodeDecodeError, struct.error):
        return None


def verify_trace_file(path: str | Path) -> str | None:
    """Why a trace file is unusable, or None when it verifies cleanly."""
    try:
        read_trace(path)
        return None
    except (TraceError, OSError, UnicodeDecodeError, struct.error) as error:
        return str(error)


def trace_to_bytes(trace: Trace) -> bytes:
    """Serialize a trace to an in-memory byte string (testing helper)."""
    buffer = io.BytesIO()
    _write(trace, buffer)
    return buffer.getvalue()


def trace_from_bytes(data: bytes) -> Trace:
    """Deserialize a trace from bytes produced by :func:`trace_to_bytes`."""
    return _read(io.BytesIO(data))
