"""Columnar (structure-of-arrays) trace event storage.

The simulation engine touches every event of a multi-million-event
trace; a list of per-event ``__slots__`` objects pays an attribute load
and a pointer chase per field per event.  :class:`EventColumns` stores
the same stream as five parallel ``array`` columns, so the engine's fast
path iterates ``zip(kinds, icounts, payload_a, payload_b, flags)`` over
machine-typed buffers with no object construction per event.

Layout (one row per event, columns by event kind):

=============  ==========  ===========  =========
column         MEMORY      BLOCK_BEGIN  BLOCK_END
=============  ==========  ===========  =========
``kinds``      0           1            2
``icounts``    icount      icount       icount
``pcs``        pc          0            0
``payloads``   address     block_id     block_id
``writes``     is_write    0            0
=============  ==========  ===========  =========

The columns are exact: :meth:`EventColumns.iter_events` (the
compatibility iterator) materializes the original event objects on
demand, and ``columns(trace).iter_events()`` round-trips equal to
``trace.events``.  Zero-copy views over the raw buffers are available
via :meth:`EventColumns.views` for consumers that want ``memoryview``
slicing (e.g. chunked serialization) instead of Python-level indexing.
"""

from __future__ import annotations

from array import array
from typing import Iterator, Sequence

from repro.trace.events import (
    BLOCK_BEGIN,
    BLOCK_END,
    MEMORY_ACCESS,
    BlockBegin,
    BlockEnd,
    MemoryAccess,
    TraceEvent,
)


class EventColumns:
    """Parallel typed-array columns of one event stream."""

    __slots__ = ("kinds", "icounts", "pcs", "payloads", "writes")

    def __init__(self, events: Sequence[TraceEvent]) -> None:
        count = len(events)
        self.kinds = array("B", bytes(count))
        self.icounts = array("Q", bytes(8 * count))
        self.pcs = array("Q", bytes(8 * count))
        self.payloads = array("Q", bytes(8 * count))
        self.writes = array("B", bytes(count))
        kinds = self.kinds
        icounts = self.icounts
        pcs = self.pcs
        payloads = self.payloads
        writes = self.writes
        for index, event in enumerate(events):
            kind = event.kind
            kinds[index] = kind
            icounts[index] = event.icount
            if kind == MEMORY_ACCESS:
                pcs[index] = event.pc
                payloads[index] = event.address
                writes[index] = 1 if event.is_write else 0
            else:
                payloads[index] = event.block_id

    def __len__(self) -> int:
        return len(self.kinds)

    def iter_events(self) -> Iterator[TraceEvent]:
        """Compatibility iterator: materialize the original event objects."""
        for kind, icount, pc, payload, write in zip(
            self.kinds, self.icounts, self.pcs, self.payloads, self.writes
        ):
            if kind == MEMORY_ACCESS:
                yield MemoryAccess(icount, pc, payload, bool(write))
            elif kind == BLOCK_BEGIN:
                yield BlockBegin(icount, payload)
            else:
                yield BlockEnd(icount, payload)

    def views(self) -> dict[str, memoryview]:
        """Zero-copy ``memoryview``s over the raw column buffers."""
        return {
            "kinds": memoryview(self.kinds),
            "icounts": memoryview(self.icounts),
            "pcs": memoryview(self.pcs),
            "payloads": memoryview(self.payloads),
            "writes": memoryview(self.writes),
        }


def columns_of(events: Sequence[TraceEvent]) -> EventColumns:
    """Build :class:`EventColumns` from an event list."""
    return EventColumns(events)
