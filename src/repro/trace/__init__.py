"""Commit-order trace substrate.

A trace is the sequence of events the CBWS hardware would observe at the
commit stage of the pipeline (Section V-B: "the prefetcher obtains the
address sequence from the in-order commit stage"):

* :class:`MemoryAccess` — one committed load or store,
* :class:`BlockBegin` / :class:`BlockEnd` — the ``BLOCK_BEGIN(id)`` /
  ``BLOCK_END(id)`` ISA markers inserted by the loop-annotation pass.

Traces are produced by the IR interpreter (:mod:`repro.ir.interp`), can be
serialized to a compact binary format (:mod:`repro.trace.io`), and are
consumed by the simulation engine (:mod:`repro.sim.engine`).
"""

from repro.trace.events import (
    BLOCK_BEGIN,
    BLOCK_END,
    MEMORY_ACCESS,
    BlockBegin,
    BlockEnd,
    MemoryAccess,
    TraceEvent,
)
from repro.trace.stream import Trace, TraceStats
from repro.trace.io import read_trace, write_trace
from repro.trace.synth import AddressSpace, Allocation

__all__ = [
    "MEMORY_ACCESS",
    "BLOCK_BEGIN",
    "BLOCK_END",
    "TraceEvent",
    "MemoryAccess",
    "BlockBegin",
    "BlockEnd",
    "Trace",
    "TraceStats",
    "read_trace",
    "write_trace",
    "AddressSpace",
    "Allocation",
]
