"""Trace event types.

Events use ``__slots__`` classes rather than dataclasses: traces run to
millions of events and the simulation loop touches every one, so compact
objects with cheap attribute access matter.
"""

from __future__ import annotations

from repro.common.constants import LINE_SHIFT

#: Event kind discriminators (also used as record tags in the binary format).
MEMORY_ACCESS = 0
BLOCK_BEGIN = 1
BLOCK_END = 2


class TraceEvent:
    """Base class for all trace events.

    Attributes:
        kind: one of :data:`MEMORY_ACCESS`, :data:`BLOCK_BEGIN`,
            :data:`BLOCK_END`.
        icount: number of instructions committed *before* this event.
            Monotonically non-decreasing along a trace; the timing model
            uses it to convert instruction progress into cycles.
    """

    __slots__ = ("icount",)
    kind: int = -1

    def __init__(self, icount: int) -> None:
        self.icount = icount


class MemoryAccess(TraceEvent):
    """A committed load or store.

    Attributes:
        pc: static instruction identifier.  The IR interpreter assigns a
            unique pc to every static load/store node, mirroring the
            program counter hardware prefetchers key on.
        address: byte address accessed.
        is_write: True for stores.
    """

    __slots__ = ("pc", "address", "is_write")
    kind = MEMORY_ACCESS

    def __init__(self, icount: int, pc: int, address: int, is_write: bool) -> None:
        super().__init__(icount)
        self.pc = pc
        self.address = address
        self.is_write = is_write

    @property
    def line(self) -> int:
        """Cache line number of the accessed address."""
        return self.address >> LINE_SHIFT

    def __repr__(self) -> str:
        op = "ST" if self.is_write else "LD"
        return f"{op}(i={self.icount}, pc={self.pc:#x}, addr={self.address:#x})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, MemoryAccess)
            and self.icount == other.icount
            and self.pc == other.pc
            and self.address == other.address
            and self.is_write == other.is_write
        )

    def __hash__(self) -> int:
        return hash((self.icount, self.pc, self.address, self.is_write))


class _BlockMarker(TraceEvent):
    """Common shape of the two block-boundary markers."""

    __slots__ = ("block_id",)

    def __init__(self, icount: int, block_id: int) -> None:
        super().__init__(icount)
        self.block_id = block_id

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is type(self)
            and self.icount == other.icount
            and self.block_id == other.block_id
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.icount, self.block_id))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(i={self.icount}, block={self.block_id})"


class BlockBegin(_BlockMarker):
    """``BLOCK_BEGIN(id)`` — a tagged loop iteration starts."""

    __slots__ = ()
    kind = BLOCK_BEGIN


class BlockEnd(_BlockMarker):
    """``BLOCK_END(id)`` — the tagged loop iteration completed."""

    __slots__ = ()
    kind = BLOCK_END
