"""repro — a full reproduction of "Loop-Aware Memory Prefetching Using
Code Block Working Sets" (Fuchs, Mannor, Weiser, Etsion; MICRO 2014).

The package implements the paper's contribution — the CBWS prefetcher —
together with every substrate its evaluation depends on: a loop-kernel
IR with an annotating compiler pass, a trace format, a two-level cache
hierarchy, the Stride/GHB/SMS comparison prefetchers, a trace-driven
timing model, 30 benchmark kernels, and an experiment harness that
regenerates each table and figure.

Quickstart::

    from repro import GridRunner, experiments

    runner = GridRunner()                    # reduced Table II machine
    fig14 = experiments.figure14(runner)     # the headline speedup plot
    print(fig14.render())

See ``examples/`` for runnable walkthroughs and DESIGN.md for the system
inventory.
"""

from repro.core import (
    CbwsConfig,
    CbwsPredictor,
    CbwsPrefetcher,
    CbwsSmsPrefetcher,
    CodeBlockWorkingSet,
    differential,
)
from repro.harness import (
    GridRunner,
    PAPER_PREFETCHER_ORDER,
    experiments,
    make_prefetcher,
    run_grid,
)
from repro.memory import CacheConfig, CacheHierarchy, HierarchyConfig
from repro.prefetchers import (
    GhbConfig,
    GhbPrefetcher,
    NoPrefetcher,
    Prefetcher,
    SmsConfig,
    SmsPrefetcher,
    StrideConfig,
    StridePrefetcher,
)
from repro.sim import (
    PAPER_CONFIG,
    REDUCED_CONFIG,
    SimConfig,
    SimResult,
    simulate,
)
from repro.workloads import (
    ALL_WORKLOADS,
    LOW_WORKLOADS,
    MI_WORKLOADS,
    build_trace,
    get_workload,
)

def _detect_version() -> str:
    """Installed distribution version, falling back for src checkouts.

    ``PYTHONPATH=src`` runs (tests, CI) have no installed distribution,
    so the fallback literal below must track ``pyproject.toml``.
    """
    from importlib.metadata import PackageNotFoundError, version

    try:
        return version("repro")
    except PackageNotFoundError:
        return "1.0.0"


__version__ = _detect_version()

__all__ = [
    "__version__",
    # core contribution
    "CodeBlockWorkingSet",
    "differential",
    "CbwsConfig",
    "CbwsPredictor",
    "CbwsPrefetcher",
    "CbwsSmsPrefetcher",
    # prefetchers
    "Prefetcher",
    "NoPrefetcher",
    "StrideConfig",
    "StridePrefetcher",
    "GhbConfig",
    "GhbPrefetcher",
    "SmsConfig",
    "SmsPrefetcher",
    # memory + sim
    "CacheConfig",
    "HierarchyConfig",
    "CacheHierarchy",
    "SimConfig",
    "SimResult",
    "PAPER_CONFIG",
    "REDUCED_CONFIG",
    "simulate",
    # workloads + harness
    "ALL_WORKLOADS",
    "MI_WORKLOADS",
    "LOW_WORKLOADS",
    "get_workload",
    "build_trace",
    "GridRunner",
    "run_grid",
    "make_prefetcher",
    "PAPER_PREFETCHER_ORDER",
    "experiments",
]
