"""Performance/cost (Figure 15).

The paper contrasts performance with the memory traffic it cost:
``IPC / bytes read``, normalized so that the no-prefetch configuration
scores exactly 1.0.  A prefetcher below 1.0 bought its speed with
disproportionate bandwidth (the paper's stencil example) or slowed the
machine down outright.
"""

from __future__ import annotations

from typing import Sequence

from repro.common.errors import ConfigError
from repro.metrics.aggregate import ResultGrid, geometric_mean


def perf_cost(grid: ResultGrid, workload: str, prefetcher: str,
              baseline: str = "no-prefetch") -> float:
    """(IPC / bytes) of ``prefetcher`` relative to ``baseline``."""
    result = grid.get(workload, prefetcher)
    base = grid.get(workload, baseline)
    if result.bytes_read <= 0 or base.bytes_read <= 0 or base.ipc <= 0:
        raise ConfigError(
            f"degenerate bytes/IPC for perf-cost on {workload!r}"
        )
    ratio = result.ipc / result.bytes_read
    base_ratio = base.ipc / base.bytes_read
    return ratio / base_ratio


def perf_cost_table(
    grid: ResultGrid,
    baseline: str = "no-prefetch",
    workloads: Sequence[str] | None = None,
) -> dict[str, dict[str, float]]:
    """Per-workload performance/cost plus geometric-mean ``average``."""
    selected = list(workloads) if workloads is not None else grid.workloads
    table: dict[str, dict[str, float]] = {}
    for workload in selected:
        if not grid.has(workload, baseline):
            # A DEGRADED baseline leaves nothing to normalize against;
            # the whole row becomes an explicit hole.
            table[workload] = {}
            continue
        table[workload] = {
            prefetcher: perf_cost(grid, workload, prefetcher, baseline)
            for prefetcher in grid.prefetchers
            if grid.has(workload, prefetcher)
        }
    table["average"] = {
        prefetcher: geometric_mean(
            [table[workload][prefetcher] for workload in selected
             if prefetcher in table[workload]]
        )
        for prefetcher in grid.prefetchers
    }
    return table
