"""Evaluation metrics over simulation results.

Turns lists of :class:`~repro.sim.results.SimResult` into the quantities
the paper plots: MPKI (Figure 12), the timeliness/accuracy decomposition
(Figure 13), IPC normalized to SMS (Figure 14), and performance/cost
(Figure 15).
"""

from repro.metrics.aggregate import (
    ResultGrid,
    arithmetic_mean,
    geometric_mean,
)
from repro.metrics.speedup import normalized_ipc, speedup_table
from repro.metrics.perfcost import perf_cost, perf_cost_table
from repro.metrics.timeliness import TimelinessBreakdown, timeliness_breakdown

__all__ = [
    "ResultGrid",
    "arithmetic_mean",
    "geometric_mean",
    "normalized_ipc",
    "speedup_table",
    "perf_cost",
    "perf_cost_table",
    "TimelinessBreakdown",
    "timeliness_breakdown",
]
