"""Result aggregation: the (workload x prefetcher) grid.

Every evaluation figure is a view over the same grid of simulation
results; :class:`ResultGrid` indexes it both ways and owns the averaging
conventions (arithmetic means for additive quantities like MPKI,
geometric means for ratios like speedups).
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Sequence

from repro.common.errors import ConfigError
from repro.sim.results import SimResult


def arithmetic_mean(values: Sequence[float]) -> float:
    """Plain average; 0.0 for an empty sequence."""
    if not values:
        return 0.0
    return sum(values) / len(values)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, appropriate for averaging normalized ratios."""
    if not values:
        return 0.0
    if any(value <= 0 for value in values):
        raise ConfigError("geometric mean requires positive values")
    return math.exp(sum(math.log(value) for value in values) / len(values))


class ResultGrid:
    """A set of results indexed by (workload, prefetcher).

    Cells that execution could not produce (quarantined or
    circuit-breaker DEGRADED) can be registered via ``degraded``: they
    keep their place in the workload/prefetcher ordering, ``get``
    returns an explicit NaN-metric placeholder for them (rendered as
    ``DEGRADED`` by the report layer), and the averaging helpers skip
    them so one broken workload cannot poison a mean.
    """

    def __init__(
        self,
        results: Iterable[SimResult],
        degraded: Iterable[tuple[str, str]] = (),
    ) -> None:
        self._by_key: dict[tuple[str, str], SimResult] = {}
        self._degraded: dict[tuple[str, str], SimResult] = {}
        self.workloads: list[str] = []
        self.prefetchers: list[str] = []
        for result in results:
            key = (result.workload, result.prefetcher)
            if key in self._by_key:
                raise ConfigError(
                    f"duplicate result for workload={result.workload!r} "
                    f"prefetcher={result.prefetcher!r}"
                )
            self._by_key[key] = result
            self._remember_axes(result.workload, result.prefetcher)
        for workload, prefetcher in degraded:
            key = (workload, prefetcher)
            if key in self._by_key:
                continue
            self._degraded[key] = SimResult.degraded_cell(workload, prefetcher)
            self._remember_axes(workload, prefetcher)

    def _remember_axes(self, workload: str, prefetcher: str) -> None:
        if workload not in self.workloads:
            self.workloads.append(workload)
        if prefetcher not in self.prefetchers:
            self.prefetchers.append(prefetcher)

    def get(self, workload: str, prefetcher: str) -> SimResult:
        """The result for one grid cell; raises if missing.

        Degraded cells return their placeholder (``result.degraded`` is
        True and every metric is NaN) rather than raising, so report
        code can render the hole explicitly.
        """
        key = (workload, prefetcher)
        result = self._by_key.get(key)
        if result is not None:
            return result
        placeholder = self._degraded.get(key)
        if placeholder is not None:
            return placeholder
        raise ConfigError(
            f"no result for workload={workload!r} prefetcher={prefetcher!r}"
        )

    def has(self, workload: str, prefetcher: str) -> bool:
        """True when a *real* result exists for the cell (not a
        DEGRADED placeholder)."""
        return (workload, prefetcher) in self._by_key

    def is_degraded(self, workload: str, prefetcher: str) -> bool:
        """True when the cell is an explicit DEGRADED hole."""
        return (workload, prefetcher) in self._degraded

    @property
    def degraded_cells(self) -> list[tuple[str, str]]:
        """Every registered DEGRADED hole, in insertion order."""
        return list(self._degraded)

    def column(self, prefetcher: str) -> list[SimResult]:
        """All results for one prefetcher, in workload order."""
        return [
            self.get(workload, prefetcher)
            for workload in self.workloads
            if self.has(workload, prefetcher)
        ]

    def metric_row(
        self, workload: str, metric: Callable[[SimResult], float]
    ) -> dict[str, float]:
        """metric per prefetcher for one workload."""
        return {
            prefetcher: metric(self.get(workload, prefetcher))
            for prefetcher in self.prefetchers
            if self.has(workload, prefetcher)
        }

    def metric_average(
        self,
        prefetcher: str,
        metric: Callable[[SimResult], float],
        mean: Callable[[Sequence[float]], float] = arithmetic_mean,
        workloads: Sequence[str] | None = None,
    ) -> float:
        """Average of a metric over workloads for one prefetcher."""
        selected = workloads if workloads is not None else self.workloads
        values = [
            metric(self.get(workload, prefetcher))
            for workload in selected
            if self.has(workload, prefetcher)
        ]
        return mean(values)

    def __len__(self) -> int:
        return len(self._by_key)

    def __iter__(self):
        return iter(self._by_key.values())
