"""IPC normalization (Figure 14).

The paper presents performance as IPC normalized to the SMS prefetcher,
"since it is the best performing non-CBWS prefetcher".
"""

from __future__ import annotations

from typing import Sequence

from repro.common.errors import ConfigError
from repro.metrics.aggregate import ResultGrid, geometric_mean


def normalized_ipc(grid: ResultGrid, workload: str, prefetcher: str,
                   baseline: str = "sms") -> float:
    """IPC of ``prefetcher`` over IPC of ``baseline`` on one workload."""
    base = grid.get(workload, baseline).ipc
    if base <= 0:
        raise ConfigError(
            f"baseline {baseline!r} has non-positive IPC on {workload!r}"
        )
    return grid.get(workload, prefetcher).ipc / base


def speedup_table(
    grid: ResultGrid,
    baseline: str = "sms",
    workloads: Sequence[str] | None = None,
) -> dict[str, dict[str, float]]:
    """Normalized IPC for every (workload, prefetcher) cell plus an
    ``average`` row (geometric mean over workloads, the convention for
    averaging ratios)."""
    selected = list(workloads) if workloads is not None else grid.workloads
    table: dict[str, dict[str, float]] = {}
    for workload in selected:
        if not grid.has(workload, baseline):
            # A DEGRADED baseline leaves nothing to normalize against;
            # the whole row becomes an explicit hole.
            table[workload] = {}
            continue
        table[workload] = {
            prefetcher: normalized_ipc(grid, workload, prefetcher, baseline)
            for prefetcher in grid.prefetchers
            if grid.has(workload, prefetcher)
        }
    table["average"] = {
        prefetcher: geometric_mean(
            [table[workload][prefetcher] for workload in selected
             if prefetcher in table[workload]]
        )
        for prefetcher in grid.prefetchers
    }
    return table
