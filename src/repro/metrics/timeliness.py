"""Timeliness and accuracy decomposition (Figure 13).

Expresses every demand L2 access as one of the five scenarios of
Section VII-B — timely, shorter-waiting-time, non-timely, missing,
wrong — scaled to the percentage of demand L2 accesses (wrong prefetches
are additional traffic, so they stack beyond 100% exactly as the figure
draws them).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.results import DemandClass, SimResult


@dataclass(frozen=True)
class TimelinessBreakdown:
    """One stacked bar of Figure 13 (fractions of demand L2 accesses).

    ``plain_hit`` is the remainder the paper does not attribute to the
    prefetcher (ordinary L2 hits); the five paper categories plus
    ``plain_hit`` sum to 1.0, with ``wrong`` stacked on top.
    """

    workload: str
    prefetcher: str
    timely: float
    shorter_waiting: float
    non_timely: float
    missing: float
    plain_hit: float
    wrong: float

    @property
    def covered(self) -> float:
        """Fraction of demand L2 accesses the prefetcher helped
        (timely + shorter-waiting-time)."""
        return self.timely + self.shorter_waiting


def timeliness_breakdown(result: SimResult) -> TimelinessBreakdown:
    """Compute the Figure 13 stacked-bar fractions for one result."""
    return TimelinessBreakdown(
        workload=result.workload,
        prefetcher=result.prefetcher,
        timely=result.class_fraction(DemandClass.TIMELY),
        shorter_waiting=result.class_fraction(DemandClass.SHORTER_WAITING),
        non_timely=result.class_fraction(DemandClass.NON_TIMELY),
        missing=result.class_fraction(DemandClass.MISSING),
        plain_hit=result.class_fraction(DemandClass.PLAIN_HIT),
        wrong=result.wrong_fraction,
    )
