"""The paper's contribution: the code block working set (CBWS) prefetcher.

Layering, bottom-up:

* :mod:`repro.core.cbws` — the CBWS / differential algebra of Section IV
  (Equations 1 and 2, Table I);
* :mod:`repro.core.buffers` — the per-block hardware buffers of Figure 8
  (current-CBWS FIFO, predecessor CBWSs, incremental differentials);
* :mod:`repro.core.history` — the history shift registers and the
  16-entry differential history table;
* :mod:`repro.core.predictor` — Algorithm 1, tying the structures into
  the BLOCK_BEGIN / MEMORY_ACCESS / BLOCK_END protocol;
* :mod:`repro.core.prefetcher` — the standalone CBWS prefetcher
  (prefetch only on a history-table hit);
* :mod:`repro.core.hybrid` — CBWS+SMS, falling back to spatial memory
  streaming when the CBWS predictor has no confident prediction.
"""

from repro.core.cbws import CodeBlockWorkingSet, differential
from repro.core.buffers import CurrentCbwsBuffer, LastBlocksBuffer
from repro.core.history import (
    DifferentialHistoryTable,
    HistoryShiftRegister,
    hash_differential,
)
from repro.core.predictor import CbwsConfig, CbwsPredictor, PredictorStats
from repro.core.prefetcher import CbwsPrefetcher
from repro.core.hybrid import CbwsSmsPrefetcher

__all__ = [
    "CodeBlockWorkingSet",
    "differential",
    "CurrentCbwsBuffer",
    "LastBlocksBuffer",
    "HistoryShiftRegister",
    "DifferentialHistoryTable",
    "hash_differential",
    "CbwsConfig",
    "CbwsPredictor",
    "PredictorStats",
    "CbwsPrefetcher",
    "CbwsSmsPrefetcher",
]
