"""CBWS hardware buffers (Figure 8, left side).

Two structures track working sets across block instances:

* :class:`CurrentCbwsBuffer` — the FIFO building the working set of the
  block that is executing right now, holding the low 32 bits of up to 16
  line addresses;
* :class:`LastBlocksBuffer` — the four predecessor CBWSs, against which
  the incremental differentials are computed on every memory access.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.common.bitops import mask
from repro.common.errors import ConfigError
from repro.core.cbws import CodeBlockWorkingSet


class CurrentCbwsBuffer:
    """The current-CBWS FIFO.

    Line addresses are truncated to ``line_addr_bits`` before storage,
    modelling the 32-bit fields of Figure 8.  ``push`` returns the
    position at which a new line was appended (the ``idx`` of
    Algorithm 1) or ``None`` when the line was already present or the
    buffer is full.
    """

    def __init__(self, capacity: int = 16, line_addr_bits: int = 32) -> None:
        if capacity <= 0:
            raise ConfigError("current CBWS buffer needs positive capacity")
        self.capacity = capacity
        self._addr_mask = mask(line_addr_bits)
        self._cbws = CodeBlockWorkingSet(max_members=capacity)

    def push(self, line: int) -> int | None:
        """Observe a memory access inside the current block."""
        truncated = line & self._addr_mask
        before = len(self._cbws)
        if self._cbws.observe(truncated):
            return before
        return None

    def clear(self) -> None:
        """BLOCK_BEGIN: start tracing a fresh working set."""
        self._cbws = CodeBlockWorkingSet(max_members=self.capacity)

    def snapshot(self) -> tuple[int, ...]:
        """The working set accumulated so far."""
        return self._cbws.as_tuple()

    @property
    def overflowed(self) -> bool:
        """True when the block touched more distinct lines than fit."""
        return self._cbws.overflowed

    def __len__(self) -> int:
        return len(self._cbws)

    def __getitem__(self, index: int) -> int:
        return self._cbws[index]


class LastBlocksBuffer:
    """The predecessor-CBWS store ("Last blocks CBWS buffer", Figure 8).

    ``get(1)`` is the most recently completed block, ``get(k)`` the block
    ``k`` completions ago, up to ``max_step`` (4 in the paper).  Entries
    are CBWS tuples already truncated by the current-CBWS buffer.
    """

    def __init__(self, max_step: int = 4) -> None:
        if max_step <= 0:
            raise ConfigError("last-blocks buffer needs positive depth")
        self.max_step = max_step
        self._blocks: deque[tuple[int, ...]] = deque(maxlen=max_step)

    def push(self, cbws: tuple[int, ...]) -> None:
        """BLOCK_END: the completed working set becomes predecessor #1."""
        self._blocks.appendleft(cbws)

    def get(self, step: int) -> tuple[int, ...] | None:
        """CBWS of the block ``step`` completions back, or None."""
        if not 1 <= step <= self.max_step:
            raise ConfigError(
                f"step {step} outside [1, {self.max_step}]"
            )
        if step > len(self._blocks):
            return None
        return self._blocks[step - 1]

    def clear(self) -> None:
        """Drop all predecessor history (block id changed)."""
        self._blocks.clear()

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self._blocks)
