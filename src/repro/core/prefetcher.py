"""The standalone CBWS prefetcher.

Deployment mode #1 of Section VII: "prefetch operations are issued only
if there is a hit in the CBWS history table.  On a miss, no prefetch is
issued."  The hit/miss gating is inherent to the predictor — a
shift-register tag that misses the table yields no candidates.

The compiler hints let the prefetcher be aggressive exactly where it is
safe: it observes *all* L1 accesses (hits included) but only inside
annotated blocks, and it issues an entire working set per prediction.
"""

from __future__ import annotations

from repro.core.predictor import CbwsConfig, CbwsPredictor
from repro.prefetchers.base import DemandInfo, Prefetcher
from repro.prefetchers.storage import cbws_storage


class CbwsPrefetcher(Prefetcher):
    """Standalone code-block-working-set prefetcher."""

    name = "cbws"

    def __init__(self, config: CbwsConfig | None = None) -> None:
        self.config = config or CbwsConfig()
        self.predictor = CbwsPredictor(self.config)
        self._in_block = False

    def on_block_begin(self, block_id: int) -> None:
        self.predictor.block_begin(block_id)
        self._in_block = True

    def on_access(self, info: DemandInfo) -> list[int]:
        # Compiler annotations focus tracking on tight loops: accesses
        # outside a block are invisible to the CBWS hardware.
        if self._in_block:
            self.predictor.memory_access(info.line)
        return []

    def on_block_end(self, block_id: int) -> list[int]:
        self._in_block = False
        return self.predictor.block_end()

    @property
    def confident(self) -> bool:
        """True when the last BLOCK_END hit the history table."""
        return self.predictor.confident

    @property
    def covers_full_working_set(self) -> bool:
        """False when the last block overflowed the 16-line buffer, in
        which case any prediction covers only a prefix of the block."""
        return not self.predictor.last_block_overflowed

    def storage_bits(self) -> int:
        return cbws_storage(self.config).bits

    def reset(self) -> None:
        self.predictor.reset()
        self._in_block = False
