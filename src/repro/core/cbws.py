"""CBWS and CBWS-differential algebra (Section IV-B).

A code block working set is "a time-ordered set of unique line
addresses" (Equation 1): the cache lines a single loop iteration touches,
in first-touch order, with duplicates removed.  A CBWS *differential* is
the element-wise subtraction of two CBWS vectors (Equation 2); when the
two working sets have different lengths (branch divergence inside the
loop), they are aligned and the differential takes the shorter length.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence


class CodeBlockWorkingSet:
    """The ordered vector of distinct cache lines touched by one block.

    Construction is incremental, mirroring the hardware FIFO: ``observe``
    appends a line the first time it is seen and ignores repeats.  The
    optional ``max_members`` cap models the 16-entry hardware buffer —
    lines beyond the cap are dropped, which is exactly why the paper's
    bzip2 (hundreds of lines per block) defeats the CBWS prefetcher.
    """

    __slots__ = ("_lines", "_members", "max_members", "overflowed")

    def __init__(
        self,
        lines: Iterable[int] = (),
        max_members: int | None = None,
    ) -> None:
        self._lines: list[int] = []
        self._members: set[int] = set()
        self.max_members = max_members
        #: True when at least one distinct line was dropped by the cap.
        self.overflowed = False
        for line in lines:
            self.observe(line)

    def observe(self, line: int) -> bool:
        """Record an access; returns True when the line was newly added."""
        if line in self._members:
            return False
        if self.max_members is not None and len(self._lines) >= self.max_members:
            self.overflowed = True
            return False
        self._members.add(line)
        self._lines.append(line)
        return True

    def as_tuple(self) -> tuple[int, ...]:
        """The working set as an immutable vector."""
        return tuple(self._lines)

    def __len__(self) -> int:
        return len(self._lines)

    def __iter__(self) -> Iterator[int]:
        return iter(self._lines)

    def __getitem__(self, index: int) -> int:
        return self._lines[index]

    def __contains__(self, line: int) -> bool:
        return line in self._members

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CodeBlockWorkingSet):
            return self._lines == other._lines
        if isinstance(other, (tuple, list)):
            return self._lines == list(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(tuple(self._lines))

    def __repr__(self) -> str:
        return f"CBWS({self._lines})"


def differential(
    older: "Sequence[int] | CodeBlockWorkingSet",
    newer: "Sequence[int] | CodeBlockWorkingSet",
) -> tuple[int, ...]:
    """Element-wise stride vector Δ = newer - older (Equation 2).

    Working sets of different sizes are aligned from the front and the
    differential takes the size of the smaller one, as specified in
    Section IV-B for branch-divergent iterations.

    >>> differential((80, 81, 6515), (80, 81, 7539))
    (0, 0, 1024)
    """
    length = min(len(older), len(newer))
    return tuple(newer[i] - older[i] for i in range(length))


def apply_differential(
    base: "Sequence[int] | CodeBlockWorkingSet",
    delta: Sequence[int],
) -> tuple[int, ...]:
    """Predict a future CBWS: ``base[i] + delta[i]`` over the aligned
    prefix.  This is the vector addition of step #4 in Figure 11."""
    length = min(len(base), len(delta))
    return tuple(base[i] + delta[i] for i in range(length))
