"""Algorithm 1: differential CBWS prediction.

The predictor receives the three hardware events — ``BLOCK_BEGIN``,
``MEMORY_ACCESS`` (for accesses committed inside a block) and
``BLOCK_END`` — and maintains the Figure 8 structures:

* on ``BLOCK_BEGIN`` the current-CBWS tracing is reset;
* on each ``MEMORY_ACCESS`` the line is pushed into the current CBWS and
  the k-step differential entries are generated *incrementally* against
  the k-th predecessor CBWS ("the history differentials are generated
  progressively with each memory access, so the predictor requires only
  4 adders");
* on ``BLOCK_END`` the differential history table is trained with the
  completed differentials (keyed by the pre-update shift-register tags),
  the shift registers advance, the completed CBWS becomes predecessor #1,
  and the table is probed for the differentials that predict the next
  blocks — the sum ``CBWS + Δ`` is the predicted working set (Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.bitops import mask
from repro.common.constants import (
    CBWS_HASH_BITS,
    CBWS_LINE_ADDR_BITS,
    CBWS_STRIDE_BITS,
)
from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng
from repro.core.buffers import CurrentCbwsBuffer, LastBlocksBuffer
from repro.core.history import (
    DifferentialHistoryTable,
    HistoryShiftRegister,
    hash_differential,
)


@dataclass(frozen=True)
class CbwsConfig:
    """CBWS prefetcher geometry (Table II values as defaults).

    Attributes:
        max_vector_members: CBWS buffer depth (16 lines; Section IV-A
            reports 16 lines cover >98 % of dynamic blocks).
        max_step: predecessor CBWSs kept, and differential steps computed.
        predict_steps: how many future blocks are predicted at BLOCK_END.
            The default uses all ``max_step`` differential registers —
            the multi-step lookahead Section IV-C introduces to mitigate
            the BLOCK_END timing constraint.
        history_depth: shift-register depth (3-deep differential history).
        table_entries: differential history table capacity.
        stride_bits / hash_bits / tag_bits / line_addr_bits: field widths.
        seed: RNG seed for the table's random replacement.
    """

    max_vector_members: int = 16
    max_step: int = 4
    predict_steps: int = 4
    history_depth: int = 3
    table_entries: int = 16
    stride_bits: int = CBWS_STRIDE_BITS
    hash_bits: int = CBWS_HASH_BITS
    tag_bits: int = 16
    line_addr_bits: int = CBWS_LINE_ADDR_BITS
    seed: int = 0xCB35

    def __post_init__(self) -> None:
        if self.max_step <= 0:
            raise ConfigError("cbws: max_step must be positive")
        if not 1 <= self.predict_steps <= self.max_step:
            raise ConfigError(
                f"cbws: predict_steps {self.predict_steps} outside "
                f"[1, max_step={self.max_step}]"
            )
        if self.max_vector_members <= 0:
            raise ConfigError("cbws: vector capacity must be positive")


@dataclass
class PredictorStats:
    """Observable behaviour of the predictor, used by tests and reports."""

    blocks_completed: int = 0
    blocks_overflowed: int = 0
    predictions_made: int = 0
    lines_predicted: int = 0
    table_lookups: int = 0
    table_hits: int = 0

    @property
    def hit_rate(self) -> float:
        """History-table hit rate over prediction lookups."""
        if self.table_lookups == 0:
            return 0.0
        return self.table_hits / self.table_lookups


class CbwsPredictor:
    """The CBWS differential predictor of Algorithm 1."""

    def __init__(self, config: CbwsConfig | None = None) -> None:
        self.config = config or CbwsConfig()
        config = self.config
        self.current = CurrentCbwsBuffer(
            config.max_vector_members, config.line_addr_bits
        )
        self.last_blocks = LastBlocksBuffer(config.max_step)
        self.shift_registers = [
            HistoryShiftRegister(config.history_depth, config.hash_bits)
            for _ in range(config.max_step)
        ]
        self.table = DifferentialHistoryTable(
            config.table_entries,
            config.tag_bits,
            DeterministicRng(config.seed),
        )
        self.stats = PredictorStats()
        self._current_diffs: list[list[int]] = [[] for _ in range(config.max_step)]
        self._block_id: int | None = None
        self._line_mask = mask(config.line_addr_bits)
        # Precomputed truncate/sign-extend constants for the per-access
        # differential: sign_extend(bit_select(raw, b), b) is equivalent
        # to ((raw & mask) ^ sign_bit) - sign_bit, with no calls.
        self._stride_mask = mask(config.stride_bits)
        self._stride_sign = 1 << (config.stride_bits - 1)
        #: Whether the most recent BLOCK_END produced at least one
        #: table-hit prediction; the hybrid policy keys off this.
        self.confident = False
        #: Whether the most recent completed block overflowed the CBWS
        #: buffer (more distinct lines than fit).  An overflowed block's
        #: prediction covers only a prefix of the working set, so the
        #: hybrid must not let it silence SMS (the bzip2 case).
        self.last_block_overflowed = False

    # -- event protocol ----------------------------------------------------

    def block_begin(self, block_id: int) -> None:
        """BLOCK_BEGIN(id): reset per-block tracing.

        A change of static block id means a different loop is now
        executing; predecessor CBWSs and shift registers of the old loop
        are meaningless for it, so the cross-block history is flushed
        (the hardware holds a single context, Section V-A).
        """
        if block_id != self._block_id:
            self.last_blocks.clear()
            for register in self.shift_registers:
                register.clear()
            for diffs in self._current_diffs:
                diffs.clear()
            self._block_id = block_id
            self.confident = False
        self.current.clear()
        for diffs in self._current_diffs:
            diffs.clear()

    def memory_access(self, line: int) -> None:
        """A load/store committed inside the current block."""
        index = self.current.push(line)
        if index is None:
            return  # repeated line, or the 16-entry buffer is full
        truncated = line & self._line_mask
        stride_mask = self._stride_mask
        stride_sign = self._stride_sign
        current_diffs = self._current_diffs
        # Predecessor k (1-based step) sits at deque position k-1; missing
        # predecessors simply end the iteration.
        for position, predecessor in enumerate(self.last_blocks._blocks):
            if index >= len(predecessor):
                continue
            diffs = current_diffs[position]
            if len(diffs) == index:  # keep element positions aligned
                raw = (truncated - predecessor[index]) & stride_mask
                diffs.append((raw ^ stride_sign) - stride_sign)

    def block_end(self) -> list[int]:
        """BLOCK_END: train, rotate history, and predict future CBWSs.

        Returns the list of predicted lines for the next
        ``predict_steps`` block instances (duplicates removed, order
        preserved).  Empty when no shift-register tag hits the table —
        the standalone prefetcher stays silent in that case.
        """
        config = self.config
        completed = self.current.snapshot()
        self.stats.blocks_completed += 1
        self.last_block_overflowed = self.current.overflowed
        if self.current.overflowed:
            self.stats.blocks_overflowed += 1

        # 1. Train: store each completed differential under the tag of the
        #    *pre-update* history, then shift the new differential in.
        for step in range(config.max_step):
            diffs = self._current_diffs[step]
            if diffs:
                self.table.insert(self.shift_registers[step].tag(config.tag_bits),
                                  diffs)
            self.shift_registers[step].shift(
                hash_differential(diffs, config.hash_bits)
            )

        # 2. Rotate: the completed CBWS becomes predecessor #1.
        if completed:
            self.last_blocks.push(completed)

        # 3. Predict the next blocks with the updated history tags.
        candidates: list[int] = []
        seen: set[int] = set()
        any_hit = False
        for step in range(1, config.predict_steps + 1):
            tag = self.shift_registers[step - 1].tag(config.tag_bits)
            self.stats.table_lookups += 1
            predicted = self.table.lookup(tag)
            if predicted is None:
                continue
            self.stats.table_hits += 1
            any_hit = True
            # A k-step differential already spans k block instances, so
            # base + delta predicts the CBWS k blocks ahead (Figure 7).
            for position in range(min(len(completed), len(predicted))):
                line = (completed[position] + predicted[position]) \
                    & self._line_mask
                if line not in seen:
                    seen.add(line)
                    candidates.append(line)
        self.confident = any_hit
        if candidates:
            self.stats.predictions_made += 1
            self.stats.lines_predicted += len(candidates)

        # 4. Reset per-block tracing for safety (BLOCK_BEGIN does it too).
        self.current.clear()
        for diffs in self._current_diffs:
            diffs.clear()
        return candidates

    def reset(self) -> None:
        """Drop every piece of learned state."""
        self.current.clear()
        self.last_blocks.clear()
        for register in self.shift_registers:
            register.clear()
        self.table.clear()
        for diffs in self._current_diffs:
            diffs.clear()
        self.stats = PredictorStats()
        self._block_id = None
        self.confident = False
