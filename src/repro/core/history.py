"""Differential history tracking (Figure 8, right side).

Per prediction step the hardware keeps a *history shift register* — a
3-deep shift register of 12-bit differential hashes, functionally similar
to a branch history register but shifting CBWS differentials instead of
branch outcomes.  The registers index the 16-entry, fully-associative
*differential history table*, whose concatenated bits are XOR-folded
into a 16-bit tag and whose eviction policy is random (Table II).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Sequence

from repro.common.bitops import bit_select, fold_xor, mask
from repro.common.constants import CBWS_HASH_BITS
from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng, named_stream


def hash_differential(delta: Sequence[int], hash_bits: int = CBWS_HASH_BITS) -> int:
    """Compress a differential vector to ``hash_bits`` bits.

    The paper stores "12 bits extracted from the original differential
    (bit-select hashing)".  We fold the 16-bit two's-complement elements
    together with a positional rotation (so permuted vectors hash apart)
    and bit-select the low 12 bits.  An empty differential hashes to a
    reserved all-ones value so it never aliases a real pattern.
    """
    if not delta:
        return mask(hash_bits)
    folded = len(delta)
    for position, element in enumerate(delta):
        encoded = element & 0xFFFF  # 16-bit two's complement stride
        rotation = (position * 5) % 16  # rotate within the 16-bit field
        rotated = ((encoded << rotation) | (encoded >> (16 - rotation))) \
            & 0xFFFFFFFF
        folded ^= rotated
    return bit_select(fold_xor(folded, hash_bits), hash_bits)


class HistoryShiftRegister:
    """A ``depth``-deep shift register of hashed differentials."""

    def __init__(self, depth: int = 3, hash_bits: int = CBWS_HASH_BITS) -> None:
        if depth <= 0:
            raise ConfigError("history shift register needs positive depth")
        self.depth = depth
        self.hash_bits = hash_bits
        self._values: deque[int] = deque(maxlen=depth)
        self._tag_cache: dict[int, int] = {}

    def shift(self, hashed: int) -> None:
        """Shift in the newest hashed differential."""
        self._values.append(bit_select(hashed, self.hash_bits))
        self._tag_cache.clear()

    def tag(self, tag_bits: int = 16) -> int:
        """XOR-fold the register contents into a table tag.

        Matches the paper's indexing: the registers' bits "are xor-ed to
        provide a 16-bit tag".  Positions are salted so that histories
        that are permutations of each other produce different tags.

        The fold is cached per ``tag_bits`` until the next shift/clear:
        the predictor tags every register twice per block (pre-shift
        training key, post-shift prediction probe), and the training key
        equals the previous block's probe.
        """
        cached = self._tag_cache.get(tag_bits)
        if cached is not None:
            return cached
        concatenated = 0
        for position, value in enumerate(self._values):
            concatenated |= value << (position * self.hash_bits)
        # Salt with the fill level so a 1-deep history differs from the
        # same value repeated.
        concatenated ^= len(self._values)
        folded = fold_xor(concatenated, tag_bits)
        self._tag_cache[tag_bits] = folded
        return folded

    @property
    def filled(self) -> bool:
        """True once the register holds ``depth`` entries."""
        return len(self._values) == self.depth

    def __len__(self) -> int:
        return len(self._values)

    def clear(self) -> None:
        """Reset to empty."""
        self._values.clear()
        self._tag_cache.clear()


class DifferentialHistoryTable:
    """The 16-entry fully-associative tag -> differential-vector store.

    Replacement is random (Table II: "History Table Repl. Random"),
    driven by a seeded RNG for reproducibility.  Stored vectors are kept
    as tuples of 16-bit two's-complement strides, exactly what the
    hardware would hold.
    """

    def __init__(
        self,
        entries: int = 16,
        tag_bits: int = 16,
        rng: DeterministicRng | None = None,
    ) -> None:
        if entries <= 0:
            raise ConfigError("history table needs at least one entry")
        self.entries = entries
        self.tag_bits = tag_bits
        self._tag_mask = mask(tag_bits)
        # Default replacement randomness comes from a *named* seeded
        # stream, never module-level RNG state: two tables constructed
        # the same way must evict identically so differential runs
        # (implementation vs oracle) reproduce bit-for-bit.
        self._rng = rng or named_stream("cbws.history-table", 0xCB35)
        self._table: OrderedDict[int, tuple[int, ...]] = OrderedDict()
        self.lookups = 0
        self.hits = 0

    def lookup(self, tag: int) -> tuple[int, ...] | None:
        """Probe the table; hit statistics feed the confidence policy."""
        self.lookups += 1
        value = self._table.get(tag & self._tag_mask)
        if value is not None:
            self.hits += 1
        return value

    def insert(self, tag: int, delta: Sequence[int]) -> None:
        """Store a differential under ``tag``, evicting randomly if full."""
        key = tag & self._tag_mask
        if key not in self._table and len(self._table) >= self.entries:
            victim = self._rng.choice(list(self._table.keys()))
            del self._table[victim]
        self._table[key] = tuple(delta)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (prediction confidence proxy)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, tag: int) -> bool:
        return (tag & self._tag_mask) in self._table

    def clear(self) -> None:
        """Drop all stored differentials and statistics."""
        self._table.clear()
        self.lookups = 0
        self.hits = 0
