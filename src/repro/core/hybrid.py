"""The CBWS+SMS integrated prefetcher.

Deployment mode #2 of Section VII: "Using CBWS as an add-on for the SMS
prefetcher (integrated policy) to optimize performance of tight loops.
The CBWS prefetcher issues a prefetch only if the current access pattern
hits in the history table.  Otherwise, the SMS prefetcher issues the
prefetch."

Policy implemented here:

* SMS trains on every access, always — its pattern tables must stay warm
  for the program phases where CBWS has no loop annotations.
* CBWS predictions (issued at BLOCK_END on a history-table hit) take
  priority: the lines CBWS recently claimed are remembered in a small
  ownership filter, and SMS candidates for those lines are dropped —
  duplicate streaming would only cost bandwidth and pollute accuracy.
* Everything else SMS predicts flows through.  When CBWS has no
  confident prediction (history-table miss) or covers only a truncated
  working set (buffer overflow), nothing is claimed and SMS provides
  full coverage — the fall-back the paper credits for fft and
  streamcluster, where "the history table is too small to represent a
  meaningful CBWS differential history", and the reason bzip2 degrades
  only mildly.
"""

from __future__ import annotations

from collections import deque

from repro.core.predictor import CbwsConfig
from repro.core.prefetcher import CbwsPrefetcher
from repro.prefetchers.base import DemandInfo, Prefetcher
from repro.prefetchers.sms import SmsConfig, SmsPrefetcher

#: Capacity of the CBWS line-ownership filter (a small FIFO CAM).
_OWNED_LINES = 128


class CbwsSmsPrefetcher(Prefetcher):
    """CBWS as an add-on over spatial memory streaming."""

    name = "cbws+sms"

    def __init__(
        self,
        cbws_config: CbwsConfig | None = None,
        sms_config: SmsConfig | None = None,
    ) -> None:
        self.cbws = CbwsPrefetcher(cbws_config)
        self.sms = SmsPrefetcher(sms_config)
        self._owned: set[int] = set()
        self._owned_fifo: deque[int] = deque()

    def _claim(self, lines: list[int]) -> None:
        for line in lines:
            if line in self._owned:
                continue
            if len(self._owned_fifo) >= _OWNED_LINES:
                self._owned.discard(self._owned_fifo.popleft())
            self._owned_fifo.append(line)
            self._owned.add(line)

    def on_block_begin(self, block_id: int) -> None:
        self.cbws.on_block_begin(block_id)

    def on_block_end(self, block_id: int) -> list[int]:
        predicted = self.cbws.on_block_end(block_id)
        self._claim(predicted)
        return predicted

    def on_access(self, info: DemandInfo) -> list[int]:
        self.cbws.on_access(info)
        sms_candidates = self.sms.on_access(info)
        if not sms_candidates:
            return []
        owned = self._owned
        return [line for line in sms_candidates if line not in owned]

    def on_l1_eviction(self, line: int) -> None:
        self.sms.on_l1_eviction(line)

    def storage_bits(self) -> int:
        return self.cbws.storage_bits() + self.sms.storage_bits()

    def reset(self) -> None:
        self.cbws.reset()
        self.sms.reset()
        self._owned.clear()
        self._owned_fifo.clear()
