"""Runtime invariant checks for the simulation engine and hierarchy.

The checks are behind a module-level flag with the same contract as
:mod:`repro.obs` profiling: consumers read :func:`enabled` **once** per
run (or per object construction) and hoist the result into a local, so a
disabled flag costs a single branch per event and nothing allocates.
Flipping the flag mid-run is deliberately not observed.

When enabled, a violated invariant raises
:class:`repro.common.errors.InvariantViolation` carrying a context dict
(the machine state that disproves the property) — the differential
harness and fuzzer surface it as a divergence with a state dump.

Checked properties:

* **MSHR / in-flight bounds** — outstanding prefetches never exceed the
  prefetch-path MSHR budget; an open miss window never admits more
  misses than the L1 MSHR count.
* **Prefetch-queue bounds and consistency** — the queue never exceeds
  its capacity and the membership set tracks the queue (every tracked
  line is physically queued).
* **Issue-clock monotonicity** — ``next_issue`` never moves backwards
  (prefetch issues consume bandwidth in order).
* **ROB ordering** — the open miss window's first miss never postdates
  the current instruction (icount is monotone through the window).
* **Fill-heap consistency** — every in-flight prefetch has its
  completion scheduled in the fill heap, and the heap root is minimal.
* **Inclusive L2** — every L1-resident line is also L2-resident.
* **Set occupancy** — no cache set holds more lines than its ways.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.errors import InvariantViolation

if TYPE_CHECKING:  # pragma: no cover - type-only imports, no runtime cycle
    from repro.memory.hierarchy import CacheHierarchy

_ENABLED = False


def enable() -> None:
    """Turn invariant checking on (``repro check`` does this)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn invariant checking off (the default)."""
    global _ENABLED
    _ENABLED = False


def enabled() -> bool:
    """Whether invariant checks run.

    Hot loops must hoist this into a local before the loop — the flag is
    read once per run, exactly like :func:`repro.obs.enabled`.
    """
    return _ENABLED


def _violate(message: str, **context: object) -> None:
    raise InvariantViolation(message, context)


def check_engine_state(
    *,
    event_index: int,
    icount: int,
    last_icount: int,
    queue_length: int,
    queued: set,
    queue_members: frozenset | set | None,
    in_flight: dict,
    fill_heap: list,
    next_issue: float,
    last_next_issue: float,
    window_count: int,
    window_start_icount: int,
    mshr_limit: int,
    queue_capacity: int,
    max_in_flight: int,
) -> None:
    """Validate the engine's prefetch-path and miss-window state.

    ``queue_members`` is the set of lines physically in the queue; pass
    ``None`` to skip the (linear-cost) membership cross-check.
    """
    if len(in_flight) > max_in_flight:
        _violate(
            "in-flight prefetches exceed the prefetch MSHR budget",
            event_index=event_index,
            in_flight=len(in_flight),
            max_in_flight=max_in_flight,
        )
    if queue_length > queue_capacity:
        _violate(
            "prefetch queue exceeds its hardware capacity",
            event_index=event_index,
            queue_length=queue_length,
            queue_capacity=queue_capacity,
        )
    if queue_members is not None and not queued <= queue_members:
        _violate(
            "queued-line membership set tracks lines not in the queue",
            event_index=event_index,
            orphans=sorted(queued - queue_members)[:8],
        )
    if window_count > mshr_limit:
        _violate(
            "miss window admitted more misses than the L1 MSHR count",
            event_index=event_index,
            window_count=window_count,
            mshr_limit=mshr_limit,
        )
    if icount < last_icount:
        _violate(
            "event icount moved backwards (ROB ordering broken)",
            event_index=event_index,
            icount=icount,
            last_icount=last_icount,
        )
    if window_start_icount > icount:
        _violate(
            "open miss window starts after the current instruction",
            event_index=event_index,
            window_start_icount=window_start_icount,
            icount=icount,
        )
    if next_issue < last_next_issue:
        _violate(
            "prefetch issue clock moved backwards",
            event_index=event_index,
            next_issue=next_issue,
            last_next_issue=last_next_issue,
        )
    if fill_heap:
        root = fill_heap[0]
        if root != min(fill_heap):
            _violate(
                "prefetch fill heap root is not minimal",
                event_index=event_index,
                root=root,
            )
        for line, completion in in_flight.items():
            if (completion, line) not in fill_heap:
                _violate(
                    "in-flight prefetch has no scheduled completion",
                    event_index=event_index,
                    line=line,
                    completion=completion,
                )
    elif in_flight:
        _violate(
            "in-flight prefetches exist but the fill heap is empty",
            event_index=event_index,
            in_flight=sorted(in_flight)[:8],
        )


def check_hierarchy(hierarchy: "CacheHierarchy") -> None:
    """Validate the inclusion property and per-set occupancy bounds."""
    l1, l2 = hierarchy.l1, hierarchy.l2
    for cache, label in ((l1, "L1"), (l2, "L2")):
        ways = cache.config.associativity
        for index, cache_set in enumerate(cache._sets):
            if len(cache_set) > ways:
                _violate(
                    "cache set holds more lines than its associativity",
                    level=label,
                    set_index=index,
                    occupancy=len(cache_set),
                    ways=ways,
                )
    for line in l1.resident_lines():
        if not l2.contains(line):
            _violate(
                "inclusive-L2 property violated: L1 line absent from L2",
                line=line,
            )
