"""Differential harnesses: implementation vs oracle, fast vs reference.

Four harnesses, each replaying one trace and reporting the **first
divergence** with a machine-state dump (or ``None`` when the replay is
clean):

* :func:`diff_prefetcher` — drives a production prefetcher and its
  :mod:`repro.check.oracles` golden model with an identical demand
  stream (derived from the oracle hierarchy with no prefetch fills, so
  hit/miss annotations and L1-eviction callbacks are deterministic and
  engine-independent) and compares every candidate list.
* :func:`diff_engine` — runs the columnar fast path and the readable
  reference engine on fresh machines and compares the full result
  serialization plus hierarchy statistics (they are documented as
  bit-identical).
* :func:`diff_batch` — runs many lanes through the
  :class:`~repro.sim.batch.BatchSimulationEngine` at once and compares
  every lane's result serialization and hierarchy statistics against a
  fresh per-cell fast-path run (the batch backend's bit-identity
  contract).
* :func:`diff_hierarchy` — steps the implementation hierarchy through
  both its reference and ``*_fast`` methods alongside the hierarchy
  oracle, interleaving deterministic prefetch fills, and compares
  outcome codes, eviction sequences, and statistics per access.

Oracle-vs-implementation prefetcher diffs run at 64-byte lines only:
the stride implementation (deliberately, see its oracle) converts
predicted addresses with the global 64-byte line shift, so other line
sizes are covered by the engine diff instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.check.oracles import HierarchyOracle, make_oracle
from repro.harness.registry import PREFETCHER_FACTORIES, make_prefetcher
from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import HierarchyConfig
from repro.prefetchers.base import DemandInfo, Prefetcher
from repro.sim.config import REDUCED_CONFIG, CoreConfig, SimConfig
from repro.sim.engine import SimulationEngine
from repro.trace.events import BLOCK_BEGIN, BLOCK_END, MEMORY_ACCESS
from repro.trace.stream import Trace

#: Prefetcher names with a golden model (the oracle-diff surface).
DIFF_PREFETCHERS = [
    "stride",
    "ghb-g/dc",
    "ghb-pc/dc",
    "sms",
    "markov",
    "ampm",
    "cbws",
    "cbws+sms",
    "pangloss",
    "pythia",
]


@dataclass
class Divergence:
    """First point where two models of the same machine disagree.

    Attributes:
        kind: ``"prefetcher"``, ``"engine"``, ``"batch"``, or
            ``"hierarchy"``.
        subject: prefetcher/config name under test.
        trace: name of the trace that exposed the divergence.
        event_index: position in the event stream (-1 for end-of-run
            comparisons such as engine result totals).
        description: what disagreed.
        expected: the oracle/reference value.
        actual: the implementation value.
        state: machine-state dump at the divergence point.
    """

    kind: str
    subject: str
    trace: str
    event_index: int
    description: str
    expected: Any
    actual: Any
    state: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        lines = [
            f"{self.kind} divergence [{self.subject}] on trace "
            f"'{self.trace}' at event {self.event_index}: {self.description}",
            f"  expected: {self.expected!r}",
            f"  actual:   {self.actual!r}",
        ]
        for key in sorted(self.state):
            lines.append(f"  {key}: {self.state[key]!r}")
        return "\n".join(lines)


def config_with_line_size(line_size: int) -> SimConfig:
    """The reduced-scale machine at an arbitrary line size."""
    core = CoreConfig()
    return SimConfig(
        hierarchy=HierarchyConfig(
            l1=CacheConfig(
                name="L1D", size_bytes=4096, associativity=4,
                line_size=line_size, latency=core.l1_latency, mshrs=4,
            ),
            l2=CacheConfig(
                name="L2", size_bytes=131072, associativity=8,
                line_size=line_size, latency=core.l2_latency, mshrs=32,
            ),
            line_size=line_size,
        ),
        core=core,
    )


def _hierarchy_oracle_for(config: SimConfig) -> HierarchyOracle:
    l1, l2 = config.hierarchy.l1, config.hierarchy.l2
    return HierarchyOracle(
        l1_sets=l1.num_sets, l1_ways=l1.associativity,
        l2_sets=l2.num_sets, l2_ways=l2.associativity,
    )


def _state_dump(impl: Any, oracle: Any) -> Dict[str, Any]:
    """Small, human-scannable snapshot of both machines."""
    state: Dict[str, Any] = {"oracle_features": sorted(oracle.features)}
    predictor = getattr(impl, "predictor", None)
    if predictor is not None:
        state["impl.current"] = predictor.current.snapshot()
        state["impl.overflowed"] = predictor.current.overflowed
        state["impl.last_blocks"] = list(predictor.last_blocks)
        state["impl.table_size"] = len(predictor.table)
    oracle_current = getattr(oracle, "current", None)
    if oracle_current is not None:
        state["oracle.current"] = tuple(oracle_current)
        state["oracle.overflowed"] = oracle.overflowed
        state["oracle.last_blocks"] = list(oracle.last_blocks)
        state["oracle.table_size"] = len(oracle.table)
    return state


def diff_prefetcher(
    name: str,
    trace: Trace,
    *,
    impl_factory: Optional[Callable[[], Prefetcher]] = None,
    oracle_factory: Optional[Callable[[], Any]] = None,
) -> Optional[Divergence]:
    """Replay ``trace`` through implementation and oracle; first mismatch.

    Both sides receive the identical :class:`DemandInfo` stream and
    L1-eviction callbacks, derived from the hierarchy oracle running
    demand accesses only (64-byte lines, reduced geometry).  Custom
    factories support fault-injection self-tests.
    """
    impl = impl_factory() if impl_factory is not None else make_prefetcher(name)
    oracle = oracle_factory() if oracle_factory is not None else make_oracle(name)
    hierarchy = _hierarchy_oracle_for(REDUCED_CONFIG)

    for index, event in enumerate(trace.events):
        kind = event.kind
        if kind == MEMORY_ACCESS:
            line = event.address >> 6
            outcome, evictions = hierarchy.demand_access(line)
            info = DemandInfo(
                pc=event.pc,
                line=line,
                address=event.address,
                is_write=event.is_write,
                l1_hit=outcome == "l1",
                l2_hit=outcome != "memory",
            )
            actual = impl.on_access(info)
            expected = oracle.on_access(info)
            if actual != expected:
                return Divergence(
                    kind="prefetcher", subject=name, trace=trace.name,
                    event_index=index,
                    description=f"on_access candidates differ ({event!r})",
                    expected=expected, actual=actual,
                    state=_state_dump(impl, oracle),
                )
            for evicted in evictions:
                impl.on_l1_eviction(evicted)
                oracle.on_l1_eviction(evicted)
        elif kind == BLOCK_BEGIN:
            impl.on_block_begin(event.block_id)
            oracle.on_block_begin(event.block_id)
        else:  # BLOCK_END
            actual = impl.on_block_end(event.block_id)
            expected = oracle.on_block_end(event.block_id)
            if actual != expected:
                return Divergence(
                    kind="prefetcher", subject=name, trace=trace.name,
                    event_index=index,
                    description=f"on_block_end candidates differ ({event!r})",
                    expected=expected, actual=actual,
                    state=_state_dump(impl, oracle),
                )
    return None


def diff_engine(
    name: str,
    trace: Trace,
    config: SimConfig = REDUCED_CONFIG,
) -> Optional[Divergence]:
    """Fast path vs reference engine on fresh machines; first mismatch."""
    factory = PREFETCHER_FACTORIES[name]
    fast_engine = SimulationEngine(config, factory())
    reference_engine = SimulationEngine(config, factory())
    fast = fast_engine.run(trace).to_dict()
    reference = reference_engine.run_reference(trace).to_dict()
    if fast != reference:
        keys = [key for key in reference if fast.get(key) != reference[key]]
        return Divergence(
            kind="engine", subject=name, trace=trace.name, event_index=-1,
            description=f"fast path result differs from reference on {keys}",
            expected={key: reference[key] for key in keys},
            actual={key: fast.get(key) for key in keys},
        )
    fast_stats = vars(fast_engine.hierarchy.stats)
    reference_stats = vars(reference_engine.hierarchy.stats)
    if fast_stats != reference_stats:
        return Divergence(
            kind="engine", subject=name, trace=trace.name, event_index=-1,
            description="hierarchy statistics differ between fast and reference",
            expected=reference_stats, actual=fast_stats,
        )
    return None


def diff_batch(
    names: List[str],
    trace: Trace,
    configs: Optional[List[SimConfig]] = None,
    config: SimConfig = REDUCED_CONFIG,
) -> Optional[Divergence]:
    """Fast path vs batch backend, lane by lane; first mismatch.

    All ``names`` run as one :class:`~repro.sim.batch.BatchSimulationEngine`
    over ``trace`` (so cross-lane interference bugs are visible), and
    every lane is compared — result serialization and hierarchy
    statistics — against a fresh per-cell fast-path run.  Pass
    ``configs`` (position-matched to ``names``) to exercise mixed-config
    lanes; otherwise every lane uses ``config``.
    """
    from repro.sim.batch import BatchLane, BatchSimulationEngine

    if configs is None:
        configs = [config] * len(names)
    lanes = [BatchLane(prefetcher=name, config=lane_config)
             for name, lane_config in zip(names, configs)]
    batch_engine = BatchSimulationEngine(lanes)
    batch_results = batch_engine.run(trace)
    for index, (lane, batch_result) in enumerate(zip(lanes, batch_results)):
        fast_engine = SimulationEngine(
            lane.config, make_prefetcher(lane.prefetcher)
        )
        fast = fast_engine.run(trace).to_dict()
        batch = batch_result.to_dict()
        if batch != fast:
            keys = [key for key in fast if batch.get(key) != fast[key]]
            return Divergence(
                kind="batch", subject=lane.prefetcher, trace=trace.name,
                event_index=-1,
                description=(
                    f"batch lane {index} result differs from fast path "
                    f"on {keys}"
                ),
                expected={key: fast[key] for key in keys},
                actual={key: batch.get(key) for key in keys},
            )
        fast_stats = vars(fast_engine.hierarchy.stats)
        batch_stats = vars(batch_engine.hierarchies[index].stats)
        if batch_stats != fast_stats:
            return Divergence(
                kind="batch", subject=lane.prefetcher, trace=trace.name,
                event_index=-1,
                description=(
                    f"batch lane {index} hierarchy statistics differ "
                    "from fast path"
                ),
                expected=fast_stats, actual=batch_stats,
            )
    return None


_FAST_OUTCOMES = {0: "l1", 1: "l2", 2: "l2-prefetch", 3: "memory"}


def diff_hierarchy(
    trace: Trace,
    config: SimConfig = REDUCED_CONFIG,
    prefetch_interval: int = 5,
) -> Optional[Divergence]:
    """Implementation hierarchy (both method families) vs oracle.

    Every ``prefetch_interval``-th access additionally injects a
    prefetch fill of the neighbouring line into all three models so the
    prefetch-flag and LRU-insertion paths are exercised.
    """
    from repro.memory.hierarchy import AccessOutcome, CacheHierarchy

    reference = CacheHierarchy(config.hierarchy)
    fast = CacheHierarchy(config.hierarchy)
    oracle = _hierarchy_oracle_for(config)
    line_shift = config.hierarchy.line_size.bit_length() - 1
    outcome_names = {
        AccessOutcome.L1_HIT: "l1",
        AccessOutcome.L2_HIT: "l2",
        AccessOutcome.MEMORY: "memory",
    }

    accesses = 0
    for index, event in enumerate(trace.events):
        if event.kind != MEMORY_ACCESS:
            continue
        line = event.address >> line_shift
        expected_outcome, expected_evictions = oracle.demand_access(line)

        result = reference.demand_access(line)
        ref_outcome = outcome_names[result.outcome]
        if ref_outcome == "l2" and result.l2_fill_was_prefetch:
            ref_outcome = "l2-prefetch"
        ref_evictions = [record.line for record in result.l1_evictions]

        fast_evictions: List[int] = []
        fast_outcome = _FAST_OUTCOMES[fast.demand_access_fast(line, fast_evictions)]

        for label, outcome, evictions in (
            ("reference", ref_outcome, ref_evictions),
            ("fast", fast_outcome, fast_evictions),
        ):
            if (outcome, evictions) != (expected_outcome, expected_evictions):
                return Divergence(
                    kind="hierarchy", subject=label, trace=trace.name,
                    event_index=index,
                    description="demand access outcome/evictions differ",
                    expected=(expected_outcome, expected_evictions),
                    actual=(outcome, evictions),
                    state={"line": line, "oracle_stats": dict(oracle.stats)},
                )

        accesses += 1
        if accesses % prefetch_interval == 0:
            target = line + 1
            expected_filled, expected_back = oracle.prefetch_fill(target)
            fill = reference.prefetch_fill(target)
            ref_filled = fill is not None
            ref_back = [r.line for r in fill.l1_evictions] if fill else []
            fast_back: List[int] = []
            fast_filled = fast.prefetch_fill_fast(target, fast_back)
            for label, filled, back in (
                ("reference", ref_filled, ref_back),
                ("fast", fast_filled, fast_back),
            ):
                if (filled, back) != (expected_filled, expected_back):
                    return Divergence(
                        kind="hierarchy", subject=label, trace=trace.name,
                        event_index=index,
                        description="prefetch fill outcome/evictions differ",
                        expected=(expected_filled, expected_back),
                        actual=(filled, back),
                        state={"line": target, "oracle_stats": dict(oracle.stats)},
                    )

    for label, hierarchy in (("reference", reference), ("fast", fast)):
        stats = vars(hierarchy.stats)
        if stats != oracle.stats:
            return Divergence(
                kind="hierarchy", subject=label, trace=trace.name, event_index=-1,
                description="hierarchy statistics differ from oracle",
                expected=dict(oracle.stats), actual=dict(stats),
            )
    return None


def diff_all(
    trace: Trace,
    names: Optional[List[str]] = None,
    engine_names: Optional[List[str]] = None,
) -> List[Divergence]:
    """Every harness over one trace; all first-divergences found."""
    divergences: List[Divergence] = []
    hierarchy_divergence = diff_hierarchy(trace)
    if hierarchy_divergence is not None:
        divergences.append(hierarchy_divergence)
    for name in names if names is not None else DIFF_PREFETCHERS:
        divergence = diff_prefetcher(name, trace)
        if divergence is not None:
            divergences.append(divergence)
    batch_names = (engine_names if engine_names is not None
                   else sorted(PREFETCHER_FACTORIES))
    for name in batch_names:
        divergence = diff_engine(name, trace)
        if divergence is not None:
            divergences.append(divergence)
    batch_divergence = diff_batch(list(batch_names), trace)
    if batch_divergence is not None:
        divergences.append(batch_divergence)
    return divergences
