"""Differential and property-based verification of the simulator.

The package holds four pieces:

* :mod:`repro.check.oracles` — slow, obviously-correct golden models of
  every prefetcher and the cache hierarchy, written independently from
  the paper/DESIGN.md with no code shared with the implementations;
* :mod:`repro.check.diff` — differential harnesses replaying traces
  through implementation vs oracle (and fast path vs reference engine),
  reporting the first divergence with a machine-state dump;
* :mod:`repro.check.fuzz` — a seeded, coverage-driven trace fuzzer with
  delta-debugging shrink and fault injection;
* :mod:`repro.check.invariants` — runtime invariant checks wired into
  the engine and hierarchy behind a zero-cost-when-disabled flag.

This ``__init__`` stays import-light on purpose: the simulation engine
imports :mod:`repro.check.invariants` at module load, while
:mod:`repro.check.diff` imports the engine — eagerly re-exporting diff
here would create an import cycle.
"""

from __future__ import annotations

_SUBMODULES = ("diff", "fuzz", "invariants", "oracles")


def __getattr__(name: str):
    if name in _SUBMODULES:
        import importlib

        return importlib.import_module(f"repro.check.{name}")
    raise AttributeError(f"module 'repro.check' has no attribute {name!r}")
