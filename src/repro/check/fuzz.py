"""Seeded, coverage-driven trace fuzzing with delta-debugging shrink.

The fuzzer mutates annotated loop traces and keeps every mutant that
lights up a new oracle *feature label* (see
:mod:`repro.check.oracles`) — an AFL-style corpus where coverage is
measured on the golden models, so the corpus grows toward inputs that
exercise distinct prefetcher behaviours (stride state flips, SMS
generation closures, CBWS overflows and table evictions, ...).  Every
mutant is also replayed through the differential harnesses; any
divergence is recorded and shrunk with :func:`shrink` (ddmin over the
event list with structural repair) to a minimal counterexample.

Mutators cover the trace properties the simulator is sensitive to:
stride flips, loop-boundary jitter, block interleavings/duplication/
drops, line-size edge addresses, pc collisions.  After any mutation the
event list is repaired — block markers re-balanced (non-nested),
icounts rebuilt strictly monotonic — so every mutant is a *valid* trace
and divergences are never parser artifacts.

Fault injection (:data:`INJECTIONS`, :func:`run_injection`) wires a
deliberately broken implementation against its honest oracle to prove
end-to-end that the harness catches real bugs and shrinks them small.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng
from repro.check.diff import (
    DIFF_PREFETCHERS,
    Divergence,
    diff_engine,
    diff_prefetcher,
)
from repro.check.oracles import CbwsOracle, PanglossOracle, make_oracle
from repro.core.buffers import CurrentCbwsBuffer
from repro.core.predictor import CbwsConfig
from repro.core.prefetcher import CbwsPrefetcher
from repro.prefetchers.learned import PanglossConfig, PanglossPrefetcher
from repro.trace.events import (
    BLOCK_BEGIN,
    BLOCK_END,
    MEMORY_ACCESS,
    BlockBegin,
    BlockEnd,
    MemoryAccess,
    TraceEvent,
)
from repro.trace.stream import Trace
from repro.trace.synth import LoopSpec, synthesize_loop_trace

#: Address stepping used when mutators nudge accesses around line edges.
_LINE_SIZE = 64


def seed_traces() -> List[Trace]:
    """The deterministic seed corpus: small annotated loop traces.

    Shapes chosen to reach every oracle's interesting regions quickly:
    constant strides (stride/GHB steady state), a growing-stride walk
    (CBWS differentials), dense same-region accesses (SMS patterns,
    AMPM matches), a pointer-chase permutation (Markov), and a block
    whose working set overflows the 16-line CBWS buffer.
    """
    seeds = [
        synthesize_loop_trace(
            [LoopSpec(block_id=1, base=0x10000, stride=64, accesses=4, iterations=8)],
            name="seed-unit-stride",
        ),
        synthesize_loop_trace(
            [LoopSpec(block_id=2, base=0x40000, stride=1024, accesses=3,
                      iterations=10, pc_base=0x50_0000)],
            name="seed-large-stride",
        ),
        synthesize_loop_trace(
            [
                LoopSpec(block_id=3, base=0x80000, stride=8, accesses=6,
                         iterations=6),
                LoopSpec(block_id=4, base=0xA0000 + 64 * 40, stride=-64,
                         accesses=4, iterations=6, pc_base=0x60_0000),
            ],
            name="seed-dense-and-backwards",
        ),
        synthesize_loop_trace(
            [LoopSpec(block_id=5, base=0x20000, stride=4096, accesses=20,
                      iterations=4, write_every=3)],
            name="seed-cbws-overflow",
        ),
    ]
    # Pointer-chase permutation: repeated irregular miss sequence.
    events: List[TraceEvent] = []
    icount = 0
    cycle = [0x3000, 0x9A40, 0x1240, 0x7AC0, 0x52C0, 0xF000]
    for repeat in range(6):
        icount += 1
        events.append(BlockBegin(icount, 9))
        for position, address in enumerate(cycle):
            icount += 4
            events.append(MemoryAccess(icount, 0x70_0000 + position, address, False))
        icount += 1
        events.append(BlockEnd(icount, 9))
    chase = Trace("seed-pointer-chase", events, icount + 16)
    chase.validate()
    seeds.append(chase)
    return seeds


# -- mutation ---------------------------------------------------------------


def _block_groups(events: List[TraceEvent]) -> List[Tuple[int, int]]:
    """(begin, end) index pairs of complete block groups, inclusive."""
    groups: List[Tuple[int, int]] = []
    open_index: Optional[int] = None
    for index, event in enumerate(events):
        if event.kind == BLOCK_BEGIN:
            open_index = index
        elif event.kind == BLOCK_END and open_index is not None:
            groups.append((open_index, index))
            open_index = None
    return groups


def _rebuild(events: List[TraceEvent], name: str) -> Optional[Trace]:
    """Repair an event list into a valid trace (None when empty).

    Drops unbalanced/nested block markers, closes a trailing open
    block, and rebuilds icounts strictly monotonic; the result always
    passes :meth:`Trace.validate`.
    """
    repaired: List[TraceEvent] = []
    icount = 0
    open_block: Optional[int] = None
    for event in events:
        if event.kind == MEMORY_ACCESS:
            icount += 4
            address = event.address if event.address >= 0 else 0
            repaired.append(MemoryAccess(icount, event.pc, address, event.is_write))
        elif event.kind == BLOCK_BEGIN:
            if open_block is not None:
                continue  # nested begin: drop
            icount += 1
            open_block = event.block_id
            repaired.append(BlockBegin(icount, event.block_id))
        else:  # BLOCK_END
            if open_block is None:
                continue  # unmatched end: drop
            icount += 1
            repaired.append(BlockEnd(icount, open_block))
            open_block = None
    if open_block is not None:
        icount += 1
        repaired.append(BlockEnd(icount, open_block))
    if not repaired:
        return None
    trace = Trace(name, repaired, icount + 8)
    trace.validate()
    return trace


def mutate(trace: Trace, rng: DeterministicRng, generation: int = 0) -> Trace:
    """One random structural or address mutation, then repair."""
    events = list(trace.events)
    mutator = rng.index(8)
    accesses = [i for i, e in enumerate(events) if e.kind == MEMORY_ACCESS]
    groups = _block_groups(events)

    if mutator == 0 and accesses:  # stride flip: jump the address stream
        start = rng.choice(accesses)
        delta = rng.choice([-4096, -128, -64, 64, 128, 4096, 65536])
        for index in accesses:
            if index >= start:
                event = events[index]
                events[index] = MemoryAccess(
                    event.icount, event.pc, max(0, event.address + delta),
                    event.is_write,
                )
    elif mutator == 1 and groups:  # loop-boundary jitter: move one end
        begin, end = rng.choice(groups)
        offset = rng.choice([-2, -1, 1, 2])
        target = min(max(end + offset, begin + 1), len(events))
        marker = events.pop(end)
        events.insert(min(target, len(events)), marker)
    elif mutator == 2 and len(groups) >= 2:  # swap two whole blocks
        first, second = sorted(rng.shuffled(range(len(groups)))[:2])
        b1, e1 = groups[first]
        b2, e2 = groups[second]
        events = (
            events[:b1] + events[b2:e2 + 1]
            + events[e1 + 1:b2] + events[b1:e1 + 1] + events[e2 + 1:]
        )
    elif mutator == 3 and accesses:  # line-size edge addresses
        index = rng.choice(accesses)
        event = events[index]
        base = (event.address >> 6) << 6
        edge = rng.choice([-1, 0, 1, _LINE_SIZE - 1, _LINE_SIZE, 2 * _LINE_SIZE - 1])
        events[index] = MemoryAccess(
            event.icount, event.pc, max(0, base + edge), event.is_write,
        )
    elif mutator == 4 and groups:  # duplicate a block group
        begin, end = rng.choice(groups)
        events = events[:end + 1] + events[begin:end + 1] + events[end + 1:]
    elif mutator == 5 and len(groups) >= 2:  # drop a block group
        begin, end = rng.choice(groups)
        events = events[:begin] + events[end + 1:]
    elif mutator == 6 and accesses:  # pc collision / retarget
        index = rng.choice(accesses)
        event = events[index]
        other = events[rng.choice(accesses)]
        events[index] = MemoryAccess(
            event.icount, other.pc, event.address, event.is_write,
        )
    elif groups:  # retag a block (exercises block-switch flushes)
        begin, end = rng.choice(groups)
        new_id = rng.randint(1, 12)
        events[begin] = BlockBegin(events[begin].icount, new_id)
        events[end] = BlockEnd(events[end].icount, new_id)

    rebuilt = _rebuild(events, f"{trace.name}~g{generation}")
    return rebuilt if rebuilt is not None else trace


# -- coverage ---------------------------------------------------------------


def collect_features(trace: Trace, names: List[str]) -> Set[str]:
    """Feature labels the oracles light up while replaying ``trace``."""
    from repro.check.diff import _hierarchy_oracle_for
    from repro.prefetchers.base import DemandInfo
    from repro.sim.config import REDUCED_CONFIG

    features: Set[str] = set()
    oracles = [make_oracle(name) for name in names]
    hierarchy = _hierarchy_oracle_for(REDUCED_CONFIG)
    for event in trace.events:
        if event.kind == MEMORY_ACCESS:
            line = event.address >> 6
            outcome, evictions = hierarchy.demand_access(line)
            info = DemandInfo(
                pc=event.pc, line=line, address=event.address,
                is_write=event.is_write, l1_hit=outcome == "l1",
                l2_hit=outcome != "memory",
            )
            for oracle in oracles:
                oracle.on_access(info)
            for evicted in evictions:
                for oracle in oracles:
                    oracle.on_l1_eviction(evicted)
        elif event.kind == BLOCK_BEGIN:
            for oracle in oracles:
                oracle.on_block_begin(event.block_id)
        else:
            for oracle in oracles:
                oracle.on_block_end(event.block_id)
    for oracle in oracles:
        features |= oracle.features
    features.add(f"trace:blocks-{min(len(_block_groups(list(trace.events))), 8)}")
    return features


# -- the fuzz loop ----------------------------------------------------------


@dataclass
class FuzzReport:
    """Outcome of one fuzzing session."""

    iterations: int = 0
    corpus_size: int = 0
    features: Set[str] = field(default_factory=set)
    divergences: List[Divergence] = field(default_factory=list)
    counterexamples: List[Trace] = field(default_factory=list)
    elapsed_seconds: float = 0.0


def run_fuzz(
    budget_seconds: float,
    seed: int = 0,
    names: Optional[List[str]] = None,
    *,
    impl_factory: Optional[Callable[[], Any]] = None,
    oracle_factory: Optional[Callable[[], Any]] = None,
    engine_every: int = 16,
    max_divergences: int = 3,
    shrink_counterexamples: bool = True,
) -> FuzzReport:
    """Coverage-driven fuzzing for ``budget_seconds`` wall-clock seconds.

    Each iteration mutates a corpus member, measures oracle feature
    coverage (new features admit the mutant to the corpus), and replays
    the mutant through :func:`diff_prefetcher` for every name (and
    periodically :func:`diff_engine`).  Divergences are shrunk before
    being reported.  ``impl_factory``/``oracle_factory`` override the
    machines under test for a single ``names`` entry — the
    fault-injection path.
    """
    names = list(names) if names is not None else list(DIFF_PREFETCHERS)
    rng = DeterministicRng(seed)
    report = FuzzReport()
    started = time.monotonic()

    corpus = seed_traces()
    for trace in corpus:
        report.features |= collect_features(trace, names)
        for name in names:
            divergence = _check_one(
                name, trace, impl_factory, oracle_factory
            )
            if divergence is not None:
                _record(report, name, trace, divergence,
                        impl_factory, oracle_factory, shrink_counterexamples)

    generation = 0
    while (
        time.monotonic() - started < budget_seconds
        and len(report.divergences) < max_divergences
    ):
        generation += 1
        parent = rng.choice(corpus)
        child = mutate(parent, rng, generation)
        report.iterations += 1
        new_features = collect_features(child, names) - report.features
        if new_features:
            report.features |= new_features
            corpus.append(child)
        for name in names:
            divergence = _check_one(name, child, impl_factory, oracle_factory)
            if divergence is not None:
                _record(report, name, child, divergence,
                        impl_factory, oracle_factory, shrink_counterexamples)
                break
        if impl_factory is None and report.iterations % engine_every == 0:
            engine_name = rng.choice(names)
            divergence = diff_engine(engine_name, child)
            if divergence is not None:
                report.divergences.append(divergence)
                report.counterexamples.append(child)

    report.corpus_size = len(corpus)
    report.elapsed_seconds = time.monotonic() - started
    return report


def _check_one(
    name: str,
    trace: Trace,
    impl_factory: Optional[Callable[[], Any]],
    oracle_factory: Optional[Callable[[], Any]],
) -> Optional[Divergence]:
    return diff_prefetcher(
        name, trace, impl_factory=impl_factory, oracle_factory=oracle_factory
    )


def _record(
    report: FuzzReport,
    name: str,
    trace: Trace,
    divergence: Divergence,
    impl_factory: Optional[Callable[[], Any]],
    oracle_factory: Optional[Callable[[], Any]],
    do_shrink: bool,
) -> None:
    if do_shrink:
        def still_fails(candidate: Trace) -> bool:
            return _check_one(name, candidate, impl_factory, oracle_factory) \
                is not None

        trace = shrink(trace, still_fails)
        final = _check_one(name, trace, impl_factory, oracle_factory)
        if final is not None:
            divergence = final
    report.divergences.append(divergence)
    report.counterexamples.append(trace)


# -- shrinking --------------------------------------------------------------


def shrink(
    trace: Trace,
    failing: Callable[[Trace], bool],
    max_evaluations: int = 400,
) -> Trace:
    """Delta-debugging (ddmin) over the event list with repair.

    Removes event chunks of halving size while the ``failing`` predicate
    keeps holding on the repaired remainder; stops at chunk size one or
    after ``max_evaluations`` predicate calls.  The returned trace is
    always a valid failing trace (the input itself in the worst case).
    """
    best = list(trace.events)
    best_trace = trace
    evaluations = 0
    chunk = max(1, len(best) // 2)
    while chunk >= 1 and evaluations < max_evaluations:
        reduced = False
        index = 0
        while index < len(best) and evaluations < max_evaluations:
            candidate = _rebuild(
                best[:index] + best[index + chunk:], trace.name + "~shrunk"
            )
            evaluations += 1
            if candidate is not None and len(candidate.events) < len(best) \
                    and failing(candidate):
                best = list(candidate.events)
                best_trace = candidate
                reduced = True
            else:
                index += chunk
        if not reduced:
            chunk //= 2
    return best_trace


# -- fault injection --------------------------------------------------------


def _injected_cbws_fifo_off_by_one() -> CbwsPrefetcher:
    """CBWS whose current-CBWS FIFO holds one line fewer than configured.

    Built on a small geometry (4-line vectors) so the minimal
    counterexample stays tiny: the predictor needs ~5 block completions
    before the history table first hits, and 4-access blocks keep each
    completion at 6 events.
    """
    config = CbwsConfig(max_vector_members=4)
    prefetcher = CbwsPrefetcher(config)
    prefetcher.predictor.current = CurrentCbwsBuffer(
        config.max_vector_members - 1, config.line_addr_bits
    )
    return prefetcher


def _injected_cbws_oracle() -> CbwsOracle:
    return CbwsOracle(max_vector_members=4)


#: Tiny Pangloss geometry shared by the faulty implementation and its
#: honest oracle: saturation, slot eviction, and row reuse all happen
#: within a handful of accesses, keeping counterexamples small.
_PANGLOSS_INJECTION_GEOMETRY = dict(
    page_entries=4, markov_rows=8, row_slots=2, counter_max=2, degree=2,
)


class _LfuOffByOnePangloss(PanglossPrefetcher):
    """Pangloss whose LFU decay fires one bump later than configured.

    The classic saturating-counter fencepost: testing ``> max + 1``
    instead of ``> max`` lets a slot overshoot the counter ceiling by
    one before the row halves, skewing every later frequency comparison
    (confidence gates, coldest-slot evictions) in the row.
    """

    def _decay_due(self, count: int) -> bool:
        return count + 1 > self.config.counter_max + 1


def _injected_pangloss_lfu_off_by_one() -> PanglossPrefetcher:
    return _LfuOffByOnePangloss(
        PanglossConfig(**_PANGLOSS_INJECTION_GEOMETRY)
    )


def _injected_pangloss_oracle() -> PanglossOracle:
    return PanglossOracle(**_PANGLOSS_INJECTION_GEOMETRY)


#: name -> (prefetcher name, faulty implementation, matching honest oracle).
INJECTIONS: Dict[str, Tuple[str, Callable[[], Any], Callable[[], Any]]] = {
    "cbws-fifo-off-by-one": (
        "cbws", _injected_cbws_fifo_off_by_one, _injected_cbws_oracle
    ),
    "pangloss-lfu-off-by-one": (
        "pangloss",
        _injected_pangloss_lfu_off_by_one,
        _injected_pangloss_oracle,
    ),
}


@dataclass
class InjectionResult:
    """Outcome of a fault-injection self-test."""

    injection: str
    caught: bool
    counterexample: Optional[Trace]
    divergence: Optional[Divergence]

    @property
    def counterexample_events(self) -> int:
        return len(self.counterexample.events) if self.counterexample else 0


def run_injection(
    injection: str,
    budget_seconds: float = 10.0,
    seed: int = 0,
) -> InjectionResult:
    """Prove the harness catches a known-bad implementation.

    Fuzzes the faulty implementation against its honest oracle and
    shrinks the first divergence; ``caught`` is False only if the whole
    budget elapses without a divergence (a harness regression).
    """
    try:
        name, impl_factory, oracle_factory = INJECTIONS[injection]
    except KeyError:
        known = ", ".join(sorted(INJECTIONS))
        raise ConfigError(f"unknown injection {injection!r}; known: {known}") \
            from None
    report = run_fuzz(
        budget_seconds, seed=seed, names=[name],
        impl_factory=impl_factory, oracle_factory=oracle_factory,
        max_divergences=1,
    )
    if not report.divergences:
        return InjectionResult(injection, False, None, None)
    return InjectionResult(
        injection, True, report.counterexamples[0], report.divergences[0]
    )
