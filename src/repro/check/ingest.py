"""Differential checks for the external-trace ingest frontend.

Two properties make ``ext:`` workloads safe to cache cluster-wide, and
both are verified here rather than assumed:

* **Recovery determinism** — the back-edge recovery pass, run twice
  over the same decoded instruction stream, emits identical events and
  identical stats.  The recovery tables are all deterministic data
  structures, but a single iteration-order or tie-break slip would
  break block-id stability silently; the differential catches it.
* **Re-ingestion digest stability** — ingesting the same source file
  into two fresh stores yields byte-identical trace files and equal
  content digests.  This is the property every cache key derived from
  an ``ext:`` workload rests on.

Both functions return a list of human-readable divergence strings
(empty = clean), matching the :mod:`repro.check.diff` convention.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.ingest.convert import ingest_trace
from repro.ingest.formats import decode
from repro.ingest.recover import RecoveryConfig, RecoveryStats, recover_blocks


def check_recovery_determinism(
    source: str | Path,
    fmt: str | None = None,
    config: RecoveryConfig | None = None,
) -> list[str]:
    """Run recovery twice over ``source``; report any divergence."""
    problems: list[str] = []
    runs = []
    for _ in range(2):
        stats = RecoveryStats()
        events = list(recover_blocks(decode(source, fmt), config, stats))
        runs.append((events, stats))
    (events_a, stats_a), (events_b, stats_b) = runs
    if len(events_a) != len(events_b):
        problems.append(
            f"recovery nondeterminism: {len(events_a)} vs "
            f"{len(events_b)} events across identical runs"
        )
    else:
        for index, (a, b) in enumerate(zip(events_a, events_b)):
            if a != b:
                problems.append(
                    f"recovery nondeterminism at event {index}: "
                    f"{a!r} vs {b!r}"
                )
                break
    for attribute in ("accesses", "accesses_in_blocks", "block_instances",
                      "block_ids", "back_edges_taken", "edges_observed",
                      "edges_evicted"):
        left = getattr(stats_a, attribute)
        right = getattr(stats_b, attribute)
        if left != right:
            problems.append(
                f"recovery stats diverge on {attribute}: {left} vs {right}"
            )
    return problems


def check_reingest_stability(
    source: str | Path,
    fmt: str | None = None,
    config: RecoveryConfig | None = None,
) -> list[str]:
    """Ingest ``source`` twice into fresh directories; compare outputs."""
    problems: list[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-ingest-check-") as scratch:
        outputs = []
        for attempt in range(2):
            out = Path(scratch) / f"attempt-{attempt}.trace"
            result = ingest_trace(
                source, out, trace_name="ext:check",
                fmt=fmt, config=config,
            )
            outputs.append((result, out.read_bytes()))
        (result_a, bytes_a), (result_b, bytes_b) = outputs
        if result_a.digest != result_b.digest:
            problems.append(
                f"re-ingestion digest drift: {result_a.digest[:12]} vs "
                f"{result_b.digest[:12]} for {source}"
            )
        if bytes_a != bytes_b:
            problems.append(
                f"re-ingestion produced different file bytes for {source} "
                f"({len(bytes_a)} vs {len(bytes_b)} bytes)"
            )
    return problems
