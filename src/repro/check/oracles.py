"""Golden-model oracles for differential verification.

Every class here is a slow, obviously-correct re-implementation of one
prefetcher (or the cache hierarchy), written directly from the paper and
DESIGN.md **without importing any implementation code** — the whole
point is that an oracle and its production counterpart can only agree by
both being right.  Data structures are plain lists/dicts with explicit
recency bookkeeping; nothing is optimized.

Oracles speak the same event protocol as
:class:`repro.prefetchers.base.Prefetcher` (``on_access`` /
``on_block_begin`` / ``on_block_end`` / ``on_l1_eviction``) so the
differential harness can drive both sides with identical stimuli.  The
``info`` object passed to ``on_access`` is duck-typed: anything with
``pc`` / ``line`` / ``address`` / ``is_write`` / ``l1_hit`` / ``l2_hit``
attributes works.

Each oracle additionally exposes a ``features`` set of string labels
recording which behaviours a stimulus exercised ("stride:steady",
"cbws:table-evict", ...).  The fuzzer uses these labels as its coverage
signal: a mutant that lights up a new label joins the corpus.

Two deliberate implementation quirks are mirrored (and documented at the
site): the stride prefetcher converts predicted addresses to lines with
the *global* 64-byte line shift regardless of the configured line size,
and the CBWS history table's random eviction draws from
``random.Random(seed)`` in table-insertion key order.
"""

from __future__ import annotations

import random
import zlib
from typing import Any, Dict, List, Optional, Set, Tuple


class _OracleBase:
    """Shared no-op protocol so each oracle only overrides what it uses."""

    name = "oracle"

    def __init__(self) -> None:
        self.features: Set[str] = set()

    def on_access(self, info: Any) -> List[int]:
        return []

    def on_block_begin(self, block_id: int) -> None:
        pass

    def on_block_end(self, block_id: int) -> List[int]:
        return []

    def on_l1_eviction(self, line: int) -> None:
        pass


class NoPrefetchOracle(_OracleBase):
    """The trivial oracle: never predicts anything."""

    name = "no-prefetch"


class StrideOracle(_OracleBase):
    """Reference prediction table (Chen & Baer / Fu-Patel-Janssens).

    A fully-associative, LRU table keyed by PC.  Each entry carries the
    last byte address, the current stride, and the classic four-state
    confidence machine; only STEADY entries with a non-zero stride
    predict, ``degree`` strides ahead at word granularity.

    Mirrored quirk: predicted addresses are converted to cache lines
    with a hardcoded ``>> 6`` (64-byte lines), matching the
    implementation, which uses the global line shift rather than the
    configured line size.  Oracle diffs therefore run at 64-byte lines.
    """

    name = "stride"

    INITIAL, STEADY, TRANSIENT, NO_PRED = "initial", "steady", "transient", "no-pred"

    def __init__(self, table_entries: int = 256, degree: int = 2) -> None:
        super().__init__()
        self.table_entries = table_entries
        self.degree = degree
        # pc -> [last_address, stride, state]; dict order is LRU -> MRU.
        self.table: Dict[int, List[Any]] = {}

    def _touch(self, pc: int) -> None:
        self.table[pc] = self.table.pop(pc)

    def on_access(self, info: Any) -> List[int]:
        pc, address = info.pc, info.address
        entry = self.table.get(pc)
        if entry is None:
            if len(self.table) >= self.table_entries:
                oldest = next(iter(self.table))
                del self.table[oldest]
                self.features.add("stride:evict")
            self.table[pc] = [address, 0, self.INITIAL]
            self.features.add("stride:new-entry")
            return []
        self._touch(pc)

        new_stride = address - entry[0]
        entry[0] = address
        matched = new_stride == entry[1]
        state = entry[2]
        if state == self.INITIAL:
            if matched:
                entry[2] = self.STEADY
            else:
                entry[1] = new_stride
                entry[2] = self.TRANSIENT
        elif state == self.STEADY:
            if not matched:
                entry[2] = self.INITIAL
        elif state == self.TRANSIENT:
            if matched:
                entry[2] = self.STEADY
            else:
                entry[1] = new_stride
                entry[2] = self.NO_PRED
        else:  # NO_PRED
            if matched:
                entry[2] = self.TRANSIENT
            else:
                entry[1] = new_stride
        self.features.add(f"stride:{entry[2]}")

        if entry[2] != self.STEADY or entry[1] == 0:
            return []
        candidates: List[int] = []
        walk = address
        for _ in range(self.degree):
            walk += entry[1]
            line = walk >> 6  # mirrored quirk: global 64-byte line shift
            if line != info.line and line >= 0 and line not in candidates:
                candidates.append(line)
        if candidates:
            self.features.add("stride:predict")
        return candidates


class GhbOracle(_OracleBase):
    """Global history buffer with delta correlation (Nesbit & Smith).

    The GHB proper is modelled as the full per-key push history plus a
    global push counter: an entry is live while its push serial is
    within ``buffer_entries`` of the newest push, which is exactly the
    set a newest-first link walk of the circular buffer reaches (links
    go strictly backwards in time and die at the first overwritten
    slot).  Prediction is the canonical correlation walk: take the last
    ``history_length - 1`` deltas of the live chain, find their most
    recent earlier occurrence, replay up to ``degree`` following deltas.
    Only misses (L1 and L2) train and trigger.
    """

    GLOBAL_KEY = -1

    def __init__(
        self,
        mode: str = "pc",
        buffer_entries: int = 256,
        history_length: int = 3,
        degree: int = 3,
    ) -> None:
        super().__init__()
        self.mode = mode
        self.name = "ghb-g/dc" if mode == "global" else "ghb-pc/dc"
        self.buffer_entries = buffer_entries
        self.match_length = history_length - 1
        self.degree = degree
        self.pushes = 0
        self.history: Dict[int, List[Tuple[int, int]]] = {}  # key -> [(serial, line)]

    def on_access(self, info: Any) -> List[int]:
        if info.l1_hit:
            return []
        key = self.GLOBAL_KEY if self.mode == "global" else info.pc
        entries = self.history.setdefault(key, [])
        entries.append((self.pushes, info.line))
        self.pushes += 1
        self.features.add("ghb:miss")

        oldest_live = self.pushes - self.buffer_entries
        # Keep per-key history bounded; dead entries can never matter again.
        if len(entries) > 2 * self.buffer_entries:
            entries[:] = [e for e in entries if e[0] >= oldest_live]
        addresses = [line for serial, line in entries if serial >= oldest_live]
        if len(addresses) < self.match_length + 2:
            return []
        deltas = [addresses[i + 1] - addresses[i] for i in range(len(addresses) - 1)]
        match = deltas[-self.match_length :]
        for position in range(len(deltas) - self.match_length - 1, -1, -1):
            if deltas[position : position + self.match_length] == match:
                base = addresses[-1]
                candidates = []
                replay = deltas[
                    position + self.match_length :
                    position + self.match_length + self.degree
                ]
                for delta in replay:
                    base += delta
                    candidates.append(base)
                self.features.add("ghb:predict")
                return candidates
        return []


class SmsOracle(_OracleBase):
    """Spatial memory streaming (Somogyi et al.).

    Filter table (single-access regions), accumulation table (active
    generations), pattern history table keyed by (trigger PC, trigger
    offset).  A generation closes when any of its lines leaves L1 or
    when it is capacity-evicted from the AGT; closing stores the bitmap
    in the PHT.  A trigger access that hits the PHT streams every set
    bit (ascending, trigger line excluded).
    """

    name = "sms"

    def __init__(
        self,
        region_size: int = 2048,
        line_size: int = 64,
        filter_entries: int = 32,
        agt_entries: int = 32,
        pht_entries: int = 512,
    ) -> None:
        super().__init__()
        self.lines_per_region = region_size // line_size
        self.region_shift = self.lines_per_region.bit_length() - 1
        self.filter_entries = filter_entries
        self.agt_entries = agt_entries
        self.pht_entries = pht_entries
        # region -> [trigger_pc, trigger_offset, pattern]; order = recency.
        self.filter: Dict[int, List[int]] = {}
        self.agt: Dict[int, List[int]] = {}
        # (trigger_pc, trigger_offset) -> pattern; order = recency.
        self.pht: Dict[Tuple[int, int], int] = {}

    def on_access(self, info: Any) -> List[int]:
        region = info.line >> self.region_shift
        offset = info.line & (self.lines_per_region - 1)

        generation = self.agt.get(region)
        if generation is not None:
            generation[2] |= 1 << offset
            self.agt[region] = self.agt.pop(region)  # refresh recency
            self.features.add("sms:accumulate")
            return []

        generation = self.filter.pop(region, None)
        if generation is not None:
            generation[2] |= 1 << offset
            if len(self.agt) >= self.agt_entries:
                victim_region = next(iter(self.agt))
                self._learn(self.agt.pop(victim_region))
                self.features.add("sms:agt-evict")
            self.agt[region] = generation
            self.features.add("sms:promote")
            return []

        if len(self.filter) >= self.filter_entries:
            oldest = next(iter(self.filter))
            del self.filter[oldest]  # silent drop, as in hardware
            self.features.add("sms:filter-evict")
        self.filter[region] = [info.pc, offset, 1 << offset]
        self.features.add("sms:trigger")

        pattern = self.pht.get((info.pc, offset))
        if pattern is None:
            return []
        self.pht[(info.pc, offset)] = self.pht.pop((info.pc, offset))
        base_line = region << self.region_shift
        candidates = [
            base_line + bit
            for bit in range(self.lines_per_region)
            if pattern >> bit & 1 and bit != offset
        ]
        if candidates:
            self.features.add("sms:stream")
        return candidates

    def on_l1_eviction(self, line: int) -> None:
        region = line >> self.region_shift
        generation = self.agt.pop(region, None)
        if generation is None:
            generation = self.filter.pop(region, None)
        if generation is not None:
            self._learn(generation)
            self.features.add("sms:close-generation")

    def _learn(self, generation: List[int]) -> None:
        key = (generation[0], generation[1])
        if key in self.pht:
            del self.pht[key]  # re-learn refreshes recency
        elif len(self.pht) >= self.pht_entries:
            oldest = next(iter(self.pht))
            del self.pht[oldest]
            self.features.add("sms:pht-evict")
        self.pht[key] = generation[2]
        self.features.add("sms:pht-learn")


class MarkovOracle(_OracleBase):
    """First-order miss-address correlation (Joseph & Grunwald).

    A fully-associative LRU table mapping a miss line to its most recent
    successors.  Every miss (a) records itself as successor of the
    previous miss, (b) predicts its own recorded successors.
    """

    name = "markov"

    def __init__(self, table_entries: int = 16384, successors: int = 2) -> None:
        super().__init__()
        self.table_entries = table_entries
        self.successors = successors
        self.table: Dict[int, List[int]] = {}  # order = recency
        self.last_miss: Optional[int] = None

    def on_access(self, info: Any) -> List[int]:
        if info.l1_hit:
            return []
        line = info.line
        previous = self.last_miss
        if previous is not None and previous != line:
            followers = self.table.get(previous)
            if followers is None:
                if len(self.table) >= self.table_entries:
                    oldest = next(iter(self.table))
                    del self.table[oldest]
                    self.features.add("markov:evict")
                self.table[previous] = [line]
            else:
                if line in followers:
                    followers.remove(line)
                followers.insert(0, line)
                del followers[self.successors :]
                self.table[previous] = self.table.pop(previous)
            self.features.add("markov:train")
        self.last_miss = line

        followers = self.table.get(line)
        if followers is None:
            return []
        self.table[line] = self.table.pop(line)
        self.features.add("markov:predict")
        return list(followers)


class AmpmOracle(_OracleBase):
    """Access map pattern matching (Ishii, Inaba & Hiraki).

    Per-zone bitmaps of accessed and prefetched lines; on every access
    the matcher probes strides ±1..±max_stride and, for the nearest
    matching stride in each direction, issues up to ``degree`` steps
    not already covered.  Recency rules mirror the implementation:
    accessed-bit *tests* do not refresh zone recency, but marking a line
    prefetched does (it goes through the creating lookup).
    """

    name = "ampm"

    def __init__(
        self,
        zone_lines: int = 64,
        map_entries: int = 52,
        max_stride: int = 16,
        degree: int = 4,
    ) -> None:
        super().__init__()
        self.zone_lines = zone_lines
        self.zone_shift = zone_lines.bit_length() - 1
        self.map_entries = map_entries
        self.max_stride = max_stride
        self.degree = degree
        # zone -> [accessed_offsets, prefetched_offsets]; order = recency.
        self.maps: Dict[int, List[Set[int]]] = {}

    def _map_for(self, zone: int) -> List[Set[int]]:
        entry = self.maps.get(zone)
        if entry is not None:
            self.maps[zone] = self.maps.pop(zone)
            return entry
        if len(self.maps) >= self.map_entries:
            oldest = next(iter(self.maps))
            del self.maps[oldest]
            self.features.add("ampm:map-evict")
        entry = [set(), set()]
        self.maps[zone] = entry
        return entry

    def _is_accessed(self, zone: int, offset: int) -> bool:
        while offset < 0:
            zone -= 1
            offset += self.zone_lines
        while offset >= self.zone_lines:
            zone += 1
            offset -= self.zone_lines
        entry = self.maps.get(zone)  # no recency refresh on tests
        return entry is not None and offset in entry[0]

    def _covered(self, line: int) -> bool:
        entry = self.maps.get(line >> self.zone_shift)
        if entry is None:
            return False
        offset = line & (self.zone_lines - 1)
        return offset in entry[0] or offset in entry[1]

    def on_access(self, info: Any) -> List[int]:
        zone = info.line >> self.zone_shift
        offset = info.line & (self.zone_lines - 1)
        self._map_for(zone)[0].add(offset)

        candidates: List[int] = []
        for direction in (1, -1):
            for magnitude in range(1, self.max_stride + 1):
                stride = direction * magnitude
                if not self._is_accessed(zone, offset - stride):
                    continue
                if not self._is_accessed(zone, offset - 2 * stride):
                    continue
                self.features.add(
                    "ampm:match-fwd" if direction == 1 else "ampm:match-bwd"
                )
                for step in range(1, self.degree + 1):
                    target = info.line + stride * step
                    if target < 0:
                        break
                    if not self._covered(target):
                        self._map_for(target >> self.zone_shift)[1].add(
                            target & (self.zone_lines - 1)
                        )
                        candidates.append(target)
                break  # nearest matching stride per direction wins
        return candidates


class PanglossOracle(_OracleBase):
    """Frequency-based delta Markov chain (Pangloss, arXiv 1906.00877).

    Transcribed from the documented machine: an LRU page tracker of
    ``(last_offset, last_delta)`` pairs fed by the miss stream, and an
    LRU transition table mapping a previous delta to a row of
    ``next_delta -> counter`` slots with a running total.  Bumping a
    counter past ``counter_max`` first halves the whole row (dropping
    zeroed slots); inserting into a full row evicts the coldest slot
    (smallest count, ties to the smallest delta).  Prediction walks the
    chain greedily — strongest confident successor per step, in-page
    only, up to ``degree`` candidates — without refreshing row recency.
    """

    name = "pangloss"

    def __init__(
        self,
        lines_per_page: int = 64,
        page_entries: int = 256,
        markov_rows: int = 1024,
        row_slots: int = 8,
        counter_max: int = 15,
        degree: int = 4,
        confidence_percent: int = 20,
    ) -> None:
        super().__init__()
        self.lines_per_page = lines_per_page
        self.page_shift = lines_per_page.bit_length() - 1
        self.page_entries = page_entries
        self.markov_rows = markov_rows
        self.row_slots = row_slots
        self.counter_max = counter_max
        self.degree = degree
        self.confidence_percent = confidence_percent
        self.pages: Dict[int, List[int]] = {}  # page -> [offset, delta]
        self.rows: Dict[int, list] = {}  # prev -> [total, {next: count}]

    def _train(self, prev_delta: int, next_delta: int) -> None:
        row = self.rows.get(prev_delta)
        if row is None:
            if len(self.rows) >= self.markov_rows:
                del self.rows[next(iter(self.rows))]
                self.features.add("pangloss:row-evict")
            row = [0, {}]
            self.rows[prev_delta] = row
        else:
            self.rows[prev_delta] = self.rows.pop(prev_delta)
        slots = row[1]
        if slots.get(next_delta, 0) + 1 > self.counter_max:
            for delta in list(slots):
                slots[delta] //= 2
                if slots[delta] == 0:
                    del slots[delta]
            row[0] = sum(slots.values())
            self.features.add("pangloss:decay")
        if next_delta not in slots and len(slots) >= self.row_slots:
            victim = min(slots, key=lambda delta: (slots[delta], delta))
            row[0] -= slots.pop(victim)
            self.features.add("pangloss:slot-evict")
        slots[next_delta] = slots.get(next_delta, 0) + 1
        row[0] += 1
        self.features.add("pangloss:train")

    def _best(self, delta: int) -> Optional[int]:
        row = self.rows.get(delta)  # lookups leave recency alone
        if row is None or row[0] <= 0:
            return None
        best: Optional[int] = None
        best_count = 0
        for successor, count in row[1].items():
            if count > best_count or (
                count == best_count and best is not None and successor < best
            ):
                best, best_count = successor, count
        if best is None:
            return None
        if best_count * 100 < row[0] * self.confidence_percent:
            self.features.add("pangloss:low-confidence")
            return None
        return best

    def on_access(self, info: Any) -> List[int]:
        if info.l1_hit:
            return []
        page = info.line >> self.page_shift
        offset = info.line & (self.lines_per_page - 1)
        entry = self.pages.get(page)
        if entry is None:
            if len(self.pages) >= self.page_entries:
                del self.pages[next(iter(self.pages))]
                self.features.add("pangloss:page-evict")
            self.pages[page] = [offset, 0]
            self.features.add("pangloss:page-new")
            return []
        self.pages[page] = self.pages.pop(page)
        delta = offset - entry[0]
        if delta == 0:
            return []
        prev_delta = entry[1]
        entry[0] = offset
        entry[1] = delta
        if prev_delta != 0:
            self._train(prev_delta, delta)

        candidates: List[int] = []
        page_base = page << self.page_shift
        walk_offset = offset
        walk_delta = delta
        for _ in range(self.degree):
            successor = self._best(walk_delta)
            if successor is None:
                break
            walk_offset += successor
            if not 0 <= walk_offset < self.lines_per_page:
                break
            line = page_base + walk_offset
            if line != info.line and line not in candidates:
                candidates.append(line)
            walk_delta = successor
        if candidates:
            self.features.add("pangloss:predict")
        if len(candidates) >= 2:
            self.features.add("pangloss:chain")
        return candidates


class PythiaOracle(_OracleBase):
    """Tabular SARSA prefetcher (Pythia-style, arXiv 2109.12021).

    Transcribed from the documented machine: one decision per L1 miss,
    state built from the configured feature set (folded PC, non-zero
    in-page delta history, page offset), an LRU Q-table of float rows,
    epsilon-greedy action selection, and shadow-tracked predictions
    whose fate (timely / late / useless) becomes the SARSA reward.

    Mirrored stochastic contract: the implementation draws from the
    named stream ``"pythia.explore"``, which is ``random.Random`` seeded
    with ``(seed * 1_000_003 + crc32("pythia.explore")) & 0x7FFF_FFFF``;
    every decision first draws ``randrange(1_000_000)`` and, when it
    falls under ``round(epsilon * 1e6)``, a second ``randrange(actions)``
    picks uniformly.  Q-updates use the exact expression shape
    ``q + alpha * (r + gamma * q_next - q)`` so floats stay
    bit-identical.
    """

    name = "pythia"

    ACTIONS = (-6, -3, -1, 0, 1, 3, 4, 5, 10, 11, 12, 16, 22, 23, 30, 32)

    def __init__(
        self,
        feature_set: str = "pc+delta",
        history_len: int = 2,
        actions: Tuple[int, ...] = ACTIONS,
        alpha: float = 0.0065,
        gamma: float = 0.556,
        epsilon: float = 0.002,
        q_entries: int = 4096,
        page_entries: int = 64,
        inflight_entries: int = 64,
        timely_age: int = 12,
        useless_age: int = 256,
        reward_timely: int = 20,
        reward_late: int = 12,
        reward_useless: int = -14,
        reward_none: int = -2,
        lines_per_page: int = 64,
        pc_bits: int = 10,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.feature_parts = feature_set.split("+")
        self.history_len = history_len
        self.actions = actions
        self.alpha = alpha
        self.gamma = gamma
        self.epsilon_cut = int(round(epsilon * 1_000_000))
        self.q_entries = q_entries
        self.page_entries = page_entries
        self.inflight_entries = inflight_entries
        self.timely_age = timely_age
        self.useless_age = useless_age
        self.reward_timely = reward_timely
        self.reward_late = reward_late
        self.reward_useless = reward_useless
        self.reward_none = reward_none
        self.lines_per_page = lines_per_page
        self.page_shift = lines_per_page.bit_length() - 1
        self.pc_mask = (1 << pc_bits) - 1
        derived = (seed * 1_000_003 + zlib.crc32(b"pythia.explore")) \
            & 0x7FFF_FFFF
        self.rng = random.Random(derived)
        self.tick = 0
        self.next_decision = 0
        self.history: List[int] = []
        self.pages: Dict[int, int] = {}  # page -> last offset; order = LRU
        self.q: Dict[tuple, List[float]] = {}  # state -> row; order = LRU
        self.inflight: Dict[int, Tuple[int, int]] = {}  # line -> (id, tick)
        self.ledger: Dict[int, list] = {}  # id -> [row, a, r, row', a']
        self.previous: Optional[int] = None

    def _apply(self, decision: int) -> None:
        entry = self.ledger.get(decision)
        if entry is None or entry[2] is None or entry[3] is None:
            return
        row, action, reward, next_row, next_action = entry
        q = row[action]
        row[action] = q + self.alpha * (
            reward + self.gamma * next_row[next_action] - q
        )
        del self.ledger[decision]
        self.features.add("pythia:learn")

    def _resolve(self, decision: int, reward: int) -> None:
        entry = self.ledger.get(decision)
        if entry is not None:
            entry[2] = reward
            self._apply(decision)

    def on_access(self, info: Any) -> List[int]:
        record = self.inflight.pop(info.line, None)
        if record is not None:
            decision, issue_tick = record
            if self.tick - issue_tick >= self.timely_age:
                self.features.add("pythia:timely")
                self._resolve(decision, self.reward_timely)
            else:
                self.features.add("pythia:late")
                self._resolve(decision, self.reward_late)
        if info.l1_hit:
            return []

        while self.inflight:
            line = next(iter(self.inflight))
            decision, issue_tick = self.inflight[line]
            if self.tick - issue_tick <= self.useless_age:
                break
            del self.inflight[line]
            self.features.add("pythia:useless")
            self._resolve(decision, self.reward_useless)

        page = info.line >> self.page_shift
        offset = info.line & (self.lines_per_page - 1)
        last_offset = self.pages.get(page)
        if last_offset is None:
            if len(self.pages) >= self.page_entries:
                del self.pages[next(iter(self.pages))]
        else:
            self.pages[page] = self.pages.pop(page)
        self.pages[page] = offset
        delta = 0 if last_offset is None else offset - last_offset
        if delta != 0:
            self.history.append(delta)
            del self.history[: -self.history_len]

        state_parts: List[Any] = []
        for part in self.feature_parts:
            if part == "pc":
                state_parts.append(info.pc & self.pc_mask)
            elif part == "delta":
                state_parts.append(tuple(self.history))
            else:  # offset
                state_parts.append(offset)
        state = tuple(state_parts)

        row = self.q.get(state)
        if row is None:
            if len(self.q) >= self.q_entries:
                del self.q[next(iter(self.q))]
                self.features.add("pythia:q-evict")
            row = [0.0] * len(self.actions)
            self.q[state] = row
        else:
            self.q[state] = self.q.pop(state)

        if self.rng.randrange(1_000_000) < self.epsilon_cut:
            action = self.rng.randrange(len(self.actions))
            self.features.add("pythia:explore")
        else:
            action = 0
            for index in range(1, len(row)):
                if row[index] > row[action]:
                    action = index
            self.features.add("pythia:exploit")

        decision = self.next_decision
        self.next_decision += 1
        self.ledger[decision] = [row, action, None, None, None]
        if self.previous is not None:
            entry = self.ledger.get(self.previous)
            if entry is not None:
                entry[3] = row
                entry[4] = action
                self._apply(self.previous)
        self.previous = decision

        candidates: List[int] = []
        action_delta = self.actions[action]
        target_offset = offset + action_delta
        if action_delta == 0 or not (
            0 <= target_offset < self.lines_per_page
        ):
            self.features.add("pythia:no-prefetch")
            self._resolve(decision, self.reward_none)
        else:
            target = (page << self.page_shift) + target_offset
            displaced = self.inflight.pop(target, None)
            if displaced is not None:
                self._resolve(displaced[0], self.reward_useless)
            if len(self.inflight) >= self.inflight_entries:
                line = next(iter(self.inflight))
                old_decision, _ = self.inflight.pop(line)
                self.features.add("pythia:useless")
                self._resolve(old_decision, self.reward_useless)
            self.inflight[target] = (decision, self.tick)
            self.features.add("pythia:issue")
            candidates.append(target)
        self.tick += 1
        return candidates


class CbwsOracle(_OracleBase):
    """Standalone CBWS prefetcher (Algorithm 1 / Figure 8).

    A direct transcription of the paper's algorithm: the current block's
    working set accumulates in a capped first-touch-order vector,
    per-step differentials against the k-th predecessor working set are
    built incrementally, and at BLOCK_END the differential history table
    trains under the pre-shift register tags, the registers shift the
    new differential hashes, and the post-shift tags probe the table for
    predictions (``CBWS[i] + Δ[i]``, deduplicated, order preserved).

    Accesses only register between BLOCK_BEGIN and BLOCK_END; a change
    of static block id flushes all cross-block history.  The table's
    random replacement draws from ``random.Random(seed)`` over the keys
    in insertion order — the mirrored contract that makes eviction
    sequences reproducible against the implementation.
    """

    name = "cbws"

    def __init__(
        self,
        max_vector_members: int = 16,
        max_step: int = 4,
        predict_steps: int = 4,
        history_depth: int = 3,
        table_entries: int = 16,
        stride_bits: int = 16,
        hash_bits: int = 12,
        tag_bits: int = 16,
        line_addr_bits: int = 32,
        seed: int = 0xCB35,
    ) -> None:
        super().__init__()
        self.vector = max_vector_members
        self.max_step = max_step
        self.predict_steps = predict_steps
        self.depth = history_depth
        self.entries = table_entries
        self.stride_bits = stride_bits
        self.hash_bits = hash_bits
        self.tag_bits = tag_bits
        self.line_mask = (1 << line_addr_bits) - 1
        self.rng = random.Random(seed)
        self.in_block = False
        self.block_id: Optional[int] = None
        self.current: List[int] = []
        self.overflowed = False
        self.last_blocks: List[Tuple[int, ...]] = []  # newest first
        self.registers: List[List[int]] = [[] for _ in range(max_step)]
        self.diffs: List[List[int]] = [[] for _ in range(max_step)]
        self.table: Dict[int, Tuple[int, ...]] = {}  # order = insertion

    # -- pure helpers (re-derived, not imported) ---------------------------

    def _fold(self, value: int, bits: int) -> int:
        """XOR-fold a non-negative integer down to ``bits`` bits."""
        folded = 0
        low = (1 << bits) - 1
        while value:
            folded ^= value & low
            value >>= bits
        return folded

    def _hash(self, delta: List[int]) -> int:
        """12-bit differential hash; empty maps to the reserved all-ones."""
        if not delta:
            return (1 << self.hash_bits) - 1
        folded = len(delta)
        for position, element in enumerate(delta):
            encoded = element & 0xFFFF
            rotation = (position * 5) % 16
            rotated = ((encoded << rotation) | (encoded >> (16 - rotation))) & 0xFFFFFFFF
            folded ^= rotated
        return self._fold(folded, self.hash_bits)

    def _tag(self, register: List[int]) -> int:
        """Fold a shift register (oldest first) into a table tag."""
        concatenated = 0
        for position, value in enumerate(register):
            concatenated |= value << (position * self.hash_bits)
        concatenated ^= len(register)
        return self._fold(concatenated, self.tag_bits)

    def _insert(self, tag: int, delta: List[int]) -> None:
        key = tag & ((1 << self.tag_bits) - 1)
        if key not in self.table and len(self.table) >= self.entries:
            victim = self.rng.choice(list(self.table.keys()))
            del self.table[victim]
            self.features.add("cbws:table-evict")
        self.table[key] = tuple(delta)

    # -- event protocol ----------------------------------------------------

    def on_block_begin(self, block_id: int) -> None:
        if block_id != self.block_id:
            self.last_blocks = []
            self.registers = [[] for _ in range(self.max_step)]
            self.diffs = [[] for _ in range(self.max_step)]
            self.block_id = block_id
            self.features.add("cbws:block-switch")
        self.current = []
        self.overflowed = False
        self.diffs = [[] for _ in range(self.max_step)]
        self.in_block = True

    def on_access(self, info: Any) -> List[int]:
        if not self.in_block:
            return []
        truncated = info.line & self.line_mask
        if truncated in self.current:
            return []
        if len(self.current) >= self.vector:
            self.overflowed = True
            self.features.add("cbws:overflow")
            return []
        index = len(self.current)
        self.current.append(truncated)
        sign = 1 << (self.stride_bits - 1)
        stride_mask = (1 << self.stride_bits) - 1
        for position, predecessor in enumerate(self.last_blocks):
            if index >= len(predecessor):
                continue
            diffs = self.diffs[position]
            if len(diffs) == index:  # element positions stay aligned
                raw = (truncated - predecessor[index]) & stride_mask
                diffs.append((raw ^ sign) - sign)
        return []

    def on_block_end(self, block_id: int) -> List[int]:
        self.in_block = False
        completed = tuple(self.current)

        # Train under the pre-shift tags, then advance each register.
        for step in range(self.max_step):
            delta = self.diffs[step]
            if delta:
                self._insert(self._tag(self.registers[step]), delta)
                self.features.add("cbws:train")
            register = self.registers[step]
            register.append(self._hash(delta))
            if len(register) > self.depth:
                del register[0]

        if completed:
            self.last_blocks.insert(0, completed)
            del self.last_blocks[self.max_step :]

        # Probe with the post-shift tags; CBWS[i] + Δ[i] per hit.
        candidates: List[int] = []
        seen: Set[int] = set()
        for step in range(1, self.predict_steps + 1):
            predicted = self.table.get(self._tag(self.registers[step - 1]))
            if predicted is None:
                continue
            self.features.add("cbws:table-hit")
            for position in range(min(len(completed), len(predicted))):
                line = (completed[position] + predicted[position]) & self.line_mask
                if line not in seen:
                    seen.add(line)
                    candidates.append(line)
        if candidates:
            self.features.add("cbws:predict")

        self.current = []
        self.overflowed = False
        self.diffs = [[] for _ in range(self.max_step)]
        return candidates


class CbwsSmsOracle(_OracleBase):
    """CBWS as an add-on over SMS (deployment mode #2, Section VII).

    SMS trains on everything; CBWS BLOCK_END predictions are claimed in
    a 128-entry FIFO ownership filter, and SMS candidates for owned
    lines are suppressed.
    """

    name = "cbws+sms"
    OWNED_LINES = 128

    def __init__(self) -> None:
        super().__init__()
        self.cbws = CbwsOracle()
        self.sms = SmsOracle()
        self.owned: List[int] = []  # FIFO order; membership via scan is fine

    @property
    def features(self) -> Set[str]:  # type: ignore[override]
        return self.cbws.features | self.sms.features

    @features.setter
    def features(self, value: Set[str]) -> None:
        pass  # component oracles own their feature sets

    def on_block_begin(self, block_id: int) -> None:
        self.cbws.on_block_begin(block_id)

    def on_block_end(self, block_id: int) -> List[int]:
        predicted = self.cbws.on_block_end(block_id)
        for line in predicted:
            if line in self.owned:
                continue
            if len(self.owned) >= self.OWNED_LINES:
                del self.owned[0]
            self.owned.append(line)
        return predicted

    def on_access(self, info: Any) -> List[int]:
        self.cbws.on_access(info)
        candidates = self.sms.on_access(info)
        return [line for line in candidates if line not in self.owned]

    def on_l1_eviction(self, line: int) -> None:
        self.sms.on_l1_eviction(line)


class _CacheLevelOracle:
    """One cache level: per-set LRU lists of [line, unused_prefetch]."""

    def __init__(self, num_sets: int, ways: int) -> None:
        self.num_sets = num_sets
        self.ways = ways
        self.sets: List[List[List[int]]] = [[] for _ in range(num_sets)]

    def _set(self, line: int) -> List[List[int]]:
        return self.sets[line % self.num_sets]

    def find(self, line: int) -> Optional[List[int]]:
        for entry in self._set(line):
            if entry[0] == line:
                return entry
        return None

    def touch(self, line: int) -> bool:
        """Demand reference: clear the prefetch flag and move to MRU."""
        cache_set = self._set(line)
        for position, entry in enumerate(cache_set):
            if entry[0] == line:
                entry[1] = 0
                cache_set.append(cache_set.pop(position))
                return True
        return False

    def insert_demand(self, line: int) -> Optional[List[int]]:
        """Install at MRU; returns the evicted [line, flag] if any."""
        cache_set = self._set(line)
        victim = None
        if len(cache_set) >= self.ways:
            victim = cache_set.pop(0)
        cache_set.append([line, 0])
        return victim

    def insert_prefetch(self, line: int) -> Optional[List[int]]:
        """Install at LRU; returns the evicted [line, flag] if any."""
        cache_set = self._set(line)
        victim = None
        if len(cache_set) >= self.ways:
            victim = cache_set.pop(0)
        cache_set.insert(0, [line, 1])
        return victim

    def remove(self, line: int) -> Optional[List[int]]:
        cache_set = self._set(line)
        for position, entry in enumerate(cache_set):
            if entry[0] == line:
                return cache_set.pop(position)
        return None

    def resident(self) -> List[int]:
        return [entry[0] for cache_set in self.sets for entry in cache_set]


class HierarchyOracle:
    """Golden model of the two-level inclusive hierarchy.

    Semantics (DESIGN.md / Table II): demand accesses probe L1 → L2 →
    memory and fill both levels at MRU; prefetches fill L2 only, at LRU,
    and carry an unused-prefetch flag cleared by the first demand
    reference; an L2 eviction back-invalidates L1 (inclusion).  Outcomes
    are the strings ``"l1"``, ``"l2"``, ``"l2-prefetch"``, ``"memory"``.
    """

    def __init__(
        self,
        l1_sets: int = 16,
        l1_ways: int = 4,
        l2_sets: int = 256,
        l2_ways: int = 8,
    ) -> None:
        self.l1 = _CacheLevelOracle(l1_sets, l1_ways)
        self.l2 = _CacheLevelOracle(l2_sets, l2_ways)
        self.stats = {
            "accesses": 0,
            "l1_misses": 0,
            "l2_misses": 0,
            "prefetch_fills": 0,
            "useful_prefetch_hits": 0,
            "wrong_prefetch_evictions": 0,
        }

    def demand_access(self, line: int) -> Tuple[str, List[int]]:
        """One committed access; returns (outcome, L1-evicted lines)."""
        self.stats["accesses"] += 1
        if self.l1.touch(line):
            self.l2.touch(line)  # keep the hot line recent in L2 too
            return "l1", []

        self.stats["l1_misses"] += 1
        evictions: List[int] = []
        l2_entry = self.l2.find(line)
        if l2_entry is not None:
            was_prefetch = bool(l2_entry[1])
            if was_prefetch:
                self.stats["useful_prefetch_hits"] += 1
            self.l2.touch(line)
            victim = self.l1.insert_demand(line)
            if victim is not None:
                evictions.append(victim[0])
            return ("l2-prefetch" if was_prefetch else "l2"), evictions

        self.stats["l2_misses"] += 1
        l2_victim = self.l2.insert_demand(line)
        if l2_victim is not None:
            if l2_victim[1]:
                self.stats["wrong_prefetch_evictions"] += 1
            back = self.l1.remove(l2_victim[0])
            if back is not None:
                evictions.append(back[0])
        l1_victim = self.l1.insert_demand(line)
        if l1_victim is not None:
            evictions.append(l1_victim[0])
        return "memory", evictions

    def prefetch_fill(self, line: int) -> Tuple[bool, List[int]]:
        """Install a completed prefetch; returns (filled, L1 evictions)."""
        if self.l2.find(line) is not None:
            return False, []
        self.stats["prefetch_fills"] += 1
        evictions: List[int] = []
        l2_victim = self.l2.insert_prefetch(line)
        if l2_victim is not None:
            if l2_victim[1]:
                self.stats["wrong_prefetch_evictions"] += 1
            back = self.l1.remove(l2_victim[0])
            if back is not None:
                evictions.append(back[0])
        return True, evictions


#: Oracle factories, keyed by the registry names of the implementations
#: they model.  These are the ten prefetcher configurations the
#: differential harness verifies.
ORACLE_FACTORIES = {
    "no-prefetch": NoPrefetchOracle,
    "stride": StrideOracle,
    "ghb-pc/dc": lambda: GhbOracle(mode="pc"),
    "ghb-g/dc": lambda: GhbOracle(mode="global"),
    "sms": SmsOracle,
    "markov": MarkovOracle,
    "ampm": AmpmOracle,
    "cbws": CbwsOracle,
    "cbws+sms": CbwsSmsOracle,
    "pangloss": PanglossOracle,
    "pythia": PythiaOracle,
}


def make_oracle(name: str):
    """Build a fresh oracle for a registry prefetcher name."""
    try:
        factory = ORACLE_FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(ORACLE_FACTORIES))
        raise KeyError(f"no oracle for {name!r}; known: {known}") from None
    return factory()
