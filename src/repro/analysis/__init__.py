"""Offline trace analyses backing Section II and Section IV claims.

* :mod:`repro.analysis.differentials` — the skewed distribution of CBWS
  differential vectors (Figure 5);
* :mod:`repro.analysis.workingsets` — dynamic working-set sizes and the
  "16 lines map over 98% of dynamic code blocks" claim of Section IV-A.
"""

from repro.analysis.differentials import (
    DifferentialDistribution,
    differential_distribution,
    extract_cbws_sequences,
)
from repro.analysis.workingsets import (
    WorkingSetDistribution,
    working_set_distribution,
)
from repro.analysis.reuse import COLD, ReuseProfile, reuse_profile

__all__ = [
    "DifferentialDistribution",
    "differential_distribution",
    "extract_cbws_sequences",
    "WorkingSetDistribution",
    "working_set_distribution",
    "COLD",
    "ReuseProfile",
    "reuse_profile",
]
