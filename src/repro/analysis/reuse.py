"""Reuse-distance analysis.

The reduced-scale methodology (EXPERIMENTS.md) rests on one claim: if a
workload's reuse-distance profile straddles the L2 capacity the same way
the original straddles the paper's 2 MB L2, the miss behaviour — and so
the prefetcher comparison — is preserved.  This module measures that
profile: for every access, the number of *distinct lines* touched since
the previous access to the same line (the classic LRU stack distance).

A cache of C lines (fully-associative LRU) hits exactly the accesses
with reuse distance < C, so the profile's CDF directly predicts miss
ratios at any capacity — used by tests to confirm each workload's
footprint sits on the intended side of the reduced L2.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.trace.events import MEMORY_ACCESS
from repro.trace.stream import Trace

#: Bucket for first-touch (cold) accesses.
COLD = -1


@dataclass(frozen=True)
class ReuseProfile:
    """LRU stack-distance histogram of one trace.

    Attributes:
        name: trace name.
        accesses: total line-granularity accesses measured.
        histogram: reuse distance -> count; :data:`COLD` counts first
            touches.
    """

    name: str
    accesses: int
    histogram: dict[int, int]

    @property
    def cold_fraction(self) -> float:
        """Fraction of accesses that are first touches."""
        if self.accesses == 0:
            return 0.0
        return self.histogram.get(COLD, 0) / self.accesses

    def hit_ratio_at(self, capacity_lines: int) -> float:
        """Hit ratio of a fully-associative LRU cache of that capacity."""
        if self.accesses == 0:
            return 0.0
        hits = sum(
            count for distance, count in self.histogram.items()
            if distance != COLD and distance < capacity_lines
        )
        return hits / self.accesses

    def working_set_lines(self, coverage: float = 0.9) -> int:
        """Smallest LRU capacity achieving ``coverage`` of the maximum
        achievable (non-cold) hit ratio."""
        reuses = self.accesses - self.histogram.get(COLD, 0)
        if reuses == 0:
            return 0
        target = coverage * reuses
        covered = 0
        for distance in sorted(d for d in self.histogram if d != COLD):
            covered += self.histogram[distance]
            if covered >= target:
                return distance + 1
        return max(d for d in self.histogram if d != COLD) + 1


def reuse_profile(trace: Trace, max_tracked: int = 1 << 20) -> ReuseProfile:
    """Measure the LRU stack-distance histogram of a trace.

    Uses the classic two-level approach: an ordered recency list with a
    position index, O(n * d) worst case but fast for the bounded reuse
    distances real kernels exhibit.  ``max_tracked`` caps the recency
    list so adversarial traces cannot exhaust memory; distances beyond
    the cap are reported at the cap.
    """
    histogram: Counter[int] = Counter()
    recency: list[int] = []  # most recent at the end
    position: dict[int, int] = {}
    accesses = 0

    for event in trace.events:
        if event.kind != MEMORY_ACCESS:
            continue
        accesses += 1
        line = event.address >> 6
        index = position.get(line)
        if index is None:
            histogram[COLD] += 1
        else:
            # Distinct lines touched since last touch of `line`.
            distance = len(recency) - index - 1
            histogram[min(distance, max_tracked)] += 1
            recency.pop(index)
            for moved in range(index, len(recency)):
                position[recency[moved]] = moved
        recency.append(line)
        position[line] = len(recency) - 1
        if len(recency) > max_tracked:
            evicted = recency.pop(0)
            del position[evicted]
            for moved_line, moved_index in position.items():
                position[moved_line] = moved_index - 1
    return ReuseProfile(
        name=trace.name, accesses=accesses, histogram=dict(histogram)
    )
