"""Dynamic working-set sizes (the Section IV-A 16-line claim).

"Our experiments show that 16 lines are sufficient to map the entire
working set of over 98% of the dynamic code blocks in the benchmarks
tested."  This module computes the distribution of distinct lines per
dynamic block instance, uncapped, so the claim can be checked for any
capacity.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.trace.events import BLOCK_BEGIN, BLOCK_END, MEMORY_ACCESS
from repro.trace.stream import Trace


@dataclass(frozen=True)
class WorkingSetDistribution:
    """Distribution of dynamic block working-set sizes for one trace.

    Attributes:
        name: trace name.
        blocks: dynamic block instances observed.
        size_histogram: distinct-line count -> number of blocks.
    """

    name: str
    blocks: int
    size_histogram: dict[int, int]

    def fraction_within(self, capacity: int) -> float:
        """Fraction of dynamic blocks whose entire working set fits in
        ``capacity`` lines — the 98% claim evaluates this at 16."""
        if self.blocks == 0:
            return 0.0
        covered = sum(
            count for size, count in self.size_histogram.items()
            if size <= capacity
        )
        return covered / self.blocks

    @property
    def max_size(self) -> int:
        """Largest observed dynamic working set."""
        if not self.size_histogram:
            return 0
        return max(self.size_histogram)

    @property
    def mean_size(self) -> float:
        """Average distinct lines per dynamic block."""
        if self.blocks == 0:
            return 0.0
        weighted = sum(size * count for size, count in self.size_histogram.items())
        return weighted / self.blocks


def working_set_distribution(trace: Trace) -> WorkingSetDistribution:
    """Histogram the distinct-line count of every dynamic block."""
    histogram: Counter[int] = Counter()
    blocks = 0
    lines: set[int] | None = None
    for event in trace.events:
        kind = event.kind
        if kind == MEMORY_ACCESS:
            if lines is not None:
                lines.add(event.address >> 6)
        elif kind == BLOCK_BEGIN:
            lines = set()
        elif kind == BLOCK_END:
            if lines is not None:
                histogram[len(lines)] += 1
                blocks += 1
            lines = None
    return WorkingSetDistribution(
        name=trace.name,
        blocks=blocks,
        size_histogram=dict(histogram),
    )
