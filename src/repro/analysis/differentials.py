"""The skewed distribution of CBWS differential vectors (Figure 5).

Section II-B argues the whole design is viable because "the vast
majority of loop iterations are served by a tiny fraction of the
differential vectors" — e.g. 5% of soplex's distinct vectors cover ~90%
of its iterations.  This module measures that distribution directly from
a trace: extract the CBWS of every completed block instance, compute
consecutive differentials per static block, count distinct vectors, and
build the cumulative coverage curve.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from repro.core.cbws import CodeBlockWorkingSet, differential
from repro.trace.events import BLOCK_BEGIN, BLOCK_END, MEMORY_ACCESS
from repro.trace.stream import Trace


def extract_cbws_sequences(
    trace: Trace,
    max_members: int | None = 16,
) -> dict[int, list[tuple[int, ...]]]:
    """Per static block id, the sequence of CBWS vectors it produced."""
    sequences: dict[int, list[tuple[int, ...]]] = defaultdict(list)
    current: CodeBlockWorkingSet | None = None
    current_id: int | None = None
    for event in trace.events:
        kind = event.kind
        if kind == MEMORY_ACCESS:
            if current is not None:
                current.observe(event.address >> 6)
        elif kind == BLOCK_BEGIN:
            current = CodeBlockWorkingSet(max_members=max_members)
            current_id = event.block_id
        elif kind == BLOCK_END:
            if current is not None and current_id is not None and len(current):
                sequences[current_id].append(current.as_tuple())
            current = None
            current_id = None
    return dict(sequences)


@dataclass(frozen=True)
class DifferentialDistribution:
    """The Figure 5 distribution for one trace.

    Attributes:
        name: trace name.
        iterations: number of differentials observed (block transitions).
        distinct_vectors: number of distinct differential vectors.
        coverage_curve: list of (fraction of distinct vectors, fraction
            of iterations covered), vectors sorted most-frequent first.
    """

    name: str
    iterations: int
    distinct_vectors: int
    coverage_curve: tuple[tuple[float, float], ...]

    def coverage_at(self, vector_fraction: float) -> float:
        """Iteration coverage achieved by the top ``vector_fraction`` of
        distinct vectors (the paper's "90% by 5%" readout).

        The vector budget rounds up to at least one vector: a benchmark
        with two distinct vectors is maximally skewed, and its curve
        starts at the first vector rather than at zero.
        """
        if not self.coverage_curve:
            return 0.0
        budget = max(1, int(vector_fraction * self.distinct_vectors + 1e-9))
        index = min(budget, len(self.coverage_curve)) - 1
        return self.coverage_curve[index][1]

    @property
    def skew(self) -> float:
        """Coverage by the top 10% of vectors — a scalar skew index."""
        return self.coverage_at(0.10)


def differential_distribution(
    trace: Trace,
    max_members: int | None = 16,
) -> DifferentialDistribution:
    """Measure the distribution of consecutive CBWS differentials."""
    sequences = extract_cbws_sequences(trace, max_members)
    counts: Counter[tuple[int, ...]] = Counter()
    for cbws_list in sequences.values():
        for older, newer in zip(cbws_list, cbws_list[1:]):
            delta = differential(older, newer)
            if delta:
                counts[delta] += 1

    total = sum(counts.values())
    distinct = len(counts)
    curve: list[tuple[float, float]] = []
    if total and distinct:
        covered = 0
        for rank, (_, count) in enumerate(counts.most_common(), start=1):
            covered += count
            curve.append((rank / distinct, covered / total))
    return DifferentialDistribution(
        name=trace.name,
        iterations=total,
        distinct_vectors=distinct,
        coverage_curve=tuple(curve),
    )
