"""Rodinia ``nw``: Needleman-Wunsch sequence alignment.

Dynamic-programming wavefront: cells along an anti-diagonal are
independent, so the tight inner loop walks a diagonal — consecutive
cells sit one row down and one column left, a constant stride of
``cols - 1`` elements.  Each iteration reads the north-west, north and
west neighbours plus the reference matrix and writes the cell: a
5-element CBWS with a constant differential, far beyond an SMS region.
The paper reports both CBWS prefetchers outperform all others on nw.
"""

from __future__ import annotations

from repro.ir.nodes import ArrayDecl, Compute, For, Kernel, Load, Store
from repro.ir.builder import c, v
from repro.workloads.base import WorkloadSpec
from repro.workloads.inits import uniform_ints


def build(scale: float = 1.0) -> Kernel:
    """Square DP matrix several times the reduced L2."""
    cols = max(64, int(256 * scale))
    total = cols * cols

    d, t = v("d"), v("t")
    # Cell (r, c) with r = t, c = d - t; index = r*cols + c.
    cell = t * c(cols) + (d - t)
    inner = [
        Load("score", cell - c(cols) - 1),  # north-west
        Load("score", cell - c(cols)),      # north
        Load("score", cell - 1),            # west
        Load("ref", cell),                   # substitution score
        Compute(8),  # three-way max plus add
        Store("score", cell),
    ]
    # Lower-triangle wavefront sweep: diagonals d = 1 .. cols-1, cells
    # t = 1 .. d-1 stay inside the matrix and off the first row/column.
    body = [
        For("d", 2, cols, [
            For("t", 1, d, inner),
        ]),
    ]
    return Kernel(
        "nw",
        [
            ArrayDecl("score", total, 4),
            ArrayDecl("ref", total, 4, uniform_ints(total, -4, 5)),
        ],
        body,
    )


SPEC = WorkloadSpec(
    name="nw",
    suite="Rodinia",
    group="mi",
    description="DP wavefront; diagonal walk strides cols-1 per iteration",
    build=build,
    default_accesses=60_000,
)
