"""Parboil ``mri-q-large``: MRI Q-matrix computation.

The hot loop accumulates, for one voxel, contributions from every
k-space sample: four parallel unit-stride streams (kx, ky, kz, phi) with
heavy trigonometric arithmetic between accesses.  All stream prefetchers
handle it; the CBWS gain is modest since a whole iteration touches the
same handful of advancing lines (Figure 14 shows mri-q near parity).
"""

from __future__ import annotations

from repro.ir.nodes import ArrayDecl, Compute, For, Kernel, Load, Store
from repro.ir.builder import c, v
from repro.workloads.base import WorkloadSpec
from repro.workloads.inits import uniform_ints


def build(scale: float = 1.0) -> Kernel:
    samples = max(8192, int(24_000 * scale))
    voxels = 8

    x, k = v("x"), v("k")
    inner = [
        Load("kx", k),
        Load("ky", k),
        Load("kz", k),
        Load("phi", k),
        Compute(24),  # sin/cos + multiply-accumulate chain
    ]
    body = [
        For("x", 0, voxels, [
            For("k", 0, samples, inner),
            Store("q_re", x),
            Store("q_im", x),
        ]),
    ]
    return Kernel(
        "mri-q-large",
        [
            ArrayDecl("kx", samples, 8, uniform_ints(samples, -512, 512)),
            ArrayDecl("ky", samples, 8, uniform_ints(samples, -512, 512)),
            ArrayDecl("kz", samples, 8, uniform_ints(samples, -512, 512)),
            ArrayDecl("phi", samples, 8, uniform_ints(samples, -512, 512)),
            ArrayDecl("q_re", voxels, 8),
            ArrayDecl("q_im", voxels, 8),
        ],
        body,
    )


SPEC = WorkloadSpec(
    name="mri-q-large",
    suite="Parboil",
    group="mi",
    description="four parallel k-space streams with heavy arithmetic",
    build=build,
    default_accesses=60_000,
)
