"""SPLASH ``fft-simlarge``: bit-reversal reordering plus butterfly passes.

Two alternating phases, both tight loops:

* **bit-reversal** — ``x[i] <-> x[rev(i)]``: the gathered side jumps all
  over the array, producing a different CBWS differential on virtually
  every iteration;
* **butterflies** — each stage pairs elements ``span`` apart with
  ``span`` doubling per stage, so even the regular phase keeps changing
  its differential.

Together they are exactly the pathology the paper describes: "several
segments in fft ... have a large number of distinct differential
vectors.  As a result, the history table is too small to represent a
meaningful CBWS differential history" — the standalone CBWS prefetcher
is outperformed by SMS (whose region patterns stay dense across phases),
and the CBWS+SMS fall-back recovers the difference.
"""

from __future__ import annotations

import numpy as np

from repro.ir.nodes import ArrayDecl, Assign, Compute, For, If, Kernel, Load, Store
from repro.ir.builder import c, v
from repro.workloads.base import WorkloadSpec
from repro.workloads.inits import uniform_ints


def _bit_reversed(log_n: int):
    """Precomputed bit-reversal permutation table."""

    def init(rng: np.random.Generator) -> np.ndarray:
        n = 1 << log_n
        indices = np.arange(n, dtype=np.int64)
        reversed_indices = np.zeros(n, dtype=np.int64)
        for bit in range(log_n):
            reversed_indices |= ((indices >> bit) & 1) << (log_n - 1 - bit)
        return reversed_indices

    return init


def build(scale: float = 1.0) -> Kernel:
    log_n = max(10, int(13 + round(scale) - 1))
    n = 1 << log_n

    s, blk, t, i = v("s"), v("blk"), v("t"), v("i")

    # Phase 1: bit-reversal reorder.  As in the real loop, each pair is
    # swapped once (only when rev(i) > i), so half the iterations touch
    # only the permutation table — divergent working sets on top of the
    # scattered gathers.
    reverse = For("i", 0, n, [
        Load("rev", i, dst="j"),
        Load("re", i),
        Compute(1),
        If(v("j").gt(i), [
            Load("re", v("j")),
            Load("im", v("j")),
            Store("im", v("j")),
            Compute(3),
        ]),
    ])

    # Phase 2: butterfly stages; span doubles each stage.
    base = blk * (v("span") * 2) + t
    butterfly = [
        Load("re", base),
        Load("re", base + v("span")),
        Load("im", base),
        Load("im", base + v("span")),
        Load("tw", t),
        Compute(12),  # complex multiply + add/sub
        Store("re", base),
        Store("re", base + v("span")),
        Store("im", base),
        Store("im", base + v("span")),
    ]
    stages = For("s", 0, log_n, [
        Assign("span", c(1) << s),
        Assign("blocks", c(n) // (v("span") * 2)),
        For("blk", 0, v("blocks"), [
            For("t", 0, v("span"), butterfly),
        ]),
    ])
    return Kernel(
        "fft-simlarge",
        [
            ArrayDecl("re", n, 8, uniform_ints(n, -1000, 1000)),
            ArrayDecl("im", n, 8, uniform_ints(n, -1000, 1000)),
            ArrayDecl("tw", n, 8, uniform_ints(n, -1000, 1000)),
            ArrayDecl("rev", n, 4, _bit_reversed(log_n)),
        ],
        [reverse, stages],
    )


SPEC = WorkloadSpec(
    name="fft-simlarge",
    suite="PARSEC-SPLASH",
    group="mi",
    description="bit-reversal gathers + butterflies with doubling strides",
    build=build,
    default_accesses=140_000,
)
