"""Parboil ``sgemm-medium``: dense matrix multiply.

The inner ``k`` loop reads a row of A (unit stride) and walks a column of
B — a constant stride of one full row (``n`` elements) per iteration.
The B column walk is the classic case where an iteration's working set is
a short vector of far-apart lines evolving by a constant differential:
the paper reports that "the CBWS schemes effectively eliminate misses in
block structured benchmarks such as sgemm".
"""

from __future__ import annotations

from repro.ir.nodes import ArrayDecl, Assign, Compute, For, Kernel, Load, Store
from repro.ir.builder import c, v
from repro.workloads.base import WorkloadSpec


def build(scale: float = 1.0) -> Kernel:
    """B sized beyond the reduced L2 so its column walk always misses."""
    m = 8
    n = 256
    k_dim = max(16, int(192 * scale))  # B = k_dim x n floats

    i, j, k = v("i"), v("j"), v("k")
    inner = [
        Load("A", i * c(k_dim) + k),
        Load("B", k * c(n) + j),
        Compute(6),  # multiply-accumulate + loop arithmetic
    ]
    body = [
        For("i", 0, m, [
            For("j", 0, n, [
                Assign("acc", 0),
                For("k", 0, k_dim, inner),
                Store("C", i * c(n) + j),
            ]),
        ]),
    ]
    return Kernel(
        "sgemm-medium",
        [
            ArrayDecl("A", m * k_dim, 4),
            ArrayDecl("B", k_dim * n, 4),
            ArrayDecl("C", m * n, 4),
        ],
        body,
    )


SPEC = WorkloadSpec(
    name="sgemm-medium",
    suite="Parboil",
    group="mi",
    description="dense matmul; B column walk strides a full row per iteration",
    build=build,
    default_accesses=70_000,
)
