"""PARSEC ``streamcluster-simlarge``: online k-median clustering.

The hot loop computes the distance from each point to its *currently
assigned* center: the point side is a dense unit-stride burst, but the
center side jumps to a data-dependent row per point.  Consecutive
iterations therefore produce many distinct CBWS differentials — the
second benchmark (with fft) where the paper finds "the history table is
too small to represent a meaningful CBWS differential history", so
standalone CBWS trails SMS and the hybrid recovers by falling back.
"""

from __future__ import annotations

from repro.ir.nodes import ArrayDecl, Compute, For, Kernel, Load, Store
from repro.ir.builder import c, v
from repro.workloads.base import WorkloadSpec
from repro.workloads.inits import uniform_ints

_DIM = 8  # coordinates per point: short bursts, frequent point switches
_CENTERS = 1024


def build(scale: float = 1.0) -> Kernel:
    points = max(2048, int(8_000 * scale))

    p = v("p")
    # The distance computation is unrolled over the 8 coordinates, so the
    # tight annotated loop is the loop over *points*: every iteration's
    # working set spans the point's coordinate lines plus the lines of a
    # data-dependent center row.  Consecutive iterations therefore differ
    # by a random center delta — a fresh differential vector nearly every
    # block, which is what defeats the 16-entry history table.
    coordinate_loads = [
        Load("coords", p * c(_DIM) + t) for t in range(_DIM)
    ]
    center_loads = [
        Load("centers", v("assigned") * c(_DIM) + t) for t in range(_DIM)
    ]
    body = [
        For("p", 0, points, [
            Load("assign", p, dst="assigned"),
            *coordinate_loads,
            *center_loads,
            Compute(40),  # 8 squared differences + accumulate
            Store("cost", p),
        ]),
    ]
    return Kernel(
        "streamcluster-simlarge",
        [
            ArrayDecl("coords", points * _DIM, 4,
                      uniform_ints(points * _DIM, -100, 100)),
            ArrayDecl("centers", _CENTERS * _DIM, 8,
                      uniform_ints(_CENTERS * _DIM, -100, 100)),
            ArrayDecl("assign", points, 4,
                      uniform_ints(points, 0, _CENTERS)),
            ArrayDecl("cost", points, 4),
        ],
        body,
    )


SPEC = WorkloadSpec(
    name="streamcluster-simlarge",
    suite="PARSEC",
    group="mi",
    description="point-to-assigned-center distances; center row is data-dependent",
    build=build,
    default_accesses=60_000,
)
