"""SPEC ``433.milc-su3imp``: SU(3) lattice QCD.

milc sweeps a 4-D lattice; per site it gathers the SU(3) link matrices
of the site and of a fixed-offset neighbour, multiplies them, and stores
the result.  Site-major layout gives each gather a constant multi-line
stride per direction — an 8-to-10-line working set with constant
differentials over a lattice far larger than the L2.  Figure 14 lists
milc among the benchmarks where the integrated CBWS+SMS prefetcher
delivers the best performance.
"""

from __future__ import annotations

from repro.ir.nodes import ArrayDecl, Compute, For, Kernel, Load, Store
from repro.ir.builder import c, v
from repro.workloads.base import WorkloadSpec
from repro.workloads.inits import uniform_ints

#: 8-byte words per SU(3) complex matrix (3x3x2 = 18).
_MAT = 18
#: Lattice-site stride (in sites) to the gathered neighbour.
_NEIGHBOR = 64


def build(scale: float = 1.0) -> Kernel:
    sites = max(2048, int(8_000 * scale))
    total = (sites + _NEIGHBOR) * _MAT

    s = v("s")
    here = s * c(_MAT)
    there = (s + c(_NEIGHBOR)) * c(_MAT)
    inner = [
        # Two rows of each matrix (one line apart) — 4 spread lines.
        Load("links", here),
        Load("links", here + 9),
        Load("links", there),
        Load("links", there + 9),
        Compute(36),  # su3_mat_mul: 9 complex dot products
        Store("res", here),
        Store("res", here + 9),
    ]
    body = [For("s", 0, sites, inner)]
    return Kernel(
        "433.milc-su3imp",
        [
            ArrayDecl("links", total, 8, uniform_ints(total, -128, 128)),
            ArrayDecl("res", total, 8),
        ],
        body,
    )


SPEC = WorkloadSpec(
    name="433.milc-su3imp",
    suite="SPEC2006",
    group="mi",
    description="SU(3) matrix gathers at constant multi-line site strides",
    build=build,
    default_accesses=60_000,
)
