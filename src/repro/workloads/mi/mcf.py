"""SPEC ``429.mcf-ref``: minimum-cost flow network simplex.

mcf alternates between arc-array scans (regular, strided) and tree
traversals chasing node pointers (irregular).  The pointer chase walks a
random permutation cycle — each hop is an unpredictable jump across a
multi-megabyte structure, which no stride/delta scheme can cover.  The
paper shows mcf's MPKI stays high for every prefetcher, with CBWS+SMS
delivering the best (still modest) result on the regular scan portions.
"""

from __future__ import annotations

from repro.ir.nodes import (
    ArrayDecl,
    Assign,
    Compute,
    For,
    Kernel,
    Load,
    While,
)
from repro.ir.builder import c, v
from repro.workloads.base import WorkloadSpec
from repro.workloads.inits import permutation_chain, uniform_ints


def build(scale: float = 1.0) -> Kernel:
    nodes = max(8192, int(40_000 * scale))
    arcs = nodes * 2
    rounds = 8
    scan_window = 2_000  # arcs priced per round
    chase_hops = 1_500   # tree hops per round

    r, i = v("r"), v("i")
    # Each simplex round prices a window of arcs (regular scan) and then
    # walks the basis tree from the entering arc (irregular chase).
    arc_scan = For("i", r * c(scan_window), (r + 1) * c(scan_window), [
        Load("arc_cost", i % c(arcs), dst="cost"),
        Load("arc_head", i % c(arcs)),
        Compute(6),
    ])
    # Walks repeat after four rounds, as mcf revisits the same basis
    # tree paths across pricing iterations.
    chase = [
        Assign("node", ((r % 4) * 977) % c(nodes)),
        Assign("hops", 0),
        While(v("hops").lt(chase_hops), [
            Load("next_node", v("node"), dst="node"),
            Load("potential", v("node")),
            Compute(5),
            Assign("hops", v("hops") + 1),
        ]),
    ]
    body = [For("r", 0, rounds, [arc_scan, *chase])]
    return Kernel(
        "429.mcf-ref",
        [
            ArrayDecl("arc_cost", arcs, 4, uniform_ints(arcs, 0, 1000)),
            ArrayDecl("arc_head", arcs, 4),
            ArrayDecl("next_node", nodes, 8, permutation_chain(nodes)),
            ArrayDecl("potential", nodes, 8),
        ],
        body,
    )


SPEC = WorkloadSpec(
    name="429.mcf-ref",
    suite="SPEC2006",
    group="mi",
    description="arc scans plus random pointer chasing over the basis tree",
    build=build,
    default_accesses=60_000,
)
