"""SPEC ``450.soplex-ref``: simplex LP solver.

soplex's pricing loops walk sparse columns: a unit-stride index array
plus an *indirect* gather through it, with value-dependent branches that
skip part of the body.  The paper makes two observations we reproduce:
the differential distribution is highly skewed (Figure 5 shows ~90% of
iterations covered by 5% of vectors — most iterations take the common
branch path), yet "the branch divergence in loop iterations results in
access patterns that are hard to predict", so CBWS fails to reduce
soplex's MPKI (Figure 12).
"""

from __future__ import annotations

from repro.ir.nodes import (
    ArrayDecl,
    Compute,
    For,
    If,
    Kernel,
    Load,
    Store,
)
from repro.ir.builder import c, v
from repro.workloads.base import WorkloadSpec
from repro.workloads.inits import uniform_ints


def build(scale: float = 1.0) -> Kernel:
    nonzeros = max(16_384, int(60_000 * scale))
    rows = 65_536  # 512 KB of 8-byte values: the gathered vector misses

    i = v("i")
    body = [
        For("i", 0, nonzeros, [
            Load("col_idx", i, dst="row"),
            Load("col_val", i, dst="val"),
            Compute(4),
            # Divergent body: only "eligible" entries update the dense
            # vector, so iteration working sets flip between 2 and 4
            # lines and the differential alignment keeps breaking.
            If(v("val").gt(64), [
                Load("dense", v("row"), dst="cur"),
                Compute(3),
                Store("dense", v("row"), v("cur") + v("val")),
            ], [
                Compute(1),
            ]),
        ]),
    ]
    return Kernel(
        "450.soplex-ref",
        [
            ArrayDecl("col_idx", nonzeros, 4,
                      uniform_ints(nonzeros, 0, rows)),
            ArrayDecl("col_val", nonzeros, 4,
                      uniform_ints(nonzeros, 0, 256)),
            ArrayDecl("dense", rows, 8),
        ],
        body,
    )


SPEC = WorkloadSpec(
    name="450.soplex-ref",
    suite="SPEC2006",
    group="mi",
    description="sparse column walk with branch-divergent indirect updates",
    build=build,
    default_accesses=60_000,
)
