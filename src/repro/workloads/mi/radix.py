"""SPLASH ``radix-simlarge``: radix sort.

Models one rank-and-permute pass: a histogram sweep over the key array,
a (cache-resident) prefix-sum over the 256 buckets, then the permutation
writing each key to its bucket's output cursor.  Keys are partially
sorted — long same-digit runs — so the per-bucket output streams advance
in runs and the permute loop's working set (key line, count line, output
line) evolves by near-constant differentials.  The paper counts radix
among the block-structured benchmarks where CBWS "effectively eliminates
misses".
"""

from __future__ import annotations

import numpy as np

from repro.ir.nodes import ArrayDecl, Assign, Compute, For, Kernel, Load, Store
from repro.ir.builder import c, v
from repro.workloads.base import WorkloadSpec

_BUCKETS = 256


def _run_sorted_keys(length: int):
    """Keys whose radix digit changes in long runs (partially sorted)."""

    def init(rng: np.random.Generator) -> np.ndarray:
        run = 512
        digits = np.repeat(
            rng.integers(0, _BUCKETS, size=length // run + 1), run
        )[:length]
        noise = rng.integers(0, 1 << 8, size=length)
        return (digits.astype(np.int64) << 8) | noise

    return init


def build(scale: float = 1.0) -> Kernel:
    # Sized so the key array exceeds the reduced L2 and both the
    # histogram sweep (3 accesses/key) and the permute (5 accesses/key)
    # fit in the default access budget.
    length = max(4096, int(18_000 * scale))

    i, b = v("i"), v("b")
    histogram = For("i", 0, length, [
        Load("keys", i, dst="key"),
        Assign("digit", (v("key") >> 8) & c(_BUCKETS - 1)),
        Load("count", v("digit")),
        Compute(2),
        Store("count", v("digit")),
    ])
    # Prefix sum over the bucket counts; converts counts into cursors
    # (done over real data so the permute below writes real positions).
    prefix = For("b", 1, _BUCKETS, [
        Load("count", b - 1, dst="prev"),
        Load("count", b, dst="cur"),
        Store("count", b, v("prev") + v("cur")),
        Compute(1),
    ])
    # Assign cursors: cursor[b] = count[b-1] (exclusive prefix).
    cursors = For("b", 0, _BUCKETS, [
        Load("count", b, dst="cum"),
        Load("keys", b),  # models reading the per-processor rank arrays
        Store("cursor", b, v("cum")),
        Compute(1),
    ])
    permute = For("i", 0, length, [
        Load("keys", i, dst="key"),
        Assign("digit", (v("key") >> 8) & c(_BUCKETS - 1)),
        Load("cursor", v("digit"), dst="pos"),
        Store("sorted", v("pos") % c(length)),
        Store("cursor", v("digit"), v("pos") + 1),
        Compute(3),
    ])
    return Kernel(
        "radix-simlarge",
        [
            ArrayDecl("keys", length, 8, _run_sorted_keys(length)),
            ArrayDecl("sorted", length, 8),
            ArrayDecl("count", _BUCKETS, 4),
            ArrayDecl("cursor", _BUCKETS, 4),
        ],
        [histogram, prefix, cursors, permute],
    )


SPEC = WorkloadSpec(
    name="radix-simlarge",
    suite="SPLASH",
    group="mi",
    description="radix sort rank+permute with run-sorted keys",
    build=build,
    default_accesses=150_000,
)
