"""Parboil ``stencil-default``: 7-point Jacobi stencil on a 3-D grid.

This is the paper's running example (Figure 2): three nested loops with
``IDX(x, y, z) = x + nx*(y + ny*z)`` and the *innermost* loop over the
``z``-like index, so every iteration strides an entire xy-plane —
``nx*ny`` elements — per neighbour.  That produces the Figure 3 access
matrix: a CBWS of far-apart lines whose differentials are one constant
vector (Figure 4).

Expected prefetcher behaviour (Sections II and VII): CBWS streams whole
working sets and wins; SMS is crippled because the plane stride hops
spatial regions ("addresses in the 3D Stencil code may span regions that
are input dependent"); per-PC stride/GHB track each neighbour stream but
with shallow, conservative depth.
"""

from __future__ import annotations

from repro.ir.nodes import ArrayDecl, Compute, For, Kernel, Load, Store
from repro.ir.builder import c, v
from repro.workloads.base import WorkloadSpec


def build(scale: float = 1.0) -> Kernel:
    """Grid sized so one xy-plane is 16 cache lines and the volume is
    several times the reduced L2."""
    nx, ny = 16, 16
    nz = max(8, int(220 * scale))
    total = nx * ny * nz

    def idx(i, j, k):
        return i + c(nx) * (j + c(ny) * k)

    i, j, k = v("i"), v("j"), v("k")
    inner = [
        Load("A0", idx(i, j, k + 1)),
        Load("A0", idx(i, j, k - 1)),
        Load("A0", idx(i, j + 1, k)),
        Load("A0", idx(i, j - 1, k)),
        Load("A0", idx(i + 1, j, k)),
        Load("A0", idx(i - 1, j, k)),
        Load("A0", idx(i, j, k)),
        Compute(25),  # 2 fused multiply-adds per neighbour, roughly
        Store("A", idx(i, j, k)),
    ]
    body = [
        For("i", 1, nx - 1, [
            For("j", 1, ny - 1, [
                For("k", 1, nz - 1, inner),
            ]),
        ]),
    ]
    return Kernel(
        "stencil-default",
        [ArrayDecl("A0", total, 4), ArrayDecl("A", total, 4)],
        body,
    )


SPEC = WorkloadSpec(
    name="stencil-default",
    suite="Parboil",
    group="mi",
    description="3-D Jacobi stencil, plane-strided innermost loop (Fig. 2)",
    build=build,
    default_accesses=60_000,
)
