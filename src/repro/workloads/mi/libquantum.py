"""SPEC ``462.libquantum-ref``: quantum gate simulation.

libquantum applies a gate by sweeping the whole quantum register — a
single huge array — testing each basis state's control bit and
conditionally toggling the target bit.  The access pattern is a pure
unit-stride stream with a data-dependent store, far larger than any
cache.  Every streaming prefetcher covers it; the interesting paper
observation is that CBWS does *not* beat SMS here (Figure 12 marks
libquantum as one of the two benchmarks where CBWS+SMS is not the best),
since a one-line-per-iteration stream leaves nothing for working-set
prediction to add.
"""

from __future__ import annotations

from repro.ir.nodes import ArrayDecl, Compute, For, If, Kernel, Load, Store
from repro.ir.builder import c, v
from repro.workloads.base import WorkloadSpec
from repro.workloads.inits import uniform_ints


def build(scale: float = 1.0) -> Kernel:
    states = max(16_384, int(120_000 * scale))
    gates = 4

    g, i = v("g"), v("i")
    inner = [
        Load("reg", i, dst="amp"),
        Compute(4),
        If((v("amp") >> (g & 7)) & 1, [
            Store("reg", i, v("amp") ^ 2),
            Compute(2),
        ]),
    ]
    body = [
        For("g", 0, gates, [
            For("i", 0, states, inner),
        ]),
    ]
    return Kernel(
        "462.libquantum-ref",
        [ArrayDecl("reg", states, 8, uniform_ints(states, 0, 1 << 16))],
        body,
    )


SPEC = WorkloadSpec(
    name="462.libquantum-ref",
    suite="SPEC2006",
    group="mi",
    description="unit-stride register sweep with conditional toggles",
    build=build,
    default_accesses=60_000,
)
