"""SPLASH ``lu-ncb-simlarge``: LU factorization, non-contiguous blocks.

The "ncb" variant stores the matrix row-major without copying blocks, so
the daxpy inner loop updates row ``i`` against pivot row ``k`` (two
unit-stride streams), while the pivot-column walk above it strides a
full row per iteration.  Column walks over a matrix bigger than the L2
are CBWS territory; the paper lists lu-ncb among the benchmarks where
both CBWS prefetchers beat everything else.
"""

from __future__ import annotations

from repro.ir.nodes import ArrayDecl, Assign, Compute, For, Kernel, Load, Store
from repro.ir.builder import c, v
from repro.workloads.base import WorkloadSpec
from repro.workloads.inits import uniform_ints


def build(scale: float = 1.0) -> Kernel:
    n = max(96, int(224 * scale))  # n x n doubles: 392 KB at default
    total = n * n

    k, i, j = v("k"), v("i"), v("j")
    # Column scale: a[i][k] /= a[k][k] — strides one row per iteration.
    column = For("i", k + 1, c(n), [
        Load("a", i * c(n) + k),
        Compute(4),
        Store("a", i * c(n) + k),
    ])
    # Trailing update: a[i][j] -= a[i][k] * a[k][j].
    update = For("i", k + 1, c(n), [
        Load("a", i * c(n) + k, dst="lik"),
        Compute(1),
        For("j", k + 1, c(n), [
            Load("a", k * c(n) + j),
            Load("a", i * c(n) + j),
            Compute(4),
            Store("a", i * c(n) + j),
        ]),
    ])
    body = [For("k", 0, c(n - 1), [column, update])]
    return Kernel(
        "lu-ncb-simlarge",
        [ArrayDecl("a", total, 8, uniform_ints(total, 1, 1000))],
        body,
    )


SPEC = WorkloadSpec(
    name="lu-ncb-simlarge",
    suite="PARSEC-SPLASH",
    group="mi",
    description="LU without contiguous blocks: column walks + daxpy updates",
    build=build,
    default_accesses=60_000,
)
