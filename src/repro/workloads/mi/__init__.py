"""Memory-intensive workloads (Table IV): the 15 highest-MPKI benchmarks."""

from repro.workloads.mi import (
    bzip2,
    fft,
    histo,
    lbm,
    libquantum,
    lu_ncb,
    mcf,
    milc,
    mri_q,
    nw,
    radix,
    sgemm,
    soplex,
    stencil,
    streamcluster,
)

MI_SPECS = [
    bzip2.SPEC,
    histo.SPEC,
    mcf.SPEC,
    lbm.SPEC,
    mri_q.SPEC,
    stencil.SPEC,
    fft.SPEC,
    nw.SPEC,
    libquantum.SPEC,
    soplex.SPEC,
    lu_ncb.SPEC,
    radix.SPEC,
    milc.SPEC,
    streamcluster.SPEC,
    sgemm.SPEC,
]

__all__ = ["MI_SPECS"]
