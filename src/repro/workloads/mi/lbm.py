"""Parboil ``lbm-long``: lattice-Boltzmann fluid simulation.

Each cell update reads distribution components and streams them to
neighbour cells — but *which* components are read and where they stream
depends on the cell's flags (fluid, obstacle, or accelerated), and the
obstacle geometry clusters in runs.  The paper groups lbm with the
benchmarks where "the data accessed by the tight, innermost loops is
highly data-dependent" and the CBWS-based schemes are outperformed: the
divergent bodies keep changing both the CBWS length and its element
alignment, while the *spatial* density of each cell's neighbourhood
keeps SMS effective.
"""

from __future__ import annotations

from repro.ir.nodes import (
    ArrayDecl,
    Compute,
    For,
    If,
    Kernel,
    Load,
    Store,
)
from repro.ir.builder import c, v
from repro.workloads.base import WorkloadSpec

_Q = 8   # distribution components per cell (reduced D3Q19)
_ROW = 128  # cells per grid row


def build(scale: float = 1.0) -> Kernel:
    cells = max(4096, int(12_000 * scale))
    total = (cells + 2 * _ROW) * _Q

    i = v("i")
    base = (i + c(_ROW)) * c(_Q)
    # Fluid path: full collide-and-stream over 4 components.
    fluid = [
        Load("src", base + 2),
        Load("src", base + 3),
        Compute(16),
        Store("dst", base + 0),
        Store("dst", base + c(_ROW * _Q) + 1),
        Store("dst", base - c(_ROW * _Q) + 2),
        Store("dst", base + c(_Q) + 3),
    ]
    # Obstacle path: bounce-back touches different components and no
    # neighbours — a shorter working set with different alignment.
    obstacle = [
        Load("src", base + 5),
        Compute(4),
        Store("dst", base + 1),
        Store("dst", base + 0),
    ]
    # Accelerated path (inflow cells): yet another shape.
    accelerated = [
        Load("src", base + 6),
        Load("vel", i % c(_ROW)),
        Compute(8),
        Store("dst", base + c(_Q) + 4),
    ]
    body = [
        For("i", 0, cells, [
            Load("flags", i, dst="flag"),
            Load("src", base + 0),
            Load("src", base + 1),
            Compute(8),
            If(v("flag").eq(0), fluid, [
                If(v("flag").eq(1), obstacle, accelerated),
            ]),
        ]),
    ]
    return Kernel(
        "lbm-long",
        [
            ArrayDecl("src", total, 8),
            ArrayDecl("dst", total, 8),
            ArrayDecl("vel", _ROW, 8),
            # Mixed cell types clustered in short runs like real geometry.
            ArrayDecl("flags", cells, 4, _clustered_flags(cells)),
        ],
        body,
    )


def _clustered_flags(cells: int):
    def init(rng):
        import numpy as np
        run = 6
        kinds = rng.choice([0, 0, 0, 1, 2], size=cells // run + 1)
        return np.repeat(kinds, run)[:cells].astype(np.int64)

    return init


SPEC = WorkloadSpec(
    name="lbm-long",
    suite="Parboil",
    group="mi",
    description="lattice-Boltzmann streaming with flag-divergent cell paths",
    build=build,
    default_accesses=60_000,
)
