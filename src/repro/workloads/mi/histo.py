"""Parboil ``histo-large``: saturating image histogram.

The main loop (the paper's Figure 16) reads one pixel per iteration and
increments a histogram bin selected by the *pixel value*: the bin access
"depends on input data.  Therefore, the resulting access pattern cannot
be detected using CBWS differential representation."  Pixel values are
Zipf-skewed over a histogram larger than the L2, so the bin stream is an
unpredictable scatter with a hot head.  Every prefetcher covers the
unit-stride image stream; none covers the bins — MPKI stays high across
the board, matching Figure 12.
"""

from __future__ import annotations

from repro.ir.nodes import ArrayDecl, Compute, For, If, Kernel, Load, Store
from repro.ir.builder import c, v
from repro.workloads.base import WorkloadSpec
from repro.workloads.inits import zipf_ints

_UINT8_MAX = 255


def build(scale: float = 1.0) -> Kernel:
    bins = 65_536  # 256 KB of 4-byte bins: twice the reduced L2
    pixels = max(16_384, int(70_000 * scale))

    i = v("i")
    body = [
        For("i", 0, pixels, [
            Load("img", i, dst="value"),
            Load("histo", v("value"), dst="count"),
            Compute(2),
            If(v("count").lt(_UINT8_MAX), [
                Store("histo", v("value"), v("count") + 1),
            ]),
        ]),
    ]
    return Kernel(
        "histo-large",
        [
            ArrayDecl("img", pixels, 4, zipf_ints(pixels, bins)),
            ArrayDecl("histo", bins, 4),
        ],
        body,
    )


SPEC = WorkloadSpec(
    name="histo-large",
    suite="Parboil",
    group="mi",
    description="Figure 16 loop: data-dependent histogram increments",
    build=build,
    default_accesses=60_000,
)
