"""SPEC ``401.bzip2-source``: block-sorting compression.

bzip2's hot loops "perform large buffer reads from a file (hundreds of
cache lines), whereas the CBWS prefetcher only traces working sets that
consist of up to 16 cache lines" — the one benchmark where the paper
measures the CBWS schemes ~5% *behind* SMS.

The kernel models the main-sort comparison loop: each iteration fetches
two suffix pointers from the (partially sorted) pointer array and reads
a dense 12-line window of the block at each — 24 distinct lines per
iteration.  The windows are spatially dense but their *bases* hop with
the sort order:

* SMS streams each dense window off its trigger access;
* per-PC stride and GHB delta correlation see sort-order jumps between
  iterations and inter-window alternation within one, and stay silent;
* CBWS overflows its 16-line buffer and sees unpredictable window-base
  differentials — in the hybrid it must yield to SMS, reproducing the
  paper's bzip2 deficit.
"""

from __future__ import annotations

import numpy as np

from repro.ir.nodes import ArrayDecl, Compute, For, Kernel, Load, Store
from repro.ir.builder import c, v
from repro.workloads.base import WorkloadSpec
from repro.workloads.inits import uniform_ints

#: Distinct lines read per suffix window; two windows per iteration
#: total 24 — beyond the 16-entry CBWS buffer, inside one SMS region.
_WINDOW_LINES = 12
_INTS_PER_LINE = 16  # 4-byte elements


def _sort_order_bases(pointers: int, windows: int):
    """Suffix-pointer bases in partially-sorted order: ascending runs
    with sort-driven jumps."""

    def init(rng: np.random.Generator) -> np.ndarray:
        bases = np.arange(pointers, dtype=np.int64) % windows
        jumps = rng.random(pointers) < 0.4
        bases[jumps] = rng.integers(0, windows, size=int(jumps.sum()))
        return bases * (_WINDOW_LINES * _INTS_PER_LINE)

    return init


def build(scale: float = 1.0) -> Kernel:
    iterations = max(512, int(2_400 * scale))
    pointers = iterations + 1
    windows = max(64, iterations // 4)
    length = windows * _WINDOW_LINES * _INTS_PER_LINE

    i = v("i")
    suffix_a = [
        Load("buf", v("base_a") + c(t * _INTS_PER_LINE))
        for t in range(_WINDOW_LINES)
    ]
    suffix_b = [
        Load("buf", v("base_b") + c(t * _INTS_PER_LINE))
        for t in range(_WINDOW_LINES)
    ]
    # Interleave the two suffix reads, as the byte-wise comparison does.
    compare = [load for pair in zip(suffix_a, suffix_b) for load in pair]
    body = [
        For("i", 0, iterations, [
            Load("ptr", i, dst="base_a"),
            Load("ptr", i + 1, dst="base_b"),
            *compare,
            Compute(30),  # comparison work over the windows
            Store("work", i % c(1024)),
        ]),
    ]
    return Kernel(
        "401.bzip2-source",
        [
            ArrayDecl("buf", length, 4, uniform_ints(length, 0, 256)),
            ArrayDecl("ptr", pointers, 4,
                      _sort_order_bases(pointers, windows)),
            ArrayDecl("work", 1024, 4),
        ],
        body,
    )


SPEC = WorkloadSpec(
    name="401.bzip2-source",
    suite="SPEC2006",
    group="mi",
    description="suffix-pair comparisons: two 12-line windows per iteration",
    build=build,
    default_accesses=60_000,
)
