"""PARSEC ``canneal-simlarge``: simulated annealing for routing cost.

Each step picks two netlist elements and evaluates the cost delta of
swapping them by touching their neighbour lists.  Element picks are
random but the netlist here is small enough to stay largely resident,
modelling the benchmark's low-MPKI profile.
"""

from __future__ import annotations

from repro.ir.nodes import ArrayDecl, Compute, For, Kernel, Load, Store
from repro.ir.builder import c, v
from repro.workloads.base import WorkloadSpec
from repro.workloads.inits import uniform_ints

_ELEMENTS = 12_288
_FANOUT = 4


def build(scale: float = 1.0) -> Kernel:
    swaps = max(1024, int(3_200 * scale))

    s, t = v("s"), v("t")
    body = [
        For("s", 0, swaps, [
            Load("pick_a", s % c(_ELEMENTS), dst="a"),
            Load("pick_b", (s * 7 + 3) % c(_ELEMENTS), dst="b"),
            Compute(4),
            For("t", 0, _FANOUT, [
                Load("nets", v("a") * c(_FANOUT) + t),
                Load("nets", v("b") * c(_FANOUT) + t),
                Compute(6),  # distance/cost arithmetic
            ]),
            Store("locs", v("a")),
            Store("locs", v("b")),
        ]),
    ]
    return Kernel(
        "canneal-simlarge",
        [
            ArrayDecl("pick_a", _ELEMENTS, 4,
                      uniform_ints(_ELEMENTS, 0, _ELEMENTS)),
            ArrayDecl("pick_b", _ELEMENTS, 4,
                      uniform_ints(_ELEMENTS, 0, _ELEMENTS)),
            ArrayDecl("nets", _ELEMENTS * _FANOUT, 4),
            ArrayDecl("locs", _ELEMENTS, 8),
        ],
        body,
    )


SPEC = WorkloadSpec(
    name="canneal-simlarge",
    suite="PARSEC",
    group="low",
    description="random element swaps over a mostly-resident netlist",
    build=build,
    default_accesses=35_000,
)
