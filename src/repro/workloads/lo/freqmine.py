"""PARSEC ``freqmine-simlarge``: FP-growth frequent itemset mining.

Walks FP-tree node arrays following parent links while bumping support
counters.  The tree is allocated breadth-first so parent links point to
nearby, usually cached nodes; counter updates dominate and MPKI is low.
"""

from __future__ import annotations

from repro.ir.nodes import (
    ArrayDecl,
    Assign,
    Compute,
    For,
    Kernel,
    Load,
    Store,
    While,
)
from repro.ir.builder import c, v
from repro.workloads.base import WorkloadSpec
from repro.workloads.inits import uniform_ints

_NODES = 16_384


def build(scale: float = 1.0) -> Kernel:
    walks = max(1024, int(4_000 * scale))

    w = v("w")

    def parents(rng):
        import numpy as np
        ids = np.arange(_NODES, dtype=np.int64)
        # Breadth-first heap layout: parent of i is i // 2.
        return ids // 2

    body = [
        For("w", 0, walks, [
            Assign("node", (w * 37 + 11) % c(_NODES)),
            While(v("node").gt(0), [
                Load("parent", v("node"), dst="up"),
                Load("support", v("node"), dst="cnt"),
                Store("support", v("node"), v("cnt") + 1),
                Compute(3),
                Assign("node", v("up")),
            ]),
        ]),
    ]
    return Kernel(
        "freqmine-simlarge",
        [
            ArrayDecl("parent", _NODES, 4, parents),
            ArrayDecl("support", _NODES, 4),
        ],
        body,
    )


SPEC = WorkloadSpec(
    name="freqmine-simlarge",
    suite="PARSEC",
    group="low",
    description="FP-tree parent walks with support-counter updates",
    build=build,
    default_accesses=35_000,
)
