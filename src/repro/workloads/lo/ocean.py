"""SPLASH ``ocean-cp-simlarge``: ocean current simulation.

Red-black Gauss-Seidel sweeps with a 5-point stencil over a grid sized
near the L2: rows are revisited quickly enough that most neighbour
accesses hit, with a steady trickle of misses along the sweep frontier.
"""

from __future__ import annotations

from repro.ir.nodes import ArrayDecl, Compute, For, Kernel, Load, Store
from repro.ir.builder import c, v
from repro.workloads.base import WorkloadSpec
from repro.workloads.inits import uniform_ints


def build(scale: float = 1.0) -> Kernel:
    cols = 128
    rows = max(32, int(96 * scale))  # 96x128 doubles = 96 KB
    total = rows * cols

    r, cc = v("r"), v("cc")
    cell = r * c(cols) + cc
    inner = [
        Load("grid", cell - c(cols)),
        Load("grid", cell + c(cols)),
        Load("grid", cell - 1),
        Load("grid", cell + 1),
        Load("grid", cell),
        Compute(10),
        Store("grid", cell),
    ]
    sweep = For("r", 1, rows - 1, [For("cc", 1, cols - 1, inner)])
    return Kernel(
        "ocean-cp-simlarge",
        [ArrayDecl("grid", total, 8, uniform_ints(total, -100, 100))],
        [sweep, sweep],  # two relaxation sweeps (red + black)
    )


SPEC = WorkloadSpec(
    name="ocean-cp-simlarge",
    suite="SPLASH",
    group="low",
    description="5-point relaxation sweeps on a near-L2-sized grid",
    build=build,
    default_accesses=35_000,
)
