"""Parboil ``bfs-1m``: breadth-first search.

Frontier expansion reads each vertex's adjacency run (unit stride in the
edge array) and touches the visited flags of its neighbours.  The graph
is laid out with strong locality (most neighbour ids are near the
vertex), so the flag accesses rarely miss and MPKI stays low.
"""

from __future__ import annotations

from repro.ir.nodes import ArrayDecl, Compute, For, If, Kernel, Load, Store
from repro.ir.builder import c, v
from repro.workloads.base import WorkloadSpec
from repro.workloads.inits import strided_then_shuffled

_DEGREE = 8


def build(scale: float = 1.0) -> Kernel:
    vertices = max(2048, int(6_000 * scale))
    edges = vertices * _DEGREE

    u, t = v("u"), v("t")
    body = [
        For("u", 0, vertices, [
            Compute(2),
            For("t", 0, _DEGREE, [
                Load("edges", u * c(_DEGREE) + t, dst="dest"),
                Load("visited", v("dest"), dst="seen"),
                Compute(2),
                If(v("seen").eq(0), [
                    Store("visited", v("dest"), 1),
                ]),
            ]),
        ]),
    ]
    return Kernel(
        "bfs-1m",
        [
            ArrayDecl("edges", edges, 4,
                      strided_then_shuffled(edges, locality=0.9)),
            ArrayDecl("visited", edges, 4),
        ],
        body,
    )


SPEC = WorkloadSpec(
    name="bfs-1m",
    suite="Parboil",
    group="low",
    description="frontier expansion over a locality-friendly graph",
    build=build,
    default_accesses=35_000,
)
