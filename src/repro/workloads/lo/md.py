"""Linpack-suite ``md-linpack``: molecular dynamics pair forces.

For each particle, the inner loop gathers the positions of its neighbour
list and accumulates Lennard-Jones forces.  Neighbour lists are built
from spatial cells, so gathered indices cluster near the particle —
cache-friendly by construction.
"""

from __future__ import annotations

from repro.ir.nodes import ArrayDecl, Compute, For, Kernel, Load, Store
from repro.ir.builder import c, v
from repro.workloads.base import WorkloadSpec
from repro.workloads.inits import strided_then_shuffled

_NEIGHBORS = 16


def build(scale: float = 1.0) -> Kernel:
    particles = max(1024, int(2_400 * scale))

    p, t = v("p"), v("t")
    body = [
        For("p", 0, particles, [
            Load("pos", p),
            Compute(2),
            For("t", 0, _NEIGHBORS, [
                Load("nbr", p * c(_NEIGHBORS) + t, dst="other"),
                Load("pos", v("other") % c(particles)),
                Compute(12),  # r^2, LJ terms, force accumulate
            ]),
            Store("force", p),
        ]),
    ]
    return Kernel(
        "md-linpack",
        [
            ArrayDecl("pos", particles, 8),
            ArrayDecl("force", particles, 8),
            ArrayDecl("nbr", particles * _NEIGHBORS, 4,
                      strided_then_shuffled(particles * _NEIGHBORS, 0.85)),
        ],
        body,
    )


SPEC = WorkloadSpec(
    name="md-linpack",
    suite="Linpack",
    group="low",
    description="neighbour-list force gathers with spatial locality",
    build=build,
    default_accesses=35_000,
)
