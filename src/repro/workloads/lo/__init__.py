"""Low-MPKI workloads: the second group of 15 benchmarks in Figure 14.

These mostly fit their working sets in the cache hierarchy (or touch
memory rarely relative to compute), so absolute prefetcher gains are
small — the paper includes them to show the CBWS schemes do not regress
on cache-friendly code.
"""

from repro.workloads.lo import (
    backprop,
    bfs,
    canneal,
    cholesky,
    freqmine,
    md,
    mvx,
    mxm,
    ocean,
    omnetpp,
    sad,
    sjeng,
    spmv,
    srad,
    water,
)

LOW_SPECS = [
    sjeng.SPEC,
    omnetpp.SPEC,
    bfs.SPEC,
    canneal.SPEC,
    cholesky.SPEC,
    freqmine.SPEC,
    md.SPEC,
    mvx.SPEC,
    mxm.SPEC,
    ocean.SPEC,
    sad.SPEC,
    spmv.SPEC,
    water.SPEC,
    backprop.SPEC,
    srad.SPEC,
]

__all__ = ["LOW_SPECS"]
