"""Rodinia ``backprop``: neural-network back-propagation.

Forward pass of a two-layer perceptron: the weight matrix streams
row-by-row (the only meaningful miss source) while activations stay
resident.  Weight rows are revisited across epochs, keeping MPKI low.
"""

from __future__ import annotations

from repro.ir.nodes import ArrayDecl, Compute, For, Kernel, Load, Store
from repro.ir.builder import c, v
from repro.workloads.base import WorkloadSpec
from repro.workloads.inits import uniform_ints

_IN = 64
_HID = 96


def build(scale: float = 1.0) -> Kernel:
    epochs = max(8, int(24 * scale))

    e, h, i = v("e"), v("h"), v("i")
    body = [
        For("e", 0, epochs, [
            For("h", 0, _HID, [
                For("i", 0, _IN, [
                    Load("w1", h * c(_IN) + i),
                    Load("acts", i),
                    Compute(4),
                ]),
                Compute(6),  # sigmoid
                Store("hidden", h),
            ]),
            For("h", 0, _HID, [
                Load("hidden", h),
                Load("w2", h),
                Compute(4),
            ]),
        ]),
    ]
    return Kernel(
        "backprop",
        [
            ArrayDecl("w1", _HID * _IN, 8,
                      uniform_ints(_HID * _IN, -100, 100)),
            ArrayDecl("w2", _HID, 8, uniform_ints(_HID, -100, 100)),
            ArrayDecl("acts", _IN, 8, uniform_ints(_IN, 0, 100)),
            ArrayDecl("hidden", _HID, 8),
        ],
        body,
    )


SPEC = WorkloadSpec(
    name="backprop",
    suite="Rodinia",
    group="low",
    description="two-layer forward pass; weights stream, activations resident",
    build=build,
    default_accesses=35_000,
)
