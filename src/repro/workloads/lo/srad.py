"""Rodinia ``srad-v1``: speckle-reducing anisotropic diffusion.

A 4-neighbour image stencil over an image sized close to the L2, swept
repeatedly: the first sweep misses along the frontier, subsequent
accesses are mostly hits, giving the low-MPKI profile of the original.
"""

from __future__ import annotations

from repro.ir.nodes import ArrayDecl, Compute, For, Kernel, Load, Store
from repro.ir.builder import c, v
from repro.workloads.base import WorkloadSpec
from repro.workloads.inits import uniform_ints


def build(scale: float = 1.0) -> Kernel:
    cols = 128
    rows = max(48, int(110 * scale))  # 110x128 floats = 55 KB
    total = rows * cols

    r, cc = v("r"), v("cc")
    cell = r * c(cols) + cc
    inner = [
        Load("img", cell - c(cols)),
        Load("img", cell + c(cols)),
        Load("img", cell - 1),
        Load("img", cell + 1),
        Load("img", cell),
        Compute(16),  # diffusion coefficient + update
        Store("coef", cell),
    ]
    sweep = For("r", 1, rows - 1, [For("cc", 1, cols - 1, inner)])
    return Kernel(
        "srad-v1",
        [
            ArrayDecl("img", total, 4, uniform_ints(total, 0, 256)),
            ArrayDecl("coef", total, 4),
        ],
        [sweep, sweep],
    )


SPEC = WorkloadSpec(
    name="srad-v1",
    suite="Rodinia",
    group="low",
    description="4-neighbour diffusion stencil on a near-L2-sized image",
    build=build,
    default_accesses=35_000,
)
