"""SPLASH ``water-spatial-native``: water molecule dynamics.

Intra-molecular force computation: each molecule's atoms sit
contiguously, and the cell-list neighbour structure keeps interacting
molecules adjacent in memory.  Per-molecule state is revisited every
timestep, so the working set cycles through the cache with few misses.
"""

from __future__ import annotations

from repro.ir.nodes import ArrayDecl, Compute, For, Kernel, Load, Store
from repro.ir.builder import c, v
from repro.workloads.base import WorkloadSpec
from repro.workloads.inits import uniform_ints

_ATOMS = 3  # O, H, H
_FIELDS = 4  # position, velocity, force, acc per atom


def build(scale: float = 1.0) -> Kernel:
    molecules = max(512, int(1_400 * scale))
    words = molecules * _ATOMS * _FIELDS

    m, a = v("m"), v("a")
    stride = _ATOMS * _FIELDS
    body = [
        For("m", 0, molecules, [
            For("a", 0, _ATOMS, [
                Load("mol", m * c(stride) + a * c(_FIELDS)),
                Load("mol", m * c(stride) + a * c(_FIELDS) + 1),
                Compute(14),  # O-H spring + angle forces
                Store("mol", m * c(stride) + a * c(_FIELDS) + 2),
            ]),
            # Interaction with the next molecule in the same cell.
            Load("mol", ((m + 1) % c(molecules)) * c(stride)),
            Compute(8),
        ]),
    ]
    return Kernel(
        "water-spatial-native",
        [ArrayDecl("mol", words, 8, uniform_ints(words, -100, 100))],
        body,
    )


SPEC = WorkloadSpec(
    name="water-spatial-native",
    suite="SPLASH",
    group="low",
    description="contiguous per-molecule updates with neighbour interactions",
    build=build,
    default_accesses=35_000,
)
