"""Linpack-suite ``mvx-linpack``: matrix-vector multiply.

``y[i] += A[i][j] * x[j]``: the matrix streams once (cold misses only,
amortized over the row length) while the vector stays resident.  A thin,
perfectly regular streaming load — prefetchers all do fine, gains small.
"""

from __future__ import annotations

from repro.ir.nodes import ArrayDecl, Compute, For, Kernel, Load, Store
from repro.ir.builder import c, v
from repro.workloads.base import WorkloadSpec
from repro.workloads.inits import uniform_ints


def build(scale: float = 1.0) -> Kernel:
    n = max(128, int(256 * scale))
    rows = max(32, int(64 * scale))

    i, j = v("i"), v("j")
    body = [
        For("i", 0, rows, [
            For("j", 0, c(n), [
                Load("a", i * c(n) + j),
                Load("x", j),
                Compute(4),
            ]),
            Store("y", i),
        ]),
    ]
    return Kernel(
        "mvx-linpack",
        [
            ArrayDecl("a", rows * n, 8, uniform_ints(rows * n, -50, 50)),
            ArrayDecl("x", n, 8, uniform_ints(n, -50, 50)),
            ArrayDecl("y", rows, 8),
        ],
        body,
    )


SPEC = WorkloadSpec(
    name="mvx-linpack",
    suite="Linpack",
    group="low",
    description="matrix-vector multiply; matrix streams, vector resident",
    build=build,
    default_accesses=35_000,
)
