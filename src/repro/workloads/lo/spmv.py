"""Parboil ``spmv-large``: sparse matrix-vector multiply (CSR).

Row-pointer walk with unit-stride value/column streams and a gather
through the column indices into the dense vector.  The matrix here is
banded, so gathers land near the diagonal and mostly hit; the val/col
streams provide a modest, regular miss rate.
"""

from __future__ import annotations

from repro.ir.nodes import ArrayDecl, Assign, Compute, For, Kernel, Load, Store
from repro.ir.builder import c, v
from repro.workloads.base import WorkloadSpec

_NNZ_PER_ROW = 8


def build(scale: float = 1.0) -> Kernel:
    rows = max(1024, int(3_000 * scale))
    nnz = rows * _NNZ_PER_ROW

    r, t = v("r"), v("t")

    def banded_cols(rng):
        import numpy as np
        row_of = np.repeat(np.arange(rows, dtype=np.int64), _NNZ_PER_ROW)
        offset = rng.integers(-32, 33, size=nnz)
        return np.clip(row_of + offset, 0, rows - 1)

    body = [
        For("r", 0, rows, [
            Assign("acc", 0),
            For("t", 0, _NNZ_PER_ROW, [
                Load("vals", r * c(_NNZ_PER_ROW) + t),
                Load("cols", r * c(_NNZ_PER_ROW) + t, dst="col"),
                Load("x", v("col")),
                Compute(4),
            ]),
            Store("y", r),
        ]),
    ]
    return Kernel(
        "spmv-large",
        [
            ArrayDecl("vals", nnz, 8),
            ArrayDecl("cols", nnz, 4, banded_cols),
            ArrayDecl("x", rows, 8),
            ArrayDecl("y", rows, 8),
        ],
        body,
    )


SPEC = WorkloadSpec(
    name="spmv-large",
    suite="Parboil",
    group="low",
    description="CSR SpMV over a banded matrix; gathers stay near-diagonal",
    build=build,
    default_accesses=35_000,
)
