"""Parboil ``sad-base-large``: sum-of-absolute-differences motion search.

Compares a 16x16 macroblock against candidate positions in a reference
window.  The window is revisited for every candidate, so accesses after
the first candidate hit; misses occur only when the search window slides.
"""

from __future__ import annotations

from repro.ir.nodes import ArrayDecl, Compute, For, Kernel, Load, Store
from repro.ir.builder import c, v
from repro.workloads.base import WorkloadSpec
from repro.workloads.inits import uniform_ints

_BLOCK = 16
_WINDOW = 8  # candidate offsets per macroblock
_FRAME_COLS = 256


def build(scale: float = 1.0) -> Kernel:
    macroblocks = max(64, int(140 * scale))
    frame = _FRAME_COLS * (macroblocks // (_FRAME_COLS // _BLOCK) + 2) * _BLOCK

    mb, cand, row = v("mb"), v("cand"), v("row")
    base = mb * c(_BLOCK)
    inner = [
        Load("cur", base + row * c(_FRAME_COLS)),
        Load("ref", base + cand + row * c(_FRAME_COLS)),
        Compute(18),  # 16 absolute differences + accumulate
    ]
    body = [
        For("mb", 0, macroblocks, [
            For("cand", 0, _WINDOW, [
                For("row", 0, _BLOCK, inner),
                Store("best", mb % c(1024)),
            ]),
        ]),
    ]
    return Kernel(
        "sad-base-large",
        [
            ArrayDecl("cur", frame, 4, uniform_ints(frame, 0, 256)),
            ArrayDecl("ref", frame, 4, uniform_ints(frame, 0, 256)),
            ArrayDecl("best", 1024, 4),
        ],
        body,
    )


SPEC = WorkloadSpec(
    name="sad-base-large",
    suite="Parboil",
    group="low",
    description="macroblock SAD search with a reused reference window",
    build=build,
    default_accesses=35_000,
)
