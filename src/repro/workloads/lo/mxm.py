"""Linpack-suite ``mxm-linpack``: small dense matrix multiply.

All three operands fit comfortably in the L2, so after first touch the
kernel is compute-bound with near-zero MPKI — the canonical workload
where prefetching neither helps nor hurts.
"""

from __future__ import annotations

from repro.ir.nodes import ArrayDecl, Assign, Compute, For, Kernel, Load, Store
from repro.ir.builder import c, v
from repro.workloads.base import WorkloadSpec
from repro.workloads.inits import uniform_ints


def build(scale: float = 1.0) -> Kernel:
    n = max(32, int(48 * scale))  # 48x48 doubles x3 = 54 KB

    i, j, k = v("i"), v("j"), v("k")
    body = [
        For("i", 0, c(n), [
            For("j", 0, c(n), [
                Assign("acc", 0),
                For("k", 0, c(n), [
                    Load("a", i * c(n) + k),
                    Load("b", k * c(n) + j),
                    Compute(4),
                ]),
                Store("cc", i * c(n) + j),
            ]),
        ]),
    ]
    return Kernel(
        "mxm-linpack",
        [
            ArrayDecl("a", n * n, 8, uniform_ints(n * n, -10, 10)),
            ArrayDecl("b", n * n, 8, uniform_ints(n * n, -10, 10)),
            ArrayDecl("cc", n * n, 8),
        ],
        body,
    )


SPEC = WorkloadSpec(
    name="mxm-linpack",
    suite="Linpack",
    group="low",
    description="cache-resident matmul; near-zero steady-state MPKI",
    build=build,
    default_accesses=35_000,
)
