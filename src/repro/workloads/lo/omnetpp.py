"""SPEC ``471.omnetpp-omnetpp``: discrete event simulation.

Event scheduling walks a binary-heap future-event set and touches each
event's module state.  The heap stays mostly cached; module state is a
moderate array indexed semi-randomly, producing a low-but-nonzero miss
rate that no delta prefetcher predicts well.
"""

from __future__ import annotations

from repro.ir.nodes import ArrayDecl, Assign, Compute, For, Kernel, Load, Store, While
from repro.ir.builder import c, v
from repro.workloads.base import WorkloadSpec
from repro.workloads.inits import uniform_ints

_HEAP = 4096
_MODULES = 16_384


def build(scale: float = 1.0) -> Kernel:
    events = max(2048, int(7_000 * scale))

    e = v("e")
    body = [
        For("e", 0, events, [
            # Sift-down along one heap path (log-depth pointer walk).
            Assign("node", 1),
            While(v("node").lt(_HEAP // 2), [
                Load("heap", v("node"), dst="val"),
                Load("heap", v("node") * 2),
                Compute(3),
                Assign("node", v("node") * 2 + (v("val") & 1)),
            ]),
            # Deliver the event to its module.
            Load("event_module", e % c(_HEAP), dst="module"),
            Load("module_state", v("module"), dst="state"),
            Compute(8),
            Store("module_state", v("module"), v("state") + 1),
        ]),
    ]
    return Kernel(
        "471.omnetpp-omnetpp",
        [
            ArrayDecl("heap", _HEAP, 8, uniform_ints(_HEAP, 0, 1 << 20)),
            ArrayDecl("event_module", _HEAP, 4,
                      uniform_ints(_HEAP, 0, _MODULES)),
            ArrayDecl("module_state", _MODULES, 8),
        ],
        body,
    )


SPEC = WorkloadSpec(
    name="471.omnetpp-omnetpp",
    suite="SPEC2006",
    group="low",
    description="event heap walks plus semi-random module-state touches",
    build=build,
    default_accesses=35_000,
)
