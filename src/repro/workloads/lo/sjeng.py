"""SPEC ``458.sjeng-ref``: chess engine.

Dominated by move generation and evaluation over small board arrays,
with occasional transposition-table probes into a larger hash table.
The board state stays cache-resident; only the hash probes miss, keeping
MPKI low.
"""

from __future__ import annotations

from repro.ir.nodes import ArrayDecl, Compute, For, If, Kernel, Load, Store
from repro.ir.builder import c, v
from repro.workloads.base import WorkloadSpec
from repro.workloads.inits import uniform_ints

_TT_ENTRIES = 32_768  # 256 KB transposition table


def build(scale: float = 1.0) -> Kernel:
    positions = max(2048, int(6_000 * scale))

    p, sq = v("p"), v("sq")
    evaluate = For("sq", 0, 64, [
        Load("board", sq, dst="piece"),
        Load("piece_value", v("piece") & 15),
        Compute(6),
    ])
    body = [
        For("p", 0, positions, [
            Load("hash_keys", p % c(4096), dst="key"),
            # One transposition-table probe per position: the rare miss.
            Load("tt", v("key") & c(_TT_ENTRIES - 1), dst="entry"),
            Compute(4),
            If(v("entry").eq(0), [
                Store("tt", v("key") & c(_TT_ENTRIES - 1), v("key")),
            ]),
            evaluate,
        ]),
    ]
    return Kernel(
        "458.sjeng-ref",
        [
            ArrayDecl("board", 64, 4, uniform_ints(64, 0, 16)),
            ArrayDecl("piece_value", 16, 4, uniform_ints(16, 0, 900)),
            ArrayDecl("hash_keys", 4096, 8,
                      uniform_ints(4096, 0, 1 << 30)),
            ArrayDecl("tt", _TT_ENTRIES, 8),
        ],
        body,
    )


SPEC = WorkloadSpec(
    name="458.sjeng-ref",
    suite="SPEC2006",
    group="low",
    description="board evaluation with sparse transposition-table probes",
    build=build,
    default_accesses=35_000,
)
