"""SPLASH ``cholesky-tk29``: sparse Cholesky factorization.

Supernodal column updates: for each column, a unit-stride daxpy against
a handful of previously factored columns.  The active panel fits in the
L2, so misses are limited to first-touch of each column.
"""

from __future__ import annotations

from repro.ir.nodes import ArrayDecl, Compute, For, Kernel, Load, Store
from repro.ir.builder import c, v
from repro.workloads.base import WorkloadSpec
from repro.workloads.inits import uniform_ints


def build(scale: float = 1.0) -> Kernel:
    n = max(64, int(120 * scale))  # n x n doubles, ~113 KB at default
    total = n * n

    j, k, i = v("j"), v("k"), v("i")
    body = [
        For("j", 1, n, [
            Compute(6),  # pick supernode, sqrt of the diagonal
            # Update column j with the two preceding columns.
            For("k", 1, 3, [
                For("i", j, c(n), [
                    Load("a", i * c(n) + (j - k)),
                    Load("a", i * c(n) + j),
                    Compute(4),
                    Store("a", i * c(n) + j),
                ]),
            ]),
        ]),
    ]
    return Kernel(
        "cholesky-tk29",
        [ArrayDecl("a", total, 8, uniform_ints(total, 1, 100))],
        body,
    )


SPEC = WorkloadSpec(
    name="cholesky-tk29",
    suite="SPLASH",
    group="low",
    description="column daxpy updates over a panel that fits the L2",
    build=build,
    default_accesses=35_000,
)
