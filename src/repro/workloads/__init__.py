"""The 30-benchmark workload suite.

One synthetic kernel per benchmark the paper evaluates (Table IV plus the
low-MPKI group of Figure 14), written in the kernel IR so the annotation
pass and interpreter produce annotated traces.  Each kernel mimics the
memory *structure* of the original benchmark — the loop nesting, stride
patterns, data dependence, and working-set shape that determine how every
prefetcher behaves on it — at footprints scaled to the reduced cache
configuration.

Access points:

* :data:`MI_WORKLOADS` / :data:`LOW_WORKLOADS` — names in paper order,
* :func:`get_workload` — spec lookup by name,
* :func:`build_trace` — kernel -> annotated, validated trace.
"""

from repro.workloads.base import WorkloadSpec, build_trace, get_workload
from repro.workloads.registry import (
    ALL_WORKLOADS,
    LOW_WORKLOADS,
    MI_WORKLOADS,
    REGISTRY,
)

__all__ = [
    "WorkloadSpec",
    "build_trace",
    "get_workload",
    "REGISTRY",
    "ALL_WORKLOADS",
    "MI_WORKLOADS",
    "LOW_WORKLOADS",
]
