"""Workload registry: name -> spec, in the paper's presentation order."""

from __future__ import annotations

from repro.workloads.base import WorkloadSpec
from repro.workloads.mi import MI_SPECS
from repro.workloads.lo import LOW_SPECS

#: Memory-intensive group names, in Figure 12/14 order.
MI_WORKLOADS: list[str] = [spec.name for spec in MI_SPECS]

#: Low-MPKI group names, in Figure 14 (bottom) order.
LOW_WORKLOADS: list[str] = [spec.name for spec in LOW_SPECS]

#: All 30 benchmarks.
ALL_WORKLOADS: list[str] = MI_WORKLOADS + LOW_WORKLOADS

#: Lookup table used by :func:`repro.workloads.base.get_workload`.
REGISTRY: dict[str, WorkloadSpec] = {
    spec.name: spec for spec in (*MI_SPECS, *LOW_SPECS)
}
