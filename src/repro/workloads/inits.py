"""Array initializers shared by the workload kernels.

Each returns a closure suitable for :class:`repro.ir.nodes.ArrayDecl`'s
``init`` parameter; all draw from the interpreter's seeded generator so
data-dependent kernels are reproducible.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

Initializer = Callable[[np.random.Generator], np.ndarray]


def uniform_ints(length: int, low: int, high: int) -> Initializer:
    """Uniform integers in [low, high)."""

    def init(rng: np.random.Generator) -> np.ndarray:
        return rng.integers(low, high, size=length, dtype=np.int64)

    return init


def zipf_ints(length: int, universe: int, exponent: float = 1.2) -> Initializer:
    """Zipf-skewed indices into [0, universe) — hot-spot distributions
    like the pixel values feeding histo's histogram."""

    def init(rng: np.random.Generator) -> np.ndarray:
        raw = rng.zipf(exponent, size=length)
        return np.minimum(raw - 1, universe - 1).astype(np.int64)

    return init


def permutation_chain(length: int) -> Initializer:
    """A single random cycle over [0, length): ``chain[i]`` is the next
    node after ``i``, as in mcf's arc traversals.  Following it visits
    every element exactly once before returning to the start."""

    def init(rng: np.random.Generator) -> np.ndarray:
        order = rng.permutation(length)
        chain = np.empty(length, dtype=np.int64)
        chain[order[:-1]] = order[1:]
        chain[order[-1]] = order[0]
        return chain

    return init


def strided_then_shuffled(length: int, locality: float) -> Initializer:
    """Indices that are mostly sequential with a ``1 - locality``
    fraction of random jumps — the partially-sorted pointer arrays of
    graph workloads (bfs, canneal)."""

    def init(rng: np.random.Generator) -> np.ndarray:
        indices = np.arange(length, dtype=np.int64)
        jumps = rng.random(length) > locality
        indices[jumps] = rng.integers(0, length, size=int(jumps.sum()))
        return indices

    return init


def counting_ramp(length: int, modulo: int) -> Initializer:
    """``i % modulo`` — deterministic indices with known periodicity."""

    def init(rng: np.random.Generator) -> np.ndarray:
        return (np.arange(length, dtype=np.int64) % modulo)

    return init
