"""Workload specification and trace construction."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro import obs
from repro.common.errors import WorkloadError
from repro.ir.interp import ExecutionLimits, run_kernel
from repro.ir.nodes import Kernel
from repro.passes.annotate import annotate_tight_loops
from repro.trace.stream import Trace


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark of the evaluation suite.

    Attributes:
        name: the paper's benchmark label (e.g. ``"stencil-default"``).
        suite: originating suite (SPEC2006, PARSEC, SPLASH, Parboil,
            Rodinia).
        group: ``"mi"`` (memory-intensive, Table IV) or ``"low"``.
        description: one-line summary of the mimicked behaviour.
        build: factory producing the kernel; ``scale`` multiplies data
            footprints and trip counts (1.0 = the reduced default).
        default_accesses: memory-access budget used by the experiment
            harness at scale 1.0.
    """

    name: str
    suite: str
    group: str
    description: str
    build: Callable[[float], Kernel]
    default_accesses: int = 60_000

    def kernel(self, scale: float = 1.0) -> Kernel:
        """Build the kernel at the given scale."""
        if scale <= 0:
            raise WorkloadError(f"{self.name}: scale must be positive")
        return self.build(scale)


def build_trace(
    spec: WorkloadSpec,
    scale: float = 1.0,
    max_accesses: int | None = None,
    seed: int = 0,
    backend: str = "compiled",
) -> Trace:
    """Build, annotate, execute, and validate one workload trace.

    This is the whole software pipeline of the paper in one call:
    compile the kernel (validate + number PCs), run the tight-loop
    annotation pass, and execute it to produce the commit-order trace.

    ``backend`` selects the execution engine: ``"compiled"`` (the
    lowering backend, default) or ``"interp"`` (the reference tree
    walker).  Both produce identical traces.
    """
    with obs.phase("trace.build"):
        kernel = spec.kernel(scale)
        annotate_tight_loops(kernel)
        budget = max_accesses if max_accesses is not None else int(
            spec.default_accesses * scale
        )
        limits = ExecutionLimits(max_memory_accesses=budget)
        if backend == "compiled":
            from repro.ir.compile import run_kernel_compiled

            trace = run_kernel_compiled(kernel, seed=seed, limits=limits)
        elif backend == "interp":
            trace = run_kernel(kernel, seed=seed, limits=limits)
        else:
            raise WorkloadError(
                f"unknown trace backend {backend!r}; use 'compiled' or 'interp'"
            )
        trace.validate()
        if not any(True for _ in trace.memory_events()):
            raise WorkloadError(f"{spec.name}: produced an empty trace")
        obs.add("trace.build.events", len(trace.events))
    return trace


def get_workload(name: str) -> WorkloadSpec:
    """Look up a workload by its paper name."""
    from repro.workloads.registry import REGISTRY

    try:
        return REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise WorkloadError(f"unknown workload {name!r}; known: {known}") from None
