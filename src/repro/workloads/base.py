"""Workload specification and trace construction."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro import obs
from repro.common.errors import WorkloadError
from repro.ir.interp import ExecutionLimits, run_kernel
from repro.ir.nodes import Kernel
from repro.passes.annotate import annotate_tight_loops
from repro.trace.stream import Trace


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark of the evaluation suite.

    Attributes:
        name: the paper's benchmark label (e.g. ``"stencil-default"``).
        suite: originating suite (SPEC2006, PARSEC, SPLASH, Parboil,
            Rodinia).
        group: ``"mi"`` (memory-intensive, Table IV) or ``"low"``.
        description: one-line summary of the mimicked behaviour.
        build: factory producing the kernel; ``scale`` multiplies data
            footprints and trip counts (1.0 = the reduced default).
        default_accesses: memory-access budget used by the experiment
            harness at scale 1.0.
    """

    name: str
    suite: str
    group: str
    description: str
    build: Callable[[float], Kernel]
    default_accesses: int = 60_000

    def kernel(self, scale: float = 1.0) -> Kernel:
        """Build the kernel at the given scale."""
        if scale <= 0:
            raise WorkloadError(f"{self.name}: scale must be positive")
        return self.build(scale)


def build_trace(
    spec: WorkloadSpec,
    scale: float = 1.0,
    max_accesses: int | None = None,
    seed: int = 0,
    backend: str = "compiled",
) -> Trace:
    """Build, annotate, execute, and validate one workload trace.

    This is the whole software pipeline of the paper in one call:
    compile the kernel (validate + number PCs), run the tight-loop
    annotation pass, and execute it to produce the commit-order trace.

    ``backend`` selects the execution engine: ``"compiled"`` (the
    lowering backend, default) or ``"interp"`` (the reference tree
    walker).  Both produce identical traces.

    ``ext:`` workloads short-circuit the pipeline: their trace was
    fixed at ingest time, so this loads it from the ingest store
    (truncated to the access budget) — ``seed`` and ``backend`` have
    no effect on externally recorded content.
    """
    if spec.group == "ext":
        from repro.ingest.store import IngestStore

        with obs.phase("trace.load.ext"):
            budget = max_accesses if max_accesses is not None else int(
                spec.default_accesses * scale
            )
            trace = IngestStore().load_trace(spec.name, max_accesses=budget)
            trace.validate()
            obs.add("trace.load.ext.events", len(trace.events))
        return trace
    with obs.phase("trace.build"):
        kernel = spec.kernel(scale)
        annotate_tight_loops(kernel)
        budget = max_accesses if max_accesses is not None else int(
            spec.default_accesses * scale
        )
        limits = ExecutionLimits(max_memory_accesses=budget)
        if backend == "compiled":
            from repro.ir.compile import run_kernel_compiled

            trace = run_kernel_compiled(kernel, seed=seed, limits=limits)
        elif backend == "interp":
            trace = run_kernel(kernel, seed=seed, limits=limits)
        else:
            raise WorkloadError(
                f"unknown trace backend {backend!r}; use 'compiled' or 'interp'"
            )
        trace.validate()
        if not any(True for _ in trace.memory_events()):
            raise WorkloadError(f"{spec.name}: produced an empty trace")
        obs.add("trace.build.events", len(trace.events))
    return trace


def get_workload(name: str) -> WorkloadSpec:
    """Look up a workload by its paper name.

    Names in the ``ext:`` namespace resolve through the ingest store
    instead of the synthetic registry: the spec is fabricated from the
    stored trace's registry row (its access count becomes the default
    budget), so ingested traces flow through the harness, exec grid,
    serve broker, and campaigns exactly like synthetic kernels.
    """
    if name.startswith("ext:"):
        return _ext_workload(name)
    from repro.workloads.registry import REGISTRY

    try:
        return REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise WorkloadError(f"unknown workload {name!r}; known: {known}") from None


def _ext_workload(name: str) -> WorkloadSpec:
    from repro.common.errors import IngestRegistryError
    from repro.ingest.store import IngestStore

    try:
        record = IngestStore().get(name)
    except IngestRegistryError as error:
        raise WorkloadError(str(error)) from error

    def _no_kernel(scale: float) -> Kernel:
        raise WorkloadError(
            f"{name}: external traces have no kernel; the trace was "
            "fixed at ingest time"
        )

    return WorkloadSpec(
        name=record.workload,
        suite="external",
        group="ext",
        description=(
            f"ingested {record.format} trace "
            f"({record.accesses} accesses, "
            f"{record.coverage:.0%} marker coverage)"
        ),
        build=_no_kernel,
        default_accesses=record.accesses,
    )
