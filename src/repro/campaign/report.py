"""Deterministic campaign artifacts: ``campaign.json`` + ``campaign.html``.

The JSON report is the campaign's *answer*: spec echo, planning
coverage, per-cell metrics, per-axis sensitivity curves, winner maps,
and the refinement trail.  It is schema-versioned and — by careful
exclusion — a pure function of the spec and the (deterministic)
simulation results: no timestamps, wall times, cache-hit counters, or
campaign ids appear in it, so a campaign killed mid-wave and resumed
produces a byte-identical ``campaign.json`` to an uninterrupted run.
That property is asserted by the CI ``campaign-smoke`` job with a plain
``cmp``.

Run-dependent provenance (wall seconds, cache hits, resume count, the
campaign id) goes to the side file ``stats.json`` instead, and the HTML
report is generated *from* the deterministic JSON: self-contained
(inline SVG, no scripts, no external assets), one sensitivity chart per
(axis, workload) with a winner strip underneath, plus the coverage and
refinement tables.
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import Any, Mapping

from repro.campaign.refine import metric_surface
from repro.campaign.runner import CampaignOutcome

#: Identifies the campaign.json document family.
CAMPAIGN_SCHEMA = "repro.campaign"

#: Version of the campaign.json layout; bump on any field change.
CAMPAIGN_SCHEMA_VERSION = 1


def build_report(outcome: CampaignOutcome) -> dict[str, Any]:
    """The deterministic ``campaign.json`` document for one outcome."""
    spec = outcome.spec
    metric = spec.refine.metric
    first, second = spec.refine.competitors

    waves = [
        {"wave": index, **plan.stats()}
        for index, plan in enumerate(outcome.waves)
    ]
    totals = {
        "candidates": sum(w["candidates"] for w in waves),
        "pruned": sum(w["pruned"] for w in waves),
        "deduplicated": sum(w["deduplicated"] for w in waves),
        "unique": sum(w["unique"] for w in waves),
        "quarantined": len(outcome.quarantined_keys),
    }

    cells = []
    for plan in outcome.waves:
        for cell in plan.cells:
            key = cell.key()
            entry: dict[str, Any] = {
                "workload": cell.workload,
                "prefetcher": cell.prefetcher,
                "coords": [[axis, value] for axis, value in cell.coords],
                "key": key,
                "wave": cell.wave,
            }
            result = outcome.results.get(key)
            if result is not None:
                entry["ipc"] = result.ipc
                entry["mpki"] = result.mpki
            else:
                entry["quarantined"] = True
            cells.append(entry)

    numeric_axes = [
        axis for axis in spec.axes
        if axis.combine == "cross"
        and all(isinstance(v, (int, float)) for v in axis.values)
    ]
    curves: dict[str, Any] = {}
    winner_maps: dict[str, Any] = {}
    for axis in numeric_axes:
        surface = metric_surface(
            outcome.samples, outcome.results, axis.name, metric)
        axis_curves = []
        axis_winners = []
        for (workload, context) in sorted(surface):
            competitors = surface[(workload, context)]
            group = {
                "workload": workload,
                "context": [[name, value] for name, value in context],
                "series": {
                    base: sorted(
                        [value, competitors[base][value]]
                        for value in competitors[base]
                    )
                    for base in sorted(competitors)
                },
            }
            axis_curves.append(group)
            series_a = competitors.get(first, {})
            series_b = competitors.get(second, {})
            shared = sorted(set(series_a) & set(series_b))
            if shared:
                axis_winners.append({
                    "workload": workload,
                    "context": [[name, value] for name, value in context],
                    "points": [
                        [value, _winner(series_a[value], series_b[value],
                                        first, second, metric)]
                        for value in shared
                    ],
                })
        curves[axis.name] = axis_curves
        winner_maps[axis.name] = axis_winners

    return {
        "schema": CAMPAIGN_SCHEMA,
        "schema_version": CAMPAIGN_SCHEMA_VERSION,
        "name": spec.name,
        "fingerprint": outcome.fingerprint,
        "spec": spec.to_dict(),
        "status": outcome.status,
        "planning": {"waves": waves, "totals": totals},
        "cells": cells,
        "quarantined_keys": sorted(outcome.quarantined_keys),
        "metric": metric,
        "competitors": [first, second],
        "curves": curves,
        "winner_maps": winner_maps,
        "refinement": {
            "enabled": spec.refine.enabled,
            "waves": len(outcome.waves) - 1,
            "intervals": [
                interval.to_dict() for interval in outcome.intervals
            ],
        },
    }


def _winner(value_a: float, value_b: float, first: str, second: str,
            metric: str) -> str | None:
    from repro.campaign.spec import REFINE_METRICS

    delta = (value_a - value_b) * REFINE_METRICS[metric]
    if delta > 0:
        return first
    if delta < 0:
        return second
    return None


def write_report(outcome: CampaignOutcome,
                 directory: str | Path | None = None) -> dict[str, Path]:
    """Write campaign.json, campaign.html, and stats.json.

    ``campaign.json``/``campaign.html`` are deterministic;
    ``stats.json`` carries the run-dependent provenance.  Returns the
    written paths by artifact name.
    """
    directory = Path(directory) if directory is not None \
        else outcome.directory
    directory.mkdir(parents=True, exist_ok=True)
    report = build_report(outcome)
    json_path = directory / "campaign.json"
    json_path.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n")
    html_path = directory / "campaign.html"
    html_path.write_text(render_html(report))
    stats_path = directory / "stats.json"
    stats_path.write_text(json.dumps(
        {"campaign_id": outcome.campaign_id, **outcome.execution},
        indent=2, sort_keys=True) + "\n")
    return {"json": json_path, "html": html_path, "stats": stats_path}


# ---------------------------------------------------------------------------
# HTML rendering
# ---------------------------------------------------------------------------

_PALETTE = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
            "#8c564b", "#17becf"]

_CHART_WIDTH = 460
_CHART_HEIGHT = 200
_MARGIN = 42


def render_html(report: Mapping[str, Any]) -> str:
    """A self-contained static HTML page for one campaign report."""
    title = html.escape(str(report.get("name", "campaign")))
    totals = report["planning"]["totals"]
    metric = report["metric"]
    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>campaign: {title}</title>",
        "<style>",
        "body{font:14px/1.5 system-ui,sans-serif;margin:2em;"
        "max-width:64em}",
        "h1,h2,h3{font-weight:600}",
        "table{border-collapse:collapse;margin:1em 0}",
        "td,th{border:1px solid #ccc;padding:.3em .7em;text-align:right}",
        "th{background:#f4f4f4}",
        "td:first-child,th:first-child{text-align:left}",
        ".chart{margin:1.2em 0}",
        ".legend span{margin-right:1.2em}",
        ".swatch{display:inline-block;width:.8em;height:.8em;"
        "margin-right:.3em;vertical-align:middle}",
        "</style></head><body>",
        f"<h1>Campaign: {title}</h1>",
        f"<p>Status: <b>{html.escape(str(report['status']))}</b> &middot; "
        f"schema {report['schema']} v{report['schema_version']} &middot; "
        f"metric <b>{html.escape(metric)}</b></p>",
        "<h2>Coverage</h2>",
        "<table><tr><th>candidates</th><th>pruned</th>"
        "<th>deduplicated (compute saved)</th><th>unique cells</th>"
        "<th>quarantined</th></tr>",
        f"<tr><td>{totals['candidates']}</td><td>{totals['pruned']}</td>"
        f"<td>{totals['deduplicated']}</td><td>{totals['unique']}</td>"
        f"<td>{totals['quarantined']}</td></tr></table>",
        _waves_table(report),
    ]
    for axis_name in sorted(report["curves"]):
        parts.append(f"<h2>Axis: {html.escape(axis_name)}</h2>")
        winners_by_group = {
            (entry["workload"], _context_key(entry["context"])):
                entry["points"]
            for entry in report["winner_maps"].get(axis_name, [])
        }
        for group in report["curves"][axis_name]:
            parts.append(_chart(axis_name, group, metric, winners_by_group))
    parts.append(_refinement_table(report))
    parts.append("</body></html>\n")
    return "\n".join(parts)


def _context_key(context: list) -> tuple:
    return tuple((name, value) for name, value in context)


def _waves_table(report: Mapping[str, Any]) -> str:
    rows = "".join(
        f"<tr><td>{w['wave']}</td><td>{w['candidates']}</td>"
        f"<td>{w['pruned']}</td><td>{w['deduplicated']}</td>"
        f"<td>{w['unique']}</td></tr>"
        for w in report["planning"]["waves"]
    )
    return (
        "<h3>Waves</h3><table><tr><th>wave</th><th>candidates</th>"
        "<th>pruned</th><th>deduplicated</th><th>unique</th></tr>"
        f"{rows}</table>"
    )


def _refinement_table(report: Mapping[str, Any]) -> str:
    intervals = report["refinement"]["intervals"]
    if not intervals:
        return "<h2>Refinement</h2><p>No intervals subdivided.</p>"
    rows = "".join(
        f"<tr><td>{html.escape(i['axis'])}</td>"
        f"<td>{html.escape(i['workload'])}</td>"
        f"<td>{i['lo']}&ndash;{i['hi']}</td><td>{i['midpoint']}</td>"
        f"<td>{html.escape(i['reason'])}</td></tr>"
        for i in intervals
    )
    return (
        "<h2>Refinement</h2><table><tr><th>axis</th><th>workload</th>"
        "<th>interval</th><th>midpoint</th><th>trigger</th></tr>"
        f"{rows}</table>"
    )


def _chart(axis_name: str, group: Mapping[str, Any], metric: str,
           winners_by_group: Mapping[tuple, list]) -> str:
    """One inline-SVG sensitivity chart with its winner strip."""
    series = group["series"]
    workload = group["workload"]
    context = group["context"]
    points = [p for pairs in series.values() for p in pairs]
    if not points:
        return ""
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    plot_w = _CHART_WIDTH - 2 * _MARGIN
    plot_h = _CHART_HEIGHT - 2 * _MARGIN

    def sx(x: float) -> float:
        return _MARGIN + (x - x_lo) / x_span * plot_w

    def sy(y: float) -> float:
        return _CHART_HEIGHT - _MARGIN - (y - y_lo) / y_span * plot_h

    svg = [
        f"<svg width='{_CHART_WIDTH}' height='{_CHART_HEIGHT + 26}' "
        "xmlns='http://www.w3.org/2000/svg'>",
        f"<rect x='{_MARGIN}' y='{_MARGIN}' width='{plot_w}' "
        f"height='{plot_h}' fill='none' stroke='#999'/>",
        f"<text x='{_MARGIN}' y='{_MARGIN - 8}' font-size='11' "
        f"fill='#444'>{html.escape(metric)}: {y_lo:.4g} &#8211; "
        f"{y_hi:.4g}</text>",
        f"<text x='{_MARGIN}' y='{_CHART_HEIGHT - _MARGIN + 16}' "
        f"font-size='11' fill='#444'>{html.escape(axis_name)}: "
        f"{x_lo:g} &#8211; {x_hi:g}</text>",
    ]
    legend = []
    for index, base in enumerate(sorted(series)):
        color = _PALETTE[index % len(_PALETTE)]
        pairs = series[base]
        path = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in pairs)
        svg.append(
            f"<polyline points='{path}' fill='none' stroke='{color}' "
            "stroke-width='1.5'/>"
        )
        for x, y in pairs:
            svg.append(
                f"<circle cx='{sx(x):.1f}' cy='{sy(y):.1f}' r='2.5' "
                f"fill='{color}'/>"
            )
        legend.append(
            f"<span><span class='swatch' style='background:{color}'>"
            f"</span>{html.escape(base)}</span>"
        )
    winners = winners_by_group.get((workload, _context_key(context)), [])
    strip_y = _CHART_HEIGHT - _MARGIN + 20
    for value, winner in winners:
        color = "#bbb"
        for index, base in enumerate(sorted(series)):
            if base == winner:
                color = _PALETTE[index % len(_PALETTE)]
        svg.append(
            f"<rect x='{sx(value) - 4:.1f}' y='{strip_y}' width='8' "
            f"height='8' fill='{color}'/>"
        )
    svg.append("</svg>")
    context_text = ", ".join(f"{name}={value}" for name, value in context)
    caption = html.escape(
        f"{workload}" + (f"  [{context_text}]" if context_text else ""))
    return (
        f"<div class='chart'><h3>{caption}</h3>"
        f"<div class='legend'>{''.join(legend)}</div>"
        f"{''.join(svg)}</div>"
    )
