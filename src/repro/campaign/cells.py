"""Campaign cells: one simulation point and how its parameters apply.

A *cell* is the atomic unit of a campaign: one fully determined
simulation — workload, (possibly parametrized) prefetcher name, trace
identity (scale / budget_fraction / seed), and a sparse set of machine
overrides.  Cells are content-addressed through the same
:func:`repro.exec.keys.sim_key` as every other execution path, so a
campaign cell, a ``repro grid`` cell, and a serve request that describe
the same simulation share one cache entry.

Parameter paths
---------------

Axes and constraints name parameters by dotted *path*.  The registry
:data:`KNOWN_PARAMS` is the single source of truth; each path falls in
one of three groups:

*identity*
    ``scale``, ``budget_fraction``, ``seed`` — trace identity fields.
*config*
    ``l1_kb``, ``l2_kb``, ``line_size``, ``l1.associativity``,
    ``l1.mshrs``, ``l2.associativity``, ``l2.mshrs``, ``core.*``,
    ``prefetch.*`` — sparse :class:`~repro.sim.config.SimConfig`
    overrides.  ``l1_kb``/``l2_kb``/``core.*``/``prefetch.*`` resolve
    with exactly the same ``dataclasses.replace`` semantics as the serve
    protocol's :meth:`~repro.serve.protocol.SimulateRequest
    .resolve_config`; the remaining cache-shape paths go beyond what the
    wire protocol can express (see :func:`serve_inexpressible`).
*prefetcher geometry*
    ``cbws.*``, ``pangloss.*``, ``pythia.*`` — geometry and learning
    knobs of the parametric prefetcher families.  These do not touch
    the machine config at all: they fold into the prefetcher *name* as
    an inline parameter block (``cbws[table_entries=64]``,
    ``pythia[alpha=0.01]``), which the registry's
    :func:`~repro.harness.registry.make_prefetcher` understands
    everywhere.  Applied to a prefetcher outside the path's family
    (e.g. ``pythia.alpha`` on ``sms`` — or on ``pangloss``) they are
    no-ops, so all points along that axis collapse to one content key —
    the planner's dedup turns that into compute saved rather than
    wasted baseline reruns.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Mapping

from repro.common.errors import CampaignError, ConfigError
from repro.harness.registry import (
    CBWS_PARAM_FIELDS,
    PANGLOSS_PARAM_FIELDS,
    PYTHIA_PARAM_FIELDS,
    canonical_prefetcher_name,
    coerce_param,
    format_param_value,
    parse_prefetcher_name,
)
from repro.sim.config import REDUCED_CONFIG, SimConfig

#: Identity (trace-key) parameter paths.
IDENTITY_PARAMS = frozenset({"scale", "budget_fraction", "seed"})

#: Machine-config parameter paths (sparse SimConfig overrides).
CONFIG_PARAMS = frozenset({
    "l1_kb",
    "l2_kb",
    "line_size",
    "l1.associativity",
    "l1.mshrs",
    "l2.associativity",
    "l2.mshrs",
    "core.width",
    "core.rob_entries",
    "core.l1_latency",
    "core.l2_latency",
    "core.memory_latency",
    "prefetch.queue_capacity",
    "prefetch.issue_interval",
    "prefetch.max_in_flight",
})

#: CBWS geometry paths (fold into the prefetcher name).
CBWS_PARAMS = frozenset(f"cbws.{field}" for field in sorted(CBWS_PARAM_FIELDS))

#: Pangloss geometry paths (fold into the prefetcher name).
PANGLOSS_PARAMS = frozenset(
    f"pangloss.{field}" for field in sorted(PANGLOSS_PARAM_FIELDS)
)

#: Pythia geometry/learning paths (fold into the prefetcher name).
PYTHIA_PARAMS = frozenset(
    f"pythia.{field}" for field in sorted(PYTHIA_PARAM_FIELDS)
)

#: Geometry path prefix -> the base names the paths apply to.  A path
#: whose prefix does not match the cell's base prefetcher is a no-op
#: (the point collapses onto the unparametrized cell).  ``cbws.*``
#: reaches both CBWS variants because they share one config.
GEOMETRY_FAMILIES: dict[str, tuple[str, ...]] = {
    "cbws": ("cbws", "cbws+sms"),
    "pangloss": ("pangloss",),
    "pythia": ("pythia",),
}

#: Every geometry path (all families).
GEOMETRY_PARAMS = CBWS_PARAMS | PANGLOSS_PARAMS | PYTHIA_PARAMS

#: Every sweepable parameter path.
KNOWN_PARAMS = IDENTITY_PARAMS | CONFIG_PARAMS | GEOMETRY_PARAMS

#: Config paths the serve wire protocol cannot express (cache shape is
#: not part of the sparse-override schema).
SERVE_INEXPRESSIBLE_PARAMS = frozenset({
    "line_size",
    "l1.associativity",
    "l1.mshrs",
    "l2.associativity",
    "l2.mshrs",
})


@dataclass(frozen=True)
class CampaignCell:
    """One fully determined simulation point.

    Attributes:
        workload: workload name.
        prefetcher: final (canonicalized, possibly parametrized) name.
        scale / budget_fraction / seed: trace identity.
        overrides: sorted ``(path, value)`` machine-config overrides.
        coords: sorted ``(axis, value)`` point that produced this cell —
            kept for reporting and refinement, not part of the content
            key (the resolved config is).
        wave: 0 for the initial sweep, ``n`` for refinement wave *n*.
    """

    workload: str
    prefetcher: str
    scale: float = 1.0
    budget_fraction: float = 1.0
    seed: int = 0
    overrides: tuple[tuple[str, int], ...] = ()
    coords: tuple[tuple[str, Any], ...] = ()
    wave: int = 0

    def key(self, base: SimConfig = REDUCED_CONFIG) -> str:
        """Content-addressed identity of this cell's result."""
        from repro.exec.keys import sim_key

        return sim_key(
            self.workload,
            self.prefetcher,
            self.scale,
            self.budget_fraction,
            self.seed,
            resolve_cell_config(self.overrides, base),
        )

    def coord(self, axis: str, default: Any = None) -> Any:
        """The value this cell takes on one axis."""
        for name, value in self.coords:
            if name == axis:
                return value
        return default

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form; :meth:`from_dict` round-trips it exactly."""
        return {
            "workload": self.workload,
            "prefetcher": self.prefetcher,
            "scale": self.scale,
            "budget_fraction": self.budget_fraction,
            "seed": self.seed,
            "overrides": [[path, value] for path, value in self.overrides],
            "coords": [[axis, value] for axis, value in self.coords],
            "wave": self.wave,
        }

    @classmethod
    def from_dict(cls, body: Mapping[str, Any]) -> "CampaignCell":
        """Rebuild a cell from its journaled form."""
        try:
            return cls(
                workload=body["workload"],
                prefetcher=body["prefetcher"],
                scale=float(body["scale"]),
                budget_fraction=float(body["budget_fraction"]),
                seed=int(body["seed"]),
                overrides=tuple(
                    (path, value) for path, value in body["overrides"]
                ),
                coords=tuple(
                    (axis, value) for axis, value in body["coords"]
                ),
                wave=int(body.get("wave", 0)),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise CampaignError(
                f"malformed journaled cell {body!r}: {error}"
            ) from None


def resolve_cell_config(
    overrides: tuple[tuple[str, int], ...] | Mapping[str, int],
    base: SimConfig = REDUCED_CONFIG,
) -> SimConfig:
    """Apply sparse config overrides to ``base``.

    ``l1_kb`` / ``l2_kb`` / ``core.*`` / ``prefetch.*`` use the same
    replace semantics as the serve protocol's ``resolve_config`` — the
    resolved configs (and therefore the sim keys) are identical for the
    paths both can express.  Field validation happens in the config
    dataclasses' own ``__post_init__``.
    """
    mapping = dict(overrides)
    unknown = set(mapping) - CONFIG_PARAMS
    if unknown:
        raise CampaignError(
            f"unknown config override path(s): {', '.join(sorted(unknown))}"
        )
    core_fields = {
        path.split(".", 1)[1]: value
        for path, value in mapping.items() if path.startswith("core.")
    }
    prefetch_fields = {
        path.split(".", 1)[1]: value
        for path, value in mapping.items() if path.startswith("prefetch.")
    }
    core = (dataclasses.replace(base.core, **core_fields)
            if core_fields else base.core)
    prefetch = (dataclasses.replace(base.prefetch, **prefetch_fields)
                if prefetch_fields else base.prefetch)

    l1_fields: dict[str, int] = {}
    l2_fields: dict[str, int] = {}
    if "l1_kb" in mapping:
        l1_fields["size_bytes"] = mapping["l1_kb"] * 1024
    if "l2_kb" in mapping:
        l2_fields["size_bytes"] = mapping["l2_kb"] * 1024
    if "line_size" in mapping:
        l1_fields["line_size"] = mapping["line_size"]
        l2_fields["line_size"] = mapping["line_size"]
    for path, value in mapping.items():
        if path.startswith("l1."):
            l1_fields[path.split(".", 1)[1]] = value
        elif path.startswith("l2."):
            l2_fields[path.split(".", 1)[1]] = value

    hierarchy = base.hierarchy
    if l1_fields:
        hierarchy = dataclasses.replace(
            hierarchy, l1=dataclasses.replace(hierarchy.l1, **l1_fields))
    if l2_fields:
        hierarchy = dataclasses.replace(
            hierarchy, l2=dataclasses.replace(hierarchy.l2, **l2_fields))
    return SimConfig(hierarchy=hierarchy, core=core, prefetch=prefetch)


def build_cell(
    workload: str,
    prefetcher: str,
    point: Mapping[str, Any],
    *,
    scale: float,
    budget_fraction: float,
    seed: int,
    wave: int = 0,
    base: SimConfig = REDUCED_CONFIG,
) -> CampaignCell:
    """One candidate cell from a (workload, prefetcher, axis-point).

    Partitions the point's parameters into identity fields, config
    overrides, and cbws geometry (folded into the prefetcher name; axis
    values override a parameter block already present in the base
    name).  The resolved config is validated here so an invalid corner
    fails at *plan* time with the offending coordinates, not mid-run.
    """
    coords = tuple(sorted(point.items()))
    unknown = set(point) - KNOWN_PARAMS
    if unknown:
        raise CampaignError(
            f"unknown parameter path(s): {', '.join(sorted(unknown))}"
        )
    for path in IDENTITY_PARAMS & set(point):
        value = point[path]
        if path == "scale":
            scale = float(value)
        elif path == "budget_fraction":
            budget_fraction = float(value)
        else:
            seed = int(value)

    try:
        base_name, base_params = parse_prefetcher_name(prefetcher)
        geometry_point: dict[str, Any] = {}
        for path in GEOMETRY_PARAMS & set(point):
            prefix, field = path.split(".", 1)
            if base_name in GEOMETRY_FAMILIES[prefix]:
                geometry_point[field] = coerce_param(
                    base_name, field, point[path]
                )
        if geometry_point:
            merged = {**base_params, **geometry_point}
            body = ",".join(
                f"{k}={format_param_value(merged[k])}" for k in sorted(merged)
            )
            prefetcher = canonical_prefetcher_name(f"{base_name}[{body}]")
        else:
            prefetcher = canonical_prefetcher_name(prefetcher)
    except ConfigError as error:
        raise CampaignError(
            f"cell {coords!r}: bad prefetcher {prefetcher!r}: {error}"
        ) from None

    overrides = tuple(sorted(
        (path, int(point[path])) for path in CONFIG_PARAMS & set(point)
    ))
    cell = CampaignCell(
        workload=workload,
        prefetcher=prefetcher,
        scale=scale,
        budget_fraction=budget_fraction,
        seed=seed,
        overrides=overrides,
        coords=coords,
        wave=wave,
    )
    try:
        resolve_cell_config(overrides, base)
    except ConfigError as error:
        raise CampaignError(
            f"cell {coords!r} resolves to an invalid machine: {error}; "
            "add a constraint to prune this corner"
        ) from None
    return cell


def baseline_params(base: SimConfig = REDUCED_CONFIG) -> dict[str, Any]:
    """Default value of every sweepable parameter path.

    Constraint expressions evaluate against this namespace overlaid with
    the candidate point, so a predicate may reference a parameter the
    spec does not sweep (``is_pow2(line_size)`` holds — or not — at the
    baseline too).
    """
    from repro.core.predictor import CbwsConfig
    from repro.prefetchers.learned import PanglossConfig, PythiaConfig

    cbws = CbwsConfig()
    pangloss = PanglossConfig()
    pythia = PythiaConfig()
    return {
        "scale": 1.0,
        "budget_fraction": 1.0,
        "seed": 0,
        "l1_kb": base.hierarchy.l1.size_bytes // 1024,
        "l2_kb": base.hierarchy.l2.size_bytes // 1024,
        "line_size": base.hierarchy.l1.line_size,
        "l1.associativity": base.hierarchy.l1.associativity,
        "l1.mshrs": base.hierarchy.l1.mshrs,
        "l2.associativity": base.hierarchy.l2.associativity,
        "l2.mshrs": base.hierarchy.l2.mshrs,
        "core.width": base.core.width,
        "core.rob_entries": base.core.rob_entries,
        "core.l1_latency": base.core.l1_latency,
        "core.l2_latency": base.core.l2_latency,
        "core.memory_latency": base.core.memory_latency,
        "prefetch.queue_capacity": base.prefetch.queue_capacity,
        "prefetch.issue_interval": base.prefetch.issue_interval,
        "prefetch.max_in_flight": base.prefetch.max_in_flight,
        **{
            f"cbws.{field}": getattr(cbws, field)
            for field in sorted(CBWS_PARAM_FIELDS)
        },
        **{
            f"pangloss.{field}": getattr(pangloss, field)
            for field in sorted(PANGLOSS_PARAM_FIELDS)
        },
        **{
            f"pythia.{field}": getattr(pythia, field)
            for field in sorted(PYTHIA_PARAM_FIELDS)
        },
    }


def serve_inexpressible(cell: CampaignCell) -> str | None:
    """Why this cell cannot run through a serve endpoint (None if it can).

    The wire protocol's sparse overrides cover cache *sizes* and the
    core/prefetch scalars but not cache shape (line size, associativity,
    MSHRs); cbws geometry always travels in the prefetcher name, which
    serve accepts as-is.
    """
    blocked = sorted(
        path for path, _ in cell.overrides
        if path in SERVE_INEXPRESSIBLE_PARAMS
    )
    if blocked:
        return (
            f"override(s) {', '.join(blocked)} are not expressible in "
            "the serve wire protocol; run this campaign with the grid "
            "executor instead"
        )
    return None


def cell_request_body(cell: CampaignCell) -> dict[str, Any]:
    """The ``POST /v1/simulate`` body equivalent to this cell."""
    reason = serve_inexpressible(cell)
    if reason is not None:
        raise CampaignError(reason)
    from repro.serve.protocol import PROTOCOL_VERSION

    config: dict[str, Any] = {}
    core: dict[str, int] = {}
    prefetch: dict[str, int] = {}
    for path, value in cell.overrides:
        if path == "l1_kb":
            config["l1_kb"] = value
        elif path == "l2_kb":
            config["l2_kb"] = value
        elif path.startswith("core."):
            core[path.split(".", 1)[1]] = value
        elif path.startswith("prefetch."):
            prefetch[path.split(".", 1)[1]] = value
    if core:
        config["core"] = core
    if prefetch:
        config["prefetch"] = prefetch
    body: dict[str, Any] = {
        "version": PROTOCOL_VERSION,
        "workload": cell.workload,
        "prefetcher": cell.prefetcher,
        "scale": cell.scale,
        "budget_fraction": cell.budget_fraction,
        "seed": cell.seed,
    }
    if config:
        body["config"] = config
    return body
