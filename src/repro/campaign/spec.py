"""The sweep-spec language: axes, combinators, constraints, refinement.

A campaign spec is a small declarative document (TOML or JSON) that
names the design space to sweep::

    version = 1
    name = "history-sensitivity"

    [base]
    workloads = ["nw", "stencil-default"]
    prefetchers = ["sms", "cbws"]
    budget_fraction = 0.05

    [[axes]]
    name = "cbws.table_entries"
    log2_range = [1, 64]          # 1, 2, 4, ..., 64

    [[axes]]
    name = "prefetch.issue_interval"
    values = [2, 4, 8, 16]

    [[constraints]]
    expr = "is_pow2(line_size)"

    [refine]
    metric = "ipc"
    axes = ["cbws.table_entries"]
    competitors = ["cbws", "sms"]
    max_cells = 64

Axes name *parameter paths* (see :data:`repro.campaign.cells
.KNOWN_PARAMS`) and carry exactly one value form: an explicit ``values``
list, an inclusive arithmetic ``range = [start, stop, step]``, or a
``log2_range = [lo, hi]`` of powers of two.  Axes combine by
cross-product unless marked ``combine = "zip"`` — all zip axes advance
in lockstep (equal lengths required) and the zipped tuple then crosses
with the remaining axes.

Constraints are boolean expressions over axis names and base parameters,
evaluated per candidate cell *before* dedup; candidates failing any
constraint are pruned.  The evaluator is a restricted AST walk —
comparisons, arithmetic, boolean operators, and a tiny builtin
whitelist (``min``, ``max``, ``abs``, ``is_pow2``) — never ``eval``.
A spec whose constraints prune *every* cell is an error, not an empty
campaign.

Specs are versioned (:data:`SPEC_VERSION`); the parser rejects versions
it does not speak.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.common.bitops import is_power_of_two
from repro.common.errors import SpecError

#: Version of the sweep-spec document layout.
SPEC_VERSION = 1

#: Scalar types an axis may take.
Scalar = "int | float | str"


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SpecError(message)


# ---------------------------------------------------------------------------
# Axes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Axis:
    """One swept parameter: a path plus its ordered value list.

    Attributes:
        name: parameter path (e.g. ``cbws.table_entries``, ``l2_kb``).
        values: the expanded, ordered scalar values.
        combine: ``"cross"`` (default) or ``"zip"``.
        spacing: ``"linear"`` or ``"log2"`` — how refinement midpoints
            are computed on this axis.
    """

    name: str
    values: tuple[Any, ...]
    combine: str = "cross"
    spacing: str = "linear"

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "values": list(self.values),
            "combine": self.combine,
            "spacing": self.spacing,
        }


def _expand_values(name: str, body: Mapping[str, Any]) -> tuple[tuple, str]:
    """The (values, spacing) of one axis declaration."""
    forms = [key for key in ("values", "range", "log2_range") if key in body]
    _require(
        len(forms) == 1,
        f"axis {name!r} must declare exactly one of values / range / "
        f"log2_range, got {forms or 'none'}",
    )
    form = forms[0]
    raw = body[form]
    _require(isinstance(raw, Sequence) and not isinstance(raw, str),
             f"axis {name!r}: {form} must be a list")
    if form == "values":
        values = tuple(raw)
        _require(len(values) > 0, f"axis {name!r} has no values")
        _require(
            all(isinstance(v, (int, float, str))
                and not isinstance(v, bool) for v in values),
            f"axis {name!r}: values must be numbers or strings",
        )
        _require(len(set(values)) == len(values),
                 f"axis {name!r} lists duplicate values")
        return values, "linear"
    if form == "range":
        _require(len(raw) == 3, f"axis {name!r}: range wants [start, stop, "
                                f"step], got {list(raw)}")
        start, stop, step = raw
        _require(
            all(isinstance(v, (int, float)) and not isinstance(v, bool)
                for v in raw),
            f"axis {name!r}: range bounds must be numbers",
        )
        _require(step > 0, f"axis {name!r}: range step must be positive")
        _require(stop >= start, f"axis {name!r}: range stop < start")
        values = []
        value = start
        while value <= stop + (1e-9 if isinstance(step, float) else 0):
            values.append(value)
            value = value + step
        _require(len(values) > 0, f"axis {name!r} has no values")
        return tuple(values), "linear"
    # log2_range
    _require(len(raw) == 2,
             f"axis {name!r}: log2_range wants [lo, hi], got {list(raw)}")
    lo, hi = raw
    _require(
        isinstance(lo, int) and isinstance(hi, int)
        and not isinstance(lo, bool) and not isinstance(hi, bool),
        f"axis {name!r}: log2_range bounds must be integers",
    )
    _require(lo > 0 and hi >= lo,
             f"axis {name!r}: log2_range wants 0 < lo <= hi")
    _require(is_power_of_two(lo) and is_power_of_two(hi),
             f"axis {name!r}: log2_range bounds must be powers of two")
    values = []
    value = lo
    while value <= hi:
        values.append(value)
        value *= 2
    return tuple(values), "log2"


# ---------------------------------------------------------------------------
# Constraints
# ---------------------------------------------------------------------------

_ALLOWED_FUNCTIONS = {
    "min": min,
    "max": max,
    "abs": abs,
    "is_pow2": is_power_of_two,
}

_ALLOWED_NODES = (
    ast.Expression, ast.BoolOp, ast.And, ast.Or, ast.UnaryOp, ast.Not,
    ast.USub, ast.UAdd, ast.BinOp, ast.Add, ast.Sub, ast.Mult, ast.Div,
    ast.FloorDiv, ast.Mod, ast.Pow, ast.Compare, ast.Eq, ast.NotEq,
    ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.In, ast.NotIn, ast.Constant,
    ast.Name, ast.Load, ast.Attribute, ast.Call, ast.Tuple, ast.List,
)


@dataclass(frozen=True)
class Constraint:
    """One boolean predicate over a candidate cell's parameters."""

    expr: str
    _tree: ast.Expression = field(repr=False, compare=False, hash=False,
                                  default=None)  # type: ignore[assignment]

    @classmethod
    def parse(cls, expr: str) -> "Constraint":
        _require(isinstance(expr, str) and bool(expr.strip()),
                 "constraint expr must be a non-empty string")
        try:
            tree = ast.parse(expr, mode="eval")
        except SyntaxError as error:
            raise SpecError(
                f"constraint {expr!r} is not a valid expression: {error}"
            ) from None
        for node in ast.walk(tree):
            if not isinstance(node, _ALLOWED_NODES):
                raise SpecError(
                    f"constraint {expr!r} uses a disallowed construct "
                    f"({type(node).__name__}); only comparisons, "
                    "arithmetic, boolean operators, and "
                    f"{sorted(_ALLOWED_FUNCTIONS)} are supported"
                )
            if isinstance(node, ast.Call):
                callee = node.func
                if (not isinstance(callee, ast.Name)
                        or callee.id not in _ALLOWED_FUNCTIONS
                        or node.keywords):
                    raise SpecError(
                        f"constraint {expr!r} calls a disallowed function; "
                        f"only {sorted(_ALLOWED_FUNCTIONS)} may be called"
                    )
        return cls(expr=expr, _tree=tree)

    def evaluate(self, params: Mapping[str, Any]) -> bool:
        """Whether the predicate holds for one candidate cell."""
        return bool(self._eval(self._tree.body, params))

    def _eval(self, node: ast.AST, params: Mapping[str, Any]) -> Any:
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, (ast.Name, ast.Attribute)):
            path = _dotted_path(node)
            if path in _ALLOWED_FUNCTIONS:
                return _ALLOWED_FUNCTIONS[path]
            if path not in params:
                known = ", ".join(sorted(params))
                raise SpecError(
                    f"constraint {self.expr!r} names unknown parameter "
                    f"{path!r}; known: {known}"
                )
            return params[path]
        if isinstance(node, ast.BoolOp):
            values = (self._eval(v, params) for v in node.values)
            if isinstance(node.op, ast.And):
                return all(values)
            return any(values)
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(node.operand, params)
            if isinstance(node.op, ast.Not):
                return not operand
            if isinstance(node.op, ast.USub):
                return -operand
            return +operand
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, params)
            right = self._eval(node.right, params)
            ops = {
                ast.Add: lambda: left + right,
                ast.Sub: lambda: left - right,
                ast.Mult: lambda: left * right,
                ast.Div: lambda: left / right,
                ast.FloorDiv: lambda: left // right,
                ast.Mod: lambda: left % right,
                ast.Pow: lambda: left ** right,
            }
            return ops[type(node.op)]()
        if isinstance(node, ast.Compare):
            left = self._eval(node.left, params)
            for op, comparator in zip(node.ops, node.comparators):
                right = self._eval(comparator, params)
                checks = {
                    ast.Eq: lambda: left == right,
                    ast.NotEq: lambda: left != right,
                    ast.Lt: lambda: left < right,
                    ast.LtE: lambda: left <= right,
                    ast.Gt: lambda: left > right,
                    ast.GtE: lambda: left >= right,
                    ast.In: lambda: left in right,
                    ast.NotIn: lambda: left not in right,
                }
                if not checks[type(op)]():
                    return False
                left = right
            return True
        if isinstance(node, ast.Call):
            function = self._eval(node.func, params)
            arguments = [self._eval(a, params) for a in node.args]
            return function(*arguments)
        if isinstance(node, (ast.Tuple, ast.List)):
            return tuple(self._eval(element, params)
                         for element in node.elts)
        raise SpecError(
            f"constraint {self.expr!r}: unsupported node "
            f"{type(node).__name__}"
        )


def _dotted_path(node: ast.AST) -> str:
    """``cbws.table_entries`` from the Attribute/Name chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    raise SpecError("constraint parameter paths must be plain dotted names")


# ---------------------------------------------------------------------------
# Refinement
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RefineSpec:
    """Adaptive-refinement policy.

    Attributes:
        enabled: whether refinement waves run at all.
        metric: the :class:`~repro.sim.results.SimResult` response metric
            compared between competitors (``ipc`` or ``mpki``).
        axes: numeric axes eligible for subdivision (must exist in the
            spec's axes).
        competitors: the two prefetcher *bases* whose ranking defines
            the winner map (e.g. ``("cbws", "sms")``).
        max_cells: total refinement-cell budget across all waves.
        max_waves: refinement waves after the initial sweep.
        gradient_threshold: also subdivide where the relative change of
            ``metric`` along the axis exceeds this fraction (None
            disables the gradient trigger).
        min_gap: do not subdivide intervals narrower than this.
    """

    enabled: bool = False
    metric: str = "ipc"
    axes: tuple[str, ...] = ()
    competitors: tuple[str, str] = ("cbws", "sms")
    max_cells: int = 64
    max_waves: int = 2
    gradient_threshold: float | None = None
    min_gap: float = 1.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "enabled": self.enabled,
            "metric": self.metric,
            "axes": list(self.axes),
            "competitors": list(self.competitors),
            "max_cells": self.max_cells,
            "max_waves": self.max_waves,
            "gradient_threshold": self.gradient_threshold,
            "min_gap": self.min_gap,
        }


#: Response metrics the refinement loop understands, with their
#: "better" direction (+1 higher is better, -1 lower is better).
REFINE_METRICS = {"ipc": 1, "mpki": -1}


# ---------------------------------------------------------------------------
# The spec
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CampaignSpec:
    """One validated sweep specification."""

    version: int
    name: str
    workloads: tuple[str, ...]
    prefetchers: tuple[str, ...]
    scale: float = 1.0
    budget_fraction: float = 1.0
    seed: int = 0
    axes: tuple[Axis, ...] = ()
    constraints: tuple[Constraint, ...] = ()
    refine: RefineSpec = RefineSpec()

    def axis(self, name: str) -> Axis:
        for axis in self.axes:
            if axis.name == name:
                return axis
        raise SpecError(f"spec has no axis {name!r}")

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON-ready echo (the frozen ``spec.json``)."""
        return {
            "version": self.version,
            "name": self.name,
            "base": {
                "workloads": list(self.workloads),
                "prefetchers": list(self.prefetchers),
                "scale": self.scale,
                "budget_fraction": self.budget_fraction,
                "seed": self.seed,
            },
            "axes": [axis.to_dict() for axis in self.axes],
            "constraints": [c.expr for c in self.constraints],
            "refine": self.refine.to_dict(),
        }


def parse_spec(document: Mapping[str, Any]) -> CampaignSpec:
    """Validate one spec document (already decoded from TOML/JSON)."""
    _require(isinstance(document, Mapping), "spec must be a table/object")
    known_top = {"version", "name", "base", "axes", "constraints", "refine"}
    unknown = set(document) - known_top
    _require(not unknown,
             f"unknown spec field(s): {', '.join(sorted(unknown))}; "
             f"known: {', '.join(sorted(known_top))}")

    version = document.get("version")
    _require(isinstance(version, int) and not isinstance(version, bool),
             "spec is missing its integer 'version' field")
    _require(version == SPEC_VERSION,
             f"unsupported spec version {version}; this build speaks "
             f"version {SPEC_VERSION}")
    name = document.get("name", "campaign")
    _require(isinstance(name, str) and bool(name.strip()),
             "spec 'name' must be a non-empty string")

    base = document.get("base")
    _require(isinstance(base, Mapping), "spec needs a [base] table")
    known_base = {"workloads", "prefetchers", "scale", "budget_fraction",
                  "seed"}
    unknown = set(base) - known_base
    _require(not unknown,
             f"unknown base field(s): {', '.join(sorted(unknown))}")

    def _name_list(key: str) -> tuple[str, ...]:
        raw = base.get(key)
        _require(isinstance(raw, Sequence) and not isinstance(raw, str)
                 and len(raw) > 0,
                 f"base.{key} must be a non-empty list")
        _require(all(isinstance(v, str) and v.strip() for v in raw),
                 f"base.{key} entries must be non-empty strings")
        _require(len(set(raw)) == len(raw),
                 f"base.{key} lists duplicates")
        return tuple(raw)

    workloads = _name_list("workloads")
    prefetchers = _name_list("prefetchers")
    scale = base.get("scale", 1.0)
    budget_fraction = base.get("budget_fraction", 1.0)
    seed = base.get("seed", 0)
    _require(isinstance(scale, (int, float)) and scale > 0,
             "base.scale must be a positive number")
    _require(isinstance(budget_fraction, (int, float))
             and 0 < budget_fraction <= 1.0,
             "base.budget_fraction must be in (0, 1]")
    _require(isinstance(seed, int) and not isinstance(seed, bool),
             "base.seed must be an integer")

    axes: list[Axis] = []
    raw_axes = document.get("axes", [])
    _require(isinstance(raw_axes, Sequence),
             "spec 'axes' must be a list of axis tables")
    for body in raw_axes:
        _require(isinstance(body, Mapping), "each axis must be a table")
        known_axis = {"name", "values", "range", "log2_range", "combine",
                      "spacing"}
        unknown = set(body) - known_axis
        _require(not unknown,
                 f"unknown axis field(s): {', '.join(sorted(unknown))}")
        axis_name = body.get("name")
        _require(isinstance(axis_name, str) and bool(axis_name.strip()),
                 "each axis needs a non-empty 'name'")
        combine = body.get("combine", "cross")
        _require(combine in ("cross", "zip"),
                 f"axis {axis_name!r}: combine must be 'cross' or 'zip'")
        values, spacing = _expand_values(axis_name, body)
        # An explicit spacing override keeps the canonical spec echo
        # (spec.to_dict(), as journaled) round-trippable: the expanded
        # value list plus its spacing is what refinement needs to know.
        declared = body.get("spacing")
        if declared is not None:
            _require(declared in ("linear", "log2"),
                     f"axis {axis_name!r}: spacing must be 'linear' or "
                     f"'log2', got {declared!r}")
            if declared == "log2":
                _require(
                    all(isinstance(v, (int, float))
                        and not isinstance(v, bool) and v > 0
                        for v in values),
                    f"axis {axis_name!r}: log2 spacing needs positive "
                    "numeric values",
                )
            spacing = declared
        axes.append(Axis(name=axis_name, values=values, combine=combine,
                         spacing=spacing))
    names = [axis.name for axis in axes]
    _require(len(set(names)) == len(names),
             f"duplicate axis name(s): "
             f"{', '.join(sorted(n for n in names if names.count(n) > 1))}")
    zip_lengths = {len(a.values) for a in axes if a.combine == "zip"}
    _require(len(zip_lengths) <= 1,
             f"zip axes must have equal lengths, got {sorted(zip_lengths)}")

    # Axis paths are validated against the parameter registry here so a
    # typo fails at parse time, not mid-campaign.
    from repro.campaign.cells import KNOWN_PARAMS

    for axis in axes:
        _require(axis.name in KNOWN_PARAMS,
                 f"axis {axis.name!r} is not a sweepable parameter; "
                 f"known: {', '.join(sorted(KNOWN_PARAMS))}")

    constraints = tuple(
        Constraint.parse(_constraint_expr(entry))
        for entry in document.get("constraints", [])
    )

    refine = _parse_refine(document.get("refine"), axes)
    return CampaignSpec(
        version=version,
        name=name.strip(),
        workloads=workloads,
        prefetchers=prefetchers,
        scale=float(scale),
        budget_fraction=float(budget_fraction),
        seed=seed,
        axes=tuple(axes),
        constraints=constraints,
        refine=refine,
    )


def _constraint_expr(entry: Any) -> str:
    if isinstance(entry, str):
        return entry
    if isinstance(entry, Mapping) and set(entry) == {"expr"}:
        return entry["expr"]
    raise SpecError(
        "each constraint must be an expression string or {expr = ...}, "
        f"got {entry!r}"
    )


def _parse_refine(body: Any, axes: Sequence[Axis]) -> RefineSpec:
    if body is None:
        return RefineSpec()
    _require(isinstance(body, Mapping), "spec 'refine' must be a table")
    known = {"enabled", "metric", "axes", "competitors", "max_cells",
             "max_waves", "gradient_threshold", "min_gap"}
    unknown = set(body) - known
    _require(not unknown,
             f"unknown refine field(s): {', '.join(sorted(unknown))}")
    metric = body.get("metric", "ipc")
    _require(metric in REFINE_METRICS,
             f"refine.metric must be one of "
             f"{', '.join(sorted(REFINE_METRICS))}, got {metric!r}")
    refine_axes = tuple(body.get("axes", []))
    axis_names = {axis.name for axis in axes}
    for name in refine_axes:
        _require(name in axis_names,
                 f"refine.axes names unknown axis {name!r}")
        axis = next(a for a in axes if a.name == name)
        _require(
            all(isinstance(v, (int, float)) for v in axis.values),
            f"refine axis {name!r} must be numeric",
        )
        _require(axis.combine == "cross",
                 f"refine axis {name!r} must be a cross axis")
    competitors = body.get("competitors", ["cbws", "sms"])
    _require(isinstance(competitors, Sequence) and len(competitors) == 2
             and all(isinstance(c, str) for c in competitors)
             and competitors[0] != competitors[1],
             "refine.competitors must be two distinct prefetcher bases")
    max_cells = body.get("max_cells", 64)
    max_waves = body.get("max_waves", 2)
    _require(isinstance(max_cells, int) and max_cells > 0,
             "refine.max_cells must be a positive integer")
    _require(isinstance(max_waves, int) and max_waves > 0,
             "refine.max_waves must be a positive integer")
    gradient = body.get("gradient_threshold")
    _require(gradient is None
             or (isinstance(gradient, (int, float)) and gradient > 0),
             "refine.gradient_threshold must be a positive number")
    min_gap = body.get("min_gap", 1.0)
    _require(isinstance(min_gap, (int, float)) and min_gap > 0,
             "refine.min_gap must be positive")
    enabled = body.get("enabled", True)
    _require(isinstance(enabled, bool), "refine.enabled must be a boolean")
    return RefineSpec(
        enabled=enabled,
        metric=metric,
        axes=refine_axes,
        competitors=(competitors[0], competitors[1]),
        max_cells=max_cells,
        max_waves=max_waves,
        gradient_threshold=(float(gradient) if gradient is not None
                            else None),
        min_gap=float(min_gap),
    )


def load_spec(path: str | Path) -> CampaignSpec:
    """Load a spec file, dispatching on its extension (.toml / .json)."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as error:
        raise SpecError(f"cannot read spec {path}: {error}") from None
    if path.suffix.lower() == ".toml":
        import tomllib

        try:
            document = tomllib.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, tomllib.TOMLDecodeError) as error:
            raise SpecError(f"spec {path} is not valid TOML: {error}") \
                from None
    elif path.suffix.lower() == ".json":
        try:
            document = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise SpecError(f"spec {path} is not valid JSON: {error}") \
                from None
    else:
        raise SpecError(
            f"spec {path} has unsupported extension {path.suffix!r}; "
            "use .toml or .json"
        )
    return parse_spec(document)


def spec_fingerprint(spec: CampaignSpec) -> str:
    """Content fingerprint of one spec (resume legality check)."""
    from repro.exec.keys import stable_hash

    return stable_hash("campaign-spec", spec.to_dict())
