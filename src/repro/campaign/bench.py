"""``BENCH_campaign.json``: overhead benchmark of the campaign engine.

The engine's own machinery — spec expansion, constraint evaluation,
content-key hashing, cache dedup, journal append/replay — must stay
cheap relative to simulation, and this bench pins that: it plans and
runs the quick reference campaign (the 2-workload, 2-axis CBWS-vs-SMS
sensitivity sweep from EXPERIMENTS.md, shrunk to CI size), then
re-plans it against the warm cache, and reports planner throughput
(cells/sec), dedup ratios, journal size/replay cost, and the
winner-flip intervals refinement found.  ``repro campaign bench`` emits
the schema-versioned document for cross-PR trajectory tracking next to
``BENCH_sim_hotpath.json``.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from time import perf_counter
from typing import Any, Callable

from repro.campaign.planner import plan_campaign
from repro.campaign.report import build_report, write_report
from repro.campaign.runner import replay_campaign, run_campaign
from repro.campaign.spec import CampaignSpec, parse_spec
from repro.exec.cache import ResultCache

#: Schema identity of the emitted JSON document.
CAMPAIGN_BENCH_SCHEMA = "repro.bench.campaign"
CAMPAIGN_BENCH_VERSION = 1

#: The quick reference campaign: the paper's §VI history-size axis
#: (log2, 1..64) crossed with the prefetch-bandwidth knob, CBWS vs SMS,
#: tiny budget.  ``md-linpack`` is the interesting workload: SMS beats a
#: history-starved CBWS up through 32 table entries and loses at 64, so
#: refinement must find the crossover inside [32, 64]; ``429.mcf-ref``
#: is the control where CBWS dominates everywhere.  2 x 2 x 7 x 4 = 112
#: candidates; the sms cells collapse along the cbws axis, leaving 64
#: unique cells — exactly the dedup behaviour the bench tracks.
QUICK_CAMPAIGN_DOCUMENT: dict[str, Any] = {
    "version": 1,
    "name": "quick-history-sensitivity",
    "base": {
        "workloads": ["md-linpack", "429.mcf-ref"],
        "prefetchers": ["sms", "cbws"],
        "budget_fraction": 0.05,
        "seed": 0,
    },
    "axes": [
        {"name": "cbws.table_entries", "log2_range": [1, 64]},
        {"name": "prefetch.issue_interval", "values": [2, 4, 8, 16]},
    ],
    "refine": {
        "metric": "ipc",
        "axes": ["cbws.table_entries"],
        "competitors": ["cbws", "sms"],
        "max_cells": 32,
        "max_waves": 2,
    },
}


def quick_campaign_spec() -> CampaignSpec:
    """The parsed quick reference campaign."""
    return parse_spec(QUICK_CAMPAIGN_DOCUMENT)


def run_campaign_bench(
    cache_dir: str | Path | None = None,
    jobs: int = 1,
    progress: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Run the quick reference campaign and measure engine overhead.

    A private temporary cache is used unless ``cache_dir`` is given (a
    persistent dir makes the execute phase a warm replay, which is fine:
    the bench's subject is the engine around the simulations, not the
    simulations).
    """
    spec = quick_campaign_spec()
    temporary = (tempfile.TemporaryDirectory(prefix="repro-campaign-bench-")
                 if cache_dir is None else None)
    root = Path(temporary.name if temporary else cache_dir)
    bench_started = perf_counter()
    try:
        if progress is not None:
            progress("plan (cold)")
        started = perf_counter()
        cold_plan = plan_campaign(spec)
        cold_plan_seconds = perf_counter() - started

        if progress is not None:
            progress("execute")
        started = perf_counter()
        outcome = run_campaign(spec, root, jobs=jobs)
        execute_seconds = perf_counter() - started
        artifacts = write_report(outcome)
        report = build_report(outcome)

        if progress is not None:
            progress("plan (warm cache)")
        cache = ResultCache(root / "results")
        started = perf_counter()
        warm_plan = plan_campaign(spec, cache=cache)
        warm_plan_seconds = perf_counter() - started

        if progress is not None:
            progress("journal replay")
        journal_path = outcome.directory / "journal.jsonl"
        started = perf_counter()
        replayed = replay_campaign(journal_path)
        replay_seconds = perf_counter() - started
        journal_bytes = journal_path.stat().st_size

        flips = [
            interval for interval in outcome.intervals
            if interval.reason == "winner-flip"
        ]
        totals = report["planning"]["totals"]
        document: dict[str, Any] = {
            "schema": CAMPAIGN_BENCH_SCHEMA,
            "schema_version": CAMPAIGN_BENCH_VERSION,
            "spec": spec.to_dict(),
            "planning": {
                "cold_seconds": cold_plan_seconds,
                "warm_seconds": warm_plan_seconds,
                "candidates": cold_plan.candidates,
                "unique": cold_plan.unique,
                "deduplicated": cold_plan.deduplicated,
                "pruned": cold_plan.pruned,
                "candidates_per_second": (
                    cold_plan.candidates / cold_plan_seconds
                    if cold_plan_seconds else 0.0
                ),
                "warm_cached_cells": len(warm_plan.cached_keys),
            },
            "execution": {
                "seconds": execute_seconds,
                "waves": len(outcome.waves),
                "cells_total": totals["unique"],
                "cells_deduplicated": totals["deduplicated"],
                "quarantined": totals["quarantined"],
                "cache_hits": outcome.execution.get("cache_hits", 0),
                "sims_run": outcome.execution.get("sims_run", 0),
            },
            "refinement": {
                "intervals": len(outcome.intervals),
                "winner_flips": len(flips),
                "flip_axes": sorted({f.axis for f in flips}),
            },
            "journal": {
                "bytes": journal_bytes,
                "records": replayed.records,
                "replay_seconds": replay_seconds,
            },
            "artifacts": {
                name: str(path) for name, path in artifacts.items()
            },
            "status": outcome.status,
        }
        document["totals"] = {
            "wall_seconds": perf_counter() - bench_started,
        }
        return document
    finally:
        if temporary is not None:
            temporary.cleanup()


def render_campaign_bench(document: dict[str, Any]) -> str:
    """Terminal summary of one campaign-bench document."""
    planning = document["planning"]
    execution = document["execution"]
    refinement = document["refinement"]
    journal = document["journal"]
    lines = [
        f"repro campaign bench ({document['spec']['name']})",
        "-" * 64,
        f"  plan (cold):      {planning['cold_seconds']*1000:7.1f} ms  "
        f"({planning['candidates']} candidates -> "
        f"{planning['unique']} unique, "
        f"{planning['deduplicated']} deduplicated, "
        f"{planning['pruned']} pruned)",
        f"  plan (warm):      {planning['warm_seconds']*1000:7.1f} ms  "
        f"({planning['warm_cached_cells']} cell(s) already cached)",
        f"  planner rate:     {planning['candidates_per_second']:,.0f} "
        "candidates/sec",
        f"  execute:          {execution['seconds']:7.2f} s   "
        f"({execution['waves']} wave(s), {execution['cells_total']} "
        f"cell(s), {execution['sims_run']} simulated, "
        f"{execution['cache_hits']} cache hit(s))",
        f"  refinement:       {refinement['intervals']} interval(s), "
        f"{refinement['winner_flips']} winner flip(s) on "
        f"{', '.join(refinement['flip_axes']) or 'no axis'}",
        f"  journal:          {journal['bytes']:,} bytes, "
        f"{journal['records']} record(s), replay "
        f"{journal['replay_seconds']*1000:.1f} ms",
        f"  status:           {document['status']}",
        f"  total wall time:  {document['totals']['wall_seconds']:.2f} s",
    ]
    return "\n".join(lines)
