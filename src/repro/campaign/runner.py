"""Journaled, resumable campaign execution.

One campaign run lives under ``<cache_dir>/campaigns/<campaign_id>/``
and is driven by the same CRC-framed write-ahead journal as grid runs
(:mod:`repro.exec.journal`): the intent of every wave is committed
(``wave-planned``) before any cell executes, every cell outcome is
appended behind it (``task-done`` / ``task-quarantined``, written by
:func:`~repro.exec.scheduler.execute_grid` itself), and the terminal
``run-finished`` record closes the run.

**Resume semantics.**  ``run_campaign(..., resume=True)`` replays the
journal, checks the spec fingerprint (resuming a different spec into an
existing campaign fails loudly), and then simply re-executes every wave:
cells whose results already sit in the content-addressed cache replay as
cache hits without scheduling any work, so a resumed campaign recomputes
*zero* already-journaled cells.  Refinement decisions are pure functions
of spec + deterministic simulation results, so the resumed run plans the
exact waves the uninterrupted run would have — which is what makes the
final ``campaign.json`` bit-identical either way.  As a belt-and-braces
check, a wave whose journaled cell list disagrees with the re-planned
one (code drift between runs) raises instead of silently mixing results.

**Executors.**  The default grid executor groups a wave's cells by
shared trace identity + machine config into
:class:`~repro.exec.plan.GridPlan` batches through
:func:`~repro.exec.scheduler.execute_grid` (worker pool, retries,
quarantine, circuit breaker all apply).  The serve executor instead
drives a running ``repro serve`` endpoint through the blocking client —
campaigns are the serve tier's first real heavy-traffic workload — and
honours 429 backpressure by sleeping the server's own ``Retry-After``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

from repro import obs
from repro.campaign.cells import (
    CampaignCell,
    cell_request_body,
    resolve_cell_config,
    serve_inexpressible,
)
from repro.campaign.planner import (
    CampaignPlan,
    CellSample,
    plan_campaign,
    plan_wave,
)
from repro.campaign.refine import RefineInterval, refine_wave
from repro.campaign.spec import CampaignSpec, spec_fingerprint
from repro.common.errors import CampaignError
from repro.exec.cache import ResultCache
from repro.exec.journal import (
    JOURNAL_SCHEMA_VERSION,
    RunJournal,
    new_run_id,
    read_records,
)
from repro.exec.scheduler import ExecOptions, execute_grid
from repro.sim.config import REDUCED_CONFIG, SimConfig
from repro.sim.results import SimResult

#: Subdirectory of the cache dir holding one directory per campaign.
CAMPAIGNS_DIRNAME = "campaigns"

#: Progress callback: (wave, done, total) per finished cell.
CampaignProgress = Callable[[int, int, int], None]


@dataclass
class CampaignOutcome:
    """Everything one campaign run produced.

    ``results`` maps content keys to simulation results; ``samples``
    (all waves, duplicates included) locate those keys in the swept
    space.  Execution provenance (wall time, cache hits, executed cell
    counts) lives in ``execution`` and is *excluded* from the
    deterministic report — it differs between an interrupted-and-resumed
    run and an uninterrupted one.
    """

    campaign_id: str
    directory: Path
    spec: CampaignSpec
    fingerprint: str
    waves: list[CampaignPlan] = field(default_factory=list)
    samples: list[CellSample] = field(default_factory=list)
    results: dict[str, SimResult] = field(default_factory=dict)
    quarantined_keys: set[str] = field(default_factory=set)
    intervals: list[RefineInterval] = field(default_factory=list)
    status: str = "complete"
    execution: dict[str, Any] = field(default_factory=dict)

    @property
    def cells_total(self) -> int:
        return sum(plan.unique for plan in self.waves)


@dataclass
class CampaignReplayState:
    """What the campaign journal records about a prior run."""

    campaign_id: str | None = None
    fingerprint: str | None = None
    spec_document: dict[str, Any] | None = None
    #: Journaled cell-key lists, by wave index.
    wave_keys: dict[int, list[str]] = field(default_factory=dict)
    completed_keys: set[str] = field(default_factory=set)
    quarantined: int = 0
    status: str | None = None
    records: int = 0
    torn_lines: int = 0
    resumes: int = 0


def campaign_dir(cache_dir: str | Path, campaign_id: str) -> Path:
    return Path(cache_dir) / CAMPAIGNS_DIRNAME / campaign_id


def replay_campaign(path: str | Path) -> CampaignReplayState:
    """Reconstruct campaign state from its journal (torn-tail tolerant)."""
    state = CampaignReplayState()
    records, state.torn_lines = read_records(path)
    for record in records:
        state.records += 1
        kind = record.get("kind")
        if kind == "campaign-started":
            schema = record.get("schema", 0)
            if schema > JOURNAL_SCHEMA_VERSION:
                raise CampaignError(
                    f"campaign journal {path} uses schema {schema}, newer "
                    f"than this build ({JOURNAL_SCHEMA_VERSION})"
                )
            state.campaign_id = record.get("campaign_id")
            state.fingerprint = record.get("fingerprint")
            state.spec_document = record.get("spec")
            state.status = None
        elif kind == "campaign-resumed":
            state.resumes += 1
            state.status = None
        elif kind == "wave-planned":
            state.wave_keys[int(record["wave"])] = list(record["keys"])
        elif kind == "task-done":
            if record.get("key"):
                state.completed_keys.add(record["key"])
        elif kind == "task-quarantined":
            state.quarantined += 1
        elif kind == "run-finished":
            state.status = record.get("status")
    return state


def list_campaigns(cache_dir: str | Path) -> list[dict[str, Any]]:
    """One status row per campaign under the cache dir, newest first."""
    root = Path(cache_dir) / CAMPAIGNS_DIRNAME
    rows: list[dict[str, Any]] = []
    if not root.is_dir():
        return rows
    for entry in sorted(root.iterdir()):
        journal_path = entry / "journal.jsonl"
        if not journal_path.is_file():
            continue
        try:
            state = replay_campaign(journal_path)
        except CampaignError:
            continue
        if state.records == 0:
            continue
        planned = {key for keys in state.wave_keys.values() for key in keys}
        rows.append({
            "campaign_id": state.campaign_id or entry.name,
            "status": state.status or "interrupted",
            "waves": len(state.wave_keys),
            "cells_planned": len(planned),
            "cells_done": len(state.completed_keys & planned),
            "quarantined": state.quarantined,
            "resumes": state.resumes,
            "torn_lines": state.torn_lines,
        })
    rows.reverse()  # run ids sort by timestamp, so newest last -> first
    return rows


def run_campaign(
    spec: CampaignSpec,
    cache_dir: str | Path,
    *,
    campaign_id: str | None = None,
    resume: bool = False,
    jobs: int | None = 1,
    executor: str = "grid",
    serve_host: str = "127.0.0.1",
    serve_port: int = 8321,
    base: SimConfig = REDUCED_CONFIG,
    options: ExecOptions | None = None,
    progress: CampaignProgress | None = None,
) -> CampaignOutcome:
    """Run (or resume) one campaign to completion.

    Args:
        spec: the validated sweep spec.
        cache_dir: root for the result cache, traces, and the campaign
            directory.
        campaign_id: required with ``resume``; auto-generated otherwise.
        resume: re-attach to an existing journal instead of starting
            fresh (fingerprints must match).
        jobs: worker processes for the grid executor.
        executor: ``"grid"`` (in-process/pool) or ``"serve"`` (drive a
            running ``repro serve`` endpoint).
        options: grid execution policy; ``jobs`` overrides its job count.
    """
    if executor not in ("grid", "serve"):
        raise CampaignError(
            f"unknown executor {executor!r}; use 'grid' or 'serve'"
        )
    cache_dir = Path(cache_dir)
    fingerprint = spec_fingerprint(spec)
    started = time.perf_counter()

    if resume:
        if campaign_id is None:
            raise CampaignError("--resume needs the campaign id")
        directory = campaign_dir(cache_dir, campaign_id)
        journal_path = directory / "journal.jsonl"
        if not journal_path.is_file():
            known = ", ".join(
                row["campaign_id"] for row in list_campaigns(cache_dir)
            ) or "none"
            raise CampaignError(
                f"no campaign {campaign_id!r} under {cache_dir} "
                f"(known: {known})"
            )
        prior = replay_campaign(journal_path)
        if prior.fingerprint != fingerprint:
            raise CampaignError(
                f"campaign {campaign_id} was started from a different "
                f"spec (journal fingerprint {prior.fingerprint!r}, this "
                f"spec {fingerprint!r}); refusing to mix results"
            )
    else:
        campaign_id = campaign_id or new_run_id()
        directory = campaign_dir(cache_dir, campaign_id)
        if (directory / "journal.jsonl").exists():
            raise CampaignError(
                f"campaign {campaign_id!r} already exists under "
                f"{cache_dir}; use resume or pick another id"
            )
        prior = CampaignReplayState()

    cache = ResultCache(cache_dir / "results")
    outcome = CampaignOutcome(
        campaign_id=campaign_id,
        directory=directory,
        spec=spec,
        fingerprint=fingerprint,
    )
    journal = RunJournal(directory / "journal.jsonl")
    try:
        if resume:
            journal.append("campaign-resumed", campaign_id=campaign_id)
        else:
            journal.append(
                "campaign-started",
                schema=JOURNAL_SCHEMA_VERSION,
                campaign_id=campaign_id,
                fingerprint=fingerprint,
                spec=spec.to_dict(),
            )
        _run_waves(spec, outcome, cache, cache_dir, journal, prior,
                   jobs=jobs, executor=executor, serve_host=serve_host,
                   serve_port=serve_port, base=base, options=options,
                   progress=progress)
        outcome.status = ("degraded" if outcome.quarantined_keys
                          else "complete")
        journal.run_finished(
            outcome.status,
            cells=outcome.cells_total,
            quarantined=len(outcome.quarantined_keys),
        )
    finally:
        journal.close()
    outcome.execution["wall_seconds"] = time.perf_counter() - started
    outcome.execution["resumed"] = resume
    return outcome


def _run_waves(
    spec: CampaignSpec,
    outcome: CampaignOutcome,
    cache: ResultCache,
    cache_dir: Path,
    journal: RunJournal,
    prior: CampaignReplayState,
    *,
    jobs: int | None,
    executor: str,
    serve_host: str,
    serve_port: int,
    base: SimConfig,
    options: ExecOptions | None,
    progress: CampaignProgress | None,
) -> None:
    known_keys: set[str] = set()
    refine_cells_left = spec.refine.max_cells
    wave = 0
    with obs.phase("campaign.plan"):
        plan = plan_campaign(spec, cache=cache, base=base)

    while True:
        keys = [cell.key(base) for cell in plan.cells]
        journaled = prior.wave_keys.get(wave)
        if journaled is not None:
            if journaled != keys:
                raise CampaignError(
                    f"wave {wave} replans differently than the journal "
                    f"records ({len(journaled)} vs {len(keys)} cell(s) or "
                    "different keys) — the code or base config changed "
                    "since this campaign started; start a fresh campaign"
                )
        else:
            journal.append("wave-planned", wave=wave, keys=keys,
                           cells=[cell.to_dict() for cell in plan.cells],
                           stats=plan.stats())
        outcome.waves.append(plan)
        outcome.samples.extend(plan.samples)
        known_keys.update(keys)

        with obs.phase("campaign.execute"):
            if executor == "grid":
                _execute_wave_grid(plan.cells, keys, outcome, cache,
                                   cache_dir, journal, base,
                                   jobs=jobs, options=options,
                                   wave=wave, progress=progress)
            else:
                _execute_wave_serve(plan.cells, keys, outcome, cache,
                                    journal, serve_host, serve_port,
                                    wave=wave, progress=progress)

        if not spec.refine.enabled or wave + 1 > spec.refine.max_waves:
            break
        workload_count = len(spec.workloads) * len(spec.prefetchers)
        max_points = (refine_cells_left // max(1, workload_count)
                      if refine_cells_left > 0 else 0)
        with obs.phase("campaign.refine"):
            points, intervals = refine_wave(
                spec, outcome.samples, outcome.results, max_points)
        outcome.intervals.extend(intervals)
        if not points:
            break
        wave += 1
        with obs.phase("campaign.plan"):
            plan = plan_wave(spec, points, wave, known_keys,
                             cache=cache, base=base)
        refine_cells_left -= plan.unique
        if not plan.cells:
            break


def _execute_wave_grid(
    cells: list[CampaignCell],
    keys: list[str],
    outcome: CampaignOutcome,
    cache: ResultCache,
    cache_dir: Path,
    journal: RunJournal,
    base: SimConfig,
    *,
    jobs: int | None,
    options: ExecOptions | None,
    wave: int,
    progress: CampaignProgress | None,
) -> None:
    """Run one wave through the grid engine, grouped by shared plans."""
    from repro.exec.plan import GridPlan

    groups: dict[tuple, list[tuple[CampaignCell, str]]] = {}
    for cell, key in zip(cells, keys):
        identity = (cell.scale, cell.budget_fraction, cell.seed,
                    cell.overrides)
        groups.setdefault(identity, []).append((cell, key))

    exec_options = options or ExecOptions()
    exec_options.jobs = jobs
    done = 0
    total = len(cells)
    for identity, members in groups.items():
        scale, budget_fraction, seed, overrides = identity
        config = resolve_cell_config(overrides, base)
        plan = GridPlan(
            [(cell.workload, cell.prefetcher) for cell, _ in members],
            scale, budget_fraction, seed, config,
        )
        key_by_cell = {
            (cell.workload, cell.prefetcher): key for cell, key in members
        }

        def grid_progress(workload: str, prefetcher: str) -> None:
            nonlocal done
            done += 1
            if progress is not None:
                progress(wave, done, total)

        results, telemetry = execute_grid(
            plan,
            options=exec_options,
            cache=cache,
            trace_dir=cache_dir / "traces",
            journal=journal,
            progress=grid_progress,
        )
        for grid_cell, result in results.items():
            outcome.results[key_by_cell[grid_cell]] = result
        for grid_cell, key in key_by_cell.items():
            if grid_cell not in results:
                outcome.quarantined_keys.add(key)
        execution = outcome.execution
        execution["cache_hits"] = (execution.get("cache_hits", 0)
                                   + telemetry.cache_hits)
        execution["sims_run"] = (execution.get("sims_run", 0)
                                 + telemetry.sims_run)
        execution["retries"] = (execution.get("retries", 0)
                                + telemetry.retries)


def _execute_wave_serve(
    cells: list[CampaignCell],
    keys: list[str],
    outcome: CampaignOutcome,
    cache: ResultCache,
    journal: RunJournal,
    host: str,
    port: int,
    *,
    wave: int,
    progress: CampaignProgress | None,
) -> None:
    """Run one wave against a live ``repro serve`` endpoint.

    Cells already present in the local result cache are replayed without
    touching the server; the rest go through the client's
    :class:`~repro.serve.client.RetryPolicy` — exponential backoff with
    full jitter on connection failures, 429, 503, and failover 404s, so
    a campaign pointed at a ``repro cluster`` survives a shard dying
    mid-wave.  Results land in the local cache too, so a later resume —
    or a grid run of the same spec — replays them for free.
    """
    from repro.serve.client import RetryPolicy, ServeClient, ServeClientError
    from repro.serve.protocol import SimulateRequest

    for cell in cells:
        reason = serve_inexpressible(cell)
        if reason is not None:
            raise CampaignError(
                f"cell {cell.coords!r}: {reason}"
            )

    client = ServeClient(host=host, port=port,
                         retry=RetryPolicy(max_attempts=8,
                                           max_deadline=600.0))
    done = 0
    total = len(cells)
    for cell, key in zip(cells, keys):
        cached = cache.get(key)
        if cached is not None:
            outcome.results[key] = cached
            journal.task_done(
                f"sim:{cell.workload}:{cell.prefetcher}", "sim",
                cell=(cell.workload, cell.prefetcher), key=key,
                source="cache",
            )
            done += 1
            if progress is not None:
                progress(wave, done, total)
            continue
        request = SimulateRequest.from_dict(cell_request_body(cell))
        try:
            view = client.run(request)
        except ServeClientError as error:
            raise CampaignError(
                f"server at {host}:{port} failed cell {cell.coords!r} "
                f"after retries: {error}"
            ) from error
        if view.result is not None:
            result = SimResult.from_dict(view.result)
            outcome.results[key] = result
            cache.put(key, result)
            journal.task_done(
                f"sim:{cell.workload}:{cell.prefetcher}", "sim",
                cell=(cell.workload, cell.prefetcher), key=key,
                source="serve",
            )
        else:
            outcome.quarantined_keys.add(key)
            journal.task_quarantined(
                f"sim:{cell.workload}:{cell.prefetcher}", "sim",
                view.error or "server reported failure", 1, "serve",
                cell=(cell.workload, cell.prefetcher),
            )
        done += 1
        if progress is not None:
            progress(wave, done, total)
    if client.retries:
        outcome.execution["retries"] = (
            outcome.execution.get("retries", 0) + client.retries)
