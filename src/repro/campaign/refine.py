"""Adaptive refinement: subdivide axis intervals that matter.

After a wave's results land, the campaign does not need uniformly finer
sampling — it needs resolution exactly where the *answer changes*.  Two
triggers mark an interval ``[a, b]`` between adjacent sampled values on
a refine axis as interesting:

*winner flip*
    The ranking of the two competitor prefetcher families (e.g. CBWS vs
    SMS on the response metric) differs at ``a`` and ``b`` — the
    crossover point the paper's §VI sensitivity study hunts for by hand
    lies somewhere inside.
*gradient*
    The relative change of a competitor's metric across the interval
    exceeds ``gradient_threshold`` — the response surface is steep and
    under-sampled even if the ranking holds.

Each interesting interval contributes its midpoint (arithmetic on
linear axes, geometric on log2 axes, snapped to int for integer axes)
as a new sample point; points falling on an endpoint or inside
``min_gap`` are converged and dropped.  The analysis is a *pure
function* of spec + samples + results — resumed and uninterrupted
campaigns therefore plan byte-identical refinement waves, which is what
keeps ``campaign.json`` bit-identical across a crash.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.campaign.planner import CellSample
from repro.campaign.spec import CampaignSpec, REFINE_METRICS
from repro.harness.registry import parse_prefetcher_name

#: Relative-gradient denominators are floored here so a near-zero
#: baseline metric cannot manufacture an infinite gradient.
_GRADIENT_EPS = 1e-9


@dataclass(frozen=True)
class RefineInterval:
    """One interval selected for subdivision (report + journal record)."""

    axis: str
    workload: str
    context: tuple[tuple[str, Any], ...]
    lo: Any
    hi: Any
    midpoint: Any
    reason: str  # "winner-flip" | "gradient"
    detail: dict[str, Any]

    def to_dict(self) -> dict[str, Any]:
        return {
            "axis": self.axis,
            "workload": self.workload,
            "context": [[name, value] for name, value in self.context],
            "lo": self.lo,
            "hi": self.hi,
            "midpoint": self.midpoint,
            "reason": self.reason,
            "detail": dict(self.detail),
        }


def _metric_value(result: Any, metric: str) -> float:
    return float(getattr(result, metric))


def _axis_midpoint(lo: Any, hi: Any, spacing: str,
                   min_gap: float) -> Any | None:
    """The subdivision point of ``[lo, hi]``, or None when converged."""
    if hi - lo <= min_gap:
        return None
    if spacing == "log2":
        midpoint: Any = math.sqrt(float(lo) * float(hi))
    else:
        midpoint = (float(lo) + float(hi)) / 2.0
    if isinstance(lo, int) and isinstance(hi, int):
        midpoint = int(round(midpoint))
    if midpoint <= lo or midpoint >= hi:
        return None
    return midpoint


def metric_surface(
    samples: Iterable[CellSample],
    results: Mapping[str, Any],
    axis: str,
    metric: str,
) -> dict[tuple[str, tuple[tuple[str, Any], ...]], dict[str, dict[Any, float]]]:
    """``(workload, context) -> competitor base -> {axis value: metric}``.

    The context is every coordinate except the refine axis, so cells
    varying only along ``axis`` land in one group.  Deduplicated
    baseline samples (same key at every axis value) still contribute a
    value per point — the surface is flat, which is exactly right.
    """
    surface: dict[
        tuple[str, tuple[tuple[str, Any], ...]],
        dict[str, dict[Any, float]],
    ] = {}
    for sample in samples:
        value = sample.coord(axis)
        if value is None:
            continue
        result = results.get(sample.key)
        if result is None:
            continue  # quarantined or not yet executed
        context = tuple(
            (name, coordinate) for name, coordinate in sample.coords
            if name != axis
        )
        base, _ = parse_prefetcher_name(sample.prefetcher)
        group = surface.setdefault((sample.workload, context), {})
        group.setdefault(base, {})[value] = _metric_value(result, metric)
    return surface


def refine_wave(
    spec: CampaignSpec,
    samples: Iterable[CellSample],
    results: Mapping[str, Any],
    max_points: int,
) -> tuple[list[dict[str, Any]], list[RefineInterval]]:
    """New axis points (at most ``max_points``) and why each was chosen.

    Deterministic: groups, intervals, and the resulting point list are
    ordered by (axis, workload, context, lo); the same inputs always
    yield the same subdivision.
    """
    policy = spec.refine
    if not policy.enabled or max_points <= 0:
        return [], []
    direction = REFINE_METRICS[policy.metric]
    first, second = policy.competitors
    samples = list(samples)

    intervals: list[RefineInterval] = []
    for axis_name in policy.axes:
        axis = spec.axis(axis_name)
        surface = metric_surface(samples, results, axis_name, policy.metric)
        for (workload, context) in sorted(surface):
            competitors = surface[(workload, context)]
            series_a = competitors.get(first, {})
            series_b = competitors.get(second, {})
            shared = sorted(set(series_a) & set(series_b))
            for lo, hi in zip(shared, shared[1:]):
                interval = _judge_interval(
                    axis_name, axis.spacing, workload, context,
                    lo, hi, series_a, series_b,
                    first, second, direction, policy,
                )
                if interval is not None:
                    intervals.append(interval)

    points: list[dict[str, Any]] = []
    seen: set[tuple[tuple[str, Any], ...]] = set()
    for interval in intervals:
        point = dict(interval.context)
        point[interval.axis] = interval.midpoint
        signature = tuple(sorted(point.items()))
        if signature in seen:
            continue
        seen.add(signature)
        points.append(point)
        if len(points) >= max_points:
            break
    return points, intervals


def _judge_interval(
    axis: str,
    spacing: str,
    workload: str,
    context: tuple[tuple[str, Any], ...],
    lo: Any,
    hi: Any,
    series_a: Mapping[Any, float],
    series_b: Mapping[Any, float],
    first: str,
    second: str,
    direction: int,
    policy: Any,
) -> RefineInterval | None:
    """Whether ``[lo, hi]`` triggers subdivision, and why."""
    midpoint = _axis_midpoint(lo, hi, spacing, policy.min_gap)
    if midpoint is None:
        return None

    def winner(value: Any) -> str | None:
        delta = (series_a[value] - series_b[value]) * direction
        if delta > 0:
            return first
        if delta < 0:
            return second
        return None

    winner_lo, winner_hi = winner(lo), winner(hi)
    if (winner_lo is not None and winner_hi is not None
            and winner_lo != winner_hi):
        return RefineInterval(
            axis=axis, workload=workload, context=context,
            lo=lo, hi=hi, midpoint=midpoint, reason="winner-flip",
            detail={
                "winner_lo": winner_lo,
                "winner_hi": winner_hi,
                first: {str(lo): series_a[lo], str(hi): series_a[hi]},
                second: {str(lo): series_b[lo], str(hi): series_b[hi]},
            },
        )

    threshold = policy.gradient_threshold
    if threshold is not None:
        for name, series in ((first, series_a), (second, series_b)):
            reference = max(abs(series[lo]), _GRADIENT_EPS)
            gradient = abs(series[hi] - series[lo]) / reference
            if gradient > threshold:
                return RefineInterval(
                    axis=axis, workload=workload, context=context,
                    lo=lo, hi=hi, midpoint=midpoint, reason="gradient",
                    detail={
                        "competitor": name,
                        "gradient": gradient,
                        "threshold": threshold,
                        "lo_value": series[lo],
                        "hi_value": series[hi],
                    },
                )
    return None
