"""Spec expansion: axis points -> pruned, deduplicated, keyed cells.

The planner turns a :class:`~repro.campaign.spec.CampaignSpec` into the
concrete work of one wave:

1. **Expansion.**  Zip axes advance in lockstep as one compound axis
   (positioned where the first zip axis was declared); the result then
   crosses with every ``cross`` axis in declaration order.  No axes at
   all yields the single base point, i.e. a plain workload x prefetcher
   grid.
2. **Pruning.**  Each candidate (workload, prefetcher, point) is checked
   against every constraint, evaluated over the baseline parameter
   namespace overlaid with the point (plus ``workload``/``prefetcher``
   strings).  A spec whose constraints prune *everything* raises
   :class:`~repro.common.errors.SpecError` — an empty campaign is a spec
   bug, not a successful no-op.
3. **Dedup.**  Cells are content-addressed by
   :func:`~repro.exec.keys.sim_key`; candidates resolving to a key
   already planned collapse into it.  This is what makes a cbws-geometry
   axis free for the ``sms`` baseline (every point resolves to the same
   simulation) and what makes re-running an overlapping spec compute
   only the delta.
4. **Cache partition.**  When a result cache is supplied, the planner
   reports which unique keys are already present — pure bookkeeping
   (the executor probes the cache again authoritatively), surfaced so
   ``repro campaign status`` can show compute saved before running
   anything.

Every unpruned candidate — including the deduplicated ones — is kept as
a :class:`CellSample` carrying its coordinates and key.  Analysis
(refinement, the sensitivity report) walks samples, not unique cells, so
a baseline collapsed to one simulation still contributes a value at
every point along the axis.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

from repro.campaign.cells import CampaignCell, baseline_params, build_cell
from repro.campaign.spec import Axis, CampaignSpec
from repro.common.errors import SpecError
from repro.exec.cache import ResultCache
from repro.sim.config import REDUCED_CONFIG, SimConfig


@dataclass(frozen=True)
class CellSample:
    """One unpruned candidate: where it sits and which result feeds it."""

    workload: str
    prefetcher: str
    coords: tuple[tuple[str, Any], ...]
    key: str
    wave: int = 0

    def coord(self, axis: str, default: Any = None) -> Any:
        for name, value in self.coords:
            if name == axis:
                return value
        return default


@dataclass
class CampaignPlan:
    """The planned work of one wave.

    Attributes:
        cells: unique cells to execute, in deterministic expansion order.
        samples: every unpruned candidate (including key-duplicates).
        candidates: expansion size before pruning.
        pruned: candidates removed by constraints.
        deduplicated: candidates collapsed into an already planned key.
        cached_keys: unique keys already present in the result cache.
    """

    cells: list[CampaignCell] = field(default_factory=list)
    samples: list[CellSample] = field(default_factory=list)
    candidates: int = 0
    pruned: int = 0
    deduplicated: int = 0
    cached_keys: set[str] = field(default_factory=set)

    @property
    def unique(self) -> int:
        return len(self.cells)

    def stats(self) -> dict[str, int]:
        """Deterministic planning counters for journal and report."""
        return {
            "candidates": self.candidates,
            "pruned": self.pruned,
            "deduplicated": self.deduplicated,
            "unique": self.unique,
        }


def expand_points(axes: Iterable[Axis]) -> Iterator[dict[str, Any]]:
    """Every axis point, in deterministic declaration-major order."""
    slots: list[list[dict[str, Any]]] = []
    zip_slot: list[dict[str, Any]] | None = None
    for axis in axes:
        if axis.combine == "zip":
            if zip_slot is None:
                zip_slot = [{axis.name: value} for value in axis.values]
                slots.append(zip_slot)
            else:
                for point, value in zip(zip_slot, axis.values):
                    point[axis.name] = value
        else:
            slots.append([{axis.name: value} for value in axis.values])
    if not slots:
        yield {}
        return
    for combo in itertools.product(*slots):
        point: dict[str, Any] = {}
        for part in combo:
            point.update(part)
        yield point


def plan_campaign(
    spec: CampaignSpec,
    *,
    cache: ResultCache | None = None,
    base: SimConfig = REDUCED_CONFIG,
) -> CampaignPlan:
    """The initial (wave-0) plan of a campaign."""
    plan = plan_wave(
        spec,
        points=list(expand_points(spec.axes)),
        wave=0,
        known_keys=set(),
        cache=cache,
        base=base,
    )
    if plan.candidates == 0:
        raise SpecError(
            f"spec {spec.name!r} expands to zero candidate cells"
        )
    if not plan.cells:
        raise SpecError(
            f"spec {spec.name!r}: constraints pruned all "
            f"{plan.candidates} candidate cell(s); an empty campaign is "
            "almost certainly a spec bug — relax or remove a constraint"
        )
    return plan


def plan_wave(
    spec: CampaignSpec,
    points: Iterable[Mapping[str, Any]],
    wave: int,
    known_keys: set[str],
    *,
    cache: ResultCache | None = None,
    base: SimConfig = REDUCED_CONFIG,
) -> CampaignPlan:
    """Plan one wave over explicit axis points.

    ``known_keys`` holds keys planned by earlier waves; candidates
    resolving to them are recorded as samples but not re-executed.
    The set is updated in place with this wave's new keys.
    """
    plan = CampaignPlan()
    defaults = {
        **baseline_params(base),
        "scale": spec.scale,
        "budget_fraction": spec.budget_fraction,
        "seed": spec.seed,
    }
    wave_keys: set[str] = set()
    for workload in spec.workloads:
        for prefetcher in spec.prefetchers:
            for point in points:
                plan.candidates += 1
                namespace = {
                    **defaults,
                    "workload": workload,
                    "prefetcher": prefetcher,
                    **point,
                }
                if not all(constraint.evaluate(namespace)
                           for constraint in spec.constraints):
                    plan.pruned += 1
                    continue
                cell = build_cell(
                    workload,
                    prefetcher,
                    point,
                    scale=spec.scale,
                    budget_fraction=spec.budget_fraction,
                    seed=spec.seed,
                    wave=wave,
                    base=base,
                )
                key = cell.key(base)
                plan.samples.append(CellSample(
                    workload=cell.workload,
                    prefetcher=cell.prefetcher,
                    coords=cell.coords,
                    key=key,
                    wave=wave,
                ))
                if key in known_keys or key in wave_keys:
                    plan.deduplicated += 1
                    continue
                wave_keys.add(key)
                plan.cells.append(cell)
    known_keys.update(wave_keys)
    if cache is not None:
        plan.cached_keys = {
            cell.key(base) for cell in plan.cells
            if cache.contains(cell.key(base))
        }
    return plan
