"""``repro.campaign``: journaled, resumable parameter-space sweeps.

The paper's evaluation is one fixed 30x7 grid plus a hand-picked
sensitivity study (Section VI); this package generalizes both into a
declarative *campaign*: a versioned TOML/JSON sweep spec expands into
content-addressed cells over the whole design space (CBWS geometry,
cache sizes and shapes, core and prefetch-path parameters), executes as
a crash-safe journaled run through the :mod:`repro.exec` grid engine (or
a running ``repro serve`` endpoint), adaptively refines axis intervals
where the competitor ranking flips, and emits a schema-versioned
``campaign.json`` plus a static HTML sensitivity report.

Module map:

``spec``     the sweep-spec language (axes, combinators, constraints)
``cells``    campaign cells: parameter application + config resolution
``planner``  spec -> unique content-addressed cells, cache dedup
``refine``   winner-flip / gradient interval subdivision
``runner``   journaled wave execution, resume, grid + serve backends
``report``   campaign.json + campaign.html
``bench``    planner/journal overhead benchmark (BENCH_campaign.json)
"""

from repro.campaign.cells import CampaignCell, resolve_cell_config
from repro.campaign.planner import CampaignPlan, plan_campaign
from repro.campaign.runner import CampaignOutcome, run_campaign
from repro.campaign.spec import Axis, CampaignSpec, load_spec, parse_spec

__all__ = [
    "Axis",
    "CampaignCell",
    "CampaignOutcome",
    "CampaignPlan",
    "CampaignSpec",
    "load_spec",
    "parse_spec",
    "plan_campaign",
    "resolve_cell_config",
    "run_campaign",
]
