"""Plain-text rendering of experiment results.

The paper's figures are bar charts and curves; these helpers render the
same data as aligned ASCII tables so every bench target can print the
rows it reproduces.
"""

from __future__ import annotations

import math
import time
from typing import Mapping, Sequence

#: How a cell the execution engine could not produce is rendered.  The
#: scheduler marks such cells with NaN metrics (see
#: :meth:`repro.sim.results.SimResult.degraded_cell`); every table they
#: reach prints this marker instead of a misleading number.
DEGRADED_MARKER = "DEGRADED"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render rows as an aligned table.

    Floats are formatted with ``float_format``; NaN floats (degraded
    grid cells) render as :data:`DEGRADED_MARKER`; everything else with
    ``str``.  The first column is left-aligned, the rest right-aligned.
    """
    rendered: list[list[str]] = []
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float) and math.isnan(value):
                cells.append(DEGRADED_MARKER)
            elif isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)

    widths = [len(str(header)) for header in headers]
    for cells in rendered:
        for index, cell in enumerate(cells):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        parts = [str(cells[0]).ljust(widths[0])]
        parts.extend(
            str(cell).rjust(width)
            for cell, width in zip(cells[1:], widths[1:])
        )
        return "  ".join(parts)

    out: list[str] = []
    if title:
        out.append(title)
    out.append(line([str(h) for h in headers]))
    out.append("  ".join("-" * width for width in widths))
    out.extend(line(cells) for cells in rendered)
    return "\n".join(out)


def format_percent_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Like :func:`format_table` but floats render as percentages."""
    return format_table(headers, rows, title=title, float_format="{:6.1%}")


#: exec-stats rows: (summary key, human label, format).
_EXEC_STAT_ROWS = [
    ("jobs", "worker processes", "{:d}"),
    ("tasks_total", "tasks scheduled", "{:d}"),
    ("tasks_queued", "tasks queued", "{:d}"),
    ("tasks_running", "tasks running", "{:d}"),
    ("tasks_done", "tasks done", "{:d}"),
    ("cache_hits", "result-cache hits", "{:d}"),
    ("cache_misses", "result-cache misses", "{:d}"),
    ("traces_built", "traces built", "{:d}"),
    ("trace_disk_hits", "trace disk hits", "{:d}"),
    ("sims_run", "simulations run", "{:d}"),
    ("retries", "retries", "{:d}"),
    ("timeouts", "timeouts", "{:d}"),
    ("worker_crashes", "worker crashes", "{:d}"),
    ("corrupt_traces", "corrupt traces rebuilt", "{:d}"),
    ("corrupt_results", "corrupt results rebuilt", "{:d}"),
    ("resumed_cells", "cells resumed from journal", "{:d}"),
    ("degraded", "workloads degraded", "{:d}"),
    ("quarantined", "tasks quarantined", "{:d}"),
    ("mean_task_seconds", "mean task seconds", "{:.3f}"),
    ("eta_seconds", "eta seconds", "{:.1f}"),
    ("wall_seconds", "wall seconds", "{:.2f}"),
]


def format_exec_stats(summary: Mapping[str, object]) -> str:
    """Render an execution-telemetry summary (see ``repro exec-stats``).

    Accepts the mapping produced by
    :meth:`repro.exec.telemetry.ExecTelemetry.summary`; unknown keys are
    ignored so older snapshots still render.
    """
    rows: list[list[object]] = []
    for key, label, fmt in _EXEC_STAT_ROWS:
        if key in summary:
            rows.append([label, fmt.format(summary[key])])
    for name in summary.get("degraded_workloads") or []:
        rows.append(["degraded workload", str(name)])
    quarantined = summary.get("quarantined_tasks") or []
    for name in quarantined:
        rows.append(["quarantined task", str(name)])
    return format_table(["statistic", "value"], rows,
                        title="Grid execution statistics")


def format_run_list(summaries: Sequence[object]) -> str:
    """Render ``repro runs list`` rows.

    Accepts :class:`repro.exec.journal.RunSummary` objects (duck-typed
    so older snapshots and tests can pass simple namespaces).
    """
    rows: list[list[object]] = []
    for summary in summaries:
        started = getattr(summary, "started_at", None)
        stamp = (
            time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(started))
            if started else "-"
        )
        rows.append([
            getattr(summary, "run_id", "?"),
            getattr(summary, "status", "?"),
            f"{getattr(summary, 'cells_done', 0)}"
            f"/{getattr(summary, 'cells_total', 0)}",
            getattr(summary, "degraded", 0),
            getattr(summary, "quarantined", 0),
            getattr(summary, "torn_lines", 0),
            stamp,
        ])
    return format_table(
        ["run", "status", "cells", "degraded", "quarantined", "torn",
         "started"],
        rows,
        title="Journaled runs",
    )


def format_degraded_cells(cells: Sequence[tuple[str, str]]) -> str:
    """One-line-per-cell listing of the grid's explicit holes."""
    return "\n".join(
        f"  DEGRADED cell: workload={workload} prefetcher={prefetcher}"
        for workload, prefetcher in cells
    )


def format_mapping(
    mapping: Mapping[str, float],
    title: str | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render a flat name -> value mapping as a two-column table."""
    rows = [[key, value] for key, value in mapping.items()]
    return format_table(["name", "value"], rows, title=title,
                        float_format=float_format)
