"""Plain-text rendering of experiment results.

The paper's figures are bar charts and curves; these helpers render the
same data as aligned ASCII tables so every bench target can print the
rows it reproduces.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render rows as an aligned table.

    Floats are formatted with ``float_format``; everything else with
    ``str``.  The first column is left-aligned, the rest right-aligned.
    """
    rendered: list[list[str]] = []
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)

    widths = [len(str(header)) for header in headers]
    for cells in rendered:
        for index, cell in enumerate(cells):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        parts = [str(cells[0]).ljust(widths[0])]
        parts.extend(
            str(cell).rjust(width)
            for cell, width in zip(cells[1:], widths[1:])
        )
        return "  ".join(parts)

    out: list[str] = []
    if title:
        out.append(title)
    out.append(line([str(h) for h in headers]))
    out.append("  ".join("-" * width for width in widths))
    out.extend(line(cells) for cells in rendered)
    return "\n".join(out)


def format_percent_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Like :func:`format_table` but floats render as percentages."""
    return format_table(headers, rows, title=title, float_format="{:6.1%}")


def format_mapping(
    mapping: Mapping[str, float],
    title: str | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render a flat name -> value mapping as a two-column table."""
    rows = [[key, value] for key, value in mapping.items()]
    return format_table(["name", "value"], rows, title=title,
                        float_format=float_format)
