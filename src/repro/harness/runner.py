"""Grid runner: (workload x prefetcher) simulations with trace caching.

Traces are expensive to generate (the IR interpreter executes every
iteration over real data) but identical for every prefetcher, so the
runner builds each workload's trace once and reuses it across the grid.
A bounded process-wide in-memory LRU covers repeated experiment calls;
an optional on-disk cache (the binary trace format) survives processes.

Grid execution itself delegates to :mod:`repro.exec` whenever
parallelism (``jobs != 1``) or a result cache is configured: the grid
becomes a task DAG on a multiprocessing pool with content-addressed
result caching and fault-tolerant workers.  With ``jobs=1`` and no
result cache the historical in-process loop runs unchanged.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Sequence

from repro.common.errors import ExecError
from repro.metrics.aggregate import ResultGrid
from repro.prefetchers.base import Prefetcher
from repro.sim.config import REDUCED_CONFIG, SimConfig
from repro.sim.engine import simulate
from repro.sim.results import SimResult
from repro.trace.io import try_read_trace, write_trace
from repro.trace.stream import Trace
from repro.workloads.base import build_trace, get_workload

#: Most-recently-used traces, bounded: a long sweep over many scales
#: must not retain every trace it ever built.
_MEMORY_CACHE: "OrderedDict[tuple[str, float, float, int], Trace]" = (
    OrderedDict()
)
_MEMORY_CACHE_CAPACITY = 8


def _remember_trace(
    key: tuple[str, float, float, int], trace: Trace
) -> None:
    _MEMORY_CACHE[key] = trace
    _MEMORY_CACHE.move_to_end(key)
    while len(_MEMORY_CACHE) > _MEMORY_CACHE_CAPACITY:
        _MEMORY_CACHE.popitem(last=False)


class GridRunner:
    """Runs simulation grids against one machine configuration.

    Args:
        config: machine model (defaults to the reduced Table II scale).
        scale: workload scale factor passed to every kernel factory.
        budget_fraction: multiplies each workload's default access budget;
            tests use small fractions for fast, structurally identical
            runs.
        seed: workload data seed.
        cache_dir: optional directory for on-disk trace caching (also
            the default home of the result cache and execution stats).
        jobs: default worker processes for :meth:`run_grid`; ``1`` (the
            default) runs in-process, ``None`` uses ``os.cpu_count()``.
        result_cache: the content-addressed simulation-result cache.
            ``None`` (default) enables it under ``cache_dir/results``
            when ``cache_dir`` is set; ``False`` disables it; a path
            uses that directory directly.
        exec_options: base :class:`repro.exec.ExecOptions` (timeout,
            retry policy) for delegated grid runs; ``jobs`` above wins.
    """

    def __init__(
        self,
        config: SimConfig = REDUCED_CONFIG,
        scale: float = 1.0,
        budget_fraction: float = 1.0,
        seed: int = 0,
        cache_dir: str | Path | None = None,
        jobs: int | None = 1,
        result_cache: bool | str | Path | None = None,
        exec_options: "object | None" = None,
    ) -> None:
        self.config = config
        self.scale = scale
        self.budget_fraction = budget_fraction
        self.seed = seed
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.jobs = jobs
        self.exec_options = exec_options
        if result_cache is False:
            self._result_cache_root: Path | None = None
        elif result_cache in (None, True):
            self._result_cache_root = (
                self.cache_dir / "results"
                if self.cache_dir is not None else None
            )
        else:
            self._result_cache_root = Path(result_cache)
        # Simulations are deterministic, so registry-built grid cells are
        # memoized: experiments sharing a runner reuse each other's cells.
        self._results: dict[tuple[str, str], SimResult] = {}

    # -- traces ------------------------------------------------------------

    def trace(self, workload: str) -> Trace:
        """The (cached) annotated trace for one workload."""
        key = (workload, self.scale, self.budget_fraction, self.seed)
        cached = _MEMORY_CACHE.get(key)
        if cached is not None:
            _MEMORY_CACHE.move_to_end(key)
            return cached

        disk_path = self._disk_path(workload)
        if disk_path is not None and disk_path.exists():
            trace = try_read_trace(disk_path)
            if trace is not None:
                _remember_trace(key, trace)
                return trace
            # A corrupt or truncated cache entry must not sink the whole
            # experiment: report it, drop it, rebuild below.
            from repro.exec.telemetry import count_corrupt_trace

            count_corrupt_trace(disk_path)
            disk_path.unlink(missing_ok=True)

        spec = get_workload(workload)
        budget = max(
            1000, int(spec.default_accesses * self.scale * self.budget_fraction)
        )
        trace = build_trace(
            spec, scale=self.scale, max_accesses=budget, seed=self.seed
        )
        _remember_trace(key, trace)
        if disk_path is not None:
            disk_path.parent.mkdir(parents=True, exist_ok=True)
            write_trace(trace, disk_path)
        return trace

    def _disk_path(self, workload: str) -> Path | None:
        if self.cache_dir is None:
            return None
        from repro.exec.keys import trace_filename

        # The digest-based name is stable across processes and never
        # collides: raw float reprs (s0.30000000000000004) used to
        # produce both unstable and ambiguous names.
        return self.cache_dir / trace_filename(
            workload, self.scale, self.budget_fraction, self.seed
        )

    # -- simulation ---------------------------------------------------------

    def run_one(
        self,
        workload: str,
        prefetcher_name: str,
        prefetcher: Prefetcher | None = None,
    ) -> SimResult:
        """Simulate one grid cell with a fresh prefetcher instance."""
        from repro.harness.registry import make_prefetcher

        if prefetcher is None:
            key = (workload, prefetcher_name)
            cached = self._results.get(key)
            if cached is not None:
                return cached
            result = simulate(
                self.config, make_prefetcher(prefetcher_name),
                self.trace(workload),
            )
            result.prefetcher = prefetcher_name
            self._results[key] = result
            return result

        result = simulate(self.config, prefetcher, self.trace(workload))
        result.prefetcher = prefetcher_name
        return result

    def run_grid(
        self,
        workloads: Sequence[str],
        prefetchers: Sequence[str],
        progress: Callable[[str, str], None] | None = None,
        jobs: int | None = None,
    ) -> ResultGrid:
        """Simulate the full (workload x prefetcher) grid.

        Args:
            jobs: worker processes for this run, overriding the runner's
                default; ``1`` runs in-process, ``None`` defers to the
                runner (whose own ``None`` means ``os.cpu_count()``).

        Cells are deterministic, so any ``jobs`` value yields an
        identical grid; parallel runs and cache replays differ only in
        wall time.
        """
        effective_jobs = jobs if jobs is not None else self.jobs
        if effective_jobs is None:
            effective_jobs = os.cpu_count() or 1
        if effective_jobs <= 1 and self._result_cache_root is None:
            results: list[SimResult] = []
            for workload in workloads:
                for name in prefetchers:
                    if progress is not None:
                        progress(workload, name)
                    results.append(self.run_one(workload, name))
            return ResultGrid(results)
        return self._run_grid_exec(workloads, prefetchers, effective_jobs,
                                   progress)

    def _run_grid_exec(
        self,
        workloads: Sequence[str],
        prefetchers: Sequence[str],
        jobs: int,
        progress: Callable[[str, str], None] | None,
    ) -> ResultGrid:
        from repro.exec import ExecOptions, GridPlan, ResultCache
        from repro.exec.scheduler import execute_grid, quarantine_report

        cells = [(w, p) for w in workloads for p in prefetchers]
        todo = [cell for cell in cells if cell not in self._results]
        if todo:
            base = self.exec_options or ExecOptions()
            options = ExecOptions(
                jobs=jobs,
                timeout=base.timeout,
                max_retries=base.max_retries,
                retry_backoff=base.retry_backoff,
            )
            plan = GridPlan(todo, self.scale, self.budget_fraction,
                            self.seed, self.config)
            cache = (ResultCache(self._result_cache_root)
                     if self._result_cache_root is not None else None)
            executed, telemetry = execute_grid(
                plan,
                options=options,
                cache=cache,
                trace_dir=self.cache_dir,
                trace_provider=self.trace if jobs <= 1 else None,
                progress=progress,
                stats_path=self._stats_path(),
            )
            if telemetry.quarantined:
                raise ExecError(
                    "grid execution quarantined "
                    f"{len(telemetry.quarantined)} task(s):\n"
                    + quarantine_report(telemetry)
                )
            self._results.update(executed)
        return ResultGrid(self._results[cell] for cell in cells)

    def _stats_path(self) -> Path | None:
        if self.cache_dir is not None:
            return self.cache_dir / "exec-stats.json"
        if self._result_cache_root is not None:
            return self._result_cache_root / "exec-stats.json"
        return None


def run_grid(
    workloads: Sequence[str],
    prefetchers: Sequence[str],
    config: SimConfig = REDUCED_CONFIG,
    scale: float = 1.0,
    budget_fraction: float = 1.0,
    seed: int = 0,
    jobs: int | None = 1,
    cache_dir: str | Path | None = None,
) -> ResultGrid:
    """One-shot convenience wrapper around :class:`GridRunner`."""
    runner = GridRunner(
        config=config,
        scale=scale,
        budget_fraction=budget_fraction,
        seed=seed,
        jobs=jobs,
        cache_dir=cache_dir,
    )
    return runner.run_grid(workloads, prefetchers)


def clear_trace_cache() -> None:
    """Drop the in-memory trace cache (tests use this for isolation)."""
    _MEMORY_CACHE.clear()
