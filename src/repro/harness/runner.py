"""Grid runner: (workload x prefetcher) simulations with trace caching.

Traces are expensive to generate (the IR interpreter executes every
iteration over real data) but identical for every prefetcher, so the
runner builds each workload's trace once and reuses it across the grid.
A process-wide in-memory cache covers repeated experiment calls; an
optional on-disk cache (the binary trace format) survives processes.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Sequence

from repro.metrics.aggregate import ResultGrid
from repro.prefetchers.base import Prefetcher
from repro.sim.config import REDUCED_CONFIG, SimConfig
from repro.sim.engine import simulate
from repro.sim.results import SimResult
from repro.trace.io import read_trace, write_trace
from repro.trace.stream import Trace
from repro.workloads.base import build_trace, get_workload

_MEMORY_CACHE: dict[tuple[str, float, float, int], Trace] = {}


class GridRunner:
    """Runs simulation grids against one machine configuration.

    Args:
        config: machine model (defaults to the reduced Table II scale).
        scale: workload scale factor passed to every kernel factory.
        budget_fraction: multiplies each workload's default access budget;
            tests use small fractions for fast, structurally identical
            runs.
        seed: workload data seed.
        cache_dir: optional directory for on-disk trace caching.
    """

    def __init__(
        self,
        config: SimConfig = REDUCED_CONFIG,
        scale: float = 1.0,
        budget_fraction: float = 1.0,
        seed: int = 0,
        cache_dir: str | Path | None = None,
    ) -> None:
        self.config = config
        self.scale = scale
        self.budget_fraction = budget_fraction
        self.seed = seed
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        # Simulations are deterministic, so registry-built grid cells are
        # memoized: experiments sharing a runner reuse each other's cells.
        self._results: dict[tuple[str, str], SimResult] = {}

    # -- traces ------------------------------------------------------------

    def trace(self, workload: str) -> Trace:
        """The (cached) annotated trace for one workload."""
        key = (workload, self.scale, self.budget_fraction, self.seed)
        cached = _MEMORY_CACHE.get(key)
        if cached is not None:
            return cached

        disk_path = self._disk_path(workload)
        if disk_path is not None and disk_path.exists():
            trace = read_trace(disk_path)
            _MEMORY_CACHE[key] = trace
            return trace

        spec = get_workload(workload)
        budget = max(
            1000, int(spec.default_accesses * self.scale * self.budget_fraction)
        )
        trace = build_trace(
            spec, scale=self.scale, max_accesses=budget, seed=self.seed
        )
        _MEMORY_CACHE[key] = trace
        if disk_path is not None:
            disk_path.parent.mkdir(parents=True, exist_ok=True)
            write_trace(trace, disk_path)
        return trace

    def _disk_path(self, workload: str) -> Path | None:
        if self.cache_dir is None:
            return None
        safe = workload.replace("/", "_")
        return self.cache_dir / (
            f"{safe}-s{self.scale}-b{self.budget_fraction}-r{self.seed}.trace"
        )

    # -- simulation ---------------------------------------------------------

    def run_one(
        self,
        workload: str,
        prefetcher_name: str,
        prefetcher: Prefetcher | None = None,
    ) -> SimResult:
        """Simulate one grid cell with a fresh prefetcher instance."""
        from repro.harness.registry import make_prefetcher

        if prefetcher is None:
            key = (workload, prefetcher_name)
            cached = self._results.get(key)
            if cached is not None:
                return cached
            result = simulate(
                self.config, make_prefetcher(prefetcher_name),
                self.trace(workload),
            )
            result.prefetcher = prefetcher_name
            self._results[key] = result
            return result

        result = simulate(self.config, prefetcher, self.trace(workload))
        result.prefetcher = prefetcher_name
        return result

    def run_grid(
        self,
        workloads: Sequence[str],
        prefetchers: Sequence[str],
        progress: Callable[[str, str], None] | None = None,
    ) -> ResultGrid:
        """Simulate the full (workload x prefetcher) grid."""
        results: list[SimResult] = []
        for workload in workloads:
            for name in prefetchers:
                if progress is not None:
                    progress(workload, name)
                results.append(self.run_one(workload, name))
        return ResultGrid(results)


def run_grid(
    workloads: Sequence[str],
    prefetchers: Sequence[str],
    config: SimConfig = REDUCED_CONFIG,
    scale: float = 1.0,
    budget_fraction: float = 1.0,
    seed: int = 0,
) -> ResultGrid:
    """One-shot convenience wrapper around :class:`GridRunner`."""
    runner = GridRunner(
        config=config,
        scale=scale,
        budget_fraction=budget_fraction,
        seed=seed,
    )
    return runner.run_grid(workloads, prefetchers)


def clear_trace_cache() -> None:
    """Drop the in-memory trace cache (tests use this for isolation)."""
    _MEMORY_CACHE.clear()
