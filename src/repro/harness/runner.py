"""Grid runner: (workload x prefetcher) simulations with trace caching.

Traces are expensive to generate (the IR interpreter executes every
iteration over real data) but identical for every prefetcher, so the
runner builds each workload's trace once and reuses it across the grid.
A bounded process-wide in-memory LRU covers repeated experiment calls;
an optional on-disk cache (the binary trace format) survives processes.

Grid execution itself delegates to :mod:`repro.exec` whenever
parallelism (``jobs != 1``) or a result cache is configured: the grid
becomes a task DAG on a multiprocessing pool with content-addressed
result caching and fault-tolerant workers.  With ``jobs=1`` and no
result cache the historical in-process loop runs unchanged.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Sequence

from repro.common.errors import ExecError
from repro.metrics.aggregate import ResultGrid
from repro.prefetchers.base import Prefetcher
from repro.sim.config import REDUCED_CONFIG, SimConfig
from repro.sim.engine import simulate
from repro.sim.results import SimResult
from repro.trace.io import try_read_trace, write_trace
from repro.trace.stream import Trace
from repro.workloads.base import build_trace, get_workload

#: Most-recently-used traces, bounded: a long sweep over many scales
#: must not retain every trace it ever built.
_MEMORY_CACHE: "OrderedDict[tuple[str, float, float, int], Trace]" = (
    OrderedDict()
)
_MEMORY_CACHE_CAPACITY = 8


def _remember_trace(
    key: tuple[str, float, float, int], trace: Trace
) -> None:
    _MEMORY_CACHE[key] = trace
    _MEMORY_CACHE.move_to_end(key)
    while len(_MEMORY_CACHE) > _MEMORY_CACHE_CAPACITY:
        _MEMORY_CACHE.popitem(last=False)


class GridRunner:
    """Runs simulation grids against one machine configuration.

    Args:
        config: machine model (defaults to the reduced Table II scale).
        scale: workload scale factor passed to every kernel factory.
        budget_fraction: multiplies each workload's default access budget;
            tests use small fractions for fast, structurally identical
            runs.
        seed: workload data seed.
        cache_dir: optional directory for on-disk trace caching (also
            the default home of the result cache and execution stats).
        jobs: default worker processes for :meth:`run_grid`; ``1`` (the
            default) runs in-process, ``None`` uses ``os.cpu_count()``.
        result_cache: the content-addressed simulation-result cache.
            ``None`` (default) enables it under ``cache_dir/results``
            when ``cache_dir`` is set; ``False`` disables it; a path
            uses that directory directly.
        exec_options: base :class:`repro.exec.ExecOptions` (timeout,
            retry policy, breaker threshold) for delegated grid runs;
            ``jobs`` above wins.
        engine: simulation engine tier for :meth:`run_grid` —
            ``"auto"`` (default) batches a workload's cells when enough
            of them share its trace, ``"fast"`` / ``"reference"`` /
            ``"batch"`` force a tier (forcing a non-default tier always
            routes through the execution engine, even in-process).
        run_id: explicit identifier for the write-ahead run journal
            (default: a fresh timestamped id per grid run).  Journals
            live under ``cache_dir/runs/<run_id>/journal.jsonl`` and are
            only written when a cache directory exists.
        resume: id of a journaled prior run to resume — its completed
            cells replay through the result cache and its quarantine /
            degradation decisions carry forward.  The resumed journal's
            fingerprint must match this runner's grid request.
        strict: raise :class:`ExecError` when any cell is quarantined
            (the historical behaviour).  The default is lenient: the
            grid completes with explicit DEGRADED holes.
    """

    def __init__(
        self,
        config: SimConfig = REDUCED_CONFIG,
        scale: float = 1.0,
        budget_fraction: float = 1.0,
        seed: int = 0,
        cache_dir: str | Path | None = None,
        jobs: int | None = 1,
        result_cache: bool | str | Path | None = None,
        exec_options: "object | None" = None,
        run_id: str | None = None,
        resume: str | None = None,
        strict: bool = False,
        engine: str = "auto",
    ) -> None:
        from repro.exec.scheduler import ENGINE_TIERS

        if engine not in ENGINE_TIERS:
            raise ExecError(
                f"unknown engine tier {engine!r}; expected one of "
                f"{', '.join(ENGINE_TIERS)}"
            )
        self.config = config
        self.scale = scale
        self.budget_fraction = budget_fraction
        self.seed = seed
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.jobs = jobs
        self.engine = engine
        self.exec_options = exec_options
        self.run_id = run_id
        self.resume = resume
        self.strict = strict
        #: id of the most recent journaled grid run (for reporting).
        self.last_run_id: str | None = None
        self._grid_runs = 0
        if result_cache is False:
            self._result_cache_root: Path | None = None
        elif result_cache in (None, True):
            self._result_cache_root = (
                self.cache_dir / "results"
                if self.cache_dir is not None else None
            )
        else:
            self._result_cache_root = Path(result_cache)
        # Simulations are deterministic, so registry-built grid cells are
        # memoized: experiments sharing a runner reuse each other's cells.
        self._results: dict[tuple[str, str], SimResult] = {}

    # -- traces ------------------------------------------------------------

    def trace(self, workload: str) -> Trace:
        """The (cached) annotated trace for one workload."""
        key = (workload, self.scale, self.budget_fraction, self.seed)
        cached = _MEMORY_CACHE.get(key)
        if cached is not None:
            _MEMORY_CACHE.move_to_end(key)
            return cached

        disk_path = self._disk_path(workload)
        if disk_path is not None and disk_path.exists():
            trace = try_read_trace(disk_path)
            if trace is not None:
                _remember_trace(key, trace)
                return trace
            # A corrupt or truncated cache entry must not sink the whole
            # experiment: report it, drop it, rebuild below.
            from repro.exec.telemetry import count_corrupt_trace

            count_corrupt_trace(disk_path)
            disk_path.unlink(missing_ok=True)

        spec = get_workload(workload)
        budget = max(
            1000, int(spec.default_accesses * self.scale * self.budget_fraction)
        )
        trace = build_trace(
            spec, scale=self.scale, max_accesses=budget, seed=self.seed
        )
        _remember_trace(key, trace)
        if disk_path is not None:
            disk_path.parent.mkdir(parents=True, exist_ok=True)
            write_trace(trace, disk_path)
        return trace

    def _disk_path(self, workload: str) -> Path | None:
        if self.cache_dir is None:
            return None
        from repro.exec.keys import trace_filename

        # The digest-based name is stable across processes and never
        # collides: raw float reprs (s0.30000000000000004) used to
        # produce both unstable and ambiguous names.
        return self.cache_dir / trace_filename(
            workload, self.scale, self.budget_fraction, self.seed
        )

    # -- simulation ---------------------------------------------------------

    def run_one(
        self,
        workload: str,
        prefetcher_name: str,
        prefetcher: Prefetcher | None = None,
    ) -> SimResult:
        """Simulate one grid cell with a fresh prefetcher instance."""
        from repro.harness.registry import make_prefetcher

        if prefetcher is None:
            key = (workload, prefetcher_name)
            cached = self._results.get(key)
            if cached is not None:
                return cached
            result = simulate(
                self.config, make_prefetcher(prefetcher_name),
                self.trace(workload),
            )
            result.prefetcher = prefetcher_name
            self._results[key] = result
            return result

        result = simulate(self.config, prefetcher, self.trace(workload))
        result.prefetcher = prefetcher_name
        return result

    def run_grid(
        self,
        workloads: Sequence[str],
        prefetchers: Sequence[str],
        progress: Callable[[str, str], None] | None = None,
        jobs: int | None = None,
    ) -> ResultGrid:
        """Simulate the full (workload x prefetcher) grid.

        Args:
            jobs: worker processes for this run, overriding the runner's
                default; ``1`` runs in-process, ``None`` defers to the
                runner (whose own ``None`` means ``os.cpu_count()``).

        Cells are deterministic, so any ``jobs`` value yields an
        identical grid; parallel runs and cache replays differ only in
        wall time.
        """
        effective_jobs = jobs if jobs is not None else self.jobs
        if effective_jobs is None:
            effective_jobs = os.cpu_count() or 1
        if (effective_jobs <= 1 and self._result_cache_root is None
                and self.engine in ("auto", "fast")):
            # The historical in-process loop; forcing "batch" or
            # "reference" routes through the execution engine instead,
            # which owns tier selection.
            results: list[SimResult] = []
            for workload in workloads:
                for name in prefetchers:
                    if progress is not None:
                        progress(workload, name)
                    results.append(self.run_one(workload, name))
            return ResultGrid(results)
        return self._run_grid_exec(workloads, prefetchers, effective_jobs,
                                   progress)

    def _run_grid_exec(
        self,
        workloads: Sequence[str],
        prefetchers: Sequence[str],
        jobs: int,
        progress: Callable[[str, str], None] | None,
    ) -> ResultGrid:
        from repro.exec import ExecOptions, GridPlan, ResultCache
        from repro.exec import journal as journal_module
        from repro.exec.scheduler import execute_grid, quarantine_report

        cells = [(w, p) for w in workloads for p in prefetchers]
        todo = [cell for cell in cells if cell not in self._results]
        if todo:
            base = self.exec_options or ExecOptions()
            options = ExecOptions(
                jobs=jobs,
                timeout=base.timeout,
                max_retries=base.max_retries,
                retry_backoff=base.retry_backoff,
                breaker_threshold=base.breaker_threshold,
                engine=self.engine,
                batch_threshold=base.batch_threshold,
            )
            plan = GridPlan(todo, self.scale, self.budget_fraction,
                            self.seed, self.config)
            cache = (ResultCache(self._result_cache_root)
                     if self._result_cache_root is not None else None)
            journal, carried, run_id = self._open_journal(cells, jobs)
            try:
                executed, telemetry = execute_grid(
                    plan,
                    options=options,
                    cache=cache,
                    trace_dir=self.cache_dir,
                    trace_provider=self.trace if jobs <= 1 else None,
                    progress=progress,
                    stats_path=self._stats_path(),
                    journal=journal,
                    carried=carried,
                )
                self._results.update(executed)
                missing = [c for c in cells if c not in self._results]
                if self.strict and telemetry.quarantined:
                    if journal is not None:
                        journal.run_finished(
                            "failed",
                            cells_done=len(executed),
                            quarantined=len(telemetry.quarantined),
                        )
                    raise ExecError(
                        "grid execution quarantined "
                        f"{len(telemetry.quarantined)} task(s):\n"
                        + quarantine_report(telemetry)
                    )
                if journal is not None:
                    journal.run_finished(
                        "degraded" if missing else "complete",
                        cells_done=len(executed),
                        quarantined=len(telemetry.quarantined),
                    )
            finally:
                if journal is not None:
                    journal.close()
            self.last_run_id = run_id
        missing = [cell for cell in cells if cell not in self._results]
        return ResultGrid(
            (self._results[cell] for cell in cells
             if cell in self._results),
            degraded=missing,
        )

    def _open_journal(
        self, cells: list[tuple[str, str]], jobs: int
    ) -> tuple["object | None", "object | None", str | None]:
        """(journal, carried replay, run id) for one delegated grid run.

        Journals need a durable home: without a cache directory (or a
        result-cache root to sit next to) no journal is written and
        ``resume`` is an error.  The fingerprint check makes resuming a
        journal into a *different* grid request fail loudly instead of
        silently mixing results.
        """
        from repro.exec.journal import (
            RunJournal,
            load_run,
            new_run_id,
            run_fingerprint,
        )

        runs_root = self._runs_root()
        fingerprint = run_fingerprint(
            cells, self.scale, self.budget_fraction, self.seed, self.config
        )
        self._grid_runs += 1
        if self.resume is not None and self._grid_runs == 1:
            if runs_root is None:
                raise ExecError(
                    "resuming a run requires a cache directory to hold "
                    "the run journal"
                )
            carried = load_run(runs_root, self.resume)
            if carried.fingerprint != fingerprint:
                from repro.common.errors import JournalError

                raise JournalError(
                    f"run {self.resume!r} was journaled for a different "
                    f"grid (fingerprint {carried.fingerprint} != "
                    f"{fingerprint}); refusing to mix results"
                )
            run_id = carried.run_id or self.resume
            journal = RunJournal.for_run(runs_root, run_id)
            journal.append("run-resumed", run_id=run_id)
            return journal, carried, run_id
        if runs_root is None:
            return None, None, None
        if self.run_id is not None:
            run_id = (self.run_id if self._grid_runs == 1
                      else f"{self.run_id}-{self._grid_runs}")
        else:
            run_id = new_run_id()
        journal = RunJournal.for_run(runs_root, run_id)
        journal.run_started(
            run_id, fingerprint, cells,
            scale=self.scale,
            budget_fraction=self.budget_fraction,
            seed=self.seed,
            jobs=jobs,
        )
        return journal, None, run_id

    def _runs_root(self) -> Path | None:
        from repro.exec.journal import RUNS_DIRNAME

        if self.cache_dir is not None:
            return self.cache_dir / RUNS_DIRNAME
        if self._result_cache_root is not None:
            return self._result_cache_root.parent / RUNS_DIRNAME
        return None

    def _stats_path(self) -> Path | None:
        if self.cache_dir is not None:
            return self.cache_dir / "exec-stats.json"
        if self._result_cache_root is not None:
            return self._result_cache_root / "exec-stats.json"
        return None


def run_grid(
    workloads: Sequence[str],
    prefetchers: Sequence[str],
    config: SimConfig = REDUCED_CONFIG,
    scale: float = 1.0,
    budget_fraction: float = 1.0,
    seed: int = 0,
    jobs: int | None = 1,
    cache_dir: str | Path | None = None,
) -> ResultGrid:
    """One-shot convenience wrapper around :class:`GridRunner`."""
    runner = GridRunner(
        config=config,
        scale=scale,
        budget_fraction=budget_fraction,
        seed=seed,
        jobs=jobs,
        cache_dir=cache_dir,
    )
    return runner.run_grid(workloads, prefetchers)


def clear_trace_cache() -> None:
    """Drop the in-memory trace cache (tests use this for isolation)."""
    _MEMORY_CACHE.clear()
