"""``repro bench``: the pinned hot-path benchmark and its JSON schema.

Replays a pinned (workload × prefetcher) grid through the simulation
engine with per-cell wall-clock timing and emits a schema-versioned
``BENCH_sim_hotpath.json`` for cross-PR trajectory tracking: total and
per-cell events/sec, trace-build cost, the result-cache hit rate of a
cold/warm replay, and a short digest of every cell's ``SimResult`` so a
perf regression *or* a silent behaviour change shows up in the same
check.

The grid is pinned (workloads, prefetchers, budget, scale, seed, reduced
config) precisely so numbers are comparable across commits; ``--quick``
selects a four-workload subset sized for CI smoke runs.  Checking is
tolerance-based for throughput (machine noise) and exact for result
digests (simulations are deterministic).
"""

from __future__ import annotations

import hashlib
import json
import tempfile
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Any, Callable

from repro import obs
from repro.sim.config import REDUCED_CONFIG, SimConfig
from repro.sim.engine import simulate
from repro.workloads import ALL_WORKLOADS
from repro.workloads.base import build_trace, get_workload

#: Schema identity of the emitted JSON document.
BENCH_SCHEMA = "repro.bench.sim_hotpath"
BENCH_SCHEMA_VERSION = 1

#: Pinned quick subset: one streaming kernel, one pointer chaser, one
#: stride-friendly SPEC loop, and one irregular graph workload, so the
#: smoke covers the engine's easy and hard regimes.
QUICK_WORKLOADS = (
    "stencil-default",
    "429.mcf-ref",
    "462.libquantum-ref",
    "canneal-simlarge",
)

#: Budget fractions pinned per mode (fraction of each workload's default
#: access budget, exactly as the figure harness scales them).
FULL_BUDGET_FRACTION = 0.25
QUICK_BUDGET_FRACTION = 0.1

#: Workloads used for the cold/warm result-cache replay phase (kept
#: small on purpose: the phase re-simulates its cells once, cold).
CACHE_REPLAY_WORKLOADS = QUICK_WORKLOADS[:2]


@dataclass(frozen=True)
class BenchGrid:
    """The pinned grid one bench run replays."""

    mode: str
    workloads: tuple[str, ...]
    prefetchers: tuple[str, ...]
    budget_fraction: float
    scale: float = 1.0
    seed: int = 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready description (embedded in the document)."""
        return {
            "mode": self.mode,
            "workloads": list(self.workloads),
            "prefetchers": list(self.prefetchers),
            "budget_fraction": self.budget_fraction,
            "scale": self.scale,
            "seed": self.seed,
        }


def bench_grid(quick: bool = False, engine: str = "fast") -> BenchGrid:
    """The pinned benchmark grid: the fig14 grid, or the quick subset.

    The batch engine benches the extended 10-prefetcher order so every
    workload batches at least the acceptance threshold of 8 lanes; the
    fast engine keeps the paper's 7-prefetcher order for continuity
    with the BENCH_sim_hotpath.json trajectory.
    """
    from repro.harness.registry import (
        EXTENDED_PREFETCHER_ORDER,
        PAPER_PREFETCHER_ORDER,
    )

    prefetchers = (tuple(EXTENDED_PREFETCHER_ORDER) if engine == "batch"
                   else tuple(PAPER_PREFETCHER_ORDER))
    if quick:
        return BenchGrid("quick", QUICK_WORKLOADS, prefetchers,
                         QUICK_BUDGET_FRACTION)
    return BenchGrid("full", tuple(ALL_WORKLOADS), prefetchers,
                     FULL_BUDGET_FRACTION)


def result_digest(result: Any) -> str:
    """Short content digest of a SimResult (bit-identity tripwire)."""
    payload = json.dumps(result.to_dict(), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _bench_trace(workload: str, grid: BenchGrid):
    """Build one workload's trace with the same budget rule as GridRunner."""
    spec = get_workload(workload)
    budget = max(
        1000,
        int(spec.default_accesses * grid.scale * grid.budget_fraction),
    )
    return build_trace(spec, scale=grid.scale, max_accesses=budget,
                       seed=grid.seed)


def _cache_replay(grid: BenchGrid, config: SimConfig,
                  engine: str = "fast") -> dict[str, Any]:
    """Cold+warm grid replay against a throwaway result cache.

    The warm pass must be a pure cache read, so its hit rate is the
    bench's integrity check on the result cache — anything below 1.0
    means cache keys or artifact verification regressed.
    """
    from repro.exec import telemetry as telemetry_module
    from repro.harness.runner import GridRunner

    workloads = [w for w in CACHE_REPLAY_WORKLOADS if w in grid.workloads]
    if not workloads:
        workloads = list(grid.workloads[:1])
    phase: dict[str, Any] = {
        "workloads": workloads,
        "prefetchers": list(grid.prefetchers),
    }
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        for pass_name in ("cold", "warm"):
            runner = GridRunner(
                config=config,
                scale=grid.scale,
                budget_fraction=grid.budget_fraction,
                seed=grid.seed,
                cache_dir=tmp,
                jobs=1,
                engine="batch" if engine == "batch" else "auto",
            )
            started = perf_counter()
            runner.run_grid(workloads, grid.prefetchers)
            phase[f"{pass_name}_seconds"] = perf_counter() - started
            telemetry = telemetry_module.LAST_RUN
            hits = telemetry.cache_hits
            misses = telemetry.cache_misses
            total = hits + misses
            phase[f"{pass_name}_hit_rate"] = hits / total if total else 0.0
    return phase


def run_bench(
    quick: bool = False,
    progress: Callable[[str], None] | None = None,
    cache_phase: bool = True,
    engine: str = "fast",
) -> dict[str, Any]:
    """Run the pinned benchmark; returns the JSON-ready document.

    Cell timing covers :func:`~repro.sim.engine.simulate` only (fresh
    prefetcher, prebuilt trace); trace construction is timed separately.
    Probes already enabled by ``--profile`` stay enabled and their
    snapshot is embedded; the bench itself does not enable them, so the
    timed region runs exactly the production (unprofiled) path.

    With ``engine="batch"`` each workload's cells run as one
    :class:`~repro.sim.batch.BatchSimulationEngine` over the shared
    trace; the one timed region covers all lanes, so per-cell
    ``wall_seconds`` is an equal share of the batch and the aggregate
    events/sec is directly comparable with the fast engine's (both are
    total events over total simulation wall time).  The grid dict
    deliberately excludes the engine, so a batch document's cell digests
    can be checked against a fast baseline over the same grid —
    bit-identity is part of the benchmark contract.
    """
    from repro.harness.registry import make_prefetcher

    grid = bench_grid(quick, engine=engine)
    config = REDUCED_CONFIG
    bench_started = perf_counter()

    cells: list[dict[str, Any]] = []
    trace_build = {"seconds": 0.0, "events": 0}
    total_events = 0
    total_sim_seconds = 0.0
    for workload in grid.workloads:
        started = perf_counter()
        trace = _bench_trace(workload, grid)
        trace_build["seconds"] += perf_counter() - started
        trace_build["events"] += len(trace.events)
        events = len(trace.events)
        if engine == "batch":
            from repro.sim.batch import BatchLane, BatchSimulationEngine

            lanes = [BatchLane(prefetcher=name, config=config)
                     for name in grid.prefetchers]
            batch_engine = BatchSimulationEngine(lanes)
            started = perf_counter()
            results = batch_engine.run(trace)
            batch_seconds = perf_counter() - started
            share = batch_seconds / len(lanes)
            for name, result in zip(grid.prefetchers, results):
                result.prefetcher = name
                cells.append({
                    "workload": workload,
                    "prefetcher": name,
                    "events": events,
                    "wall_seconds": share,
                    "events_per_second": events / share if share else 0.0,
                    "result_digest": result_digest(result),
                })
            total_events += events * len(lanes)
            total_sim_seconds += batch_seconds
        else:
            for name in grid.prefetchers:
                prefetcher = make_prefetcher(name)
                started = perf_counter()
                result = simulate(config, prefetcher, trace)
                seconds = perf_counter() - started
                result.prefetcher = name
                cells.append({
                    "workload": workload,
                    "prefetcher": name,
                    "events": events,
                    "wall_seconds": seconds,
                    "events_per_second": events / seconds if seconds else 0.0,
                    "result_digest": result_digest(result),
                })
                total_events += events
                total_sim_seconds += seconds
        if progress is not None:
            progress(workload)

    document: dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "schema_version": BENCH_SCHEMA_VERSION,
        "grid": grid.to_dict(),
        "engine": engine,
        "config": "reduced",
        "totals": {
            "cells": len(cells),
            "events": total_events,
            "sim_seconds": total_sim_seconds,
            "events_per_second": (
                total_events / total_sim_seconds if total_sim_seconds else 0.0
            ),
        },
        "trace_build": trace_build,
        "cells": cells,
    }
    if cache_phase:
        document["result_cache"] = _cache_replay(grid, config, engine)
    document["totals"]["wall_seconds"] = perf_counter() - bench_started
    if obs.enabled():
        document["profile"] = obs.snapshot()
    return document


def embed_baseline(document: dict[str, Any],
                   baseline: dict[str, Any],
                   path: str | None = None) -> None:
    """Attach a prior run's totals (and the speedup against them)."""
    old = baseline.get("totals", {}).get("events_per_second", 0.0)
    new = document.get("totals", {}).get("events_per_second", 0.0)
    document["baseline"] = {
        "path": path,
        "totals": baseline.get("totals", {}),
        "grid": baseline.get("grid", {}),
        "speedup": new / old if old else None,
    }


def _grid_matches(document: dict[str, Any],
                  baseline: dict[str, Any]) -> bool:
    return document.get("grid") == baseline.get("grid")


def check_bench(document: dict[str, Any], baseline: dict[str, Any],
                tolerance: float = 0.30) -> list[str]:
    """Compare a bench run against a baseline; returns the problems.

    Throughput regressions beyond ``tolerance`` fail; result digests
    must match exactly (same grid only) because simulations are
    deterministic — a digest drift means behaviour changed, which is a
    correctness finding, not noise.
    """
    problems: list[str] = []
    if baseline.get("schema") != BENCH_SCHEMA:
        problems.append(
            f"baseline schema {baseline.get('schema')!r} != {BENCH_SCHEMA!r}"
        )
        return problems
    if baseline.get("schema_version") != document.get("schema_version"):
        problems.append(
            f"baseline schema_version {baseline.get('schema_version')} != "
            f"{document.get('schema_version')}; regenerate the baseline"
        )
        return problems

    old = baseline.get("totals", {}).get("events_per_second", 0.0)
    new = document.get("totals", {}).get("events_per_second", 0.0)
    floor = old * (1.0 - tolerance)
    if old and new < floor:
        problems.append(
            f"throughput regression: {new:,.0f} events/sec < "
            f"{floor:,.0f} (baseline {old:,.0f} - {tolerance:.0%})"
        )

    if not _grid_matches(document, baseline):
        problems.append(
            "note: grids differ; result digests not compared"
        )
        return problems
    old_digests = {
        (cell["workload"], cell["prefetcher"]): cell["result_digest"]
        for cell in baseline.get("cells", [])
    }
    for cell in document.get("cells", []):
        key = (cell["workload"], cell["prefetcher"])
        expected = old_digests.get(key)
        if expected is not None and expected != cell["result_digest"]:
            problems.append(
                f"result drift in {key[0]} × {key[1]}: digest "
                f"{cell['result_digest']} != baseline {expected} "
                "(simulated behaviour changed)"
            )
    return problems


def render_bench(document: dict[str, Any]) -> str:
    """Terminal summary of one bench document."""
    totals = document["totals"]
    grid = document["grid"]
    lines = [
        f"repro bench ({grid['mode']} grid: {len(grid['workloads'])} "
        f"workloads x {len(grid['prefetchers'])} prefetchers, "
        f"budget {grid['budget_fraction']}, "
        f"engine {document.get('engine', 'fast')})",
        "-" * 64,
        f"  cells:            {totals['cells']}",
        f"  events simulated: {totals['events']:,}",
        f"  sim wall time:    {totals['sim_seconds']:.2f}s",
        f"  events/sec:       {totals['events_per_second']:,.0f}",
        f"  trace build:      {document['trace_build']['seconds']:.2f}s "
        f"({document['trace_build']['events']:,} events)",
        f"  total wall time:  {totals['wall_seconds']:.2f}s",
    ]
    cache = document.get("result_cache")
    if cache:
        lines.append(
            f"  result cache:     cold {cache['cold_seconds']:.2f}s "
            f"(hit rate {cache['cold_hit_rate']:.0%}), warm "
            f"{cache['warm_seconds']:.2f}s "
            f"(hit rate {cache['warm_hit_rate']:.0%})"
        )
    baseline = document.get("baseline")
    if baseline and baseline.get("speedup") is not None:
        lines.append(
            f"  vs baseline:      {baseline['speedup']:.2f}x events/sec "
            f"({baseline['totals'].get('events_per_second', 0):,.0f} -> "
            f"{totals['events_per_second']:,.0f})"
        )
    slowest = sorted(document["cells"], key=lambda c: c["wall_seconds"],
                     reverse=True)[:5]
    lines.append("  slowest cells:")
    for cell in slowest:
        lines.append(
            f"    {cell['workload']:<26} {cell['prefetcher']:<10} "
            f"{cell['wall_seconds']:6.2f}s "
            f"{cell['events_per_second']:>10,.0f} ev/s"
        )
    return "\n".join(lines)


def write_bench(document: dict[str, Any], path: str | Path) -> None:
    """Write the document as stable, diff-friendly JSON."""
    Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def load_bench(path: str | Path) -> dict[str, Any]:
    """Read a bench document previously written by :func:`write_bench`."""
    return json.loads(Path(path).read_text(encoding="utf-8"))
